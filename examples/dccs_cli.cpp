// General-purpose DCCS command-line tool: load a multi-layer edge list,
// run the selected algorithm, print (or save) the diversified d-CCs.
//
//   ./examples/dccs_cli --graph=network.txt --d=4 --s=3 --k=10
//       [--graph_bin=graph.mlg]
//       [--algorithm=auto|greedy|bu|td] [--engine=queue|bins] [--csv]
//       [--threads=N] [--search_threads=N] [--priority=P] [--deadline_ms=T]
//       [--cancel_after_ms=T] [--budget_ms=T] [--updates=stream.txt]
//       [--subscribe] [--metrics_json=PATH]
//
// The query goes through the engine's asynchronous path (Engine::Submit,
// DESIGN.md §7): --deadline_ms attaches a wall-clock deadline, --priority
// sets the admission priority, and --cancel_after_ms cancels the submitted
// query from a second thread after the given delay — demonstrating the
// kDeadlineExceeded / kCancelled terminal states and the anytime prefix a
// mid-search deadline returns.
//
// Input format (see graph/io.h):
//   n <num_vertices> <num_layers>
//   <layer> <u> <v>
//
// --graph_bin=graph.mlg loads an MLG1 binary container instead (format/
// mlg.h, DESIGN.md §13): the file is memory-mapped and the graph's
// adjacency aliases the mapping zero-copy — generate inputs with
// examples/mlggen or convert text with examples/mlgconvert.
//
// --updates=stream.txt replays an edge-update stream (graph/io.h "+/-"
// records, batches separated by `commit`) against the engine's GraphStore
// (DESIGN.md §8): after the initial query, each batch is applied —
// publishing a new epoch — and the query re-runs, printing the epoch it
// answered from, the incremental core-maintenance effort, and the
// preprocessing cache hit/miss counters (warm caches survive batches that
// leave the relevant d-core subgraphs untouched).
//
// --subscribe upgrades the replay to a *standing* query (DESIGN.md §9):
// one Engine::Subscribe before the replay, then each applied batch is
// answered by the revision the engine pushes — full result plus
// vertex-level delta, with epochs the generational keys prove irrelevant
// arriving as zero-work "unchanged" revisions instead of recomputations.
//
// --metrics_json=PATH dumps the engine's machine-readable stats surface
// (Engine::stats_report — metric registry plus slow-query span trees,
// DESIGN.md §12) as JSON on exit; "-" writes to stdout. Validate with
// scripts/check_metrics.py --validate PATH.
//
// With --demo the tool writes, loads and mines a small self-generated
// example file, so it is runnable without any input data.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dccs/dccs.h"
#include "format/mlg.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "obs/export.h"
#include "store/graph_store.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timing.h"

namespace {

mlcore::DccsAlgorithm ParseAlgorithm(const std::string& name) {
  if (name == "greedy") return mlcore::DccsAlgorithm::kGreedy;
  if (name == "bu") return mlcore::DccsAlgorithm::kBottomUp;
  if (name == "td") return mlcore::DccsAlgorithm::kTopDown;
  return mlcore::DccsAlgorithm::kAuto;  // resolved by the engine
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);

  const std::string binary_path = flags.GetString("graph_bin", "");
  std::string path = flags.GetString("graph", "");
  if (binary_path.empty() &&
      (flags.GetBool("demo", false) || path.empty())) {
    std::printf("no --graph given: writing a demo instance to "
                "/tmp/mlcore_demo.txt\n");
    mlcore::Dataset demo = mlcore::MakeDataset("ppi");
    path = "/tmp/mlcore_demo.txt";
    mlcore::IoStatus saved = SaveMultiLayerGraph(demo.graph, path);
    if (!saved.ok) {
      std::fprintf(stderr, "error: %s\n", saved.error.c_str());
      return 1;
    }
  }

  mlcore::MultiLayerGraph graph;
  if (!binary_path.empty()) {
    // Zero-copy ingest: the graph's adjacency aliases the mmap'd MLG1
    // container for the lifetime of the store's base epoch.
    mlcore::format::MlgLoadStats load_stats;
    mlcore::Status loaded =
        LoadMlgGraph(binary_path, &graph, &load_stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.message.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "mapped %s in %.2f ms (%.1f MiB zero-copy adjacency)\n",
                 binary_path.c_str(), load_stats.load_ms,
                 static_cast<double>(load_stats.mapped_bytes) / (1 << 20));
  } else {
    mlcore::IoStatus status = LoadMultiLayerGraph(path, &graph);
    if (!status.ok) {
      std::fprintf(stderr, "error: %s\n", status.error.c_str());
      return 1;
    }
  }

  mlcore::DccsRequest request;
  request.params.d = static_cast<int>(flags.GetInt("d", 4));
  request.params.s = static_cast<int>(flags.GetInt("s", 3));
  request.params.k = static_cast<int>(flags.GetInt("k", 10));
  request.params.dcc_engine = flags.GetString("engine", "queue") == "bins"
                                  ? mlcore::DccEngine::kBins
                                  : mlcore::DccEngine::kQueue;
  request.algorithm = ParseAlgorithm(flags.GetString("algorithm", "auto"));
  if (request.params.s > graph.NumLayers()) {
    std::fprintf(stderr, "error: s=%d exceeds the graph's %d layers\n",
                 request.params.s, graph.NumLayers());
    return 1;
  }

  request.params.time_budget_seconds =
      flags.GetDouble("budget_ms", 0.0) / 1e3;

  // The service path: a long-lived engine validates the request (bad flags
  // produce an error message, not a CHECK-abort) and amortises
  // preprocessing across further queries of this graph. The engine hosts
  // the graph behind a GraphStore tracking the query's d, so --updates
  // replay gets incremental core maintenance (DESIGN.md §8). The query is
  // submitted asynchronously; deadline/priority ride on SubmitOptions.
  mlcore::GraphStore::Options store_options;
  store_options.tracked_degrees = {request.params.d};
  auto store = std::make_shared<mlcore::GraphStore>(
      std::shared_ptr<const mlcore::MultiLayerGraph>(
          &graph, [](const mlcore::MultiLayerGraph*) {}),
      store_options);
  // --threads feeds the shared pool (preprocessing, batch fan-out);
  // --search_threads parallelises the BU/TD lattice search itself
  // (DESIGN.md §10) — results are bit-identical at any value of either.
  mlcore::Engine engine(
      store,
      mlcore::Engine::Options{
          .num_threads = static_cast<int>(flags.GetInt("threads", 1)),
          .search_threads =
              static_cast<int>(flags.GetInt("search_threads", 1))});
  mlcore::SubmitOptions submit;
  submit.priority = static_cast<int>(flags.GetInt("priority", 0));
  submit.deadline_seconds = flags.GetDouble("deadline_ms", 0.0) / 1e3;
  std::fprintf(stderr,
               "%s on %d vertices / %d layers / %lld edges "
               "(d=%d, s=%d, k=%d, priority=%d, deadline=%.0fms)\n",
               mlcore::AlgorithmName(engine.ResolvedAlgorithm(request)).c_str(),
               graph.NumVertices(), graph.NumLayers(),
               static_cast<long long>(graph.TotalEdges()), request.params.d,
               request.params.s, request.params.k, submit.priority,
               submit.deadline_seconds * 1e3);

  mlcore::QueryHandle handle = engine.Submit(request, submit);
  std::thread canceller;
  const double cancel_after_ms = flags.GetDouble("cancel_after_ms", -1.0);
  if (cancel_after_ms >= 0) {
    // Sleep in slices and bail once the query is terminal, so a cancel
    // delay longer than the query never stalls the tool on join().
    canceller = std::thread([&handle, cancel_after_ms] {
      mlcore::WallTimer timer;
      while (timer.Millis() < cancel_after_ms) {
        if (handle.TryGet() != nullptr) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      handle.Cancel();
    });
  }
  const mlcore::Expected<mlcore::DccsResult>& response = handle.Wait();
  if (canceller.joinable()) canceller.join();
  if (!response.ok()) {
    const char* kind =
        response.status().code == mlcore::StatusCode::kCancelled
            ? "cancelled"
        : response.status().code == mlcore::StatusCode::kDeadlineExceeded
            ? "deadline exceeded"
        : response.status().code == mlcore::StatusCode::kResourceExhausted
            ? "shed by admission control"
            : "invalid query";
    std::fprintf(stderr, "%s: %s\n", kind,
                 response.status().message.c_str());
    return response.status().code == mlcore::StatusCode::kInvalidArgument ||
                   response.status().code == mlcore::StatusCode::kUnsupported
               ? 1
               : 2;
  }
  const mlcore::DccsResult& result = *response;
  if (result.stats.budget_exhausted) {
    std::fprintf(stderr,
                 "time limit hit mid-search: returning the anytime "
                 "best-so-far result set\n");
  }

  mlcore::Table table({"core", "layers", "size", "vertices"});
  for (size_t i = 0; i < result.cores.size(); ++i) {
    const auto& core = result.cores[i];
    std::string layers, vertices;
    for (size_t j = 0; j < core.layers.size(); ++j) {
      layers += (j ? " " : "") + std::to_string(core.layers[j]);
    }
    const size_t preview = std::min<size_t>(core.vertices.size(), 12);
    for (size_t j = 0; j < preview; ++j) {
      vertices += (j ? " " : "") + std::to_string(core.vertices[j]);
    }
    if (core.vertices.size() > preview) vertices += " ...";
    table.AddRow({mlcore::Table::Int(static_cast<long long>(i + 1)), layers,
                  mlcore::Table::Int(
                      static_cast<long long>(core.vertices.size())),
                  vertices});
  }
  if (flags.GetBool("csv", false)) {
    std::printf("%s", table.ToCsv().c_str());
  } else {
    table.Print();
  }
  std::fprintf(stderr,
               "|Cov(R)| = %lld, preprocess %.3fs, search %.3fs, "
               "total %.3fs\n",
               static_cast<long long>(result.CoverSize()),
               result.stats.preprocess_seconds, result.stats.search_seconds,
               result.stats.total_seconds);

  // --updates: replay an edge-update stream — via a standing query
  // (--subscribe) or by re-running after every published epoch.
  const std::string updates_path = flags.GetString("updates", "");
  if (!updates_path.empty()) {
    std::vector<mlcore::UpdateBatch> batches;
    mlcore::IoStatus loaded = LoadUpdateStream(updates_path, &batches);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: %s\n", loaded.error.c_str());
      return 1;
    }
    const bool subscribe = flags.GetBool("subscribe", false);
    std::fprintf(stderr, "\nreplaying %zu update batches from %s%s\n",
                 batches.size(), updates_path.c_str(),
                 subscribe ? " through one standing subscription" : "");

    mlcore::Subscription subscription;
    if (subscribe) {
      mlcore::SubscriptionOptions subscription_options;
      subscription_options.priority = submit.priority;
      subscription_options.max_buffered_revisions =
          static_cast<int>(batches.size()) + 1;
      auto subscribed = engine.Subscribe(request, subscription_options);
      if (!subscribed.ok()) {
        std::fprintf(stderr, "subscribe failed: %s\n",
                     subscribed.status().message.c_str());
        return 1;
      }
      subscription = *subscribed;
      // The initial revision restates the epoch-0 answer printed above.
      std::optional<mlcore::ResultRevision> initial = subscription.Next();
      if (initial.has_value()) {
        std::fprintf(stderr, "subscribed: initial revision @ epoch %llu, "
                     "|Cov(R)| = %lld\n",
                     static_cast<unsigned long long>(initial->epoch),
                     static_cast<long long>(initial->result.CoverSize()));
      }
    }

    for (size_t b = 0; b < batches.size(); ++b) {
      auto outcome = engine.ApplyUpdate(batches[b]);
      if (!outcome.ok()) {
        std::fprintf(stderr, "batch %zu rejected: %s\n", b,
                     outcome.status().message.c_str());
        return 1;
      }
      if (subscribe) {
        std::optional<mlcore::ResultRevision> revision = subscription.Next();
        if (!revision.has_value()) {
          std::fprintf(stderr, "subscription ended at epoch %llu\n",
                       static_cast<unsigned long long>(outcome->epoch));
          return 2;
        }
        std::fprintf(
            stderr,
            "revision #%llu @ epoch %llu%s: |Cov(R)| = %lld, "
            "delta +%zu/-%zu users, %zu/%zu/%zu stories "
            "appeared/vanished/changed\n",
            static_cast<unsigned long long>(revision->sequence),
            static_cast<unsigned long long>(revision->epoch),
            revision->unchanged ? " [unchanged]" : "",
            static_cast<long long>(revision->result.CoverSize()),
            revision->delta.cover_added.size(),
            revision->delta.cover_removed.size(),
            revision->delta.cores_appeared.size(),
            revision->delta.cores_vanished.size(),
            revision->delta.cores_changed.size());
        continue;
      }
      auto replayed = engine.Run(request);
      if (!replayed.ok()) {
        std::fprintf(stderr, "query failed at epoch %llu: %s\n",
                     static_cast<unsigned long long>(outcome->epoch),
                     replayed.status().message.c_str());
        return 2;
      }
      const mlcore::EngineCacheStats cache = engine.cache_stats();
      std::fprintf(
          stderr,
          "epoch %llu: +%lld/-%lld edges, core entries %lld / exits %lld "
          "| |Cov(R)| = %lld, preprocess %.3f ms "
          "(cache %lld hits / %lld misses)\n",
          static_cast<unsigned long long>(replayed->epoch),
          static_cast<long long>(outcome->edges_inserted),
          static_cast<long long>(outcome->edges_removed),
          static_cast<long long>(outcome->core_entries),
          static_cast<long long>(outcome->core_exits),
          static_cast<long long>(replayed->CoverSize()),
          replayed->stats.preprocess_seconds * 1e3,
          static_cast<long long>(cache.preprocess_hits),
          static_cast<long long>(cache.preprocess_misses));
    }
    if (subscribe) {
      const mlcore::EngineCacheStats cache = engine.cache_stats();
      std::fprintf(stderr,
                   "subscription totals: %lld revisions, %lld unchanged "
                   "epochs absorbed, %lld coalesced\n",
                   static_cast<long long>(cache.revisions_emitted),
                   static_cast<long long>(cache.revisions_unchanged_skipped),
                   static_cast<long long>(cache.revisions_coalesced));
      subscription.Cancel();
    }
  }

  const std::string metrics_path = flags.GetString("metrics_json", "");
  if (!metrics_path.empty()) {
    mlcore::EngineStatsReport report = engine.stats_report();
    // Graph-ingest metrics live in the process-global registry (the loader
    // runs before any engine exists); fold them into the engine's report
    // so one --metrics_json document covers ingest and query.
    for (mlcore::obs::MetricSnapshot& snapshot :
         mlcore::obs::Registry::Global().Snapshot()) {
      if (snapshot.name.rfind("format.", 0) == 0) {
        report.metrics.push_back(std::move(snapshot));
      }
    }
    if (!mlcore::obs::WriteFile(
            metrics_path,
            mlcore::obs::ToJson(report.metrics, report.slow_queries))) {
      std::fprintf(stderr, "error: cannot write --metrics_json=%s\n",
                   metrics_path.c_str());
      return 1;
    }
    if (metrics_path != "-") {
      std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
    }
  }
  return 0;
}
