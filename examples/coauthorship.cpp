// Long-lived collaboration groups in a temporal co-authorship network: each
// layer holds the collaborations of one year (the paper's Author dataset).
// A d-CC recurring on s of the years is a research group with sustained
// internal collaboration — contrast with quasi-cliques, which fragment the
// same group into many tiny pieces (paper §VI, Figs 29–31).
//
//   ./examples/coauthorship [--d=3] [--s=5] [--k=8] [--compare_mimag=true]

#include <cstdio>
#include <utility>

#include "dccs/dccs.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "mimag/mimag.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::Dataset author = mlcore::MakeDataset("author");

  mlcore::DccsParams params;
  params.d = static_cast<int>(flags.GetInt("d", 3));
  params.s = static_cast<int>(
      flags.GetInt("s", author.graph.NumLayers() / 2));
  params.k = static_cast<int>(flags.GetInt("k", 8));

  std::printf("co-authorship stand-in: %d authors, %d years, %lld "
              "collaboration edges\n",
              author.graph.NumVertices(), author.graph.NumLayers(),
              static_cast<long long>(author.graph.TotalEdges()));

  // One engine per corpus: a notebook-style sweep over (d, s, k) would hit
  // its preprocessing cache on every repeat (d, s).
  mlcore::Engine engine(&author.graph);
  mlcore::DccsResult result = std::move(
      *engine.Run(mlcore::DccsRequest{params, mlcore::DccsAlgorithm::kBottomUp}));
  std::printf("\nBU-DCCS: %zu sustained groups, %lld authors covered, "
              "%.1f ms\n",
              result.cores.size(),
              static_cast<long long>(result.CoverSize()),
              result.stats.total_seconds * 1e3);
  for (size_t i = 0; i < result.cores.size(); ++i) {
    std::printf("  group %zu: %zu authors active together in %zu of the "
                "years\n",
                i + 1, result.cores[i].vertices.size(),
                result.cores[i].layers.size());
  }

  if (flags.GetBool("compare_mimag", true)) {
    mlcore::MimagParams mimag_params;
    mimag_params.gamma = 0.8;
    mimag_params.min_size = params.d + 1;
    mimag_params.min_support = params.s;
    mlcore::MimagResult mimag = MineMimag(author.graph, mimag_params);
    mlcore::OverlapMetrics overlap =
        mlcore::CoverOverlap(mimag.Cover(), result.Cover());
    std::printf("\nquasi-clique baseline (gamma=%.1f): %zu clusters, %zu "
                "authors, %.1f ms%s\n",
                mimag_params.gamma, mimag.clusters.size(),
                mimag.Cover().size(), mimag.seconds * 1e3,
                mimag.budget_exhausted ? " (budget hit)" : "");
    std::printf("d-CC cover vs quasi-clique cover: precision %.3f, recall "
                "%.3f, F1 %.3f\n",
                overlap.precision, overlap.recall, overlap.f1);
    std::printf("(high recall = the d-CCs subsume nearly all quasi-clique "
                "vertices, cf. paper Fig 29)\n");
  }
  return 0;
}
