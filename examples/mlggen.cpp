// mlggen: deterministic multi-layer R-MAT graph generator (DESIGN.md §13).
// Streams one layer at a time through the MLG1 writer, so graphs far larger
// than memory-resident edge lists (10⁸+ edges) generate comfortably.
//
//   ./examples/mlggen --out=graph.mlg [--scale=16 | --vertices=N]
//       [--edges=E] [--layers=L] [--seed=S] [--overlap=F]
//       [--a=0.57] [--b=0.19] [--c=0.19]
//
// --scale=S is shorthand for --vertices=2^S (Graph500 convention); an
// explicit --vertices wins. --edges is the per-layer draw count before
// deduplication. --overlap is the fraction of each layer's draws taken
// from a stream shared by every layer — the knob that creates dense cores
// recurring across layer subsets, i.e. non-trivial d-CC lattices.
//
// Identical flags (including --seed) produce a byte-identical file.

#include <cstdio>
#include <string>

#include "format/generator.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: mlggen --out=graph.mlg [--scale=16|--vertices=N] "
                 "[--edges=E] [--layers=L] [--seed=S] [--overlap=F]\n");
    return 1;
  }

  mlcore::format::MlgGenConfig config;
  const long long scale = flags.GetInt("scale", 16);
  config.num_vertices = static_cast<int32_t>(
      flags.GetInt("vertices", scale < 31 ? (1LL << scale) : 0));
  config.num_layers = static_cast<int32_t>(flags.GetInt("layers", 4));
  config.edges_per_layer = flags.GetInt("edges", config.num_vertices * 4LL);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.layer_overlap = flags.GetDouble("overlap", 0.3);
  config.rmat_a = flags.GetDouble("a", 0.57);
  config.rmat_b = flags.GetDouble("b", 0.19);
  config.rmat_c = flags.GetDouble("c", 0.19);

  mlcore::format::MlgGenStats stats;
  mlcore::Status status = GenerateMlg(config, out, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "wrote %s: %d vertices, %d layers, %lld edges "
               "(seed %llu, %.1f ms)\n",
               out.c_str(), config.num_vertices, config.num_layers,
               static_cast<long long>(stats.edges_written),
               static_cast<unsigned long long>(config.seed), stats.gen_ms);
  return 0;
}
