// Multi-layer graph profiling tool: per-layer statistics, layer-similarity
// matrix and d-core support histogram. Point it at an edge-list file or at
// one of the built-in datasets.
//
//   ./examples/graph_stats --dataset=ppi [--d=4]
//   ./examples/graph_stats --graph=network.txt [--d=4]

#include <cstdio>
#include <string>

#include "analysis/statistics.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  const int d = static_cast<int>(flags.GetInt("d", 4));

  mlcore::MultiLayerGraph graph;
  std::string source = flags.GetString("graph", "");
  if (!source.empty()) {
    mlcore::IoStatus status = LoadMultiLayerGraph(source, &graph);
    if (!status.ok) {
      std::fprintf(stderr, "error: %s\n", status.error.c_str());
      return 1;
    }
  } else {
    std::string dataset = flags.GetString("dataset", "ppi");
    graph = mlcore::MakeDataset(dataset, flags.GetDouble("scale", 1.0)).graph;
    source = dataset;
  }

  std::printf("%s: %d vertices, %d layers, %lld edges (%lld distinct)\n\n",
              source.c_str(), graph.NumVertices(), graph.NumLayers(),
              static_cast<long long>(graph.TotalEdges()),
              static_cast<long long>(graph.DistinctEdges()));

  mlcore::Table layer_table({"layer", "edges", "avg deg", "max deg",
                             "active", "degeneracy", "components"});
  auto stats = mlcore::ComputeLayerStatistics(graph);
  for (mlcore::LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    const auto& s = stats[static_cast<size_t>(layer)];
    auto components =
        mlcore::CountComponents(mlcore::ConnectedComponents(graph, layer));
    layer_table.AddRow(
        {mlcore::Table::Int(layer), mlcore::Table::Int(s.edges),
         mlcore::Table::Num(s.average_degree, 2),
         mlcore::Table::Int(s.max_degree),
         mlcore::Table::Int(s.active_vertices),
         mlcore::Table::Int(s.degeneracy), mlcore::Table::Int(components)});
  }
  layer_table.Print();

  if (graph.NumLayers() <= 16) {
    std::printf("\nlayer edge-set Jaccard similarity:\n      ");
    for (mlcore::LayerId b = 0; b < graph.NumLayers(); ++b) {
      std::printf("%5d ", b);
    }
    std::printf("\n");
    auto matrix = mlcore::LayerSimilarityMatrix(graph);
    const auto l = static_cast<size_t>(graph.NumLayers());
    for (size_t a = 0; a < l; ++a) {
      std::printf("%5zu ", a);
      for (size_t b = 0; b < l; ++b) {
        std::printf("%.3f ", matrix[a * l + b]);
      }
      std::printf("\n");
    }
  }

  std::printf("\nsupport histogram at d=%d (Num(v) = #layers whose d-core "
              "contains v):\n",
              d);
  auto support = mlcore::SupportHistogram(graph, d);
  for (size_t i = 0; i < support.size(); ++i) {
    if (support[i] > 0) {
      std::printf("  Num=%zu: %lld vertices\n", i,
                  static_cast<long long>(support[i]));
    }
  }
  std::printf("(vertices with Num < s are removed by the paper's "
              "vertex-deletion preprocessing)\n");
  return 0;
}
