// Streaming story identification as a *standing query* (DESIGN.md §9):
// the paper's time-sliced story scenario, served continuously through
// Engine::Subscribe instead of poll-and-rerun.
//
// Layers are interaction channels (co-click, co-comment, share, ...).
// Stories are dense vertex groups recurring on several channels; the
// stream interleaves story arrivals (edge-insertion batches), story decay
// (edge-removal batches) and fresh users (vertex adds). One subscription
// stands for the whole week: every ApplyUpdate publishes an epoch, and
// the engine pushes an epoch-tagged ResultRevision — the full top-k plus
// a vertex-level delta against the previous revision.
//
// What to watch in the output:
//   * each revision reports the epoch it answers from and *what changed*:
//     users entering/leaving the covered set, stories appearing,
//     vanishing, or shifting membership;
//   * the quiet day only touches edges far from any d-core, so its
//     revision arrives marked "unchanged" — the engine proved the result
//     current from the store's core-subgraph generations without any
//     preprocessing or search (revisions_unchanged_skipped moves, the
//     scheduler does not);
//   * the store maintains per-layer d-cores incrementally — the
//     maintenance column shows exits/entries instead of full rebuilds.
//
// The stream is also round-tripped through the graph/io.h text format
// ("+/-" records), demonstrating the replay file dccs_cli --updates
// consumes (and dccs_cli --subscribe serves the same way).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dccs/dccs.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace {

constexpr int kD = 3;          // degree threshold
constexpr int kS = 2;          // support threshold (channels per story)
constexpr int kLayers = 4;

// A story: a clique-ish vertex group planted on a subset of channels.
mlcore::UpdateBatch StoryArrival(const mlcore::MultiLayerGraph& graph,
                                 const mlcore::VertexSet& members,
                                 const mlcore::LayerSet& channels,
                                 mlcore::Rng& rng) {
  mlcore::UpdateBatch batch;
  const int32_t n = graph.NumVertices();  // members may be fresh ids >= n
  for (mlcore::LayerId channel : channels) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (!rng.Bernoulli(0.8)) continue;
        if (members[j] < n &&
            graph.HasEdge(channel, members[i], members[j])) {
          continue;
        }
        batch.Insert(channel, members[i], members[j]);
      }
    }
  }
  return batch;
}

// Decay: remove whatever edges a story region still has on its channels.
mlcore::UpdateBatch StoryDecay(const mlcore::MultiLayerGraph& graph,
                               const mlcore::VertexSet& members,
                               const mlcore::LayerSet& channels) {
  mlcore::UpdateBatch batch;
  for (mlcore::LayerId channel : channels) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (graph.HasEdge(channel, members[i], members[j])) {
          batch.Remove(channel, members[i], members[j]);
        }
      }
    }
  }
  return batch;
}

// Quiet-day chatter: toggle edges between low-degree users that cannot
// reach any d-core — content changes, no story does.
mlcore::UpdateBatch BackgroundChatter(const mlcore::MultiLayerGraph& graph) {
  mlcore::UpdateBatch batch;
  mlcore::VertexId prev = -1;
  for (mlcore::VertexId v = 0;
       v < graph.NumVertices() && batch.insert_edges.size() < 8; ++v) {
    if (graph.Degree(0, v) > kD - 2) continue;
    if (prev < 0) {
      prev = v;
    } else if (!graph.HasEdge(0, prev, v)) {
      batch.Insert(0, prev, v);
      prev = -1;
    }
  }
  return batch;
}

std::string JoinLayers(const mlcore::LayerSet& layers) {
  std::string out;
  for (size_t i = 0; i < layers.size(); ++i) {
    out += (i ? "," : "") + std::to_string(layers[i]);
  }
  return out;
}

void PrintRevision(const mlcore::ResultRevision& revision) {
  const mlcore::DccsResult& result = revision.result;
  std::printf("  revision #%llu @ epoch %llu%s: |Cov(R)| = %lld across %zu "
              "stories (preprocess %.2f ms, total %.2f ms)\n",
              static_cast<unsigned long long>(revision.sequence),
              static_cast<unsigned long long>(revision.epoch),
              revision.unchanged ? " [unchanged — proven, not recomputed]"
                                 : "",
              static_cast<long long>(result.CoverSize()),
              result.cores.size(), result.stats.preprocess_seconds * 1e3,
              result.stats.total_seconds * 1e3);
  const mlcore::ResultDelta& delta = revision.delta;
  if (delta.empty()) {
    std::printf("    delta: none\n");
    return;
  }
  std::printf("    delta: +%zu/-%zu covered users", delta.cover_added.size(),
              delta.cover_removed.size());
  for (const auto& core : delta.cores_appeared) {
    std::printf(", story appears on {%s} (%zu users)",
                JoinLayers(core.layers).c_str(), core.vertices.size());
  }
  for (const auto& core : delta.cores_vanished) {
    std::printf(", story on {%s} vanishes",
                JoinLayers(core.layers).c_str());
  }
  for (const auto& change : delta.cores_changed) {
    std::printf(", story on {%s} shifts +%zu/-%zu",
                JoinLayers(change.layers).c_str(), change.added.size(),
                change.removed.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Day 0: a quiet interaction graph — background chatter only.
  mlcore::PlantedGraphConfig config;
  config.num_vertices = 600;
  config.num_layers = kLayers;
  config.num_communities = 3;
  config.community_size_min = 10;
  config.community_size_max = 16;
  config.seed = 20180416;
  mlcore::MultiLayerGraph initial =
      mlcore::GeneratePlanted(config).graph;

  mlcore::GraphStore::Options store_options;
  store_options.tracked_degrees = {kD};
  auto store = std::make_shared<mlcore::GraphStore>(std::move(initial),
                                                    store_options);
  mlcore::Engine engine(store, mlcore::Engine::Options{.num_threads = 2});

  mlcore::DccsRequest query;
  query.params.d = kD;
  query.params.s = kS;
  query.params.k = 5;

  // The standing query: one Subscribe, one revision per published epoch.
  mlcore::SubscriptionOptions subscription_options;
  subscription_options.max_buffered_revisions = 16;
  auto subscribed = engine.Subscribe(query, subscription_options);
  MLCORE_CHECK_MSG(subscribed.ok(), subscribed.status().message.c_str());
  mlcore::Subscription subscription = *subscribed;

  std::printf("== day 0: baseline ==\n");
  std::optional<mlcore::ResultRevision> revision = subscription.Next();
  MLCORE_CHECK(revision.has_value());
  PrintRevision(*revision);

  // Script the week: three breaking stories arrive, the oldest decays,
  // one day is pure background chatter, new users join. Batches are built
  // against the store's current snapshot and collected into a replayable
  // stream file as we go.
  mlcore::Rng rng(7);
  std::vector<mlcore::UpdateBatch> stream;
  std::vector<mlcore::VertexSet> story_members;
  std::vector<mlcore::LayerSet> story_channels;
  for (int day = 1; day <= 6; ++day) {
    std::printf("\n== day %d ==\n", day);
    auto snap = store->snapshot();
    const mlcore::MultiLayerGraph& graph = snap->graph();

    mlcore::UpdateBatch batch;
    if (day <= 3) {
      // A new story breaks among fresh + existing users on two channels.
      mlcore::VertexSet members;
      for (int i = 0; i < 6; ++i) {
        members.push_back(graph.NumVertices() + i);
      }
      for (int i = 0; i < 6; ++i) {
        members.push_back(static_cast<mlcore::VertexId>(
            rng.Uniform(0, graph.NumVertices() - 1)));
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      mlcore::LayerSet channels = {
          static_cast<mlcore::LayerId>((day - 1) % kLayers),
          static_cast<mlcore::LayerId>((day + 1) % kLayers)};
      std::sort(channels.begin(), channels.end());
      channels.erase(std::unique(channels.begin(), channels.end()),
                     channels.end());
      batch = StoryArrival(graph, members, channels, rng);
      batch.add_vertices = 6;
      story_members.push_back(members);
      story_channels.push_back(channels);
      std::printf("story #%zu breaks: %zu users, channels {%d,%d}\n",
                  story_members.size(), members.size(), channels[0],
                  channels[1]);
    } else if (day == 4) {
      // Quiet day: chatter among low-degree users, no story involved —
      // this one must come back "unchanged" without recomputation.
      batch = BackgroundChatter(graph);
      std::printf("quiet day: %zu background edges, no story touched\n",
                  batch.insert_edges.size());
    } else {
      // The oldest stories fade from the feed.
      size_t victim = static_cast<size_t>(day - 5);
      batch = StoryDecay(graph, story_members[victim],
                         story_channels[victim]);
      std::printf("story #%zu decays: %lld edges removed\n", victim + 1,
                  static_cast<long long>(batch.remove_edges.size()));
    }

    auto outcome = engine.ApplyUpdate(batch);
    MLCORE_CHECK_MSG(outcome.ok(), outcome.status().message.c_str());
    stream.push_back(batch);
    std::printf("  published epoch %llu: +%lld/-%lld edges, "
                "core entries %lld / exits %lld "
                "(%lld incremental layer updates, %lld full recomputes)\n",
                static_cast<unsigned long long>(outcome->epoch),
                static_cast<long long>(outcome->edges_inserted),
                static_cast<long long>(outcome->edges_removed),
                static_cast<long long>(outcome->core_entries),
                static_cast<long long>(outcome->core_exits),
                static_cast<long long>(outcome->incremental_layer_updates),
                static_cast<long long>(outcome->full_layer_recomputes));

    // The subscription pushes the revision; no re-query, no polling.
    revision = subscription.Next();
    MLCORE_CHECK(revision.has_value());
    MLCORE_CHECK(revision->epoch == outcome->epoch);
    PrintRevision(*revision);
  }

  const mlcore::EngineCacheStats stats = engine.cache_stats();
  std::printf("\nsubscription: %lld revisions emitted, %lld epochs absorbed "
              "as unchanged, %lld coalesced; preprocess cache %lld hits / "
              "%lld misses over %d days\n",
              static_cast<long long>(stats.revisions_emitted),
              static_cast<long long>(stats.revisions_unchanged_skipped),
              static_cast<long long>(stats.revisions_coalesced),
              static_cast<long long>(stats.preprocess_hits),
              static_cast<long long>(stats.preprocess_misses), 6 + 1);
  subscription.Cancel();

  // Round-trip the stream through the text format — the same file feeds
  // `dccs_cli --graph=... --updates=stream.txt [--subscribe]`.
  const std::string stream_path = "/tmp/mlcore_story_stream.txt";
  mlcore::IoStatus saved = SaveUpdateStream(stream, stream_path);
  MLCORE_CHECK_MSG(saved.ok, saved.error.c_str());
  std::vector<mlcore::UpdateBatch> replayed;
  MLCORE_CHECK(LoadUpdateStream(stream_path, &replayed).ok);
  MLCORE_CHECK(replayed.size() == stream.size());
  std::printf("update stream round-tripped through %s (%zu batches)\n",
              stream_path.c_str(), replayed.size());
  return 0;
}
