// Biological module discovery (paper Application 1): find reliable protein
// modules on a multi-layer PPI network where each layer holds interactions
// detected by a different experimental method. A vertex group is a credible
// module only if it is densely connected on at least s layers — this
// filters out method-specific spurious interactions.
//
//   ./examples/biological_modules [--d=3] [--s=4] [--k=10]

#include <cstdio>

#include "dccs/dccs.h"
#include "eval/complexes.h"
#include "graph/datasets.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::DccsRequest request;  // algorithm defaults to kAuto
  mlcore::DccsParams& params = request.params;
  params.d = static_cast<int>(flags.GetInt("d", 3));
  params.k = static_cast<int>(flags.GetInt("k", 10));

  mlcore::Dataset ppi = mlcore::MakeDataset("ppi");
  params.s = static_cast<int>(flags.GetInt("s", ppi.graph.NumLayers() / 2));

  std::printf("PPI stand-in: %d proteins, %d detection methods (layers), "
              "%lld interactions\n",
              ppi.graph.NumVertices(), ppi.graph.NumLayers(),
              static_cast<long long>(ppi.graph.TotalEdges()));
  std::printf("searching top-%d diversified %d-CCs on >= %d layers...\n\n",
              params.k, params.d, params.s);

  mlcore::Engine engine(&ppi.graph);
  mlcore::Expected<mlcore::DccsResult> response = engine.Run(request);
  if (!response.ok()) {
    std::fprintf(stderr, "invalid query: %s\n",
                 response.status().message.c_str());
    return 1;
  }
  const mlcore::DccsResult& result = *response;

  std::printf("%s found %zu modules covering %lld proteins in %.1f ms\n",
              mlcore::AlgorithmName(engine.ResolvedAlgorithm(request)).c_str(),
              result.cores.size(),
              static_cast<long long>(result.CoverSize()),
              result.stats.total_seconds * 1e3);
  for (size_t m = 0; m < result.cores.size(); ++m) {
    const auto& core = result.cores[m];
    std::printf("  module %zu: %zu proteins, dense on methods {", m + 1,
                core.vertices.size());
    for (size_t i = 0; i < core.layers.size(); ++i) {
      std::printf("%s%d", i ? "," : "", core.layers[i]);
    }
    std::printf("}\n");
  }

  // Score against the planted protein complexes (the dataset's ground
  // truth; stands in for the MIPS catalogue of the paper's Fig 32).
  std::vector<mlcore::VertexSet> subgraphs;
  for (const auto& core : result.cores) subgraphs.push_back(core.vertices);
  double recall = mlcore::ComplexRecall(ppi.complexes, subgraphs);
  std::printf("\n%.1f%% of the %zu known protein complexes are entirely "
              "contained in a discovered module\n",
              recall * 100.0, ppi.complexes.size());
  return 0;
}
