// mlgconvert: lossless converter between the text edge-list format
// (graph/io.h) and the MLG1 binary container (format/mlg.h, DESIGN.md §13).
//
//   ./examples/mlgconvert --in=graph.txt --out=graph.mlg
//   ./examples/mlgconvert --in=graph.mlg --out=graph.txt
//
// The direction is sniffed from the input's leading bytes (the MLG1 magic),
// not from file extensions. Round trips are exact: text → binary → text
// reproduces the same graph, and binary → text → binary a byte-identical
// container — the property the CI format job diffs.

#include <cstdio>
#include <cstring>
#include <string>

#include "format/mlg.h"
#include "graph/io.h"
#include "graph/multilayer_graph.h"
#include "util/flags.h"

namespace {

/// True iff the file starts with the 8-byte MLG1 magic. Short or missing
/// files sniff as text — the text loader then reports the real error.
bool LooksLikeMlg(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  unsigned char head[sizeof(mlcore::format::kMlgMagic)];
  const size_t read = std::fread(head, 1, sizeof(head), file);
  std::fclose(file);
  return read == sizeof(head) &&
         std::memcmp(head, mlcore::format::kMlgMagic, sizeof(head)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "usage: mlgconvert --in=PATH --out=PATH "
                 "(direction sniffed from the input's MLG1 magic)\n");
    return 1;
  }

  if (LooksLikeMlg(in)) {
    mlcore::MultiLayerGraph graph;
    mlcore::format::MlgLoadStats stats;
    mlcore::Status status = LoadMlgGraph(in, &graph, &stats);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message.c_str());
      return 1;
    }
    mlcore::IoStatus saved = SaveMultiLayerGraph(graph, out);
    if (!saved.ok) {
      std::fprintf(stderr, "error: %s\n", saved.error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "binary → text: %lld vertices, %lld layers, %lld edges "
                 "(mmap load %.1f ms) → %s\n",
                 static_cast<long long>(stats.num_vertices),
                 static_cast<long long>(stats.num_layers),
                 static_cast<long long>(stats.total_edges), stats.load_ms,
                 out.c_str());
    return 0;
  }

  mlcore::MultiLayerGraph graph;
  mlcore::IoStatus loaded = LoadMultiLayerGraph(in, &graph);
  if (!loaded.ok) {
    std::fprintf(stderr, "error: %s\n", loaded.error.c_str());
    return 1;
  }
  mlcore::Status status = mlcore::format::WriteMlgGraph(graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message.c_str());
    return 1;
  }
  std::fprintf(stderr, "text → binary: %d vertices, %d layers, %lld edges → %s\n",
               graph.NumVertices(), graph.NumLayers(),
               static_cast<long long>(graph.TotalEdges()), out.c_str());
  return 0;
}
