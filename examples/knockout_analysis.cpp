// What-if knock-out analysis on the PPI stand-in: which proteins are
// critical to a discovered module? Uses the decremental core maintainer to
// cascade each knock-out in O(affected edges) instead of recomputing all
// cores, and reports how much d-core structure collapses.
//
//   ./examples/knockout_analysis [--d=3] [--knockouts=12]

#include <cstdio>
#include <utility>
#include <vector>

#include "dccs/dccs.h"
#include "dynamic/decremental_core.h"
#include "graph/datasets.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  const int d = static_cast<int>(flags.GetInt("d", 3));
  const int knockouts = static_cast<int>(flags.GetInt("knockouts", 12));

  mlcore::Dataset ppi = mlcore::MakeDataset("ppi");
  std::printf("PPI stand-in: %d proteins, %d layers\n",
              ppi.graph.NumVertices(), ppi.graph.NumLayers());

  // Find one strong module to attack.
  mlcore::DccsParams params;
  params.d = d;
  params.s = ppi.graph.NumLayers() / 2;
  params.k = 1;
  mlcore::Engine engine(&ppi.graph);
  mlcore::DccsResult result = std::move(*engine.Run(
      mlcore::DccsRequest{params, mlcore::DccsAlgorithm::kBottomUp}));
  if (result.cores.empty()) {
    std::printf("no module found at d=%d, s=%d\n", params.d, params.s);
    return 0;
  }
  const mlcore::VertexSet module = result.cores[0].vertices;
  std::printf("target module: %zu proteins dense on %zu layers\n\n",
              module.size(), result.cores[0].layers.size());

  mlcore::DecrementalCoreMaintainer maintainer(
      ppi.graph, d, mlcore::AllVertices(ppi.graph));
  int64_t baseline = 0;
  for (mlcore::LayerId layer = 0; layer < ppi.graph.NumLayers(); ++layer) {
    baseline += static_cast<int64_t>(maintainer.CoreMembers(layer).size());
  }
  std::printf("baseline: %lld (protein, layer) core memberships\n",
              static_cast<long long>(baseline));

  mlcore::Rng rng(20260612);
  std::vector<std::pair<mlcore::VertexId, mlcore::LayerId>> exits;
  int64_t total_exits = 0;
  for (int k = 0; k < knockouts && k < static_cast<int>(module.size());
       ++k) {
    mlcore::VertexId target =
        module[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(module.size()) - 1))];
    if (maintainer.Deleted(target)) continue;
    exits.clear();
    maintainer.RemoveVertex(target, &exits);
    total_exits += static_cast<int64_t>(exits.size());
    std::printf("  knock out protein %4d -> %3zu cascading core exits "
                "(representative member now in %d/%d layer cores)\n",
                target, exits.size(), maintainer.Support(module[0]),
                ppi.graph.NumLayers());
  }

  int64_t remaining = 0;
  for (mlcore::LayerId layer = 0; layer < ppi.graph.NumLayers(); ++layer) {
    remaining += static_cast<int64_t>(maintainer.CoreMembers(layer).size());
  }
  std::printf("\nafter %d knock-outs: %lld memberships remain "
              "(%lld lost, %.1f%% of baseline) — %lld cascade exits "
              "observed incrementally\n",
              knockouts, static_cast<long long>(remaining),
              static_cast<long long>(baseline - remaining),
              100.0 * static_cast<double>(baseline - remaining) /
                  static_cast<double>(baseline),
              static_cast<long long>(total_exits));
  return 0;
}
