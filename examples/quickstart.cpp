// Quickstart: build a small multi-layer graph, stand up an mlcore::Engine
// over it, run all three DCCS algorithms through the service API, and print
// the diversified d-coherent cores they find. The three queries share one
// (d, s) key, so the second and third skip preprocessing via the engine's
// cache; `SolveDccs` remains as the one-shot shorthand.
//
//   ./examples/quickstart [--d=3] [--s=2] [--k=2]

#include <cstdio>

#include "dccs/dccs.h"
#include "graph/graph_builder.h"
#include "util/flags.h"

namespace {

// A miniature instance in the spirit of the paper's Fig 1: one large dense
// group recurring on several layers, one smaller group, background noise.
mlcore::MultiLayerGraph BuildToyGraph() {
  mlcore::GraphBuilder builder(/*num_vertices=*/16, /*num_layers=*/4);
  auto add_dense_group = [&](std::initializer_list<mlcore::VertexId> group,
                             std::initializer_list<mlcore::LayerId> layers) {
    std::vector<mlcore::VertexId> vs(group);
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        for (mlcore::LayerId layer : layers) {
          builder.AddEdge(layer, vs[i], vs[j]);
        }
      }
    }
  };
  // "a..i" of the paper's example: dense on layers 0–3.
  add_dense_group({0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2, 3});
  // A second, partially overlapping group on layers 1 and 3.
  add_dense_group({7, 8, 9, 10, 11, 12}, {1, 3});
  // Sparse distractors.
  builder.AddEdge(0, 13, 14);
  builder.AddEdge(2, 14, 15);
  return builder.Build();
}

void PrintResult(const char* name, const mlcore::DccsResult& result) {
  std::printf("%s: |Cov(R)| = %lld, %zu cores, %.3f ms\n", name,
              static_cast<long long>(result.CoverSize()), result.cores.size(),
              result.stats.total_seconds * 1e3);
  for (const auto& core : result.cores) {
    std::printf("  layers {");
    for (size_t i = 0; i < core.layers.size(); ++i) {
      std::printf("%s%d", i ? "," : "", core.layers[i]);
    }
    std::printf("} -> %zu vertices {", core.vertices.size());
    for (size_t i = 0; i < core.vertices.size(); ++i) {
      std::printf("%s%d", i ? "," : "", core.vertices[i]);
    }
    std::printf("}\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::DccsRequest request;
  request.params.d = static_cast<int>(flags.GetInt("d", 3));
  request.params.s = static_cast<int>(flags.GetInt("s", 2));
  request.params.k = static_cast<int>(flags.GetInt("k", 2));

  // The engine owns the graph; queries borrow its cached preprocessing.
  // Holding the snapshot pins the graph no matter what updates later
  // publish (Engine::graph() is deprecated for exactly that reason).
  mlcore::Engine engine(BuildToyGraph());
  auto snapshot = engine.store()->snapshot();
  const mlcore::MultiLayerGraph& graph = snapshot->graph();
  std::printf("toy graph: %d vertices, %d layers, %lld edges\n",
              graph.NumVertices(), graph.NumLayers(),
              static_cast<long long>(graph.TotalEdges()));
  std::printf("query: d=%d, s=%d, k=%d\n\n", request.params.d,
              request.params.s, request.params.k);

  struct Variant {
    const char* label;
    mlcore::DccsAlgorithm algorithm;
  };
  for (const Variant& variant :
       {Variant{"GD-DCCS (greedy, 1-1/e approx)",
                mlcore::DccsAlgorithm::kGreedy},
        Variant{"BU-DCCS (bottom-up, 1/4 approx)",
                mlcore::DccsAlgorithm::kBottomUp},
        Variant{"TD-DCCS (top-down, 1/4 approx)",
                mlcore::DccsAlgorithm::kTopDown}}) {
    request.algorithm = variant.algorithm;
    mlcore::Expected<mlcore::DccsResult> response = engine.Run(request);
    if (!response.ok()) {  // unreachable here; shown for API shape
      std::fprintf(stderr, "invalid query: %s\n",
                   response.status().message.c_str());
      return 1;
    }
    PrintResult(variant.label, *response);
  }

  const mlcore::EngineCacheStats cache = engine.cache_stats();
  std::printf("\nengine cache: %lld preprocessing hit(s) across the three "
              "queries (the BU/TD runs reused the greedy run's vertex "
              "deletion)\n",
              static_cast<long long>(cache.preprocess_hits));
  request.algorithm = mlcore::DccsAlgorithm::kAuto;
  std::printf(
      "hint: the paper recommends %s for this support threshold "
      "(DccsAlgorithm::kAuto picks it for you).\n",
      mlcore::AlgorithmName(engine.ResolvedAlgorithm(request)).c_str());
  return 0;
}
