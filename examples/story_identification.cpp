// Story identification in social media (paper Application 2): each layer is
// a snapshot graph of entity co-occurrence in the posts of one time slice;
// a "story" is a group of entities strongly associated across several
// consecutive snapshots. Diversified d-CC search surfaces the k most
// prominent non-overlapping stories in the window.
//
//   ./examples/story_identification [--d=4] [--s=3] [--k=5] [--hours=12]

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dccs/dccs.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

// Synthesises a window of snapshot graphs: a few "stories" (entity groups
// that co-occur densely over a contiguous range of hours) over background
// chatter. Mirrors how [1] (Angel et al.) models real-time stories.
mlcore::PlantedGraph BuildSnapshotWindow(int32_t entities, int32_t hours,
                                         uint64_t seed) {
  mlcore::PlantedGraphConfig config;
  config.num_vertices = entities;
  config.num_layers = hours;
  config.num_communities = 8;
  config.community_size_min = 8;
  config.community_size_max = 20;
  config.all_layers_fraction = 0.1;  // an "evergreen" topic or two
  config.community_layers_min = 3;   // stories persist a few hours
  config.internal_prob_min = 0.6;
  config.internal_prob_max = 0.9;
  config.background_avg_degree = 1.7;
  config.seed = seed;
  return mlcore::GeneratePlanted(config);
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  const auto hours = static_cast<int32_t>(flags.GetInt("hours", 12));
  mlcore::PlantedGraph window = BuildSnapshotWindow(
      static_cast<int32_t>(flags.GetInt("entities", 2000)), hours,
      /*seed=*/20180416);

  mlcore::DccsParams params;
  params.d = static_cast<int>(flags.GetInt("d", 4));
  params.s = static_cast<int>(flags.GetInt("s", 3));
  params.k = static_cast<int>(flags.GetInt("k", 5));

  std::printf("snapshot window: %d entities x %d hourly snapshots, "
              "%lld co-occurrence edges\n",
              window.graph.NumVertices(), window.graph.NumLayers(),
              static_cast<long long>(window.graph.TotalEdges()));

  // One engine per snapshot window: a streaming deployment re-queries the
  // window as posts arrive, amortising preprocessing until the window rolls.
  mlcore::Engine engine(&window.graph);
  mlcore::DccsRequest request{params, mlcore::DccsAlgorithm::kAuto};
  mlcore::DccsResult result = std::move(*engine.Run(request));

  std::printf("top-%d stories (%s, %.1f ms):\n", params.k,
              mlcore::AlgorithmName(engine.ResolvedAlgorithm(request)).c_str(),
              result.stats.total_seconds * 1e3);
  for (size_t i = 0; i < result.cores.size(); ++i) {
    const auto& story = result.cores[i];
    std::string when;
    for (size_t h = 0; h < story.layers.size(); ++h) {
      when += (h ? "," : "") + std::to_string(story.layers[h]) + "h";
    }
    std::printf("  story %zu: %zu entities, trending at [%s]\n", i + 1,
                story.vertices.size(), when.c_str());
  }
  std::printf("coverage: %lld distinct entities across the %zu stories\n",
              static_cast<long long>(result.CoverSize()),
              result.cores.size());

  // Sanity: how many planted stories were recovered (≥80%% of members),
  // and how sharp is the best-match recovery overall?
  int recovered = 0;
  mlcore::VertexSet cover = result.Cover();
  std::vector<mlcore::VertexSet> truth, found;
  for (const auto& community : window.communities) {
    if (static_cast<int>(community.layers.size()) < params.s) continue;
    truth.push_back(community.vertices);
    auto hit = mlcore::IntersectSorted(cover, community.vertices);
    if (hit.size() * 10 >= community.vertices.size() * 8) ++recovered;
  }
  for (const auto& story : result.cores) found.push_back(story.vertices);
  std::printf("%d planted stories recovered; best-match recovery F1 = "
              "%.3f\n",
              recovered, mlcore::CommunityRecoveryScore(truth, found));
  return 0;
}
