// Engine preprocessing-reuse benchmark (not a paper figure): quantifies
// what the mlcore::Engine's cross-query caches (DESIGN.md §5) buy over the
// one-shot SolveDccs path for an online workload that asks many (d, s, k)
// questions of one graph.
//
//   cold   = SolveDccs per query: §IV-C vertex deletion (+ TD index +
//            InitTopK) re-run from scratch every time
//   warm   = repeat queries on one Engine: preprocessing served from the
//            (d, s) cache, so preprocess_seconds collapses to the cache
//            lookup
//   batch  = a k-sweep of requests sharing (d, s) through RunBatch on a
//            multi-worker engine, vs the same sweep run cold sequentially
//
//   ./bench_engine_reuse [--quick] [--scale=F] [--rounds=N] [--json=path]
//
// Expected shape: warm preprocess time orders of magnitude below cold; warm
// totals shrink by the full preprocessing share of the workload (large for
// the preprocessing-dominated regimes of Fig 28).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/engine.h"

namespace {

struct Case {
  const char* dataset;
  mlcore::DccsAlgorithm algorithm;
  int s_from_layers(int l) const {
    return algorithm == mlcore::DccsAlgorithm::kBottomUp ? 3 : l - 2;
  }
};

constexpr Case kCases[] = {
    {"ppi", mlcore::DccsAlgorithm::kBottomUp},
    {"ppi", mlcore::DccsAlgorithm::kTopDown},
    {"wiki", mlcore::DccsAlgorithm::kBottomUp},
    {"wiki", mlcore::DccsAlgorithm::kTopDown},
};

struct Row {
  std::string label;
  int rounds = 0;
  double cold_preprocess = 0.0;  // means, seconds
  double cold_total = 0.0;
  double engine_first_preprocess = 0.0;
  double warm_preprocess = 0.0;
  double warm_total = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const int rounds =
      static_cast<int>(flags.GetInt("rounds", context.quick ? 2 : 5));
  const std::string json_path = flags.GetString("json", "");

  std::vector<Row> rows;
  mlcore::bench::PrintFigureHeader(
      "Engine cross-query preprocessing reuse",
      "warm preprocess_seconds collapses to a cache lookup; cores are "
      "bit-identical to cold runs");
  mlcore::Table table({"case", "cold pre (s)", "fill pre (s)", "warm pre (s)",
                       "pre speedup", "cold total (s)", "warm total (s)",
                       "total speedup"});

  for (const Case& bench_case : kCases) {
    const mlcore::Dataset& dataset = context.Load(bench_case.dataset);
    mlcore::DccsParams params;
    params.s = bench_case.s_from_layers(dataset.graph.NumLayers());

    Row row;
    row.label = std::string(bench_case.dataset) + "/" +
                mlcore::AlgorithmName(bench_case.algorithm);
    row.rounds = rounds;

    // Cold: the one-shot path, preprocessing from scratch per call.
    int64_t cold_cover = 0;
    for (int r = 0; r < rounds; ++r) {
      auto outcome = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                                 bench_case.algorithm);
      row.cold_preprocess += outcome.stats.preprocess_seconds;
      row.cold_total += outcome.stats.total_seconds;
      cold_cover = outcome.cover;
    }
    row.cold_preprocess /= rounds;
    row.cold_total /= rounds;

    // Warm: one Engine, same query repeated. The first call fills the
    // (d, s) cache; every later one skips vertex deletion entirely.
    mlcore::Engine engine(&dataset.graph);
    mlcore::DccsRequest request{params, bench_case.algorithm};
    auto first = engine.Run(request);
    MLCORE_CHECK(first.ok());
    row.engine_first_preprocess = first->stats.preprocess_seconds;
    for (int r = 0; r < rounds; ++r) {
      auto warm = engine.Run(request);
      MLCORE_CHECK(warm.ok());
      MLCORE_CHECK_MSG(warm->CoverSize() == cold_cover,
                       "warm result diverged from cold result");
      row.warm_preprocess += warm->stats.preprocess_seconds;
      row.warm_total += warm->stats.total_seconds;
    }
    row.warm_preprocess /= rounds;
    row.warm_total /= rounds;
    rows.push_back(row);

    table.AddRow({row.label, mlcore::Table::Num(row.cold_preprocess),
                  mlcore::Table::Num(row.engine_first_preprocess),
                  mlcore::Table::Num(row.warm_preprocess),
                  mlcore::Table::Num(row.cold_preprocess /
                                     std::max(row.warm_preprocess, 1e-9)),
                  mlcore::Table::Num(row.cold_total),
                  mlcore::Table::Num(row.warm_total),
                  mlcore::Table::Num(row.cold_total /
                                     std::max(row.warm_total, 1e-9))});
  }
  table.Print();

  // Batch demo: a k-sweep sharing one (d, s) key, fanned out over the
  // engine pool, vs the same sweep cold and sequential.
  const mlcore::Dataset& dataset = context.Load("wiki");
  std::vector<mlcore::DccsRequest> sweep;
  for (int k = 1; k <= (context.quick ? 4 : 8); ++k) {
    mlcore::DccsRequest request;
    request.params.s = 3;
    request.params.k = k;
    request.algorithm = mlcore::DccsAlgorithm::kBottomUp;
    sweep.push_back(request);
  }
  mlcore::WallTimer cold_timer;
  for (const auto& request : sweep) {
    mlcore::bench::RunAlgorithm(dataset.graph, request.params,
                                request.algorithm);
  }
  const double sweep_cold = cold_timer.Seconds();
  mlcore::Engine batch_engine(&dataset.graph,
                              mlcore::Engine::Options{.num_threads = 4});
  mlcore::WallTimer batch_timer;
  auto responses = batch_engine.RunBatch(sweep);
  const double sweep_batch = batch_timer.Seconds();
  for (const auto& response : responses) MLCORE_CHECK(response.ok());
  std::printf(
      "\nk-sweep (%zu requests, shared (d, s)): cold sequential %.3fs, "
      "RunBatch on 4 workers %.3fs (%.2fx)\n",
      sweep.size(), sweep_cold, sweep_batch, sweep_cold / sweep_batch);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"description\": \"bench_engine_reuse: mean preprocess/"
                 "total seconds for cold SolveDccs calls vs repeat queries "
                 "on one mlcore::Engine (DESIGN.md \\u00a75). Warm queries "
                 "serve \\u00a7IV-C preprocessing, the \\u00a7V-C index and "
                 "InitTopK seeds from the (d, s) cache and skip vertex "
                 "deletion entirely; cores are verified bit-identical to "
                 "cold runs.\",\n"
                 "  \"scale\": %.3f,\n  \"rounds\": %d,\n  \"cases\": [\n",
                 context.scale, rounds);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          out,
          "    {\"case\": \"%s\", \"cold_preprocess_s\": %.6f, "
          "\"engine_first_preprocess_s\": %.6f, "
          "\"warm_preprocess_s\": %.6f, \"preprocess_speedup\": %.1f, "
          "\"cold_total_s\": %.6f, \"warm_total_s\": %.6f, "
          "\"total_speedup\": %.2f}%s\n",
          row.label.c_str(), row.cold_preprocess, row.engine_first_preprocess,
          row.warm_preprocess,
          row.cold_preprocess / std::max(row.warm_preprocess, 1e-9),
          row.cold_total, row.warm_total,
          row.cold_total / std::max(row.warm_total, 1e-9),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"k_sweep\": {\"requests\": %zu, "
                 "\"cold_sequential_s\": %.6f, \"run_batch_4_workers_s\": "
                 "%.6f, \"speedup\": %.2f}\n}\n",
                 sweep.size(), sweep_cold, sweep_batch,
                 sweep_cold / sweep_batch);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
