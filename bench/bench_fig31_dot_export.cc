// Fig 31: qualitative comparison of the subgraphs induced by Cov(R_C)
// (BU-DCCS) and Cov(R_Q) (MiMAG) on the Author graph at d = 3.
//
// Exports one Graphviz DOT file per layer colouring vertices:
//   red   = in both covers,
//   green = d-CC cover only,
//   blue  = quasi-clique cover only,
// and prints the class sizes plus internal edge densities. Expected shape
// (paper §VI): green vertices are densely connected to red ones (dense
// portions missed by MiMAG); blue vertices are sparse.

#include <cstdio>
#include <fstream>
#include <map>

#include "bench_common.h"
#include "eval/dot_export.h"
#include "mimag/mimag.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const mlcore::Dataset& author = context.Load("author");

  mlcore::bench::PrintFigureHeader(
      "Fig 31: induced coherent dense subgraphs on author (d=3)",
      "green (d-CC only) vertices densely connected; blue (quasi-clique "
      "only) sparse");

  const int d = 3;
  const int support = author.graph.NumLayers() / 2;

  mlcore::DccsParams params;
  params.d = d;
  params.s = support;
  mlcore::DccsResult bu = BottomUpDccs(author.graph, params);

  mlcore::MimagParams mimag_params;
  mimag_params.gamma = 0.8;
  mimag_params.min_size = d + 1;
  mimag_params.min_support = support;
  mlcore::MimagResult mimag = MineMimag(author.graph, mimag_params);

  mlcore::VertexSet core_cover = bu.Cover();
  mlcore::VertexSet quasi_cover = mimag.Cover();
  mlcore::VertexSet both =
      mlcore::IntersectSorted(core_cover, quasi_cover);

  std::map<mlcore::VertexId, std::string> colors;
  for (mlcore::VertexId v : core_cover) colors[v] = "green";
  for (mlcore::VertexId v : quasi_cover) colors[v] = "blue";
  for (mlcore::VertexId v : both) colors[v] = "red";

  // Edge-density audit per class: how connected is each class to the
  // red backbone (union over layers)?
  auto degree_into = [&](mlcore::VertexId v, const std::string& target) {
    int count = 0;
    for (mlcore::LayerId layer = 0; layer < author.graph.NumLayers();
         ++layer) {
      for (mlcore::VertexId u : author.graph.Neighbors(layer, v)) {
        auto it = colors.find(u);
        if (it != colors.end() && it->second == target) ++count;
      }
    }
    return count;
  };
  double green_to_red = 0, blue_to_red = 0;
  int greens = 0, blues = 0;
  for (const auto& [v, color] : colors) {
    if (color == "green") {
      green_to_red += degree_into(v, "red");
      ++greens;
    } else if (color == "blue") {
      blue_to_red += degree_into(v, "red");
      ++blues;
    }
  }

  std::printf("cover classes: red (both) = %zu, green (d-CC only) = %d, "
              "blue (quasi-clique only) = %d\n",
              both.size(), greens, blues);
  std::printf("avg multi-layer degree into the red backbone: green %.2f, "
              "blue %.2f\n",
              greens ? green_to_red / greens : 0.0,
              blues ? blue_to_red / blues : 0.0);
  std::printf("(paper expectation: green >> blue)\n");

  const std::string out = flags.GetString("out", "fig31_author_layer0.dot");
  std::ofstream file(out);
  file << ExportDot(author.graph, /*layer=*/0, colors, "fig31");
  std::printf("wrote %s (render with: neato -Tpng %s -o fig31.png)\n",
              out.c_str(), out.c_str());
  return 0;
}
