// Async service benchmark (not a paper figure): the cost and the payoff of
// the Engine v2 submission layer (DESIGN.md §7).
//
// Part 1 — checkpoint overhead. The cooperative stop checkpoints
// (subset-lattice nodes, greedy candidate boundaries, preprocess rounds)
// run on every query, cancelled or not. This measures the same search with
// exec.control = nullptr vs an armed (never-firing) control; the target is
// <= 2% on an uncancelled query.
//
// Part 2 — open-loop load. A submitter thread issues requests on a fixed
// arrival clock (open loop: arrivals don't wait for completions) against a
// worker-drained engine, once with a bounded pending queue (admission
// control sheds overload with kResourceExhausted) and once with an
// effectively unbounded queue. Reports p50/p99 latency of served queries,
// throughput, and shed counts: with admission, tail latency stays near the
// queue bound x service time; without, it grows with the whole backlog.
//
//   ./bench_async_load [--quick] [--scale=F] [--rounds=N] [--json=path]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dccs/execution.h"
#include "graph/generators.h"
#include "service/engine.h"

namespace {

// The figure-dataset stand-ins finish their searches in ~1 ms, far too
// fast to resolve a 2% effect; the overhead A/B instead runs on a planted
// graph big enough for multi-ms searches (same generator the cancellation
// tests use, scaled up).
mlcore::MultiLayerGraph OverheadGraph() {
  mlcore::PlantedGraphConfig config;
  config.num_vertices = 6000;
  config.num_layers = 10;
  config.num_communities = 60;
  config.community_size_min = 14;
  config.community_size_max = 40;
  config.seed = 4242;
  return mlcore::GeneratePlanted(config).graph;
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct OverheadRow {
  std::string label;
  double plain_s = 0.0;      // mean search seconds, control = nullptr
  double controlled_s = 0.0; // mean search seconds, armed control
  double overhead_pct = 0.0;
};

// Mean search_seconds over `rounds` runs of one algorithm with shared
// (precomputed) preprocessing, with and without an armed QueryControl.
OverheadRow MeasureOverhead(const mlcore::MultiLayerGraph& graph,
                            const mlcore::DccsParams& params,
                            mlcore::DccsAlgorithm algorithm,
                            const std::string& label, int rounds) {
  mlcore::PreprocessResult preprocess = mlcore::Preprocess(
      graph, params.d, params.s, params.vertex_deletion);
  mlcore::DccSolver solver(graph);
  mlcore::CancellationToken token;  // never cancelled
  // Armed cancellation-only control — what every Engine::Submit attaches:
  // each checkpoint pays one acquire load of the shared flag. (A deadline
  // additionally costs a steady_clock read per checkpoint, only when the
  // caller asked for one.)
  mlcore::QueryControl control =
      mlcore::QueryControl::WithDeadline(token, 0.0);

  OverheadRow row;
  row.label = label;
  auto run_once = [&](const mlcore::QueryControl* exec_control) {
    mlcore::DccsExecution exec;
    exec.preprocess = &preprocess;
    exec.solver = &solver;
    exec.control = exec_control;
    mlcore::DccsResult result;
    switch (algorithm) {
      case mlcore::DccsAlgorithm::kGreedy:
        result = GreedyDccs(graph, params, exec);
        break;
      case mlcore::DccsAlgorithm::kBottomUp:
        result = BottomUpDccs(graph, params, exec);
        break;
      default:
        result = TopDownDccs(graph, params, exec);
        break;
    }
    MLCORE_CHECK_MSG(!result.stats.budget_exhausted,
                     "armed control fired during the overhead benchmark");
    return result.stats.search_seconds;
  };
  // Interleaved A/B pairs + medians, so clock drift and one-off stalls hit
  // both arms alike instead of biasing the ratio.
  run_once(nullptr);
  run_once(&control);  // warmup
  std::vector<double> plain, controlled;
  for (int r = 0; r < rounds; ++r) {
    plain.push_back(run_once(nullptr));
    controlled.push_back(run_once(&control));
  }
  row.plain_s = Median(plain);
  row.controlled_s = Median(controlled);
  row.overhead_pct = 100.0 * (row.controlled_s - row.plain_s) /
                     std::max(row.plain_s, 1e-12);
  return row;
}

struct LoadRow {
  std::string label;
  int requests = 0;
  int served = 0;
  int shed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_qps = 0.0;  // served per wall second
};

// Open-loop run: `total` submissions, one every `interval_ms`, against
// `engine`. Latency = submit -> terminal, measured by a polling collector
// that runs *concurrently* with the submitter (collecting only after all
// submissions would charge every early completion the remainder of the
// submission window); discovery error is bounded by the 100 us poll.
LoadRow RunOpenLoopLoad(mlcore::Engine& engine,
                        const std::vector<mlcore::DccsRequest>& mix,
                        int total, double interval_ms,
                        const std::string& label) {
  using Clock = std::chrono::steady_clock;
  std::vector<mlcore::QueryHandle> handles(static_cast<size_t>(total));
  std::vector<Clock::time_point> submitted(static_cast<size_t>(total));
  std::vector<double> latency_ms(static_cast<size_t>(total), -1.0);
  std::vector<bool> resolved(static_cast<size_t>(total), false);
  std::atomic<int> submitted_count{0};

  mlcore::WallTimer wall;
  const Clock::time_point t0 = Clock::now();
  std::thread submitter([&] {
    for (int i = 0; i < total; ++i) {
      // Open loop: the i-th arrival happens at t0 + i*interval regardless
      // of how far behind service is.
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(i * interval_ms)));
      const auto slot = static_cast<size_t>(i);
      submitted[slot] = Clock::now();
      handles[slot] = engine.Submit(mix[slot % mix.size()]);
      submitted_count.store(i + 1, std::memory_order_release);
    }
  });

  LoadRow row;
  row.label = label;
  row.requests = total;
  // Collect concurrently: poll every handle the submitter has published.
  int outstanding = total;
  while (outstanding > 0) {
    const int visible = submitted_count.load(std::memory_order_acquire);
    for (int i = 0; i < visible; ++i) {
      const auto slot = static_cast<size_t>(i);
      if (resolved[slot]) continue;
      const mlcore::Expected<mlcore::DccsResult>* terminal =
          handles[slot].TryGet();
      if (terminal == nullptr) continue;
      resolved[slot] = true;
      --outstanding;
      if (terminal->ok()) {
        latency_ms[slot] = std::chrono::duration<double, std::milli>(
                               Clock::now() - submitted[slot])
                               .count();
      } else {
        MLCORE_CHECK(terminal->status().code ==
                     mlcore::StatusCode::kResourceExhausted);
        ++row.shed;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  submitter.join();
  const double wall_s = wall.Seconds();

  std::vector<double> served;
  for (double ms : latency_ms) {
    if (ms >= 0) served.push_back(ms);
  }
  std::sort(served.begin(), served.end());
  row.served = static_cast<int>(served.size());
  if (!served.empty()) {
    row.p50_ms = served[served.size() / 2];
    row.p99_ms = served[std::min(served.size() - 1,
                                 (served.size() * 99) / 100)];
  }
  row.throughput_qps = row.served / std::max(wall_s, 1e-9);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const int rounds =
      static_cast<int>(flags.GetInt("rounds", context.quick ? 3 : 8));
  const std::string json_path = flags.GetString("json", "");

  mlcore::bench::PrintFigureHeader(
      "Engine v2 async load: checkpoint overhead + admission control",
      "uncancelled checkpoint overhead <= 2%; bounded queue keeps p99 flat "
      "and sheds overload, unbounded queue's p99 grows with the backlog");

  // --- Part 1: checkpoint overhead on uncancelled queries. ---
  const mlcore::Dataset& dataset = context.Load("ppi");
  std::vector<OverheadRow> overhead;
  {
    const mlcore::MultiLayerGraph overhead_graph = OverheadGraph();
    mlcore::DccsParams params;
    params.d = 2;
    params.k = 10;
    params.s = 7;
    overhead.push_back(MeasureOverhead(overhead_graph, params,
                                       mlcore::DccsAlgorithm::kBottomUp,
                                       "planted/BU d=2 s=7", rounds));
    params.s = 3;
    overhead.push_back(MeasureOverhead(overhead_graph, params,
                                       mlcore::DccsAlgorithm::kGreedy,
                                       "planted/GD d=2 s=3", rounds));
    params.s = 5;
    overhead.push_back(MeasureOverhead(overhead_graph, params,
                                       mlcore::DccsAlgorithm::kTopDown,
                                       "planted/TD d=2 s=5", rounds));
  }
  mlcore::Table overhead_table(
      {"case", "plain search (s)", "checkpointed (s)", "overhead %"});
  for (const OverheadRow& row : overhead) {
    overhead_table.AddRow({row.label, mlcore::Table::Num(row.plain_s),
                           mlcore::Table::Num(row.controlled_s),
                           mlcore::Table::Num(row.overhead_pct)});
  }
  overhead_table.Print();

  // --- Part 2: open-loop load, bounded vs unbounded admission. ---
  // Repeat-key queries so steady state serves from the preprocessing cache
  // (the online regime the engine is built for), arrivals ~2x faster than
  // service so the queue actually builds up.
  std::vector<mlcore::DccsRequest> mix;
  for (int k = 2; k <= 5; ++k) {
    mlcore::DccsRequest request;
    request.params.d = 4;
    request.params.s = 3;
    request.params.k = k;
    request.algorithm = mlcore::DccsAlgorithm::kBottomUp;
    mix.push_back(request);
  }
  const int total = context.quick ? 60 : 200;

  // Calibrate the mean warm service time to set an overloading arrival rate.
  double service_ms;
  {
    mlcore::Engine probe(&dataset.graph);
    probe.Run(mix[0]);  // warm the (d, s) cache
    mlcore::WallTimer timer;
    const int probes = 20;
    for (int i = 0; i < probes; ++i) probe.Run(mix[i % mix.size()]);
    service_ms = timer.Seconds() * 1e3 / probes;
  }
  const double interval_ms = std::max(0.05, service_ms / 2.0);  // ~2x overload

  std::vector<LoadRow> load_rows;
  {
    mlcore::Engine bounded(&dataset.graph,
                           mlcore::Engine::Options{.query_workers = 2,
                                                   .max_pending_queries = 8});
    bounded.Run(mix[0]);  // warm cache so the load run is steady-state
    load_rows.push_back(RunOpenLoopLoad(bounded, mix, total, interval_ms,
                                        "bounded (admission, 8 pending)"));
  }
  {
    mlcore::Engine unbounded(
        &dataset.graph,
        mlcore::Engine::Options{.query_workers = 2,
                                .max_pending_queries = 1 << 20});
    unbounded.Run(mix[0]);
    load_rows.push_back(RunOpenLoopLoad(unbounded, mix, total, interval_ms,
                                        "unbounded (no admission)"));
  }

  std::printf("\nopen loop: %d requests, one every %.2f ms "
              "(mean warm service %.2f ms, 2 query workers)\n",
              total, interval_ms, service_ms);
  mlcore::Table load_table({"config", "served", "shed", "p50 (ms)",
                            "p99 (ms)", "throughput (q/s)"});
  for (const LoadRow& row : load_rows) {
    load_table.AddRow({row.label,
                       mlcore::Table::Int(row.served),
                       mlcore::Table::Int(row.shed),
                       mlcore::Table::Num(row.p50_ms),
                       mlcore::Table::Num(row.p99_ms),
                       mlcore::Table::Num(row.throughput_qps)});
  }
  load_table.Print();

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"description\": \"bench_async_load: (1) overhead of the "
        "cooperative cancellation/deadline checkpoints on uncancelled "
        "searches (armed never-firing QueryControl vs none; target <= 2%%), "
        "(2) open-loop concurrent load through Engine::Submit at ~2x the "
        "warm service rate, with a bounded admission queue (sheds overload "
        "as kResourceExhausted) vs an effectively unbounded one.\",\n"
        "  \"scale\": %.3f,\n  \"rounds\": %d,\n"
        "  \"checkpoint_overhead\": [\n",
        context.scale, rounds);
    for (size_t i = 0; i < overhead.size(); ++i) {
      const OverheadRow& row = overhead[i];
      std::fprintf(out,
                   "    {\"case\": \"%s\", \"plain_search_s\": %.6f, "
                   "\"checkpointed_search_s\": %.6f, "
                   "\"overhead_pct\": %.2f}%s\n",
                   row.label.c_str(), row.plain_s, row.controlled_s,
                   row.overhead_pct, i + 1 < overhead.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"open_loop\": {\"requests\": %d, "
                 "\"arrival_interval_ms\": %.3f, "
                 "\"warm_service_ms\": %.3f, \"configs\": [\n",
                 total, interval_ms, service_ms);
    for (size_t i = 0; i < load_rows.size(); ++i) {
      const LoadRow& row = load_rows[i];
      std::fprintf(out,
                   "    {\"config\": \"%s\", \"served\": %d, \"shed\": %d, "
                   "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                   "\"throughput_qps\": %.1f}%s\n",
                   row.label.c_str(), row.served, row.shed, row.p50_ms,
                   row.p99_ms, row.throughput_qps,
                   i + 1 < load_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]}\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
