// Hot-kernel micro-benchmarks (google-benchmark). Not a paper figure —
// engineering aid for the peeling, coverage and index kernels that
// dominate the DCCS algorithms' runtime.

#include <benchmark/benchmark.h>

#include "core/dcc.h"
#include "core/dcore.h"
#include "dccs/cover.h"
#include "dccs/dccs.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

const mlcore::MultiLayerGraph& BenchGraph() {
  static const mlcore::MultiLayerGraph* graph = [] {
    mlcore::PlantedGraphConfig config;
    config.num_vertices = 20000;
    config.num_layers = 8;
    config.num_communities = 20;
    config.community_size_min = 20;
    config.community_size_max = 60;
    config.seed = 99;
    return new mlcore::MultiLayerGraph(
        mlcore::GeneratePlanted(config).graph);
  }();
  return *graph;
}

void BM_DCore(benchmark::State& state) {
  const auto& graph = BenchGraph();
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlcore::DCore(graph, 0, d));
  }
}
BENCHMARK(BM_DCore)->Arg(2)->Arg(4)->Arg(6);

void BM_CoreDecomposition(benchmark::State& state) {
  const auto& graph = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlcore::CoreDecomposition(graph, 0));
  }
}
BENCHMARK(BM_CoreDecomposition);

void BM_DccQueue(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::DccSolver solver(graph);
  mlcore::VertexSet all = mlcore::AllVertices(graph);
  mlcore::LayerSet layers = {0, 2, 4, 6};
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.Compute(layers, d, all, mlcore::DccEngine::kQueue));
  }
}
BENCHMARK(BM_DccQueue)->Arg(2)->Arg(4);

void BM_DccBins(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::DccSolver solver(graph);
  mlcore::VertexSet all = mlcore::AllVertices(graph);
  mlcore::LayerSet layers = {0, 2, 4, 6};
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.Compute(layers, d, all, mlcore::DccEngine::kBins));
  }
}
BENCHMARK(BM_DccBins)->Arg(2)->Arg(4);

// The DCCS searches issue thousands of dCC calls over *small* scopes (a
// community-sized candidate inside a 20k-vertex graph); per-call setup cost
// dominates there, not peeling itself. 64 random community-sized scopes,
// |L| = 2, cycled per iteration.
std::vector<mlcore::VertexSet> ScopedWorkload() {
  mlcore::Rng rng(41);
  std::vector<mlcore::VertexSet> scopes;
  const int n = BenchGraph().NumVertices();
  for (int i = 0; i < 64; ++i) {
    mlcore::VertexSet scope;
    int size = static_cast<int>(rng.Uniform(40, 400));
    for (int j = 0; j < size; ++j) {
      scope.push_back(static_cast<mlcore::VertexId>(rng.Uniform(0, n - 1)));
    }
    std::sort(scope.begin(), scope.end());
    scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
    scopes.push_back(std::move(scope));
  }
  return scopes;
}

void BM_DccQueueScoped(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::DccSolver solver(graph);
  const std::vector<mlcore::VertexSet> scopes = ScopedWorkload();
  mlcore::LayerSet layers = {1, 5};
  const int d = static_cast<int>(state.range(0));
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.Compute(layers, d, scopes[next], mlcore::DccEngine::kQueue));
    next = (next + 1) % scopes.size();
  }
}
BENCHMARK(BM_DccQueueScoped)->Arg(2)->Arg(4);

void BM_DccBinsScoped(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::DccSolver solver(graph);
  const std::vector<mlcore::VertexSet> scopes = ScopedWorkload();
  mlcore::LayerSet layers = {1, 5};
  const int d = static_cast<int>(state.range(0));
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.Compute(layers, d, scopes[next], mlcore::DccEngine::kBins));
    next = (next + 1) % scopes.size();
  }
}
BENCHMARK(BM_DccBinsScoped)->Arg(2)->Arg(4);

// Fully allocation-free variant: the caller-owned result buffer is reused
// across calls (the driver-loop pattern of the BU/TD searches).
void BM_DccComputeInto(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::DccSolver solver(graph);
  const std::vector<mlcore::VertexSet> scopes = ScopedWorkload();
  mlcore::LayerSet layers = {1, 5};
  mlcore::VertexSet out;
  const int d = static_cast<int>(state.range(0));
  size_t next = 0;
  for (auto _ : state) {
    solver.Compute(layers, d, scopes[next], &out, mlcore::DccEngine::kQueue);
    benchmark::DoNotOptimize(out.data());
    next = (next + 1) % scopes.size();
  }
}
BENCHMARK(BM_DccComputeInto)->Arg(2)->Arg(4);

void BM_GreedyDccs(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::DccsParams params;
  params.d = 4;
  params.s = 3;
  params.k = 10;
  params.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlcore::GreedyDccs(graph, params));
  }
}
BENCHMARK(BM_GreedyDccs)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CoverageUpdate(benchmark::State& state) {
  // Pre-generate a stream of pseudo-random candidate sets.
  mlcore::Rng rng(7);
  std::vector<mlcore::VertexSet> candidates;
  for (int i = 0; i < 512; ++i) {
    mlcore::VertexSet candidate;
    int size = static_cast<int>(rng.Uniform(5, 120));
    for (int j = 0; j < size; ++j) {
      candidate.push_back(static_cast<mlcore::VertexId>(
          rng.Uniform(0, 5000)));
    }
    std::sort(candidate.begin(), candidate.end());
    candidate.erase(std::unique(candidate.begin(), candidate.end()),
                    candidate.end());
    candidates.push_back(std::move(candidate));
  }
  mlcore::LayerSet layers = {0, 1, 2};
  for (auto _ : state) {
    mlcore::CoverageIndex index(10);
    for (const auto& candidate : candidates) {
      layers[0] = (layers[0] + 1) % 64;  // distinct layer keys
      benchmark::DoNotOptimize(index.Update(candidate, layers));
    }
  }
}
BENCHMARK(BM_CoverageUpdate);

void BM_Preprocess(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mlcore::Preprocess(graph, /*d=*/4, /*s=*/3, true, &pool));
  }
}
BENCHMARK(BM_Preprocess)->Arg(1)->Arg(4);

void BM_VertexIndexBuild(benchmark::State& state) {
  const auto& graph = BenchGraph();
  mlcore::VertexSet all = mlcore::AllVertices(graph);
  for (auto _ : state) {
    mlcore::VertexLevelIndex index(graph, 4, all);
    benchmark::DoNotOptimize(index.num_levels());
  }
}
BENCHMARK(BM_VertexIndexBuild);

}  // namespace

BENCHMARK_MAIN();
