// Fig 22: time vs k, small s (GD vs BU; Wiki, English).
// Fig 23: time vs k, large s (GD vs TD; Wiki, English).
// Fig 24: cover size vs k, small s (GD vs BU).
// Fig 25: cover size vs k, large s (GD vs TD).
//
// Expected shapes (paper §VI): GD-DCCS time grows with k (selection is
// proportional to k) while BU/TD times are insensitive to k; cover size
// grows with k but flattens past k≈20, showing heavy overlap among d-CCs.

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  std::vector<int> k_values = context.quick
                                  ? std::vector<int>{5, 15, 25}
                                  : std::vector<int>{5, 10, 15, 20, 25};

  for (const char* name : {"wiki", "english"}) {
    const mlcore::Dataset& dataset = context.Load(name);

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 22 + Fig 24: vary k at small s=3 on ") + name,
        "GD time grows with k; BU time k-insensitive; cover grows, "
        "flattening for k>=20");
    mlcore::Table small_table({"k", "GD time (s)", "BU time (s)",
                               "GD |Cov|", "BU |Cov|"});
    for (int k : k_values) {
      mlcore::DccsParams params;
      params.s = 3;
      params.k = k;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      auto bu = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kBottomUp);
      small_table.AddRow(
          {mlcore::Table::Int(k), mlcore::Table::Num(gd.seconds),
           mlcore::Table::Num(bu.seconds), mlcore::Table::Int(gd.cover),
           mlcore::Table::Int(bu.cover)});
    }
    small_table.Print();
    std::printf("\n");

    const int large_s = dataset.graph.NumLayers() - 2;
    mlcore::bench::PrintFigureHeader(
        std::string("Fig 23 + Fig 25: vary k at large s=l-2 on ") + name,
        "GD time grows with k; TD time k-insensitive; cover grows with k");
    mlcore::Table large_table({"k", "GD time (s)", "TD time (s)",
                               "GD |Cov|", "TD |Cov|"});
    for (int k : k_values) {
      mlcore::DccsParams params;
      params.s = large_s;
      params.k = k;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      auto td = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kTopDown);
      large_table.AddRow(
          {mlcore::Table::Int(k), mlcore::Table::Num(gd.seconds),
           mlcore::Table::Num(td.seconds), mlcore::Table::Int(gd.cover),
           mlcore::Table::Int(td.cover)});
    }
    large_table.Print();
    std::printf("\n");
  }
  return 0;
}
