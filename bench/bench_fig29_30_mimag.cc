// Fig 29: comparison between MiMAG and BU-DCCS on PPI and Author:
//         execution time, cover size, precision, recall, F1.
// Fig 30: distribution of |Q ∩ Cov(R_C)| — how much of each quasi-clique
//         is contained in the d-CC cover, grouped by |Q|.
//
// Protocol (paper §VI): γ = 0.8, s = l/2, k = 10, d ∈ {2, 3, 4}, and the
// MiMAG minimum cluster size d' = d + 1, making the per-vertex degree
// constraints of the two methods equal (⌈γ·d⌉ = d for d ≤ 4 at γ = 0.8).
//
// Expected shapes: BU-DCCS orders of magnitude faster than MiMAG; covers
// overlap significantly (recall 70%+); most quasi-cliques are entirely
// contained in the d-CC cover (mass concentrated at j = |Q|).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/metrics.h"
#include "mimag/mimag.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  mlcore::bench::PrintFigureHeader(
      "Fig 29: MiMAG vs BU-DCCS (gamma=0.8, s=l/2, k=10, d'=d+1)",
      "BU-DCCS ~100x faster; recall 0.7+; quasi-cliques largely inside "
      "d-CCs");

  std::vector<int> d_values =
      context.quick ? std::vector<int>{3} : std::vector<int>{2, 3, 4};

  for (const char* name : {"ppi", "author"}) {
    const mlcore::Dataset& dataset = context.Load(name);
    const int support = dataset.graph.NumLayers() / 2;

    mlcore::Table table({"graph", "d", "algorithm", "time (s)", "size",
                         "precision", "recall", "F1"});
    for (int d : d_values) {
      mlcore::MimagParams mimag_params;
      mimag_params.gamma = 0.8;
      mimag_params.min_size = d + 1;
      mimag_params.min_support = support;
      mimag_params.max_nodes =
          flags.GetInt("mimag_nodes", context.quick ? 200'000 : 2'000'000);
      mlcore::MimagResult mimag = MineMimag(dataset.graph, mimag_params);

      mlcore::DccsParams params;
      params.d = d;
      params.s = support;
      params.k = 10;
      mlcore::DccsResult bu =
          BottomUpDccs(dataset.graph, params);

      mlcore::VertexSet quasi_cover = mimag.Cover();
      mlcore::VertexSet core_cover = bu.Cover();
      mlcore::OverlapMetrics metrics =
          mlcore::CoverOverlap(quasi_cover, core_cover);

      table.AddRow({name, mlcore::Table::Int(d),
                    std::string("MiMAG") +
                        (mimag.budget_exhausted ? "*" : ""),
                    mlcore::Table::Num(mimag.seconds),
                    mlcore::Table::Int(
                        static_cast<long long>(quasi_cover.size())),
                    mlcore::Table::Num(metrics.precision),
                    mlcore::Table::Num(metrics.recall),
                    mlcore::Table::Num(metrics.f1)});
      table.AddRow({name, mlcore::Table::Int(d), "BU-DCCS",
                    mlcore::Table::Num(bu.stats.total_seconds),
                    mlcore::Table::Int(
                        static_cast<long long>(core_cover.size())),
                    "", "", ""});

      // Fig 30 for this (graph, d): containment of the quasi-cliques of
      // size |Q| = d' .. d'+2 in the d-CC cover.
      if (d == 3 || context.quick) {
        std::printf("\nFig 30 data (%s, d=%d): distribution of "
                    "|Q ∩ Cov(Rc)| per quasi-clique size\n",
                    name, d);
        std::vector<mlcore::VertexSet> cliques;
        for (const auto& cluster : mimag.clusters) {
          cliques.push_back(cluster.vertices);
        }
        auto distribution =
            mlcore::ContainmentDistribution(cliques, core_cover);
        for (const auto& [size, fractions] : distribution) {
          std::printf("  |Q|=%d:", size);
          for (size_t j = 0; j < fractions.size(); ++j) {
            std::printf(" j=%zu:%.3f", j, fractions[j]);
          }
          std::printf("\n");
        }
        std::printf("  (paper: mass concentrated at j = |Q| — most "
                    "quasi-cliques fully inside the d-CC cover)\n\n");
      }
    }
    table.Print();
    std::printf("* = MiMAG stopped at its node budget (its search tree is "
                "2^|V|; see DESIGN.md)\n\n");
  }
  return 0;
}
