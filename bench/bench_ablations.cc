// Ablations of mlcore's own design choices (not a paper figure; DESIGN.md
// §3 calls these out):
//
//   1. dCC peeling engine: Appendix-B bin arrays vs cascading queue.
//   2. TD-DCCS RefineC: index-based two-pass search (Lemma 8 + Lemma 9)
//      vs the reference path (Lemma 8 scope + plain peeling).
//
// Both pairs must return identical results; the tables report the time
// trade-off on the evaluation datasets.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  mlcore::bench::PrintFigureHeader(
      "Ablation 1: dCC engine (queue vs Appendix-B bins), BU-DCCS s=3",
      "identical covers; comparable times (same asymptotics)");
  mlcore::Table engine_table({"graph", "queue (s)", "bins (s)",
                              "cover equal"});
  for (const char* name : {"german", "wiki", "english"}) {
    const mlcore::Dataset& dataset = context.Load(name);
    mlcore::DccsParams params;
    params.s = 3;
    params.dcc_engine = mlcore::DccEngine::kQueue;
    auto queue_run = mlcore::bench::RunAlgorithm(
        dataset.graph, params, mlcore::DccsAlgorithm::kBottomUp);
    params.dcc_engine = mlcore::DccEngine::kBins;
    auto bins_run = mlcore::bench::RunAlgorithm(
        dataset.graph, params, mlcore::DccsAlgorithm::kBottomUp);
    engine_table.AddRow({name, mlcore::Table::Num(queue_run.seconds),
                         mlcore::Table::Num(bins_run.seconds),
                         queue_run.cover == bins_run.cover ? "yes" : "NO"});
  }
  engine_table.Print();
  std::printf("\n");

  mlcore::bench::PrintFigureHeader(
      "Ablation 2: TD-DCCS RefineC (index search vs reference peel), s=l-2",
      "identical covers; the index search skips chain-unreachable vertices");
  mlcore::Table refinec_table({"graph", "indexed (s)", "reference (s)",
                               "cover equal"});
  for (const char* name : {"german", "wiki", "english"}) {
    const mlcore::Dataset& dataset = context.Load(name);
    mlcore::DccsParams params;
    params.s = dataset.graph.NumLayers() - 2;
    params.use_index_refinec = true;
    auto indexed = mlcore::bench::RunAlgorithm(
        dataset.graph, params, mlcore::DccsAlgorithm::kTopDown);
    params.use_index_refinec = false;
    auto reference = mlcore::bench::RunAlgorithm(
        dataset.graph, params, mlcore::DccsAlgorithm::kTopDown);
    refinec_table.AddRow({name, mlcore::Table::Num(indexed.seconds),
                          mlcore::Table::Num(reference.seconds),
                          indexed.cover == reference.cover ? "yes" : "NO"});
  }
  refinec_table.Print();
  return 0;
}
