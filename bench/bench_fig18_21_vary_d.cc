// Fig 18: time vs d, small s (GD vs BU; German, English).
// Fig 19: time vs d, large s (GD vs TD; German, English).
// Fig 20: cover size vs d, small s (GD vs BU).
// Fig 21: cover size vs d, large s (GD vs TD).
//
// Expected shapes (paper §VI): both time and cover size decrease as d
// grows (Property 2 shrinks the d-CCs; Lemma 1 shrinks the scopes); the
// search algorithms stay well below GD-DCCS throughout.

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  // Paper range is d ∈ {2..6} (Fig 13). The synthetic stand-ins plant
  // communities whose internal min-degree floor sits above 6, so the
  // paper's gradual decline flattens there; --extended_d sweeps far enough
  // to cross the planted density floor and expose the full decline.
  std::vector<int> d_values =
      context.quick ? std::vector<int>{2, 4, 6} : std::vector<int>{2, 3, 4,
                                                                   5, 6};
  if (flags.GetBool("extended_d", false)) {
    d_values = {2, 4, 6, 8, 10, 12, 14, 16};
  }

  for (const char* name : {"german", "english"}) {
    const mlcore::Dataset& dataset = context.Load(name);

    // --- Small s (Figs 18 and 20): s = 3 per Fig 13. ---
    mlcore::bench::PrintFigureHeader(
        std::string("Fig 18 + Fig 20: vary d at small s=3 on ") + name,
        "time and cover decrease with d; BU-DCCS well below GD-DCCS");
    mlcore::Table small_table({"d", "GD time (s)", "BU time (s)",
                               "GD |Cov|", "BU |Cov|"});
    for (int d : d_values) {
      mlcore::DccsParams params;
      params.d = d;
      params.s = 3;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      auto bu = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kBottomUp);
      small_table.AddRow(
          {mlcore::Table::Int(d), mlcore::Table::Num(gd.seconds),
           mlcore::Table::Num(bu.seconds), mlcore::Table::Int(gd.cover),
           mlcore::Table::Int(bu.cover)});
    }
    small_table.Print();
    std::printf("\n");

    // --- Large s (Figs 19 and 21): s = l - 2 per Fig 13. ---
    const int large_s = dataset.graph.NumLayers() - 2;
    mlcore::bench::PrintFigureHeader(
        std::string("Fig 19 + Fig 21: vary d at large s=l-2 on ") + name,
        "time and cover decrease with d; TD-DCCS well below GD-DCCS");
    mlcore::Table large_table({"d", "GD time (s)", "TD time (s)",
                               "GD |Cov|", "TD |Cov|"});
    for (int d : d_values) {
      mlcore::DccsParams params;
      params.d = d;
      params.s = large_s;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      auto td = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kTopDown);
      large_table.AddRow(
          {mlcore::Table::Int(d), mlcore::Table::Num(gd.seconds),
           mlcore::Table::Num(td.seconds), mlcore::Table::Int(gd.cover),
           mlcore::Table::Int(td.cover)});
    }
    large_table.Print();
    std::printf("\n");
  }
  return 0;
}
