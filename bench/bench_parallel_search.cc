// Intra-query parallel lattice search (DESIGN.md §10): single-query BU/TD
// speedup vs search_threads on the Fig 26/27 "stack" graphs.
//
//   ./bench_parallel_search [--quick] [--scale=F] [--repeats=N]
//       [--json=path]          (default BENCH_parallel_search.json)
//
// For each graph the sequential search (search_threads = 1) is the
// baseline; every parallel run is verified bit-identical to it (cover and
// committed candidate count — the DESIGN.md §10 contract) before its
// timing is reported. Speedups are on search_seconds: preprocessing is a
// different (already parallel) stage, and the engine serves it from cache
// in steady state anyway. `spec` is SearchStats::speculative_evals — the
// work wasted to stale bounds, the price of the speedup.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/sampling.h"

namespace {

struct Point {
  int threads = 1;
  double search_s = 0.0;
  double total_s = 0.0;
  double speedup = 1.0;
  int64_t speculative = 0;
};

struct Curve {
  std::string graph;
  std::string algorithm;
  int s = 0;
  std::vector<Point> points;
};

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const int repeats =
      static_cast<int>(flags.GetInt("repeats", context.quick ? 1 : 3));
  const std::string json_path =
      flags.GetString("json", "BENCH_parallel_search.json");

  const mlcore::Dataset& stack = context.Load("stack");
  constexpr uint64_t kSampleSeed = 20180417;  // the Fig 26/27 sampling seed

  // The two Fig 26/27 graph families: a vertex sample (Fig 26) and a layer
  // sample (Fig 27) of stack.
  struct GraphCase {
    std::string name;
    mlcore::MultiLayerGraph graph;
  };
  std::vector<GraphCase> graphs;
  graphs.push_back({"stack_p0.6",
                    mlcore::SampleVertices(stack.graph, 0.6, kSampleSeed)});
  graphs.push_back({"stack_q0.8",
                    mlcore::SampleLayers(stack.graph, 0.8, kSampleSeed)});

  const std::vector<int> thread_sweep =
      context.quick ? std::vector<int>{1, 2, 8}
                    : std::vector<int>{1, 2, 4, 8};

  mlcore::bench::PrintFigureHeader(
      "Parallel lattice search: single-query speedup vs search_threads",
      "BU >= 2.5x at 8 threads; results bit-identical at every point");

  std::vector<Curve> curves;
  bool identical = true;
  for (const GraphCase& gc : graphs) {
    const int l = gc.graph.NumLayers();
    struct AlgoCase {
      mlcore::DccsAlgorithm algorithm;
      std::string label;
      int s;
    };
    const std::vector<AlgoCase> algos = {
        {mlcore::DccsAlgorithm::kBottomUp, "BU", std::min(3, l)},
        {mlcore::DccsAlgorithm::kTopDown, "TD", std::max(1, l - 2)},
    };
    for (const AlgoCase& ac : algos) {
      mlcore::DccsParams params;
      params.s = ac.s;

      Curve curve;
      curve.graph = gc.name;
      curve.algorithm = ac.label;
      curve.s = ac.s;

      mlcore::Table table({"threads", "search (s)", "total (s)", "speedup",
                           "speculative evals"});
      double baseline_search = 0.0;
      int64_t baseline_cover = 0;
      int64_t baseline_candidates = 0;
      for (int threads : thread_sweep) {
        params.search_threads = threads;
        // Best-of-repeats: per-point noise would otherwise dominate the
        // small quick-mode graphs.
        mlcore::bench::RunOutcome best;
        for (int r = 0; r < repeats; ++r) {
          mlcore::bench::RunOutcome outcome =
              mlcore::bench::RunAlgorithm(gc.graph, params, ac.algorithm);
          if (r == 0 ||
              outcome.stats.search_seconds < best.stats.search_seconds) {
            best = outcome;
          }
          if (threads == 1) {
            baseline_cover = outcome.cover;
            baseline_candidates = outcome.stats.candidates_generated;
          } else if (outcome.cover != baseline_cover ||
                     outcome.stats.candidates_generated !=
                         baseline_candidates) {
            identical = false;
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %s %s @ %d threads\n",
                         gc.name.c_str(), ac.label.c_str(), threads);
          }
        }
        if (threads == 1) baseline_search = best.stats.search_seconds;
        Point point;
        point.threads = threads;
        point.search_s = best.stats.search_seconds;
        point.total_s = best.stats.total_seconds;
        point.speedup =
            baseline_search / std::max(best.stats.search_seconds, 1e-9);
        point.speculative = best.stats.speculative_evals;
        curve.points.push_back(point);
        table.AddRow({mlcore::Table::Int(threads),
                      mlcore::Table::Num(point.search_s),
                      mlcore::Table::Num(point.total_s),
                      mlcore::Table::Num(point.speedup, 2),
                      mlcore::Table::Int(point.speculative)});
      }
      std::printf("%s  %s  s=%d\n", gc.name.c_str(), ac.label.c_str(),
                  ac.s);
      table.Print();
      std::printf("\n");
      curves.push_back(std::move(curve));
    }
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"description\": \"bench_parallel_search: single-query BU/TD "
        "search-phase speedup vs DccsParams::search_threads on the Fig "
        "26/27 stack samples (DESIGN.md \\u00a710). Every parallel run is "
        "verified bit-identical to the sequential baseline; "
        "speculative_evals is the wasted work the speedup costs.\",\n"
        "  \"scale\": %.3f,\n  \"repeats\": %d,\n"
        "  \"results_identical\": %s,\n  \"curves\": [\n",
        context.scale, repeats, identical ? "true" : "false");
    for (size_t c = 0; c < curves.size(); ++c) {
      const Curve& curve = curves[c];
      std::fprintf(out,
                   "    {\"graph\": \"%s\", \"algorithm\": \"%s\", "
                   "\"s\": %d, \"points\": [\n",
                   curve.graph.c_str(), curve.algorithm.c_str(), curve.s);
      for (size_t i = 0; i < curve.points.size(); ++i) {
        const Point& p = curve.points[i];
        std::fprintf(out,
                     "      {\"threads\": %d, \"search_s\": %.6f, "
                     "\"total_s\": %.6f, \"speedup\": %.3f, "
                     "\"speculative_evals\": %lld}%s\n",
                     p.threads, p.search_s, p.total_s, p.speedup,
                     static_cast<long long>(p.speculative),
                     i + 1 < curve.points.size() ? "," : "");
      }
      std::fprintf(out, "    ]}%s\n", c + 1 < curves.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
}
