// Fig 28: effects of the preprocessing methods (§IV-C) on BU-DCCS (small s)
// and TD-DCCS (large s) over Wiki and English.
//
//   No-VD  = vertex deletion disabled
//   No-SL  = layer sorting disabled
//   No-IR  = result initialisation (InitTopK) disabled
//   No-Pre = all three disabled
//
// Expected shape (paper §VI): every preprocessing method reduces execution
// time; No-Pre is the slowest configuration; result initialisation matters
// more for BU-DCCS than TD-DCCS.

#include <cstdio>

#include "bench_common.h"

namespace {

struct Variant {
  const char* label;
  bool vertex_deletion;
  bool sort_layers;
  bool init_result;
};

constexpr Variant kVariants[] = {
    {"full", true, true, true},    {"No-SL", true, false, true},
    {"No-IR", true, true, false},  {"No-VD", false, true, true},
    {"No-Pre", false, false, false},
};

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  for (const char* name : {"wiki", "english"}) {
    const mlcore::Dataset& dataset = context.Load(name);

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 28(a): preprocessing ablation, BU-DCCS s=3 on ") +
            name,
        "every preprocessing method speeds BU-DCCS up; No-Pre slowest");
    mlcore::Table bu_table({"variant", "time (s)", "|Cov|", "nodes visited"});
    for (const Variant& variant : kVariants) {
      mlcore::DccsParams params;
      params.s = 3;
      params.vertex_deletion = variant.vertex_deletion;
      params.sort_layers = variant.sort_layers;
      params.init_result = variant.init_result;
      auto outcome = mlcore::bench::RunAlgorithm(
          dataset.graph, params, mlcore::DccsAlgorithm::kBottomUp);
      bu_table.AddRow({variant.label, mlcore::Table::Num(outcome.seconds),
                       mlcore::Table::Int(outcome.cover),
                       mlcore::Table::Int(outcome.stats.nodes_visited)});
    }
    bu_table.Print();
    std::printf("\n");

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 28(b): preprocessing ablation, TD-DCCS s=l-2 on ") +
            name,
        "every preprocessing method speeds TD-DCCS up; IR matters less "
        "than for BU-DCCS");
    mlcore::Table td_table({"variant", "time (s)", "|Cov|", "nodes visited"});
    for (const Variant& variant : kVariants) {
      mlcore::DccsParams params;
      params.s = dataset.graph.NumLayers() - 2;
      params.vertex_deletion = variant.vertex_deletion;
      params.sort_layers = variant.sort_layers;
      params.init_result = variant.init_result;
      auto outcome = mlcore::bench::RunAlgorithm(
          dataset.graph, params, mlcore::DccsAlgorithm::kTopDown);
      td_table.AddRow({variant.label, mlcore::Table::Num(outcome.seconds),
                       mlcore::Table::Int(outcome.cover),
                       mlcore::Table::Int(outcome.stats.nodes_visited)});
    }
    td_table.Print();
    std::printf("\n");
  }
  return 0;
}
