#ifndef MLCORE_BENCH_BENCH_COMMON_H_
#define MLCORE_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dccs/dccs.h"
#include "graph/datasets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "store/update.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timing.h"

namespace mlcore::bench {

/// Shared harness context for the figure-reproduction binaries.
///
/// Process-wide default for DccsParams::search_threads, set from the
/// --search_threads flag by BenchContext: every figure binary's
/// single-query searches run in parallel mode without per-bench plumbing
/// (RunAlgorithm applies it to params still at the default). Results are
/// bit-identical at any value (DESIGN.md §10) — only timings change.
inline int& DefaultSearchThreads() {
  static int value = 1;
  return value;
}

/// Every binary accepts:
///   --quick            shrink datasets (scale 0.25), trim sweeps — smoke run
///   --scale=F          explicit dataset scale in (0, 1]
///   --search_threads=N parallel BU/TD search lanes per query (default 1)
///   --metrics_json=P   dump the process-wide metric aggregate
///                      (obs::Registry::Global(), DESIGN.md §12) as JSON on
///                      exit; "-" writes to stdout
struct BenchContext {
  explicit BenchContext(const Flags& flags)
      : quick(flags.GetBool("quick", false)),
        scale(flags.GetDouble("scale", quick ? 0.25 : 1.0)),
        search_threads(static_cast<int>(
            std::max<int64_t>(1, flags.GetInt("search_threads", 1)))),
        metrics_json(flags.GetString("metrics_json", "")) {
    DefaultSearchThreads() = search_threads;
  }

  /// Every engine (including the per-call engines behind SolveDccs)
  /// mirrors its latency histograms into the global registry, so this
  /// export aggregates the whole run without per-bench plumbing.
  ~BenchContext() {
    if (metrics_json.empty()) return;
    if (obs::WriteFile(metrics_json,
                       obs::ToJson(obs::Registry::Global().Snapshot())) &&
        metrics_json != "-") {
      std::printf("[bench] metrics written to %s\n", metrics_json.c_str());
    }
  }

  bool quick;
  double scale;
  int search_threads;
  std::string metrics_json;

  /// Loads (and memoises) a dataset at the configured scale, backed by an
  /// on-disk cache shared across the figure binaries (generation of the
  /// large graphs costs minutes; a cached load costs ~1 s).
  const Dataset& Load(const std::string& name) {
    for (const auto& d : cache_) {
      if (d->name == name) return *d;
    }
    // Bump kCacheVersion whenever the generator or the dataset specs
    // change; stale caches would silently skew every figure.
    constexpr int kCacheVersion = 2;
    char cache_path[256];
    std::snprintf(cache_path, sizeof(cache_path),
                  "/tmp/mlcore_dataset_v%d_%s_%04d", kCacheVersion,
                  name.c_str(), static_cast<int>(scale * 1000));
    auto dataset = std::make_unique<Dataset>();
    if (LoadDataset(cache_path, dataset.get()) && dataset->name == name) {
      std::printf("[bench] loaded dataset '%s' from cache\n", name.c_str());
    } else {
      std::printf("[bench] generating dataset '%s' (scale %.2f)...\n",
                  name.c_str(), scale);
      *dataset = MakeDataset(name, scale);
      SaveDataset(*dataset, cache_path);
    }
    cache_.push_back(std::move(dataset));
    return *cache_.back();
  }

 private:
  std::vector<std::unique_ptr<Dataset>> cache_;
};

/// Prints the standard header every figure binary emits: what the paper
/// reports, and what shape to expect from this reproduction.
inline void PrintFigureHeader(const std::string& figure,
                              const std::string& paper_expectation) {
  std::printf("==========================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==========================================================\n");
}

/// Runs one algorithm and returns (seconds, cover size).
struct RunOutcome {
  double seconds = 0.0;
  int64_t cover = 0;
  SearchStats stats;
};

/// Cold run: a temporary single-query Engine per call (via SolveDccs), so
/// every row of a figure pays the full preprocessing cost the paper
/// measures. Use the Engine overload below when a harness deliberately
/// wants cross-query reuse (bench_engine_reuse).
inline RunOutcome RunAlgorithm(const MultiLayerGraph& graph,
                               const DccsParams& params,
                               DccsAlgorithm algorithm) {
  DccsParams effective = params;
  if (effective.search_threads <= 1) {
    effective.search_threads = DefaultSearchThreads();
  }
  DccsResult result = SolveDccs(graph, effective, algorithm);
  return RunOutcome{result.stats.total_seconds, result.CoverSize(),
                    result.stats};
}

/// Warm-capable run through a long-lived Engine: repeat (d, s) keys hit the
/// preprocessing cache (DESIGN.md §5). Aborts on invalid requests — bench
/// parameters are trusted.
inline RunOutcome RunAlgorithm(Engine& engine, const DccsParams& params,
                               DccsAlgorithm algorithm) {
  Expected<DccsResult> response = engine.Run(DccsRequest{params, algorithm});
  MLCORE_CHECK_MSG(response.ok(), response.status().message.c_str());
  return RunOutcome{response->stats.total_seconds, response->CoverSize(),
                    response->stats};
}

/// Deterministic churn batch against the current graph: `size` edge
/// updates, half removals of present edges, half insertions of absent
/// pairs, deduplicated per layer — valid for GraphStore::ApplyUpdate by
/// construction. Shared by the dynamic-graph harnesses (bench_updates,
/// bench_subscriptions).
inline UpdateBatch MakeChurnBatch(const MultiLayerGraph& graph, int64_t size,
                                  Rng& rng) {
  UpdateBatch batch;
  const int32_t n = graph.NumVertices();
  const int32_t l = graph.NumLayers();
  std::vector<std::vector<std::pair<VertexId, VertexId>>> touched(
      static_cast<size_t>(l));
  auto fresh = [&](LayerId layer, VertexId u, VertexId v) {
    auto key = std::make_pair(std::min(u, v), std::max(u, v));
    auto& list = touched[static_cast<size_t>(layer)];
    if (std::find(list.begin(), list.end(), key) != list.end()) return false;
    list.push_back(key);
    return true;
  };
  for (int64_t i = 0; i < size / 2; ++i) {
    auto layer = static_cast<LayerId>(rng.Uniform(0, l - 1));
    auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    auto nbrs = graph.Neighbors(layer, v);
    if (nbrs.empty()) continue;
    VertexId u = nbrs[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(nbrs.size()) - 1))];
    if (fresh(layer, u, v)) batch.Remove(layer, u, v);
  }
  for (int64_t i = 0; i < size - size / 2;) {
    auto layer = static_cast<LayerId>(rng.Uniform(0, l - 1));
    auto u = static_cast<VertexId>(rng.Uniform(0, n - 1));
    auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    ++i;
    if (u == v || graph.HasEdge(layer, std::min(u, v), std::max(u, v))) {
      continue;
    }
    if (fresh(layer, u, v)) batch.Insert(layer, u, v);
  }
  return batch;
}

/// Disjoint layer-0 vertex pairs of degree <= d - 2 with no edge between
/// them: toggling these edges changes graph content every epoch without
/// ever touching a d-core subgraph — the "background churn" workload that
/// generational cache keys (DESIGN.md §8) must absorb for free.
inline std::vector<std::pair<VertexId, VertexId>> LowDegreeBackgroundPairs(
    const MultiLayerGraph& graph, int d, size_t limit = 32) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  VertexId prev = -1;
  for (VertexId v = 0; v < graph.NumVertices() && pairs.size() < limit; ++v) {
    if (graph.Degree(0, v) > d - 2) continue;
    if (prev < 0) {
      prev = v;
    } else if (!graph.HasEdge(0, prev, v)) {
      pairs.emplace_back(prev, v);
      prev = -1;
    }
  }
  MLCORE_CHECK_MSG(!pairs.empty(),
                   "generator produced no low-degree background vertices");
  return pairs;
}

/// The small-s sweep of Fig 13 ({1..5}) and its large-s counterpart
/// ({l-4..l}), trimmed in quick mode.
inline std::vector<int> SmallSValues(bool quick) {
  return quick ? std::vector<int>{1, 2, 3} : std::vector<int>{1, 2, 3, 4, 5};
}
inline std::vector<int> LargeSValues(int layers, bool quick) {
  std::vector<int> values;
  int from = quick ? layers - 2 : layers - 4;
  for (int s = std::max(1, from); s <= layers; ++s) values.push_back(s);
  return values;
}

}  // namespace mlcore::bench

#endif  // MLCORE_BENCH_BENCH_COMMON_H_
