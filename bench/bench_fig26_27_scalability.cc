// Fig 26: time vs vertex-sampling fraction p on Stack (GD/BU small s,
//         GD/TD large s).
// Fig 27: time vs layer-sampling fraction q on Stack (same algorithms).
//
// Expected shapes (paper §VI): all algorithms scale roughly linearly in p
// (d-CC computation is linear in the vertex count); time grows with q and
// GD-DCCS grows much faster than BU/TD (C(l, s) explosion vs pruning).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "graph/sampling.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  const mlcore::Dataset& stack = context.Load("stack");
  std::vector<double> fractions =
      context.quick ? std::vector<double>{0.4, 1.0}
                    : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};
  constexpr uint64_t kSampleSeed = 20180417;

  auto run_pair = [&](const mlcore::MultiLayerGraph& graph, int s,
                      mlcore::DccsAlgorithm search) {
    mlcore::DccsParams params;
    params.s = s;
    auto gd = mlcore::bench::RunAlgorithm(graph, params,
                                          mlcore::DccsAlgorithm::kGreedy);
    auto other = mlcore::bench::RunAlgorithm(graph, params, search);
    return std::make_pair(gd, other);
  };

  mlcore::bench::PrintFigureHeader(
      "Fig 26: time vs vertex fraction p on stack",
      "all algorithms scale ~linearly with p");
  mlcore::Table p_table({"p", "GD s=3 (s)", "BU s=3 (s)", "GD s=l-2 (s)",
                         "TD s=l-2 (s)"});
  for (double p : fractions) {
    mlcore::MultiLayerGraph sampled =
        mlcore::SampleVertices(stack.graph, p, kSampleSeed);
    auto [gd_small, bu] =
        run_pair(sampled, 3, mlcore::DccsAlgorithm::kBottomUp);
    auto [gd_large, td] = run_pair(sampled, sampled.NumLayers() - 2,
                                   mlcore::DccsAlgorithm::kTopDown);
    p_table.AddRow({mlcore::Table::Num(p, 1),
                    mlcore::Table::Num(gd_small.seconds),
                    mlcore::Table::Num(bu.seconds),
                    mlcore::Table::Num(gd_large.seconds),
                    mlcore::Table::Num(td.seconds)});
  }
  p_table.Print();
  std::printf("\n");

  mlcore::bench::PrintFigureHeader(
      "Fig 27: time vs layer fraction q on stack",
      "time grows with q; GD-DCCS grows much faster than BU/TD");
  mlcore::Table q_table({"q", "layers", "GD s=3 (s)", "BU s=3 (s)",
                         "GD s=l-2 (s)", "TD s=l-2 (s)"});
  for (double q : fractions) {
    mlcore::MultiLayerGraph sampled =
        mlcore::SampleLayers(stack.graph, q, kSampleSeed);
    const int l = sampled.NumLayers();
    // Small-s runs need s <= l; q = 0.2 keeps only 4 layers, still >= 3.
    auto [gd_small, bu] = run_pair(sampled, std::min(3, l),
                                   mlcore::DccsAlgorithm::kBottomUp);
    auto [gd_large, td] = run_pair(sampled, std::max(1, l - 2),
                                   mlcore::DccsAlgorithm::kTopDown);
    q_table.AddRow({mlcore::Table::Num(q, 1), mlcore::Table::Int(l),
                    mlcore::Table::Num(gd_small.seconds),
                    mlcore::Table::Num(bu.seconds),
                    mlcore::Table::Num(gd_large.seconds),
                    mlcore::Table::Num(td.seconds)});
  }
  q_table.Print();
  return 0;
}
