// Fig 26: time vs vertex-sampling fraction p (GD/BU small s, GD/TD
//         large s).
// Fig 27: time vs layer-sampling fraction q (same algorithms).
//
// Expected shapes (paper §VI): all algorithms scale roughly linearly in p
// (d-CC computation is linear in the vertex count); time grows with q and
// GD-DCCS grows much faster than BU/TD (C(l, s) explosion vs pruning).
//
// By default the sweeps run on the Stack stand-in dataset. With any of
//   --gen_scale=S --gen_edges=E --gen_layers=L --gen_seed=R
// they instead run on a generated MLG1 graph (format/generator.h): 2^S
// vertices, E edge draws per layer, L layers — the path for probing
// scales beyond the committed stand-ins.
//
// Either way the binary also measures the ingest formats themselves —
// text-parse vs zero-copy mmap load of the same graph, plus a query-result
// parity check between the two loads — and writes the record to
// --json (default BENCH_format.json). --format_only skips the Fig 26/27
// sweeps, leaving just that ingest comparison: the mode for huge generated
// graphs (10⁷+ edges) where a full GD sweep would run for hours.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "format/generator.h"
#include "format/mlg.h"
#include "graph/io.h"
#include "graph/sampling.h"

namespace {

/// Text-parse vs mmap ingest of `graph`, with a BU query-parity check
/// between the two loaded copies. Returns the BENCH_format.json document.
std::string FormatComparisonJson(const mlcore::MultiLayerGraph& graph,
                                 const std::string& source) {
  const std::string text_path = "/tmp/mlcore_bench_format.txt";
  const std::string bin_path = "/tmp/mlcore_bench_format.mlg";
  mlcore::IoStatus saved = SaveMultiLayerGraph(graph, text_path);
  MLCORE_CHECK_MSG(saved.ok, saved.error.c_str());
  mlcore::Status written = mlcore::format::WriteMlgGraph(graph, bin_path);
  MLCORE_CHECK_MSG(written.ok(), written.message.c_str());

  mlcore::MultiLayerGraph from_text;
  mlcore::WallTimer text_timer;
  mlcore::IoStatus loaded = LoadMultiLayerGraph(text_path, &from_text);
  const double text_ms = text_timer.Millis();
  MLCORE_CHECK_MSG(loaded.ok, loaded.error.c_str());

  mlcore::MultiLayerGraph mapped;
  mlcore::format::MlgLoadStats stats;
  mlcore::Status mmapped =
      mlcore::format::LoadMlgGraph(bin_path, &mapped, &stats);
  MLCORE_CHECK_MSG(mmapped.ok(), mmapped.message.c_str());

  mlcore::DccsParams params;
  params.d = 2;
  params.s = std::min(2, graph.NumLayers());
  params.k = 5;
  // Same algorithm on both copies: any divergence is the storage seam's
  // fault, not tie-breaking between different exact methods.
  const auto text_run = mlcore::bench::RunAlgorithm(
      from_text, params, mlcore::DccsAlgorithm::kBottomUp);
  const auto mmap_run = mlcore::bench::RunAlgorithm(
      mapped, params, mlcore::DccsAlgorithm::kBottomUp);
  const bool parity = text_run.cover == mmap_run.cover;

  const double speedup = stats.load_ms > 0 ? text_ms / stats.load_ms : 0.0;
  std::printf("[format] text load %.2f ms, mmap load %.2f ms "
              "(%.1fx), parity %s\n",
              text_ms, stats.load_ms, speedup, parity ? "ok" : "MISMATCH");

  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"version\": 1, \"source\": \"%s\",\n"
      " \"vertices\": %lld, \"layers\": %lld, \"edges\": %lld,\n"
      " \"text_load_ms\": %.3f, \"mmap_load_ms\": %.3f,\n"
      " \"mmap_speedup\": %.2f, \"mapped_bytes\": %lld,\n"
      " \"query\": {\"d\": %d, \"s\": %d, \"k\": %d,\n"
      "   \"cover_text_bu\": %lld, \"cover_mmap_bu\": %lld,\n"
      "   \"parity\": %s}}\n",
      source.c_str(), static_cast<long long>(stats.num_vertices),
      static_cast<long long>(stats.num_layers),
      static_cast<long long>(stats.total_edges), text_ms, stats.load_ms,
      speedup, static_cast<long long>(stats.mapped_bytes), params.d,
      params.s, params.k, static_cast<long long>(text_run.cover),
      static_cast<long long>(mmap_run.cover), parity ? "true" : "false");
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  // Sweep target: Stack by default, a generated MLG1 graph when any
  // --gen_* flag is present. The generated container round-trips through
  // the real binary ingest path (write, mmap-load) rather than staying
  // in memory — the bench measures what users of mlggen get.
  const bool generated = flags.Has("gen_scale") || flags.Has("gen_edges") ||
                         flags.Has("gen_layers") || flags.Has("gen_seed");
  mlcore::MultiLayerGraph target;
  std::string source = "stack";
  if (generated) {
    mlcore::format::MlgGenConfig config;
    config.num_vertices =
        1 << flags.GetInt("gen_scale", context.quick ? 12 : 15);
    config.edges_per_layer =
        flags.GetInt("gen_edges", 8LL * config.num_vertices);
    config.num_layers = static_cast<int32_t>(flags.GetInt("gen_layers", 6));
    config.seed = static_cast<uint64_t>(flags.GetInt("gen_seed", 1));
    const std::string path = "/tmp/mlcore_bench_gen.mlg";
    std::printf("[bench] generating 2^%lld-vertex, %d-layer MLG1 graph...\n",
                flags.GetInt("gen_scale", context.quick ? 12 : 15),
                config.num_layers);
    mlcore::format::MlgGenStats gen_stats;
    mlcore::Status status = GenerateMlg(config, path, &gen_stats);
    MLCORE_CHECK_MSG(status.ok(), status.message.c_str());
    status = mlcore::format::LoadMlgGraph(path, &target);
    MLCORE_CHECK_MSG(status.ok(), status.message.c_str());
    std::printf("[bench] generated %lld edges in %.0f ms\n",
                static_cast<long long>(gen_stats.edges_written),
                gen_stats.gen_ms);
    source = "generated";
  } else {
    target = context.Load("stack").graph;
  }

  std::vector<double> fractions =
      context.quick ? std::vector<double>{0.4, 1.0}
                    : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};
  constexpr uint64_t kSampleSeed = 20180417;
  if (flags.GetBool("format_only", false)) fractions.clear();

  auto run_pair = [&](const mlcore::MultiLayerGraph& graph, int s,
                      mlcore::DccsAlgorithm search) {
    mlcore::DccsParams params;
    params.s = s;
    auto gd = mlcore::bench::RunAlgorithm(graph, params,
                                          mlcore::DccsAlgorithm::kGreedy);
    auto other = mlcore::bench::RunAlgorithm(graph, params, search);
    return std::make_pair(gd, other);
  };

  if (!fractions.empty()) {
    mlcore::bench::PrintFigureHeader(
        "Fig 26: time vs vertex fraction p on " + source,
        "all algorithms scale ~linearly with p");
  }
  mlcore::Table p_table({"p", "GD s=3 (s)", "BU s=3 (s)", "GD s=l-2 (s)",
                         "TD s=l-2 (s)"});
  for (double p : fractions) {
    mlcore::MultiLayerGraph sampled =
        mlcore::SampleVertices(target, p, kSampleSeed);
    auto [gd_small, bu] = run_pair(sampled, std::min(3, sampled.NumLayers()),
                                   mlcore::DccsAlgorithm::kBottomUp);
    auto [gd_large, td] =
        run_pair(sampled, std::max(1, sampled.NumLayers() - 2),
                 mlcore::DccsAlgorithm::kTopDown);
    p_table.AddRow({mlcore::Table::Num(p, 1),
                    mlcore::Table::Num(gd_small.seconds),
                    mlcore::Table::Num(bu.seconds),
                    mlcore::Table::Num(gd_large.seconds),
                    mlcore::Table::Num(td.seconds)});
  }
  if (!fractions.empty()) {
    p_table.Print();
    std::printf("\n");
    mlcore::bench::PrintFigureHeader(
        "Fig 27: time vs layer fraction q on " + source,
        "time grows with q; GD-DCCS grows much faster than BU/TD");
  }
  mlcore::Table q_table({"q", "layers", "GD s=3 (s)", "BU s=3 (s)",
                         "GD s=l-2 (s)", "TD s=l-2 (s)"});
  for (double q : fractions) {
    mlcore::MultiLayerGraph sampled =
        mlcore::SampleLayers(target, q, kSampleSeed);
    const int l = sampled.NumLayers();
    // Small-s runs need s <= l; q = 0.2 keeps only 4 layers, still >= 3.
    auto [gd_small, bu] = run_pair(sampled, std::min(3, l),
                                   mlcore::DccsAlgorithm::kBottomUp);
    auto [gd_large, td] = run_pair(sampled, std::max(1, l - 2),
                                   mlcore::DccsAlgorithm::kTopDown);
    q_table.AddRow({mlcore::Table::Num(q, 1), mlcore::Table::Int(l),
                    mlcore::Table::Num(gd_small.seconds),
                    mlcore::Table::Num(bu.seconds),
                    mlcore::Table::Num(gd_large.seconds),
                    mlcore::Table::Num(td.seconds)});
  }
  if (!fractions.empty()) {
    q_table.Print();
    std::printf("\n");
  }

  const std::string json_path =
      flags.GetString("json", "BENCH_format.json");
  const std::string json = FormatComparisonJson(target, source);
  if (mlcore::obs::WriteFile(json_path, json) && json_path != "-") {
    std::printf("[bench] format comparison written to %s\n",
                json_path.c_str());
  }
  return 0;
}
