// Fig 16: result cover size vs small s (GD vs BU; English, Stack).
// Fig 17: result cover size vs large s (GD vs BU vs TD; English, Stack).
//
// Expected shapes (paper §VI): |Cov(R)| decreases as s grows (Property 3);
// all algorithms cover a similar number of vertices, GD occasionally
// slightly ahead (1-1/e vs 1/4 approximation).

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  for (const char* name : {"english", "stack"}) {
    const mlcore::Dataset& dataset = context.Load(name);
    mlcore::DccsParams params;

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 16: cover size vs small s on ") + name,
        "cover decreases with s; BU-DCCS comparable to GD-DCCS");
    mlcore::Table small_table({"s", "GD-DCCS |Cov|", "BU-DCCS |Cov|",
                               "BU/GD"});
    for (int s : mlcore::bench::SmallSValues(context.quick)) {
      params.s = s;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      auto bu = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kBottomUp);
      small_table.AddRow(
          {mlcore::Table::Int(s), mlcore::Table::Int(gd.cover),
           mlcore::Table::Int(bu.cover),
           mlcore::Table::Num(
               static_cast<double>(bu.cover) /
                   std::max<double>(static_cast<double>(gd.cover), 1.0),
               2)});
    }
    small_table.Print();
    std::printf("\n");

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 17: cover size vs large s on ") + name,
        "cover decreases with s; TD-DCCS comparable to GD-DCCS");
    const double bu_budget = flags.GetDouble("bu_budget", 60.0);
    mlcore::Table large_table(
        {"s", "GD-DCCS |Cov|", "BU-DCCS |Cov|", "TD-DCCS |Cov|"});
    for (int s :
         mlcore::bench::LargeSValues(dataset.graph.NumLayers(),
                                     context.quick)) {
      params.s = s;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      params.time_budget_seconds = bu_budget;
      auto bu = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kBottomUp);
      params.time_budget_seconds = 0;
      auto td = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kTopDown);
      large_table.AddRow(
          {mlcore::Table::Int(s), mlcore::Table::Int(gd.cover),
           mlcore::Table::Int(bu.cover) +
               (bu.stats.budget_exhausted ? "*" : ""),
           mlcore::Table::Int(td.cover)});
    }
    large_table.Print();
    std::printf("\n");
  }
  return 0;
}
