// Continuous-DCCS benchmark (DESIGN.md §9): standing queries through
// Engine::Subscribe vs the polling alternatives, over the same update
// stream and query set.
//
// Three serving modes answer Q standing (d, s, k) questions across E
// epochs:
//   poll-cold   a fresh engine per epoch, every query recomputed from
//               scratch (the "thousands of cold queries" baseline);
//   poll-warm   one long-lived engine, Run per query per epoch
//               (generational caches soften the blow — PR 4's world);
//   subscribe   one engine, Q subscriptions; each ApplyUpdate fans out
//               revisions, and epochs the core-subgraph generations prove
//               irrelevant are absorbed as zero-work "unchanged" revisions.
//
// Two workloads: background churn (edges that never touch a d-core
// subgraph — the subscribe mode should serve almost everything as
// unchanged) and core churn (dense-region edits — everyone recomputes,
// subscribe must stay within noise of poll-warm). Every mode's answers
// are checked identical before timing is trusted.
//
//   ./bench_subscriptions [--quick] [--scale=F] [--json=path]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace {

constexpr int kTrackedD = 4;

mlcore::MultiLayerGraph StreamGraph(double scale) {
  mlcore::PlantedGraphConfig config;
  config.num_vertices =
      std::max<int32_t>(1500, static_cast<int32_t>(12000 * scale));
  config.num_layers = 6;
  config.num_communities = std::max(10, static_cast<int>(60 * scale));
  config.community_size_min = 14;
  config.community_size_max = 40;
  config.seed = 20180417;
  return mlcore::GeneratePlanted(config).graph;
}

std::vector<mlcore::DccsRequest> StandingQueries(bool quick) {
  std::vector<mlcore::DccsRequest> requests;
  const std::vector<int> supports = quick ? std::vector<int>{2, 3}
                                          : std::vector<int>{2, 3, 4};
  for (int s : supports) {
    for (int k : {5, 10}) {
      mlcore::DccsRequest request;
      request.params.d = kTrackedD;
      request.params.s = s;
      request.params.k = k;
      requests.push_back(request);
    }
  }
  return requests;
}

struct ModeRow {
  std::string workload;
  std::string mode;
  int epochs = 0;
  int queries = 0;
  double mean_epoch_ms = 0.0;   // ApplyUpdate + all answers for one epoch
  double total_seconds = 0.0;
  int64_t revisions_emitted = 0;
  int64_t unchanged_skipped = 0;
  int64_t preprocess_misses = 0;
};

mlcore::GraphStore::Options StoreOptions() {
  mlcore::GraphStore::Options options;
  options.tracked_degrees = {kTrackedD};
  return options;
}

// Builds the per-epoch batch for (workload, epoch) against `graph`.
mlcore::UpdateBatch EpochBatch(
    const std::string& workload, int epoch,
    const mlcore::MultiLayerGraph& graph,
    const std::vector<std::pair<mlcore::VertexId, mlcore::VertexId>>&
        background,
    mlcore::Rng& rng) {
  mlcore::UpdateBatch batch;
  if (workload == "background") {
    // Epochs count from 1: insert the pairs on odd epochs, remove them on
    // even ones — content changes every epoch, the d-core subgraphs never
    // do.
    for (const auto& [u, v] : background) {
      if (epoch % 2 == 1) {
        batch.Insert(0, u, v);
      } else {
        batch.Remove(0, u, v);
      }
    }
  } else {
    batch = mlcore::bench::MakeChurnBatch(graph, 64, rng);
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const std::string json_path = flags.GetString("json", "");

  mlcore::bench::PrintFigureHeader(
      "bench_subscriptions — standing queries vs polling (DESIGN.md §9)",
      "one update fans out to cheap subscription revisions: background "
      "churn is absorbed as zero-work unchanged revisions, core churn "
      "stays within noise of warm polling, both far below cold polling");

  const mlcore::MultiLayerGraph initial = StreamGraph(context.scale);
  const std::vector<mlcore::DccsRequest> requests =
      StandingQueries(context.quick);
  const int epochs = context.quick ? 8 : 30;
  std::printf("graph: %d vertices, %d layers, %lld edges; %zu standing "
              "queries, %d epochs\n\n",
              initial.NumVertices(), initial.NumLayers(),
              static_cast<long long>(initial.TotalEdges()), requests.size(),
              epochs);
  const auto background =
      mlcore::bench::LowDegreeBackgroundPairs(initial, kTrackedD);

  std::vector<ModeRow> rows;
  // Reference covers per (workload, epoch, query), filled by poll-warm and
  // checked by the other modes: all three must serve identical answers.
  std::vector<std::vector<int64_t>> reference_covers;

  for (const std::string workload : {"background", "core"}) {
    reference_covers.assign(static_cast<size_t>(epochs + 1), {});
    for (const std::string mode : {"poll-warm", "poll-cold", "subscribe"}) {
      auto store = std::make_shared<mlcore::GraphStore>(initial,
                                                        StoreOptions());
      mlcore::Engine engine(store);
      mlcore::Rng rng(4242);
      ModeRow row;
      row.workload = workload;
      row.mode = mode;
      row.epochs = epochs;
      row.queries = static_cast<int>(requests.size());

      std::vector<mlcore::Subscription> subs;
      mlcore::WallTimer timer;
      auto check = [&](int epoch, size_t q, int64_t cover) {
        auto& slot = reference_covers[static_cast<size_t>(epoch)];
        if (mode == "poll-warm") {
          slot.push_back(cover);
        } else {
          MLCORE_CHECK_MSG(slot[q] == cover,
                           "mode answers diverged — bug in the engine");
        }
      };

      if (mode == "subscribe") {
        mlcore::SubscriptionOptions options;
        options.max_buffered_revisions = 2;
        for (const mlcore::DccsRequest& request : requests) {
          auto subscribed = engine.Subscribe(request, options);
          MLCORE_CHECK_MSG(subscribed.ok(),
                           subscribed.status().message.c_str());
          subs.push_back(*subscribed);
        }
        for (size_t q = 0; q < subs.size(); ++q) {
          std::optional<mlcore::ResultRevision> revision = subs[q].Next();
          MLCORE_CHECK(revision.has_value());
          check(0, q, revision->result.CoverSize());
        }
      } else {
        for (size_t q = 0; q < requests.size(); ++q) {
          auto response = engine.Run(requests[q]);
          MLCORE_CHECK(response.ok());
          check(0, q, response->CoverSize());
        }
      }
      engine.ResetStats();

      for (int e = 1; e <= epochs; ++e) {
        mlcore::UpdateBatch batch = EpochBatch(
            workload, e, store->snapshot()->graph(), background, rng);
        MLCORE_CHECK(store->ApplyUpdate(batch).ok());
        if (mode == "subscribe") {
          for (size_t q = 0; q < subs.size(); ++q) {
            std::optional<mlcore::ResultRevision> revision = subs[q].Next();
            MLCORE_CHECK(revision.has_value());
            MLCORE_CHECK(revision->epoch == static_cast<uint64_t>(e));
            check(e, q, revision->result.CoverSize());
          }
        } else if (mode == "poll-warm") {
          for (size_t q = 0; q < requests.size(); ++q) {
            auto response = engine.Run(requests[q]);
            MLCORE_CHECK(response.ok());
            check(e, q, response->CoverSize());
          }
        } else {
          auto snap = store->snapshot();
          mlcore::Engine cold(snap->graph_ptr(),
                              mlcore::Engine::Options{.query_workers = 0});
          for (size_t q = 0; q < requests.size(); ++q) {
            auto response = cold.Run(requests[q]);
            MLCORE_CHECK(response.ok());
            check(e, q, response->CoverSize());
          }
        }
      }
      row.total_seconds = timer.Seconds();
      row.mean_epoch_ms = row.total_seconds / epochs * 1e3;
      const mlcore::EngineCacheStats stats = engine.cache_stats();
      row.revisions_emitted = stats.revisions_emitted;
      row.unchanged_skipped = stats.revisions_unchanged_skipped;
      row.preprocess_misses = stats.preprocess_misses;
      for (mlcore::Subscription& sub : subs) sub.Cancel();
      rows.push_back(row);
    }
  }

  mlcore::Table table({"workload", "mode", "epochs", "queries",
                       "mean epoch ms", "revisions", "unchanged",
                       "preprocess misses"});
  for (const ModeRow& row : rows) {
    table.AddRow({row.workload, row.mode, mlcore::Table::Int(row.epochs),
                  mlcore::Table::Int(row.queries),
                  mlcore::Table::Num(row.mean_epoch_ms, 3),
                  mlcore::Table::Int(row.revisions_emitted),
                  mlcore::Table::Int(row.unchanged_skipped),
                  mlcore::Table::Int(row.preprocess_misses)});
  }
  table.Print();

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"description\": \"standing queries "
                 "(Engine::Subscribe) vs warm and cold polling across an "
                 "update stream; unchanged-skip revisions absorb "
                 "background churn\",\n  \"scale\": %.3f,\n"
                 "  \"tracked_d\": %d,\n  \"modes\": [\n",
                 context.scale, kTrackedD);
    for (size_t i = 0; i < rows.size(); ++i) {
      const ModeRow& row = rows[i];
      std::fprintf(out,
                   "    {\"workload\": \"%s\", \"mode\": \"%s\", "
                   "\"epochs\": %d, \"queries\": %d, "
                   "\"mean_epoch_ms\": %.4f, \"revisions_emitted\": %lld, "
                   "\"revisions_unchanged_skipped\": %lld, "
                   "\"preprocess_misses\": %lld}%s\n",
                   row.workload.c_str(), row.mode.c_str(), row.epochs,
                   row.queries, row.mean_epoch_ms,
                   static_cast<long long>(row.revisions_emitted),
                   static_cast<long long>(row.unchanged_skipped),
                   static_cast<long long>(row.preprocess_misses),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
