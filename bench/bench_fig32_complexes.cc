// Fig 32: proportion of protein complexes found by MiMAG and BU-DCCS on
// PPI with d ∈ {2, 3, 4} (a complex counts as found when it is entirely
// contained in one of the returned dense subgraphs).
//
// Ground truth: the planted complexes emitted by the PPI generator (the
// stand-in for the MIPS catalogue; DESIGN.md §5).
//
// Expected shapes (paper §VI): the proportion decreases as d grows, and
// BU-DCCS finds a clearly higher proportion than MiMAG (paper: 83.6% vs
// 69.7% at d=2 down to 77.9% vs 65.3% at d=4).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/complexes.h"
#include "mimag/mimag.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const mlcore::Dataset& ppi = context.Load("ppi");

  mlcore::bench::PrintFigureHeader(
      "Fig 32: proportion of protein complexes found on ppi",
      "decreases with d; BU-DCCS > MiMAG (paper: 83.6/80.1/77.9% vs "
      "69.7/67.2/65.3%)");

  const int support = ppi.graph.NumLayers() / 2;
  mlcore::Table table({"d", "MiMAG found", "MiMAG (all maximal)",
                       "BU-DCCS found", "complexes"});
  for (int d : {2, 3, 4}) {
    mlcore::MimagParams mimag_params;
    mimag_params.gamma = 0.8;
    mimag_params.min_size = d + 1;
    mimag_params.min_support = support;
    mlcore::MimagResult mimag = MineMimag(ppi.graph, mimag_params);
    std::vector<mlcore::VertexSet> quasi_subgraphs;
    for (const auto& cluster : mimag.clusters) {
      quasi_subgraphs.push_back(cluster.vertices);
    }
    // Second protocol: keep every locally-maximal quasi-clique (no
    // redundancy filtering). The budgeted stand-in's diversified output is
    // sparser than real MiMAG's, which makes full-complex containment
    // vanishingly rare; the unfiltered set is the fairer recall bound.
    mimag_params.redundancy_threshold = 1.0;
    mlcore::MimagResult mimag_all = MineMimag(ppi.graph, mimag_params);
    std::vector<mlcore::VertexSet> all_subgraphs;
    for (const auto& cluster : mimag_all.clusters) {
      all_subgraphs.push_back(cluster.vertices);
    }

    mlcore::DccsParams params;
    params.d = d;
    params.s = support;
    params.k = 10;
    mlcore::DccsResult bu = BottomUpDccs(ppi.graph, params);
    std::vector<mlcore::VertexSet> core_subgraphs;
    for (const auto& core : bu.cores) core_subgraphs.push_back(core.vertices);

    double mimag_recall = mlcore::ComplexRecall(ppi.complexes, quasi_subgraphs);
    double mimag_all_recall =
        mlcore::ComplexRecall(ppi.complexes, all_subgraphs);
    double bu_recall = mlcore::ComplexRecall(ppi.complexes, core_subgraphs);
    table.AddRow({mlcore::Table::Int(d),
                  mlcore::Table::Num(mimag_recall * 100, 1) + "%",
                  mlcore::Table::Num(mimag_all_recall * 100, 1) + "%",
                  mlcore::Table::Num(bu_recall * 100, 1) + "%",
                  mlcore::Table::Int(
                      static_cast<long long>(ppi.complexes.size()))});
  }
  table.Print();
  return 0;
}
