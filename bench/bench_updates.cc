// Dynamic-graph benchmark (not a paper figure): the GraphStore's batched
// update path (DESIGN.md §8).
//
// Part 1 — update throughput vs batch size. Churn batches (half edge
// removals, half insertions) applied through ApplyUpdate with incremental
// tracked-core maintenance; reports edge-updates/second per batch size,
// and the same stream with the incremental path disabled
// (recore_damage_threshold < 0 forces the per-layer from-scratch
// fallback) for the incremental-vs-recompute speedup.
//
// Part 2 — warm-cache query latency across epochs. An Engine over the
// store answers the same (d, s, k) query between batches. Background
// churn (edges that never touch a d-core subgraph) must keep the §IV-C
// preprocessing cache warm — microsecond acquisitions, hit counters
// moving — while core churn invalidates and pays the rebuild.
//
//   ./bench_updates [--quick] [--scale=F] [--json=path]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace {

mlcore::MultiLayerGraph ChurnGraph(double scale) {
  mlcore::PlantedGraphConfig config;
  config.num_vertices =
      std::max<int32_t>(2000, static_cast<int32_t>(20000 * scale));
  config.num_layers = 6;
  config.num_communities =
      std::max(12, static_cast<int>(100 * scale));
  config.community_size_min = 14;
  config.community_size_max = 40;
  config.seed = 777;
  return mlcore::GeneratePlanted(config).graph;
}

struct ThroughputRow {
  int64_t batch_size = 0;
  double incremental_updates_per_s = 0.0;
  double recompute_updates_per_s = 0.0;
  double speedup = 0.0;
  int64_t core_churn = 0;  // exits + entries seen by the incremental store
};

struct LatencyRow {
  std::string workload;
  int64_t epochs = 0;
  int64_t preprocess_hits = 0;
  int64_t preprocess_misses = 0;
  double mean_warm_preprocess_ms = 0.0;
  double mean_query_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);
  const std::string json_path = flags.GetString("json", "");

  mlcore::bench::PrintFigureHeader(
      "bench_updates — GraphStore batched updates (DESIGN.md §8)",
      "incremental maintenance beats from-scratch recompute by a widening "
      "margin as batches shrink; background churn keeps query caches warm");

  const mlcore::MultiLayerGraph initial = ChurnGraph(context.scale);
  std::printf("graph: %d vertices, %d layers, %lld edges\n\n",
              initial.NumVertices(), initial.NumLayers(),
              static_cast<long long>(initial.TotalEdges()));
  const int kTrackedD = 4;

  // ---- Part 1: updates/sec vs batch size, incremental vs recompute ----
  std::vector<int64_t> batch_sizes =
      context.quick ? std::vector<int64_t>{10, 100}
                    : std::vector<int64_t>{1, 10, 100, 1000, 10000};
  const int rounds = context.quick ? 20 : 50;
  std::vector<ThroughputRow> throughput;
  for (int64_t size : batch_sizes) {
    ThroughputRow row;
    row.batch_size = size;
    for (int mode = 0; mode < 2; ++mode) {
      mlcore::GraphStore::Options options;
      options.tracked_degrees = {kTrackedD};
      options.recore_damage_threshold = mode == 0 ? 0 : -1;
      mlcore::GraphStore store(initial, options);
      mlcore::Rng rng(static_cast<uint64_t>(size) * 13 + 1);
      int64_t updates = 0;
      mlcore::WallTimer timer;
      for (int r = 0; r < rounds; ++r) {
        mlcore::UpdateBatch batch = mlcore::bench::MakeChurnBatch(
            store.snapshot()->graph(), size, rng);
        auto outcome = store.ApplyUpdate(batch);
        MLCORE_CHECK_MSG(outcome.ok(), outcome.status().message.c_str());
        updates += outcome->edges_inserted + outcome->edges_removed;
        if (mode == 0) {
          row.core_churn += outcome->core_exits + outcome->core_entries;
        }
      }
      const double per_s = static_cast<double>(updates) / timer.Seconds();
      (mode == 0 ? row.incremental_updates_per_s
                 : row.recompute_updates_per_s) = per_s;
    }
    row.speedup = row.incremental_updates_per_s / row.recompute_updates_per_s;
    throughput.push_back(row);
  }
  {
    mlcore::Table table({"batch", "incremental upd/s", "recompute upd/s",
                         "speedup", "core churn"});
    for (const ThroughputRow& row : throughput) {
      table.AddRow({mlcore::Table::Int(row.batch_size),
                    mlcore::Table::Num(row.incremental_updates_per_s, 0),
                    mlcore::Table::Num(row.recompute_updates_per_s, 0),
                    mlcore::Table::Num(row.speedup, 2),
                    mlcore::Table::Int(row.core_churn)});
    }
    table.Print();
  }

  // ---- Part 2: warm-cache query latency across epochs ----
  // Two streams: background churn toggles edges between low-degree
  // vertices that can never reach a d-core (degree stays < d), so the
  // preprocessing cache must stay warm across epochs; community churn
  // rips random edges out of (and into) dense regions, invalidating it.
  const int epochs = context.quick ? 10 : 40;
  const auto background =
      mlcore::bench::LowDegreeBackgroundPairs(initial, kTrackedD);
  std::vector<LatencyRow> latency;
  for (int workload = 0; workload < 2; ++workload) {
    mlcore::GraphStore::Options options;
    options.tracked_degrees = {kTrackedD};
    auto store = std::make_shared<mlcore::GraphStore>(initial, options);
    mlcore::Engine engine(store);
    mlcore::DccsRequest request;
    request.params.d = kTrackedD;
    request.params.s = 3;
    request.params.k = 10;

    MLCORE_CHECK(engine.Run(request).ok());  // cold build at epoch 0
    mlcore::Rng rng(99 + static_cast<uint64_t>(workload));
    LatencyRow row;
    row.workload = workload == 0 ? "background churn" : "core churn";
    row.epochs = epochs;
    const mlcore::EngineCacheStats before = engine.cache_stats();
    double preprocess_s = 0.0, total_s = 0.0;
    for (int e = 0; e < epochs; ++e) {
      auto snap = store->snapshot();
      const mlcore::MultiLayerGraph& graph = snap->graph();
      mlcore::UpdateBatch batch;
      if (workload == 0) {
        // Toggle the background pairs on layer 0: insert on even epochs,
        // remove on odd — content changes every epoch, the d-core
        // subgraphs never do.
        for (const auto& [u, v] : background) {
          if (e % 2 == 0) {
            batch.Insert(0, u, v);
          } else {
            batch.Remove(0, u, v);
          }
        }
      } else {
        batch = mlcore::bench::MakeChurnBatch(graph, 64, rng);
      }
      auto outcome = engine.ApplyUpdate(batch);
      MLCORE_CHECK_MSG(outcome.ok(), outcome.status().message.c_str());
      auto response = engine.Run(request);
      MLCORE_CHECK(response.ok());
      MLCORE_CHECK(response->epoch == outcome->epoch);
      preprocess_s += response->stats.preprocess_seconds;
      total_s += response->stats.total_seconds;
    }
    const mlcore::EngineCacheStats after = engine.cache_stats();
    row.preprocess_hits = after.preprocess_hits - before.preprocess_hits;
    row.preprocess_misses = after.preprocess_misses - before.preprocess_misses;
    row.mean_warm_preprocess_ms = preprocess_s / epochs * 1e3;
    row.mean_query_ms = total_s / epochs * 1e3;
    latency.push_back(row);
  }
  {
    std::printf("\n");
    mlcore::Table table({"workload", "epochs", "hits", "misses",
                         "mean preprocess ms", "mean query ms"});
    for (const LatencyRow& row : latency) {
      table.AddRow({row.workload, mlcore::Table::Int(row.epochs),
                    mlcore::Table::Int(row.preprocess_hits),
                    mlcore::Table::Int(row.preprocess_misses),
                    mlcore::Table::Num(row.mean_warm_preprocess_ms, 3),
                    mlcore::Table::Num(row.mean_query_ms, 3)});
    }
    table.Print();
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"description\": \"GraphStore batched updates: "
                 "throughput vs batch size (incremental vs from-scratch "
                 "recompute) and warm-cache query latency across epochs\",\n"
                 "  \"scale\": %.3f,\n  \"tracked_d\": %d,\n",
                 context.scale, kTrackedD);
    std::fprintf(out, "  \"throughput\": [\n");
    for (size_t i = 0; i < throughput.size(); ++i) {
      const ThroughputRow& row = throughput[i];
      std::fprintf(out,
                   "    {\"batch_size\": %lld, "
                   "\"incremental_updates_per_s\": %.1f, "
                   "\"recompute_updates_per_s\": %.1f, "
                   "\"speedup\": %.2f, \"core_churn\": %lld}%s\n",
                   static_cast<long long>(row.batch_size),
                   row.incremental_updates_per_s,
                   row.recompute_updates_per_s, row.speedup,
                   static_cast<long long>(row.core_churn),
                   i + 1 < throughput.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"warm_cache\": [\n");
    for (size_t i = 0; i < latency.size(); ++i) {
      const LatencyRow& row = latency[i];
      std::fprintf(out,
                   "    {\"workload\": \"%s\", \"epochs\": %lld, "
                   "\"preprocess_hits\": %lld, \"preprocess_misses\": %lld, "
                   "\"mean_preprocess_ms\": %.4f, \"mean_query_ms\": %.4f}%s\n",
                   row.workload.c_str(), static_cast<long long>(row.epochs),
                   static_cast<long long>(row.preprocess_hits),
                   static_cast<long long>(row.preprocess_misses),
                   row.mean_warm_preprocess_ms, row.mean_query_ms,
                   i + 1 < latency.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
