// Fig 14: execution time vs small s (GD-DCCS vs BU-DCCS; English, Stack).
// Fig 15: execution time vs large s (GD vs BU vs TD; English, Stack).
//
// Expected shapes (paper §VI): for small s all times grow with s and
// BU-DCCS beats GD-DCCS by 1–2 orders of magnitude (39x/30x at s=4); for
// large s times fall as s grows, BU-DCCS degrades to GD-DCCS levels, and
// TD-DCCS is the fastest (50x over GD at s=13 on English).

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  for (const char* name : {"english", "stack"}) {
    const mlcore::Dataset& dataset = context.Load(name);
    mlcore::DccsParams params;

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 14: time vs small s on ") + name,
        "time increases with s; BU-DCCS 1-2 orders of magnitude below "
        "GD-DCCS");
    mlcore::Table small_table({"s", "GD-DCCS (s)", "BU-DCCS (s)", "speedup"});
    for (int s : mlcore::bench::SmallSValues(context.quick)) {
      params.s = s;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      auto bu = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kBottomUp);
      small_table.AddRow(
          {mlcore::Table::Int(s), mlcore::Table::Num(gd.seconds),
           mlcore::Table::Num(bu.seconds),
           mlcore::Table::Num(gd.seconds / std::max(bu.seconds, 1e-9), 1) +
               "x"});
    }
    small_table.Print();
    std::printf("\n");

    mlcore::bench::PrintFigureHeader(
        std::string("Fig 15: time vs large s on ") + name,
        "time decreases with s; TD-DCCS fastest; BU-DCCS close to or worse "
        "than GD-DCCS (the paper runs it up to 10^4 s here — rows marked "
        "'>' hit the harness budget)");
    const double bu_budget = flags.GetDouble("bu_budget", 60.0);
    mlcore::Table large_table(
        {"s", "GD-DCCS (s)", "BU-DCCS (s)", "TD-DCCS (s)", "GD/TD"});
    for (int s :
         mlcore::bench::LargeSValues(dataset.graph.NumLayers(),
                                     context.quick)) {
      params.s = s;
      auto gd = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kGreedy);
      params.time_budget_seconds = bu_budget;
      auto bu = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kBottomUp);
      params.time_budget_seconds = 0;
      auto td = mlcore::bench::RunAlgorithm(dataset.graph, params,
                                            mlcore::DccsAlgorithm::kTopDown);
      large_table.AddRow(
          {mlcore::Table::Int(s), mlcore::Table::Num(gd.seconds),
           (bu.stats.budget_exhausted ? ">" : "") +
               mlcore::Table::Num(bu.seconds),
           mlcore::Table::Num(td.seconds),
           mlcore::Table::Num(gd.seconds / std::max(td.seconds, 1e-9), 1) +
               "x"});
    }
    large_table.Print();
    std::printf("\n");
  }
  return 0;
}
