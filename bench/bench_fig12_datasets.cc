// Fig 12 (dataset statistics) and Fig 13 (parameter configuration).
//
// Prints the statistics of the six synthetic stand-in datasets in the
// paper's Fig 12 layout, alongside the original numbers for comparison,
// plus the Fig 13 parameter table used by every other bench binary.

#include <cstdio>

#include "bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  long long vertices;
  long long total_edges;
  long long distinct_edges;
  int layers;
};

constexpr PaperRow kPaperRows[] = {
    {"ppi", 328, 4745, 3101, 8},
    {"author", 1017, 15065, 11069, 10},
    {"german", 519365, 7205624, 1653621, 14},
    {"wiki", 1140149, 7833140, 3309592, 24},
    {"english", 1749651, 18951428, 5956877, 15},
    {"stack", 2601977, 63497050, 36233450, 24},
};

}  // namespace

int main(int argc, char** argv) {
  mlcore::Flags flags(argc, argv);
  mlcore::bench::BenchContext context(flags);

  mlcore::bench::PrintFigureHeader(
      "Fig 12: statistics of graph datasets",
      "six datasets; layer counts 8/10/14/24/15/24; the four large graphs "
      "are scaled synthetic stand-ins (DESIGN.md §5)");

  mlcore::Table table({"Graph", "|V(G)|", "sum |E(Gi)|", "|U E(Gi)|", "l(G)",
                       "paper |V|", "paper sum|E|", "paper l"});
  for (const auto& row : kPaperRows) {
    const mlcore::Dataset& dataset = context.Load(row.name);
    table.AddRow({row.name, mlcore::Table::Int(dataset.graph.NumVertices()),
                  mlcore::Table::Int(dataset.graph.TotalEdges()),
                  mlcore::Table::Int(dataset.graph.DistinctEdges()),
                  mlcore::Table::Int(dataset.graph.NumLayers()),
                  mlcore::Table::Int(row.vertices),
                  mlcore::Table::Int(row.total_edges),
                  mlcore::Table::Int(row.layers)});
  }
  table.Print();

  std::printf("\n");
  mlcore::bench::PrintFigureHeader(
      "Fig 13: parameter configuration",
      "defaults k=10, d=4, s=3 (small) / l-2 (large), p=q=1.0");
  mlcore::Table params({"Parameter", "Range", "Default"});
  params.AddRow({"k", "{5, 10, 15, 20, 25}", "10"});
  params.AddRow({"d", "{2, 3, 4, 5, 6}", "4"});
  params.AddRow({"s (small)", "{1, 2, 3, 4, 5}", "3"});
  params.AddRow({"s (large)", "{l-4, l-3, l-2, l-1, l}", "l-2"});
  params.AddRow({"p", "{0.2, 0.4, 0.6, 0.8, 1.0}", "1.0"});
  params.AddRow({"q", "{0.2, 0.4, 0.6, 0.8, 1.0}", "1.0"});
  params.Print();
  return 0;
}
