#include <gtest/gtest.h>

#include "analysis/statistics.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

MultiLayerGraph StatsGraph() {
  // Layer 0: 5-clique + isolated vertices; layer 1: path 0..7; layer 2:
  // copy of layer 0's clique (identical edge set).
  GraphBuilder builder(10, 3);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      builder.AddEdge(0, u, v);
      builder.AddEdge(2, u, v);
    }
  }
  for (VertexId v = 0; v + 1 < 8; ++v) builder.AddEdge(1, v, v + 1);
  return builder.Build();
}

TEST(StatisticsTest, LayerStatistics) {
  auto stats = ComputeLayerStatistics(StatsGraph());
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].edges, 10);
  EXPECT_EQ(stats[0].max_degree, 4);
  EXPECT_EQ(stats[0].active_vertices, 5);
  EXPECT_EQ(stats[0].degeneracy, 4);  // clique of 5
  EXPECT_EQ(stats[1].edges, 7);
  EXPECT_EQ(stats[1].degeneracy, 1);  // path
  EXPECT_DOUBLE_EQ(stats[1].average_degree, 14.0 / 10.0);
}

TEST(StatisticsTest, LayerJaccard) {
  MultiLayerGraph graph = StatsGraph();
  EXPECT_DOUBLE_EQ(LayerEdgeJaccard(graph, 0, 2), 1.0);  // identical
  EXPECT_DOUBLE_EQ(LayerEdgeJaccard(graph, 0, 0), 1.0);
  // Layers 0 and 1 share edges {01, 12, 23, 34}: 4 common, union 13.
  EXPECT_NEAR(LayerEdgeJaccard(graph, 0, 1), 4.0 / 13.0, 1e-12);
}

TEST(StatisticsTest, SimilarityMatrixSymmetric) {
  MultiLayerGraph graph = StatsGraph();
  auto matrix = LayerSimilarityMatrix(graph);
  ASSERT_EQ(matrix.size(), 9u);
  for (size_t a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(matrix[a * 3 + a], 1.0);
    for (size_t b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(matrix[a * 3 + b], matrix[b * 3 + a]);
    }
  }
  EXPECT_DOUBLE_EQ(matrix[0 * 3 + 2], 1.0);
}

TEST(StatisticsTest, EmptyLayersAreSimilar) {
  GraphBuilder builder(5, 2);
  MultiLayerGraph graph = builder.Build();
  EXPECT_DOUBLE_EQ(LayerEdgeJaccard(graph, 0, 1), 1.0);
}

TEST(StatisticsTest, DegreeHistogram) {
  auto histogram = DegreeHistogram(StatsGraph(), 0);
  ASSERT_EQ(histogram.size(), 5u);  // max degree 4
  EXPECT_EQ(histogram[0], 5);       // vertices 5..9 isolated
  EXPECT_EQ(histogram[4], 5);       // the clique
  EXPECT_EQ(histogram[1] + histogram[2] + histogram[3], 0);
}

TEST(StatisticsTest, SupportHistogram) {
  MultiLayerGraph graph = StatsGraph();
  auto histogram = SupportHistogram(graph, 2);
  ASSERT_EQ(histogram.size(), 4u);  // l + 1 buckets
  // 2-cores: layers 0 and 2 have the clique; layer 1 has none.
  EXPECT_EQ(histogram[2], 5);  // clique members in exactly 2 cores
  EXPECT_EQ(histogram[0], 5);  // everyone else in none
}

TEST(StatisticsTest, ConnectedComponents) {
  MultiLayerGraph graph = StatsGraph();
  auto components = ConnectedComponents(graph, 0);
  // Clique = 1 component, isolated 5..9 = 5 singletons.
  EXPECT_EQ(CountComponents(components), 6);
  EXPECT_EQ(components[0], components[4]);
  EXPECT_NE(components[0], components[5]);
  auto path_components = ConnectedComponents(graph, 1);
  EXPECT_EQ(CountComponents(path_components), 3);  // path 0-7 + {8}, {9}
}

TEST(StatisticsTest, RandomGraphSanity) {
  MultiLayerGraph graph = GenerateErdosRenyi(100, 2, 0.05, 77);
  auto stats = ComputeLayerStatistics(graph);
  for (const auto& layer_stats : stats) {
    EXPECT_GT(layer_stats.edges, 0);
    EXPECT_GE(layer_stats.max_degree, 1);
    EXPECT_GE(layer_stats.degeneracy, 1);
    EXPECT_NEAR(layer_stats.average_degree, 0.05 * 99, 2.0);
  }
  auto histogram = DegreeHistogram(graph, 0);
  int64_t total = 0;
  for (int64_t count : histogram) total += count;
  EXPECT_EQ(total, 100);
}

}  // namespace
}  // namespace mlcore
