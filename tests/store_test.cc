// Tests for the dynamic GraphStore subsystem (DESIGN.md §8): EditedCopy
// against a from-scratch rebuild, ApplyUpdate validation (a rejected batch
// changes nothing), epoch/snapshot isolation, incremental-vs-recompute
// path equivalence, the update-stream text format, and the strictened
// graph loader. The engine-facing behaviour (snapshot pinning, warm
// caches across epochs) lives in store_concurrency_test.cc.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/dcore.h"
#include "dccs/dccs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/io.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace mlcore {
namespace {

using EdgeList = MultiLayerGraph::EdgeList;

// Collects every edge of `graph` as (layer, u, v) triples, u < v.
std::set<std::tuple<LayerId, VertexId, VertexId>> AllEdges(
    const MultiLayerGraph& graph) {
  std::set<std::tuple<LayerId, VertexId, VertexId>> edges;
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (v < u) edges.emplace(layer, v, u);
      }
    }
  }
  return edges;
}

void ExpectSameGraph(const MultiLayerGraph& actual,
                     const MultiLayerGraph& expected) {
  ASSERT_EQ(actual.NumVertices(), expected.NumVertices());
  ASSERT_EQ(actual.NumLayers(), expected.NumLayers());
  EXPECT_EQ(AllEdges(actual), AllEdges(expected));
  // CSR invariants: sorted neighbour lists, symmetric degrees.
  for (LayerId layer = 0; layer < actual.NumLayers(); ++layer) {
    for (VertexId v = 0; v < actual.NumVertices(); ++v) {
      auto nbrs = actual.Neighbors(layer, v);
      EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    }
  }
}

TEST(StoreEditedCopyTest, MatchesRebuiltGraphOnRandomEdits) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    MultiLayerGraph graph = GenerateErdosRenyi(60, 3, 0.08, 100 + seed);
    Rng rng(seed);

    // Pick random removals from present edges and additions from absent
    // pairs, then compare EditedCopy to a graph rebuilt from scratch.
    auto edges = AllEdges(graph);
    std::vector<EdgeList> removed(3), added(3);
    std::vector<std::tuple<LayerId, VertexId, VertexId>> flat(edges.begin(),
                                                              edges.end());
    for (int i = 0; i < 20 && !flat.empty(); ++i) {
      size_t pick = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(flat.size()) - 1));
      auto [layer, u, v] = flat[pick];
      flat.erase(flat.begin() + static_cast<int64_t>(pick));
      removed[static_cast<size_t>(layer)].emplace_back(u, v);
      edges.erase({layer, u, v});
    }
    const int32_t extra = 2;
    for (int i = 0; i < 25; ++i) {
      auto layer = static_cast<LayerId>(rng.Uniform(0, 2));
      auto u = static_cast<VertexId>(rng.Uniform(0, 61));  // may hit new ids
      auto v = static_cast<VertexId>(rng.Uniform(0, 61));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if ((u < 60 && v < 60 && graph.HasEdge(layer, u, v)) ||
          edges.count({layer, u, v}) != 0) {
        continue;
      }
      added[static_cast<size_t>(layer)].emplace_back(u, v);
      edges.emplace(layer, u, v);
    }
    for (auto& list : removed) std::sort(list.begin(), list.end());
    for (auto& list : added) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    MultiLayerGraph edited = graph.EditedCopy(extra, added, removed);
    GraphBuilder builder(62, 3);
    for (const auto& [layer, u, v] : edges) builder.AddEdge(layer, u, v);
    ExpectSameGraph(edited, builder.Build());
  }
}

TEST(StoreEditedCopyTest, UnchangedLayersAndVertexPadding) {
  MultiLayerGraph graph = GenerateErdosRenyi(30, 2, 0.2, 7);
  std::vector<EdgeList> none(2);
  MultiLayerGraph padded = graph.EditedCopy(3, none, none);
  ASSERT_EQ(padded.NumVertices(), 33);
  for (LayerId layer = 0; layer < 2; ++layer) {
    EXPECT_EQ(padded.NumEdges(layer), graph.NumEdges(layer));
    for (VertexId v = 30; v < 33; ++v) EXPECT_EQ(padded.Degree(layer, v), 0);
  }
}

MultiLayerGraph TriangleGraph() {
  GraphBuilder builder(5, 2);
  builder.AddEdge(0, 0, 1);
  builder.AddEdge(0, 1, 2);
  builder.AddEdge(0, 0, 2);
  builder.AddEdge(1, 2, 3);
  return builder.Build();
}

TEST(GraphStoreTest, ValidationRejectsMalformedBatches) {
  GraphStore store(TriangleGraph());
  auto expect_rejected = [&](const UpdateBatch& batch, const char* label) {
    auto outcome = store.ApplyUpdate(batch);
    EXPECT_FALSE(outcome.ok()) << label;
    EXPECT_EQ(store.epoch(), 0u) << label << ": a rejected batch must not "
                                              "publish an epoch";
  };

  expect_rejected(UpdateBatch{}.Insert(0, 2, 2), "self-loop");
  expect_rejected(UpdateBatch{}.Insert(0, 0, 1), "insert existing edge");
  expect_rejected(UpdateBatch{}.Insert(2, 0, 1), "layer out of range");
  expect_rejected(UpdateBatch{}.Insert(0, 0, 9), "vertex out of range");
  expect_rejected(UpdateBatch{}.Insert(0, 3, 4).Insert(0, 4, 3),
                  "duplicate insert (either orientation)");
  expect_rejected(UpdateBatch{}.Remove(0, 1, 3), "remove missing edge");
  expect_rejected(UpdateBatch{}.Remove(0, 0, 1).Remove(0, 0, 1),
                  "duplicate remove");
  expect_rejected(UpdateBatch{}.Remove(1, 2, 3).Insert(1, 2, 3),
                  "insert+remove conflict");
  expect_rejected(UpdateBatch{}.RemoveVertex(9), "remove vertex out of range");
  expect_rejected(UpdateBatch{}.RemoveVertex(2).Insert(1, 2, 4),
                  "insert touching a vertex removed in the same batch");
  UpdateBatch negative;
  negative.add_vertices = -1;
  expect_rejected(negative, "negative add_vertices");

  // The failed batches must have changed nothing.
  EXPECT_EQ(AllEdges(store.snapshot()->graph()), AllEdges(TriangleGraph()));
  EXPECT_EQ(store.stats().batches_applied, 0);
  EXPECT_GT(store.stats().batches_rejected, 0);
}

TEST(GraphStoreTest, EpochsPublishAndSnapshotsAreImmutable) {
  GraphStore store(TriangleGraph());
  std::shared_ptr<const GraphSnapshot> epoch0 = store.snapshot();
  EXPECT_EQ(epoch0->epoch(), 0u);

  auto outcome = store.ApplyUpdate(UpdateBatch{}.Insert(1, 0, 3));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->epoch, 1u);
  EXPECT_EQ(outcome->edges_inserted, 1);
  EXPECT_EQ(store.epoch(), 1u);

  // The old snapshot still serves the old graph.
  EXPECT_FALSE(epoch0->graph().HasEdge(1, 0, 3));
  EXPECT_TRUE(store.snapshot()->graph().HasEdge(1, 0, 3));

  // Layer generations: only the edited layer moved.
  EXPECT_EQ(store.snapshot()->layer_generation(0), 0u);
  EXPECT_EQ(store.snapshot()->layer_generation(1), 1u);

  // An empty batch is a no-op.
  auto noop = store.ApplyUpdate(UpdateBatch{});
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->epoch, 1u);
  EXPECT_EQ(store.epoch(), 1u);
}

TEST(GraphStoreTest, VertexAddAndRemoveSemantics) {
  GraphStore::Options options;
  options.tracked_degrees = {2};
  GraphStore store(TriangleGraph(), options);

  // Append two vertices and wire one into the layer-0 triangle.
  UpdateBatch grow;
  grow.AddVertices(2).Insert(0, 5, 0).Insert(0, 5, 1).Insert(0, 5, 2);
  auto outcome = store.ApplyUpdate(grow);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(store.snapshot()->graph().NumVertices(), 7);
  EXPECT_EQ(outcome->core_entries, 1);  // vertex 5 joins the layer-0 2-core

  const TrackedCores* tracked = store.snapshot()->tracked(2);
  ASSERT_NE(tracked, nullptr);
  EXPECT_EQ(*tracked->cores[0], (VertexSet{0, 1, 2, 5}));

  // Isolating vertex 1 drops its edges everywhere and cascades the core.
  auto removal = store.ApplyUpdate(UpdateBatch{}.RemoveVertex(1));
  ASSERT_TRUE(removal.ok());
  EXPECT_EQ(removal->vertices_removed, 1);
  EXPECT_EQ(removal->edges_removed, 3);  // 0-1, 1-2 on layer 0; 5-1
  const MultiLayerGraph& graph = store.snapshot()->graph();
  EXPECT_EQ(graph.Degree(0, 1), 0);
  tracked = store.snapshot()->tracked(2);
  EXPECT_EQ(*tracked->cores[0], (VertexSet{0, 2, 5}));
  // The id remains usable: reconnecting is legal.
  EXPECT_TRUE(store.ApplyUpdate(UpdateBatch{}.Insert(1, 1, 4)).ok());
}

TEST(GraphStoreTest, EpochListenersObserveEveryPublishedEpoch) {
  GraphStore store(TriangleGraph());
  std::vector<uint64_t> seen;
  const uint64_t id = store.AddEpochListener(
      [&](const std::shared_ptr<const GraphSnapshot>& snap) {
        seen.push_back(snap->epoch());
      });

  ASSERT_TRUE(store.ApplyUpdate(UpdateBatch{}.Insert(1, 0, 3)).ok());
  ASSERT_TRUE(store.ApplyUpdate(UpdateBatch{}.Remove(1, 0, 3)).ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));

  // Neither empty nor rejected batches publish, so neither notifies.
  ASSERT_TRUE(store.ApplyUpdate(UpdateBatch{}).ok());
  EXPECT_FALSE(store.ApplyUpdate(UpdateBatch{}.Insert(0, 2, 2)).ok());
  EXPECT_EQ(seen.size(), 2u);

  // After removal the listener never fires again.
  store.RemoveEpochListener(id);
  ASSERT_TRUE(store.ApplyUpdate(UpdateBatch{}.Insert(1, 0, 3)).ok());
  EXPECT_EQ(seen.size(), 2u);
  store.RemoveEpochListener(id);  // unknown/stale ids are ignored
}

TEST(GraphStoreTest, IncrementalAndRecomputePathsAgree) {
  // Same update stream through a bounded-recore store and a forced
  // full-recompute store: tracked cores must be identical at every epoch.
  const uint64_t kSeed = 11;
  MultiLayerGraph initial = GenerateErdosRenyi(80, 3, 0.06, kSeed);

  GraphStore::Options incremental_options;
  incremental_options.tracked_degrees = {1, 2, 3};
  incremental_options.recore_damage_threshold = 1 << 20;  // never fall back
  GraphStore incremental(initial, incremental_options);

  GraphStore::Options recompute_options = incremental_options;
  recompute_options.recore_damage_threshold = -1;  // always fall back
  GraphStore recompute(initial, recompute_options);

  Rng rng(kSeed);
  for (int round = 0; round < 10; ++round) {
    const MultiLayerGraph& graph = incremental.snapshot()->graph();
    UpdateBatch batch;
    auto edges = AllEdges(graph);
    std::vector<std::tuple<LayerId, VertexId, VertexId>> flat(edges.begin(),
                                                              edges.end());
    for (int i = 0; i < 6 && !flat.empty(); ++i) {
      size_t pick = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(flat.size()) - 1));
      auto [layer, u, v] = flat[pick];
      flat.erase(flat.begin() + static_cast<int64_t>(pick));
      batch.Remove(layer, u, v);
    }
    for (int i = 0; i < 10;) {
      auto layer = static_cast<LayerId>(rng.Uniform(0, 2));
      auto u = static_cast<VertexId>(
          rng.Uniform(0, graph.NumVertices() - 1));
      auto v = static_cast<VertexId>(
          rng.Uniform(0, graph.NumVertices() - 1));
      if (u == v || graph.HasEdge(layer, std::min(u, v), std::max(u, v))) {
        continue;
      }
      bool dup = false;
      for (const EdgeUpdate& e : batch.insert_edges) {
        if (e.layer == layer && std::minmax(e.u, e.v) == std::minmax(u, v)) {
          dup = true;
          break;
        }
      }
      if (!dup) batch.Insert(layer, u, v);
      ++i;
    }

    auto a = incremental.ApplyUpdate(batch);
    auto b = recompute.ApplyUpdate(batch);
    ASSERT_TRUE(a.ok()) << a.status().message;
    ASSERT_TRUE(b.ok()) << b.status().message;
    EXPECT_EQ(a->core_exits, b->core_exits) << "round " << round;
    EXPECT_EQ(a->core_entries, b->core_entries) << "round " << round;

    auto sa = incremental.snapshot();
    auto sb = recompute.snapshot();
    for (int d : incremental_options.tracked_degrees) {
      const TrackedCores* ta = sa->tracked(d);
      const TrackedCores* tb = sb->tracked(d);
      ASSERT_NE(ta, nullptr);
      ASSERT_NE(tb, nullptr);
      for (LayerId layer = 0; layer < 3; ++layer) {
        ASSERT_EQ(*ta->cores[static_cast<size_t>(layer)],
                  *tb->cores[static_cast<size_t>(layer)])
            << "round " << round << " d " << d << " layer " << layer;
      }
      ASSERT_EQ(*ta->support, *tb->support) << "round " << round;
    }
  }
  // The paths must actually differ in how they worked: the bounded store
  // never fell back, the forced store recomputed every insertion layer.
  EXPECT_GT(incremental.stats().incremental_layer_updates, 0);
  EXPECT_EQ(incremental.stats().full_layer_recomputes, 0);
  EXPECT_GT(recompute.stats().full_layer_recomputes, 0);
}

TEST(UpdateStreamIoTest, RoundTripsBatches) {
  std::vector<UpdateBatch> batches;
  batches.push_back(UpdateBatch{}.Insert(0, 1, 2).Remove(1, 3, 4));
  UpdateBatch second;
  second.AddVertices(3).RemoveVertex(7).Insert(2, 5, 9);
  batches.push_back(second);

  const std::string path = "/tmp/mlcore_update_stream_test.txt";
  ASSERT_TRUE(SaveUpdateStream(batches, path).ok);
  std::vector<UpdateBatch> loaded;
  IoStatus status = LoadUpdateStream(path, &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(loaded.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(loaded[i].add_vertices, batches[i].add_vertices);
    EXPECT_EQ(loaded[i].remove_vertices, batches[i].remove_vertices);
    EXPECT_EQ(loaded[i].insert_edges, batches[i].insert_edges);
    EXPECT_EQ(loaded[i].remove_edges, batches[i].remove_edges);
  }
  std::remove(path.c_str());
}

TEST(UpdateStreamIoTest, RejectsMalformedRecordsWithLineNumbers) {
  const std::string path = "/tmp/mlcore_update_stream_bad.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header\n+ 0 1 2\nbogus 1 2 3\n", f);
    std::fclose(f);
  }
  std::vector<UpdateBatch> batches;
  IoStatus status = LoadUpdateStream(path, &batches);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find(":3:"), std::string::npos) << status.error;
  std::remove(path.c_str());
}

// Comments and blank lines interleave freely with records; a trailing
// batch without `commit` still loads, and record-free batches are
// dropped.
TEST(UpdateStreamIoTest, ParsesThroughCommentsAndBlankLines) {
  const std::string path = "/tmp/mlcore_update_stream_comments.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "# day 1\n"
        "\n"
        "+ 0 1 2\n"
        "# mid-batch note\n"
        "- 1 3 4\n"
        "commit\n"
        "\n"
        "commit\n"          // empty batch: dropped
        "# day 2\n"
        "addv 2\n"
        "delv 5\n"
        "+ 2 6 7\n",        // trailing batch, no commit
        f);
    std::fclose(f);
  }
  std::vector<UpdateBatch> batches;
  IoStatus status = LoadUpdateStream(path, &batches);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].insert_edges,
            (std::vector<EdgeUpdate>{{0, 1, 2}}));
  EXPECT_EQ(batches[0].remove_edges,
            (std::vector<EdgeUpdate>{{1, 3, 4}}));
  EXPECT_EQ(batches[1].add_vertices, 2);
  EXPECT_EQ(batches[1].remove_vertices, (VertexSet{5}));
  EXPECT_EQ(batches[1].insert_edges,
            (std::vector<EdgeUpdate>{{2, 6, 7}}));
  std::remove(path.c_str());
}

// A file with comments and blank lines round-trips: Save writes a header
// comment, Load ignores it and reproduces the batches bit-for-bit.
TEST(UpdateStreamIoTest, SaveLoadRoundTripPreservesBatchesThroughComments) {
  std::vector<UpdateBatch> batches;
  batches.push_back(UpdateBatch{}.Insert(0, 1, 2).Insert(1, 2, 3));
  UpdateBatch second;
  second.AddVertices(4).RemoveVertex(1).Remove(0, 1, 2);
  batches.push_back(second);

  const std::string path = "/tmp/mlcore_update_stream_roundtrip.txt";
  ASSERT_TRUE(SaveUpdateStream(batches, path).ok);
  // Splice extra comments/blank lines into the saved file; the reload
  // must be unaffected.
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("\n# trailing commentary\n\n", f);
    std::fclose(f);
  }
  std::vector<UpdateBatch> loaded;
  IoStatus status = LoadUpdateStream(path, &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(loaded.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(loaded[i].add_vertices, batches[i].add_vertices) << i;
    EXPECT_EQ(loaded[i].remove_vertices, batches[i].remove_vertices) << i;
    EXPECT_EQ(loaded[i].insert_edges, batches[i].insert_edges) << i;
    EXPECT_EQ(loaded[i].remove_edges, batches[i].remove_edges) << i;
  }
  std::remove(path.c_str());
}

// Every malformed record kind is rejected with path:line context and a
// description of the expected form — the structural half of the
// validation story (GraphStore::ApplyUpdate owns the graph-dependent
// half).
TEST(UpdateStreamIoTest, EveryRecordKindRejectsWithPathLineContext) {
  const std::string path = "/tmp/mlcore_update_stream_records.txt";
  struct Case {
    const char* content;
    const char* needle;  // expected fragment of the message
  };
  const std::vector<Case> cases = {
      {"+ 0 1\n", "expected '+ <layer> <u> <v>'"},
      {"- 0 -1 2\n", "expected '- <layer> <u> <v>'"},
      {"+ 0 1 99999999999\n", "expected '+ <layer> <u> <v>'"},
      {"addv -3\n", "expected 'addv <count>'"},
      {"delv\n", "expected 'delv <v>'"},
      {"insert 0 1 2\n", "unknown record 'insert'"},
  };
  for (const Case& c : cases) {
    {
      std::FILE* f = std::fopen(path.c_str(), "w");
      ASSERT_NE(f, nullptr);
      std::fputs("# header\n\n", f);  // the record lands on line 3
      std::fputs(c.content, f);
      std::fclose(f);
    }
    std::vector<UpdateBatch> batches;
    IoStatus status = LoadUpdateStream(path, &batches);
    EXPECT_FALSE(status.ok) << c.content;
    EXPECT_NE(status.error.find(path + ":3:"), std::string::npos)
        << status.error;
    EXPECT_NE(status.error.find(c.needle), std::string::npos)
        << status.error;
  }
  std::remove(path.c_str());
}

TEST(GraphLoaderTest, RejectsDuplicateAndSelfLoopEdgesWithLineNumbers) {
  const std::string path = "/tmp/mlcore_loader_strict.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("n 4 2\n0 0 1\n0 1 0\n", f);  // duplicate in flipped order
    std::fclose(f);
  }
  MultiLayerGraph graph;
  IoStatus status = LoadMultiLayerGraph(path, &graph);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find(":3:"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("duplicate"), std::string::npos)
      << status.error;

  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("n 4 2\n1 2 2\n", f);  // self-loop
    std::fclose(f);
  }
  status = LoadMultiLayerGraph(path, &graph);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find(":2:"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("self-loop"), std::string::npos)
      << status.error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlcore
