// Tests for the mlcore::Engine query service (DESIGN.md §5): request
// validation, preprocessing-cache correctness (hits must be
// indistinguishable from cold runs), batch execution, and the concurrency
// contract — concurrent Run calls produce bit-identical results to
// sequential ones. Extends the tests/parallel_test.cc discipline to the
// service layer; the CI ThreadSanitizer job runs this file.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dccs/dccs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

MultiLayerGraph EngineGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 300;
  config.num_layers = 6;
  config.num_communities = 8;
  config.community_size_min = 10;
  config.community_size_max = 24;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

// A parameter mix exercising all three algorithms, kAuto, a repeated
// (d, s) pair (preprocess-cache hit with a different k), and a vacuous
// s > l query.
std::vector<DccsRequest> RequestMix() {
  std::vector<DccsRequest> requests;
  auto add = [&](int d, int s, int k, DccsAlgorithm algorithm) {
    DccsRequest request;
    request.params.d = d;
    request.params.s = s;
    request.params.k = k;
    request.algorithm = algorithm;
    requests.push_back(request);
  };
  add(3, 2, 4, DccsAlgorithm::kGreedy);
  add(3, 2, 4, DccsAlgorithm::kBottomUp);
  add(3, 4, 4, DccsAlgorithm::kTopDown);
  add(2, 3, 6, DccsAlgorithm::kAuto);
  add(3, 2, 6, DccsAlgorithm::kBottomUp);
  add(2, 5, 3, DccsAlgorithm::kTopDown);
  add(3, 7, 4, DccsAlgorithm::kAuto);  // s > l: valid but empty
  return requests;
}

void ExpectSameCores(const DccsResult& actual, const DccsResult& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.cores.size(), expected.cores.size()) << label;
  for (size_t i = 0; i < actual.cores.size(); ++i) {
    EXPECT_EQ(actual.cores[i].layers, expected.cores[i].layers)
        << label << " core " << i;
    EXPECT_EQ(actual.cores[i].vertices, expected.cores[i].vertices)
        << label << " core " << i;
  }
  EXPECT_EQ(actual.stats.candidates_generated,
            expected.stats.candidates_generated)
      << label;
}

TEST(EngineTest, MatchesFreeFunctions) {
  MultiLayerGraph graph = EngineGraph(11);
  Engine engine(&graph);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 5;

  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    Expected<DccsResult> response =
        engine.Run(DccsRequest{params, algorithm});
    ASSERT_TRUE(response.ok());
    ExpectSameCores(*response, SolveDccs(graph, params, algorithm),
                    AlgorithmName(algorithm));
  }
}

TEST(EngineTest, AutoResolvesToRecommendedAlgorithm) {
  MultiLayerGraph graph = EngineGraph(12);  // 6 layers
  Engine engine(&graph);
  DccsRequest request;
  request.params.d = 3;
  request.params.s = 2;  // 2·2 < 6 → bottom-up
  EXPECT_EQ(engine.ResolvedAlgorithm(request), DccsAlgorithm::kBottomUp);
  request.params.s = 4;  // 2·4 ≥ 6 → top-down
  EXPECT_EQ(engine.ResolvedAlgorithm(request), DccsAlgorithm::kTopDown);
  EXPECT_EQ(engine.ResolvedAlgorithm(request),
            RecommendedAlgorithm(graph, request.params.s));

  Expected<DccsResult> automatic = engine.Run(request);
  request.algorithm = DccsAlgorithm::kTopDown;
  Expected<DccsResult> explicit_td = engine.Run(request);
  ASSERT_TRUE(automatic.ok());
  ASSERT_TRUE(explicit_td.ok());
  ExpectSameCores(*automatic, *explicit_td, "auto vs explicit");
}

TEST(EngineTest, CacheHitsMatchColdRuns) {
  MultiLayerGraph graph = EngineGraph(13);
  Engine engine(&graph);

  for (const DccsRequest& request : RequestMix()) {
    Expected<DccsResult> cold = engine.Run(request);
    Expected<DccsResult> warm = engine.Run(request);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    // Identical cores AND identical search-effort statistics: the replayed
    // InitTopK seeds account their recorded dCC evaluations.
    ExpectSameCores(*warm, *cold, "warm vs cold");
    EXPECT_EQ(warm->stats.nodes_visited, cold->stats.nodes_visited);
  }

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.preprocess_hits, 0);
  EXPECT_GT(stats.seed_hits, 0);
  EXPECT_GT(stats.base_core_hits, 0);
  // The mix holds 4 distinct non-vacuous (d, s) pairs and 2 distinct d.
  EXPECT_EQ(stats.preprocess_misses, 4);
  EXPECT_EQ(stats.base_core_misses, 2);
}

TEST(EngineTest, SameDegreeSharesBaseCoresAcrossSupports) {
  MultiLayerGraph graph = EngineGraph(14);
  Engine engine(&graph);
  DccsRequest request;
  request.algorithm = DccsAlgorithm::kBottomUp;
  request.params.d = 3;
  request.params.s = 2;
  ASSERT_TRUE(engine.Run(request).ok());
  request.params.s = 3;  // new (d, s) entry, same base d-cores
  ASSERT_TRUE(engine.Run(request).ok());

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.base_core_misses, 1);
  EXPECT_EQ(stats.base_core_hits, 1);
  EXPECT_EQ(stats.preprocess_misses, 2);

  // The seeded-first-round fixpoint must equal a from-scratch run.
  ExpectSameCores(*engine.Run(request),
                  SolveDccs(graph, request.params, DccsAlgorithm::kBottomUp),
                  "seeded preprocessing");
}

TEST(EngineTest, RunBatchMatchesIndividualRuns) {
  MultiLayerGraph graph = EngineGraph(15);
  Engine engine(&graph, Engine::Options{.num_threads = 4});
  std::vector<DccsRequest> requests = RequestMix();
  DccsRequest invalid;
  invalid.params.s = 0;
  requests.insert(requests.begin() + 2, invalid);

  std::vector<Expected<DccsResult>> responses = engine.RunBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].params.s == 0) {
      EXPECT_FALSE(responses[i].ok()) << "slot " << i;
      EXPECT_EQ(responses[i].status().code, StatusCode::kInvalidArgument);
      continue;
    }
    Expected<DccsResult> alone = engine.Run(requests[i]);
    ASSERT_TRUE(responses[i].ok()) << "slot " << i;
    ASSERT_TRUE(alone.ok());
    ExpectSameCores(*responses[i], *alone,
                    "batch slot " + std::to_string(i));
  }

  // A repeated batch is deterministic.
  std::vector<Expected<DccsResult>> again = engine.RunBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(again[i].ok(), responses[i].ok()) << "slot " << i;
    if (again[i].ok()) {
      ExpectSameCores(*again[i], *responses[i],
                      "rebatch slot " + std::to_string(i));
    }
  }
}

TEST(EngineTest, ValidationRejectsMalformedRequests) {
  MultiLayerGraph graph = EngineGraph(16);
  Engine engine(&graph);

  auto expect_invalid = [&](DccsRequest request, const char* label) {
    Expected<DccsResult> response = engine.Run(request);
    EXPECT_FALSE(response.ok()) << label;
    EXPECT_EQ(response.status().code, StatusCode::kInvalidArgument) << label;
    EXPECT_FALSE(response.status().message.empty()) << label;
  };

  DccsRequest request;
  request.params.s = 0;
  expect_invalid(request, "s = 0");
  request = DccsRequest{};
  request.params.k = 0;
  expect_invalid(request, "k = 0");
  request = DccsRequest{};
  request.params.d = -1;
  expect_invalid(request, "d = -1");
  request = DccsRequest{};
  request.algorithm = static_cast<DccsAlgorithm>(42);
  expect_invalid(request, "out-of-enum algorithm");
  request = DccsRequest{};
  request.params.dcc_engine = static_cast<DccEngine>(7);
  expect_invalid(request, "out-of-enum dcc engine");

  // The engine keeps serving after rejecting garbage.
  EXPECT_TRUE(engine.Run(DccsRequest{}).ok());
}

TEST(EngineTest, LatticeSearchesRejectMoreThan64Layers) {
  GraphBuilder builder(/*num_vertices=*/4, /*num_layers=*/65);
  for (LayerId layer = 0; layer < 65; ++layer) {
    builder.AddEdge(layer, 0, 1);
    builder.AddEdge(layer, 1, 2);
    builder.AddEdge(layer, 0, 2);
  }
  MultiLayerGraph graph = builder.Build();
  Engine engine(&graph);

  DccsRequest request;
  request.params.d = 2;
  request.params.s = 2;
  request.params.k = 2;
  request.algorithm = DccsAlgorithm::kBottomUp;
  Expected<DccsResult> bu = engine.Run(request);
  EXPECT_FALSE(bu.ok());
  EXPECT_EQ(bu.status().code, StatusCode::kInvalidArgument);

  request.algorithm = DccsAlgorithm::kTopDown;
  Expected<DccsResult> td = engine.Run(request);
  EXPECT_FALSE(td.ok());
  EXPECT_EQ(td.status().code, StatusCode::kInvalidArgument);

  // GD-DCCS has no 64-layer restriction: C(65, 2) is tiny.
  request.algorithm = DccsAlgorithm::kGreedy;
  Expected<DccsResult> greedy = engine.Run(request);
  ASSERT_TRUE(greedy.ok());
  EXPECT_FALSE(greedy->cores.empty());
}

TEST(EngineTest, GreedyRejectsIntractableSubsetCounts) {
  GraphBuilder builder(/*num_vertices=*/3, /*num_layers=*/40);
  builder.AddEdge(0, 0, 1);
  MultiLayerGraph graph = builder.Build();
  Engine engine(&graph);

  DccsRequest request;
  request.params.s = 20;  // C(40, 20) ≈ 1.4e11 candidates
  request.algorithm = DccsAlgorithm::kGreedy;
  Expected<DccsResult> response = engine.Run(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code, StatusCode::kUnsupported);
}

TEST(EngineTest, FindCommunityMatchesFreeFunction) {
  MultiLayerGraph graph = EngineGraph(17);
  Engine engine(&graph);

  CommunityRequest request;
  request.d = 3;
  request.s = 2;
  bool compared = false;
  for (VertexId query = 0; query < 40; ++query) {
    request.query = query;
    Expected<CommunitySearchResult> response = engine.FindCommunity(request);
    ASSERT_TRUE(response.ok());
    CommunitySearchResult reference =
        SearchCommunity(graph, query, request.d, request.s);
    EXPECT_EQ(response->layers, reference.layers) << "query " << query;
    EXPECT_EQ(response->community, reference.community) << "query " << query;
    compared |= reference.Found();
  }
  EXPECT_TRUE(compared) << "mix produced no non-trivial community";
  // Repeat queries share the base d-core cache with DCCS preprocessing.
  EXPECT_GT(engine.cache_stats().base_core_hits, 0);

  request.query = graph.NumVertices();
  Expected<CommunitySearchResult> out_of_range =
      engine.FindCommunity(request);
  EXPECT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code, StatusCode::kInvalidArgument);
}

// The §4 contract, extended to the service: any interleaving of concurrent
// Run calls yields the same bits as running each query alone.
TEST(EngineConcurrencyTest, ConcurrentRunsBitIdenticalToSequential) {
  MultiLayerGraph graph = EngineGraph(18);
  const std::vector<DccsRequest> requests = RequestMix();

  // Reference: every query answered alone on a fresh engine.
  std::vector<DccsResult> reference;
  {
    Engine engine(&graph);
    for (const DccsRequest& request : requests) {
      Expected<DccsResult> response = engine.Run(request);
      ASSERT_TRUE(response.ok());
      reference.push_back(std::move(*response));
    }
  }

  constexpr int kThreads = 8;
  Engine engine(&graph, Engine::Options{.num_threads = 2});
  std::vector<std::vector<DccsResult>> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger the starting offset so threads hit different cache entries
      // (and each other's in-flight computations) in different orders.
      for (size_t i = 0; i < requests.size(); ++i) {
        const size_t slot =
            (i + static_cast<size_t>(t)) % requests.size();
        Expected<DccsResult> response = engine.Run(requests[slot]);
        ASSERT_TRUE(response.ok());
        per_thread[static_cast<size_t>(t)].push_back(std::move(*response));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const size_t slot = (i + static_cast<size_t>(t)) % requests.size();
      ExpectSameCores(per_thread[static_cast<size_t>(t)][i], reference[slot],
                      "thread " + std::to_string(t) + " slot " +
                          std::to_string(slot));
    }
  }
}

// Batches racing single queries: slots must still match solo answers.
TEST(EngineConcurrencyTest, BatchesAndRunsInterleave) {
  MultiLayerGraph graph = EngineGraph(19);
  const std::vector<DccsRequest> requests = RequestMix();

  std::vector<DccsResult> reference;
  {
    Engine engine(&graph);
    for (const DccsRequest& request : requests) {
      reference.push_back(std::move(*engine.Run(request)));
    }
  }

  Engine engine(&graph, Engine::Options{.num_threads = 3});
  std::vector<std::vector<Expected<DccsResult>>> batches(2);
  std::vector<DccsResult> singles;
  std::thread batch_a([&] { batches[0] = engine.RunBatch(requests); });
  std::thread batch_b([&] { batches[1] = engine.RunBatch(requests); });
  for (const DccsRequest& request : requests) {
    singles.push_back(std::move(*engine.Run(request)));
  }
  batch_a.join();
  batch_b.join();

  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameCores(singles[i], reference[i],
                    "single " + std::to_string(i));
    for (auto& batch : batches) {
      ASSERT_TRUE(batch[i].ok());
      ExpectSameCores(*batch[i], reference[i],
                      "batched " + std::to_string(i));
    }
  }
}

// ResetStats zeroes every cache and scheduler counter under their locks
// without touching cache *contents*: the next identical query is still a
// hit, and it is counted from a clean slate — deltas instead of
// cumulative totals.
TEST(EngineTest, ResetStatsClearsCountersButKeepsCacheContents) {
  MultiLayerGraph graph = EngineGraph(21);
  Engine engine(&graph);
  DccsRequest request;
  request.params.d = 3;
  request.params.s = 2;
  ASSERT_TRUE(engine.Run(request).ok());
  ASSERT_GT(engine.cache_stats().preprocess_misses, 0);
  ASSERT_GT(engine.scheduler_stats().executed, 0);

  engine.ResetStats();
  EngineCacheStats cache = engine.cache_stats();
  EXPECT_EQ(cache.preprocess_hits, 0);
  EXPECT_EQ(cache.preprocess_misses, 0);
  EXPECT_EQ(cache.base_core_hits, 0);
  EXPECT_EQ(cache.base_core_misses, 0);
  EXPECT_EQ(cache.seed_hits, 0);
  EXPECT_EQ(cache.seed_misses, 0);
  EXPECT_EQ(cache.revisions_emitted, 0);
  SchedulerStats sched = engine.scheduler_stats();
  EXPECT_EQ(sched.submitted, 0);
  EXPECT_EQ(sched.executed, 0);

  // The caches themselves survived: the repeat query is a pure hit.
  ASSERT_TRUE(engine.Run(request).ok());
  cache = engine.cache_stats();
  EXPECT_EQ(cache.preprocess_hits, 1);
  EXPECT_EQ(cache.preprocess_misses, 0);
  EXPECT_EQ(engine.scheduler_stats().executed, 1);
}

// The subscription counters ride in EngineCacheStats: one emitted
// revision per delivered epoch, unchanged-skip accounting for epochs the
// generational keys proved irrelevant, and coalescing for folded buffer
// entries (exercised in depth by tests/subscription_test.cc).
TEST(EngineTest, SubscriptionCountersTrackRevisions) {
  GraphBuilder builder(/*num_vertices=*/8, /*num_layers=*/2);
  for (LayerId layer = 0; layer < 2; ++layer) {
    for (VertexId u = 0; u < 4; ++u) {
      for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(layer, u, v);
    }
  }
  GraphStore::Options store_options;
  store_options.tracked_degrees = {3};
  Engine engine(std::make_shared<GraphStore>(builder.Build(), store_options));

  DccsRequest request;
  request.params.d = 3;
  request.params.s = 2;
  request.params.k = 2;
  Expected<Subscription> subscribed = engine.Subscribe(request);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  ASSERT_TRUE(sub.Next().has_value());  // initial revision (computed)

  // Background churn between spare vertices: absorbed as unchanged.
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Insert(0, 5, 6)).ok());
  std::optional<ResultRevision> unchanged = sub.Next();
  ASSERT_TRUE(unchanged.has_value());
  EXPECT_TRUE(unchanged->unchanged);

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.revisions_emitted, 2);
  EXPECT_EQ(stats.revisions_unchanged_skipped, 1);
  EXPECT_EQ(stats.revisions_coalesced, 0);
  sub.Cancel();
}

// One warm Engine::Run must produce a complete span tree in the slow-query
// log: submission-phase spans (snapshot pin, admission wait), the
// "query.run" root, and the preprocess/search/cover phases parented under
// it, all with committed timings. This is the acceptance check for the
// per-query tracing pipeline end to end (DESIGN.md §12).
TEST(ObsEngineTest, RunProducesSpanTree) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  MultiLayerGraph graph = EngineGraph(23);
  Engine engine(&graph);
  DccsRequest request;
  request.params.d = 3;
  request.params.s = 2;
  request.params.k = 4;
  request.algorithm = DccsAlgorithm::kBottomUp;
  ASSERT_TRUE(engine.Run(request).ok());  // cold: fill caches
  engine.ResetStats();
  ASSERT_TRUE(engine.Run(request).ok());  // warm: the traced run

  const EngineStatsReport report = engine.stats_report();
  ASSERT_EQ(report.slow_queries.size(), 1u);
  const obs::TraceSummary& trace = report.slow_queries[0];
  EXPECT_NE(trace.label.find("bu"), std::string::npos);
  EXPECT_NE(trace.label.find("d=3"), std::string::npos);
  EXPECT_EQ(trace.dropped_spans, 0);
  EXPECT_GT(trace.total_ms, 0.0);

  auto find = [&trace](const char* name) -> const obs::SpanRecord* {
    for (const obs::SpanRecord& span : trace.spans) {
      if (std::string(span.name) == name) return &span;
    }
    return nullptr;
  };
  const obs::SpanRecord* pin = find("query.snapshot_pin");
  const obs::SpanRecord* wait = find("query.admission_wait");
  const obs::SpanRecord* run = find("query.run");
  const obs::SpanRecord* preprocess = find("query.preprocess");
  const obs::SpanRecord* search = find("query.search");
  const obs::SpanRecord* cover = find("query.cover");
  ASSERT_NE(pin, nullptr);
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(run, nullptr);
  ASSERT_NE(preprocess, nullptr);
  ASSERT_NE(search, nullptr);
  ASSERT_NE(cover, nullptr);
  // Submission-phase spans predate the run root, so they are top-level.
  EXPECT_EQ(pin->parent, 0u);
  EXPECT_EQ(wait->parent, 0u);
  EXPECT_EQ(run->parent, 0u);
  EXPECT_EQ(preprocess->parent, run->id);
  EXPECT_EQ(search->parent, run->id);
  EXPECT_EQ(cover->parent, run->id);
  EXPECT_GT(run->wall_ms, 0.0);
  EXPECT_GE(run->wall_ms, search->wall_ms);

  // The same run also fed the query latency histograms.
  bool saw_total_hist = false;
  for (const obs::MetricSnapshot& m : report.metrics) {
    if (m.name == "engine.query.total_ms") {
      saw_total_hist = true;
      EXPECT_EQ(m.kind, obs::MetricKind::kHistogram);
      EXPECT_EQ(m.hist.count, 1);
      EXPECT_GT(m.hist.sum, 0.0);
    }
  }
  EXPECT_TRUE(saw_total_hist);
}

// stats_report() merges engine- and store-scoped metrics into one sorted
// view, and ResetStats clears only the engine prefix plus the slow log.
TEST(ObsEngineTest, StatsReportMergesAndResets) {
  MultiLayerGraph graph = EngineGraph(24);
  Engine engine(&graph);
  DccsRequest request;
  request.params.d = 3;
  request.params.s = 2;
  ASSERT_TRUE(engine.Run(request).ok());

  EngineStatsReport report = engine.stats_report();
  ASSERT_FALSE(report.metrics.empty());
  for (size_t i = 1; i < report.metrics.size(); ++i) {
    EXPECT_LE(report.metrics[i - 1].name, report.metrics[i].name);
  }
  bool saw_engine = false;
  bool saw_store = false;
  for (const obs::MetricSnapshot& m : report.metrics) {
    if (m.name.rfind("engine.", 0) == 0) saw_engine = true;
    if (m.name.rfind("store.", 0) == 0) saw_store = true;
  }
  EXPECT_TRUE(saw_engine);
  EXPECT_TRUE(saw_store);

  engine.ResetStats();
  report = engine.stats_report();
  EXPECT_TRUE(report.slow_queries.empty());
  for (const obs::MetricSnapshot& m : report.metrics) {
    if (m.kind == obs::MetricKind::kCounter &&
        m.name.rfind("engine.", 0) == 0) {
      EXPECT_EQ(m.value, 0) << m.name;
    }
  }
}

// Satellite regression: an out-of-enum algorithm used to fall through
// SolveDccs's switch and silently return an empty result; it now dies with
// the engine's validation message.
TEST(DccsWrapperDeathTest, SolveDccsAbortsOnUnknownAlgorithm) {
  MultiLayerGraph graph = EngineGraph(20);
  DccsParams params;
  EXPECT_DEATH(SolveDccs(graph, params, static_cast<DccsAlgorithm>(42)),
               "unknown DccsAlgorithm");
}

}  // namespace
}  // namespace mlcore
