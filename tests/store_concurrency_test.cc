// Concurrency contract of the dynamic GraphStore + Engine integration
// (DESIGN.md §8), run under TSan/ASan in CI:
//
//  * queries racing ApplyUpdate always answer from exactly one epoch —
//    every result is bit-identical to the sequential answer for the epoch
//    it reports (no torn snapshots);
//  * a query submitted before an update is pinned to its submission-time
//    snapshot even when the update publishes first;
//  * unchanged-content caches stay warm across epochs (hit counters prove
//    it), and changed content is never served stale;
//  * cancelled/finished queries do not pin retired snapshots forever.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dccs/dccs.h"
#include "graph/generators.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace mlcore {
namespace {

MultiLayerGraph StoreGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 220;
  config.num_layers = 5;
  config.num_communities = 6;
  config.community_size_min = 10;
  config.community_size_max = 20;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

// Deterministic churn batch for round r against the epoch-(r) graph:
// removes a few present edges and inserts a few absent ones.
UpdateBatch ChurnBatch(const MultiLayerGraph& graph, uint64_t round) {
  Rng rng(round * 7919 + 3);
  UpdateBatch batch;
  const int32_t n = graph.NumVertices();
  for (int i = 0; i < 4; ++i) {
    auto layer = static_cast<LayerId>(rng.Uniform(0, graph.NumLayers() - 1));
    auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    auto nbrs = graph.Neighbors(layer, v);
    if (nbrs.empty()) continue;
    VertexId u = nbrs[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(nbrs.size()) - 1))];
    bool dup = false;
    for (const EdgeUpdate& e : batch.remove_edges) {
      if (e.layer == layer && std::minmax(e.u, e.v) == std::minmax(u, v)) {
        dup = true;
      }
    }
    if (!dup) batch.Remove(layer, u, v);
  }
  for (int i = 0; i < 6; ++i) {
    auto layer = static_cast<LayerId>(rng.Uniform(0, graph.NumLayers() - 1));
    auto u = static_cast<VertexId>(rng.Uniform(0, n - 1));
    auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    if (u == v || graph.HasEdge(layer, std::min(u, v), std::max(u, v))) {
      continue;
    }
    bool dup = false;
    for (const EdgeUpdate& e : batch.insert_edges) {
      if (e.layer == layer && std::minmax(e.u, e.v) == std::minmax(u, v)) {
        dup = true;
      }
    }
    for (const EdgeUpdate& e : batch.remove_edges) {
      if (e.layer == layer && std::minmax(e.u, e.v) == std::minmax(u, v)) {
        dup = true;
      }
    }
    if (!dup) batch.Insert(layer, u, v);
  }
  return batch;
}

DccsRequest StoreRequest() {
  DccsRequest request;
  request.params.d = 3;
  request.params.s = 2;
  request.params.k = 4;
  request.algorithm = DccsAlgorithm::kBottomUp;
  return request;
}

void ExpectSameCores(const DccsResult& actual, const DccsResult& expected,
                     uint64_t epoch) {
  ASSERT_EQ(actual.cores.size(), expected.cores.size()) << "epoch " << epoch;
  for (size_t i = 0; i < actual.cores.size(); ++i) {
    ASSERT_EQ(actual.cores[i].layers, expected.cores[i].layers)
        << "epoch " << epoch << " core " << i;
    ASSERT_EQ(actual.cores[i].vertices, expected.cores[i].vertices)
        << "epoch " << epoch << " core " << i;
  }
}

TEST(StoreConcurrencyTest, RacingQueriesAreSelfConsistentWithOneEpoch) {
  constexpr uint64_t kEpochs = 6;

  // Sequential pass: the expected result per epoch, and the batches.
  std::vector<UpdateBatch> batches;
  std::vector<DccsResult> expected;
  {
    GraphStore::Options options;
    options.tracked_degrees = {3};
    auto store = std::make_shared<GraphStore>(StoreGraph(5), options);
    Engine engine(store);
    for (uint64_t e = 0; e <= kEpochs; ++e) {
      Expected<DccsResult> response = engine.Run(StoreRequest());
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->epoch, e);
      expected.push_back(*response);
      if (e < kEpochs) {
        batches.push_back(ChurnBatch(store->snapshot()->graph(), e));
        ASSERT_TRUE(engine.ApplyUpdate(batches.back()).ok());
      }
    }
  }

  // Racing pass: one writer replays the same batches while reader threads
  // hammer the engine. Every OK result must match the sequential answer
  // for the epoch it reports.
  GraphStore::Options options;
  options.tracked_degrees = {3};
  auto store = std::make_shared<GraphStore>(StoreGraph(5), options);
  Engine engine(store, Engine::Options{.num_threads = 2, .query_workers = 2});

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Expected<DccsResult> response = engine.Run(StoreRequest());
        ASSERT_TRUE(response.ok());
        ASSERT_LE(response->epoch, kEpochs);
        ExpectSameCores(*response,
                        expected[static_cast<size_t>(response->epoch)],
                        response->epoch);
      }
    });
  }
  for (const UpdateBatch& batch : batches) {
    auto outcome = engine.ApplyUpdate(batch);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message;
    // Let queries interleave with the published epoch for a moment.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // The final epoch serves the final expected answer.
  Expected<DccsResult> last = engine.Run(StoreRequest());
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->epoch, kEpochs);
  ExpectSameCores(*last, expected.back(), kEpochs);
}

TEST(StoreConcurrencyTest, SubmittedQueryIsPinnedToItsSubmissionEpoch) {
  auto store = std::make_shared<GraphStore>(StoreGraph(6));
  // query_workers = 0: the submitted query only runs when we Wait, which
  // is guaranteed to be after the update below has published.
  Engine engine(store, Engine::Options{.query_workers = 0});

  QueryHandle handle = engine.Submit(StoreRequest());
  ASSERT_TRUE(engine.ApplyUpdate(
                  ChurnBatch(store->snapshot()->graph(), 42)).ok());
  ASSERT_EQ(engine.snapshot_epoch(), 1u);

  const Expected<DccsResult>& outcome = handle.Wait();
  ASSERT_TRUE(outcome.ok());
  // Ran after the update, but answers from the submission-time snapshot.
  EXPECT_EQ(outcome->epoch, 0u);

  Expected<DccsResult> fresh = engine.Run(StoreRequest());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epoch, 1u);
}

TEST(StoreConcurrencyTest, UnchangedCoreSubgraphsKeepPreprocessCachesWarm) {
  GraphStore::Options options;
  options.tracked_degrees = {3};
  auto store = std::make_shared<GraphStore>(StoreGraph(7), options);
  Engine engine(store);

  ASSERT_TRUE(engine.Run(StoreRequest()).ok());  // cold build
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.preprocess_misses, 1);
  EXPECT_EQ(stats.preprocess_hits, 0);

  // A background-only update: two fresh vertices joined by one edge can
  // never enter a 3-core, so d=3's core subgraphs are untouched...
  // except that growing the id space conservatively bumps the generation.
  // Use an isolated-background edge between existing low-degree vertices
  // instead: vertices outside every 3-core with degree < 3 afterwards.
  const MultiLayerGraph& graph = store->snapshot()->graph();
  const TrackedCores* tracked = store->snapshot()->tracked(3);
  ASSERT_NE(tracked, nullptr);
  std::vector<uint8_t> in_core(static_cast<size_t>(graph.NumVertices()), 0);
  for (const auto& core : tracked->cores) {
    for (VertexId v : *core) in_core[static_cast<size_t>(v)] = 1;
  }
  VertexId a = -1, b = -1;
  for (VertexId v = 0; v < graph.NumVertices() && b < 0; ++v) {
    if (in_core[static_cast<size_t>(v)] != 0 || graph.Degree(0, v) > 0) {
      continue;
    }
    if (a < 0) {
      a = v;
    } else {
      b = v;
    }
  }
  ASSERT_GE(b, 0) << "planted graph should have layer-0 isolated vertices";
  const uint64_t generation_before = store->snapshot()->core_generation(3);
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Insert(0, a, b)).ok());
  EXPECT_EQ(engine.snapshot_epoch(), 1u);
  EXPECT_EQ(store->snapshot()->core_generation(3), generation_before)
      << "a degree-1 background edge cannot touch any 3-core";

  Expected<DccsResult> warm = engine.Run(StoreRequest());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->epoch, 1u);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.preprocess_misses, 1) << "warm entry must survive";
  EXPECT_EQ(stats.preprocess_hits, 1);

  // Now rip an edge out of a 3-core: the generation must move and the
  // next query must rebuild.
  const MultiLayerGraph& now = store->snapshot()->graph();
  tracked = store->snapshot()->tracked(3);
  VertexId cu = -1, cv = -1;
  for (LayerId layer = 0; layer < now.NumLayers() && cu < 0; ++layer) {
    const VertexSet& core = *tracked->cores[static_cast<size_t>(layer)];
    for (VertexId v : core) {
      for (VertexId u : now.Neighbors(layer, v)) {
        if (u > v && std::binary_search(core.begin(), core.end(), u)) {
          cu = v;
          cv = u;
          ASSERT_TRUE(
              engine.ApplyUpdate(UpdateBatch{}.Remove(layer, cu, cv)).ok());
          break;
        }
      }
      if (cu >= 0) break;
    }
  }
  ASSERT_GE(cu, 0);
  EXPECT_GT(store->snapshot()->core_generation(3), generation_before);
  ASSERT_TRUE(engine.Run(StoreRequest()).ok());
  stats = engine.cache_stats();
  EXPECT_EQ(stats.preprocess_misses, 2) << "core edit must invalidate";
  EXPECT_EQ(stats.preprocess_hits, 1);
}

TEST(StoreConcurrencyTest, RetiredSnapshotsAreNotPinnedForever) {
  auto store = std::make_shared<GraphStore>(StoreGraph(8));
  Engine engine(store, Engine::Options{.query_workers = 0});

  std::weak_ptr<const GraphSnapshot> retired;
  {
    // A submitted-then-cancelled query and a completed query both pin
    // epoch 0 only as long as their handles live.
    QueryHandle cancelled = engine.Submit(StoreRequest());
    cancelled.Cancel();
    EXPECT_EQ(cancelled.Wait().status().code, StatusCode::kCancelled);
    Expected<DccsResult> completed = engine.Run(StoreRequest());
    ASSERT_TRUE(completed.ok());
    retired = store->snapshot();
    ASSERT_TRUE(
        engine.ApplyUpdate(ChurnBatch(store->snapshot()->graph(), 9)).ok());
  }
  // Handles are gone and the store has moved on; the only remaining pins
  // are engine caches (cores/solvers), which ClearCache drops. The next
  // query re-warms everything for the current epoch.
  engine.ClearCache();
  EXPECT_TRUE(retired.expired())
      << "epoch-0 snapshot is still pinned after cancel + update + "
         "ClearCache";
  Expected<DccsResult> fresh = engine.Run(StoreRequest());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epoch, 1u);
}

}  // namespace
}  // namespace mlcore
