#include <gtest/gtest.h>

#include "dccs/cover.h"

namespace mlcore {
namespace {

LayerSet L(std::initializer_list<LayerId> layers) { return layers; }

TEST(CoverageIndexTest, Rule1FillsUpToK) {
  CoverageIndex index(2);
  EXPECT_FALSE(index.full());
  EXPECT_TRUE(index.Update({1, 2, 3}, L({0})));
  EXPECT_EQ(index.size(), 1);
  EXPECT_EQ(index.cover_size(), 3);
  EXPECT_TRUE(index.Update({3, 4}, L({1})));
  EXPECT_TRUE(index.full());
  EXPECT_EQ(index.cover_size(), 4);
  index.CheckInvariants();
}

TEST(CoverageIndexTest, EmptyCandidateRejected) {
  CoverageIndex index(2);
  EXPECT_FALSE(index.Update({}, L({0})));
  EXPECT_EQ(index.size(), 0);
}

TEST(CoverageIndexTest, ExclusiveSizesTracked) {
  CoverageIndex index(3);
  index.Update({1, 2, 3}, L({0}));
  index.Update({3, 4, 5}, L({1}));
  index.Update({5, 6}, L({2}));
  // Exclusive: {1,2} for slot 0, {4} for slot 1, {6} for slot 2.
  EXPECT_EQ(index.ExclusiveSize(0), 2);
  EXPECT_EQ(index.ExclusiveSize(1), 1);
  EXPECT_EQ(index.ExclusiveSize(2), 1);
  EXPECT_EQ(index.cover_size(), 6);
  index.CheckInvariants();
}

TEST(CoverageIndexTest, Rule2ReplacesMinExclusive) {
  CoverageIndex index(2);
  index.Update({1, 2, 3, 4}, L({0}));
  index.Update({4, 5}, L({1}));  // exclusive {5}: the C* victim
  EXPECT_EQ(index.cover_size(), 5);
  // Candidate {10..16}: |Cov((R−C*)∪C)| = |{1,2,3,4}|+7 = 11 ≥ (3/2)·5=7.5 ✓
  EXPECT_TRUE(index.Update({10, 11, 12, 13, 14, 15, 16}, L({2})));
  EXPECT_EQ(index.size(), 2);
  EXPECT_EQ(index.cover_size(), 11);
  // The replaced entry must be the one that exclusively covered {5}.
  for (const auto& entry : index.entries()) {
    EXPECT_NE(entry.vertices, (VertexSet{4, 5}));
  }
  index.CheckInvariants();
}

TEST(CoverageIndexTest, Rule2RejectsInsufficientGain) {
  CoverageIndex index(2);
  index.Update({1, 2, 3, 4}, L({0}));
  index.Update({5, 6, 7}, L({1}));
  EXPECT_EQ(index.cover_size(), 7);
  // Candidate {8,9,10}: replacing C* (slot 1, excl 3) yields cover 4+3=7
  // < (1+1/2)·7 = 10.5 → rejected.
  EXPECT_FALSE(index.Update({8, 9, 10}, L({2})));
  EXPECT_EQ(index.cover_size(), 7);
  index.CheckInvariants();
}

TEST(CoverageIndexTest, SizeWithReplacementMatchesDefinition) {
  CoverageIndex index(2);
  index.Update({1, 2, 3}, L({0}));
  index.Update({3, 4}, L({1}));  // exclusive {4} → C*
  // Candidate {2, 4, 9}: (R − C*) covers {1,2,3}; candidate adds {4, 9}.
  EXPECT_EQ(index.SizeWithReplacement({2, 4, 9}), 5);
  // Candidate equal to C* reproduces the current cover.
  EXPECT_EQ(index.SizeWithReplacement({3, 4}), 4);
}

TEST(CoverageIndexTest, MarginalGain) {
  CoverageIndex index(2);
  index.Update({1, 2, 3}, L({0}));
  EXPECT_EQ(index.MarginalGain({2, 3, 4, 5}), 2);
  EXPECT_EQ(index.MarginalGain({1, 2}), 0);
  EXPECT_EQ(index.MarginalGain({7}), 1);
}

TEST(CoverageIndexTest, Eq1IntegerBoundaryExact) {
  CoverageIndex index(2);
  index.Update({1, 2, 3, 4}, L({0}));
  index.Update({5, 6}, L({1}));  // cover 6, C* = slot 1 (excl 2)
  // Eq (1) threshold: (1+1/2)·6 = 9. Candidate giving exactly 9 must pass.
  // (R − C*) covers 4; need candidate adding exactly 5 new: {7,8,9,10,11}.
  EXPECT_EQ(index.SizeWithReplacement({7, 8, 9, 10, 11}), 9);
  EXPECT_TRUE(index.SatisfiesEq1({7, 8, 9, 10, 11}));
  // One fewer vertex → 8 < 9 fails.
  EXPECT_FALSE(index.SatisfiesEq1({7, 8, 9, 10}));
}

TEST(CoverageIndexTest, BelowOrderThreshold) {
  CoverageIndex index(2);
  index.Update({1, 2, 3, 4}, L({0}));
  index.Update({5, 6}, L({1}));
  // Threshold = |Cov|/k + |Δ*| = 6/2 + 2 = 5.
  EXPECT_TRUE(index.BelowOrderThreshold(4));
  EXPECT_FALSE(index.BelowOrderThreshold(5));
}

TEST(CoverageIndexTest, Eq2Threshold) {
  CoverageIndex index(2);
  index.Update({1, 2, 3, 4}, L({0}));
  index.Update({5, 6}, L({1}));
  // (1/2+1/4)·6 + (3/2)·2 = 4.5+3 = 7.5 → |U| = 7 passes, 8 fails.
  EXPECT_TRUE(index.SatisfiesEq2(7));
  EXPECT_FALSE(index.SatisfiesEq2(8));
}

TEST(CoverageIndexTest, RandomizedInvariantStress) {
  // Drive the index with many pseudo-random candidates and continuously
  // validate the M/Δ bookkeeping against recomputation.
  CoverageIndex index(4);
  uint64_t state = 88172645463325252ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 300; ++round) {
    VertexSet candidate;
    int size = 1 + static_cast<int>(next() % 12);
    for (int i = 0; i < size; ++i) {
      candidate.push_back(static_cast<VertexId>(next() % 60));
    }
    std::sort(candidate.begin(), candidate.end());
    candidate.erase(std::unique(candidate.begin(), candidate.end()),
                    candidate.end());
    int64_t before = index.cover_size();
    bool updated = index.Update(candidate, L({0}));
    index.CheckInvariants();
    if (updated && index.full() && before > 0) {
      // Rule 2 only fires on a strict-enough improvement.
      EXPECT_GE(index.cover_size() * 4, before * 4)
          << "cover may never shrink below the Eq.(1) guarantee";
    }
    EXPECT_LE(index.size(), 4);
  }
}

TEST(CoverageIndexTest, CoverNeverDecreasesUnderRule2) {
  CoverageIndex index(3);
  uint64_t state = 0x2545F4914F6CDD1DULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  int64_t previous_cover = 0;
  for (int round = 0; round < 200; ++round) {
    VertexSet candidate;
    int size = 1 + static_cast<int>(next() % 15);
    for (int i = 0; i < size; ++i) {
      candidate.push_back(static_cast<VertexId>(next() % 80));
    }
    std::sort(candidate.begin(), candidate.end());
    candidate.erase(std::unique(candidate.begin(), candidate.end()),
                    candidate.end());
    bool was_full = index.full();
    index.Update(candidate, L({0}));
    if (was_full) {
      EXPECT_GE(index.cover_size(), previous_cover);
    }
    previous_cover = index.cover_size();
  }
}

}  // namespace
}  // namespace mlcore
