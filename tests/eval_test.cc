#include <gtest/gtest.h>

#include "eval/complexes.h"
#include "eval/dot_export.h"
#include "eval/metrics.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

TEST(MetricsTest, CoverOverlapBasics) {
  OverlapMetrics m = CoverOverlap({1, 2, 3, 4}, {3, 4, 5});
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_NEAR(m.f1, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(MetricsTest, PerfectAndZeroOverlap) {
  OverlapMetrics perfect = CoverOverlap({1, 2}, {1, 2});
  EXPECT_DOUBLE_EQ(perfect.precision, 1.0);
  EXPECT_DOUBLE_EQ(perfect.recall, 1.0);
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
  OverlapMetrics zero = CoverOverlap({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(zero.f1, 0.0);
  OverlapMetrics empty = CoverOverlap({}, {1});
  EXPECT_DOUBLE_EQ(empty.precision, 0.0);
}

TEST(MetricsTest, ContainmentDistribution) {
  std::vector<VertexSet> cliques = {{1, 2, 3}, {4, 5, 6}, {1, 2, 9}};
  VertexSet cover = {1, 2, 3, 4};
  auto dist = ContainmentDistribution(cliques, cover);
  ASSERT_TRUE(dist.count(3));
  const auto& row = dist[3];
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_DOUBLE_EQ(row[1], 1.0 / 3.0);  // {4,5,6} ∩ cover = {4}
  EXPECT_DOUBLE_EQ(row[2], 1.0 / 3.0);  // {1,2,9} ∩ cover = {1,2}
  EXPECT_DOUBLE_EQ(row[3], 1.0 / 3.0);  // {1,2,3} fully contained
  double sum = 0;
  for (double f : row) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MetricsTest, ContainmentDistributionGroupsBySize) {
  std::vector<VertexSet> cliques = {{1, 2, 3}, {1, 2, 3, 4}};
  auto dist = ContainmentDistribution(cliques, {1, 2, 3, 4});
  EXPECT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[3][3], 1.0);
  EXPECT_DOUBLE_EQ(dist[4][4], 1.0);
}

TEST(MetricsTest, SetF1Basics) {
  EXPECT_DOUBLE_EQ(SetF1({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(SetF1({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(SetF1({}, {1}), 0.0);
  // truth {1,2,3,4}, found {3,4,5}: p=2/3, r=1/2 → F1 = 4/7.
  EXPECT_NEAR(SetF1({1, 2, 3, 4}, {3, 4, 5}), 4.0 / 7.0, 1e-12);
}

TEST(MetricsTest, CommunityRecoveryScore) {
  std::vector<VertexSet> truth = {{1, 2, 3}, {10, 11, 12, 13}};
  std::vector<VertexSet> found = {{1, 2, 3}, {10, 11}, {50}};
  // First community matched exactly (1.0); second best-matched by {10,11}:
  // p=1, r=1/2 → F1 = 2/3. Average = 5/6.
  EXPECT_NEAR(CommunityRecoveryScore(truth, found), (1.0 + 2.0 / 3.0) / 2,
              1e-12);
  EXPECT_DOUBLE_EQ(CommunityRecoveryScore({}, found), 0.0);
  EXPECT_DOUBLE_EQ(CommunityRecoveryScore(truth, {}), 0.0);
}

TEST(ComplexesTest, RecallCountsFullContainmentOnly) {
  std::vector<VertexSet> complexes = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<VertexSet> subgraphs = {{1, 2, 3}, {5, 6, 7, 8}};
  // {1,2} ⊆ first, {5,6} ⊆ second, {3,4} split across → 2/3.
  EXPECT_NEAR(ComplexRecall(complexes, subgraphs), 2.0 / 3.0, 1e-12);
}

TEST(ComplexesTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(ComplexRecall({}, {{1}}), 0.0);
  EXPECT_DOUBLE_EQ(ComplexRecall({{1}}, {}), 0.0);
}

TEST(DotExportTest, EmitsVerticesEdgesAndColors) {
  GraphBuilder builder(4, 1);
  builder.AddEdge(0, 0, 1);
  builder.AddEdge(0, 1, 2);
  builder.AddEdge(0, 2, 3);
  MultiLayerGraph graph = builder.Build();
  std::map<VertexId, std::string> colors = {
      {0, "red"}, {1, "green"}, {2, "blue"}};
  std::string dot = ExportDot(graph, 0, colors, "fig31");
  EXPECT_NE(dot.find("graph fig31 {"), std::string::npos);
  EXPECT_NE(dot.find("v0 [fillcolor=red]"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("v1 -- v2"), std::string::npos);
  // Vertex 3 has no colour class → excluded, as is its edge.
  EXPECT_EQ(dot.find("v3"), std::string::npos);
}

}  // namespace
}  // namespace mlcore
