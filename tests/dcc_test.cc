#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcc.h"
#include "core/dcore.h"
#include "core/fds.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

// Independent fixpoint reference for the d-CC definition.
VertexSet NaiveDcc(const MultiLayerGraph& graph, const LayerSet& layers,
                   int d, VertexSet scope) {
  bool changed = true;
  while (changed) {
    changed = false;
    VertexSet next;
    for (VertexId v : scope) {
      bool keep = true;
      for (LayerId layer : layers) {
        int degree = 0;
        for (VertexId u : graph.Neighbors(layer, v)) {
          if (std::binary_search(scope.begin(), scope.end(), u)) ++degree;
        }
        if (degree < d) {
          keep = false;
          break;
        }
      }
      if (keep) {
        next.push_back(v);
      } else {
        changed = true;
      }
    }
    scope = std::move(next);
  }
  return scope;
}

MultiLayerGraph PaperStyleExample() {
  // Two communities: {0..5} dense on layers {0,1,2}; {4..9} dense on
  // layers {1,3}; sparse extras elsewhere.
  GraphBuilder builder(12, 4);
  auto add_clique = [&](const VertexSet& vs, const LayerSet& layers) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        for (LayerId layer : layers) builder.AddEdge(layer, vs[i], vs[j]);
      }
    }
  };
  add_clique({0, 1, 2, 3, 4, 5}, {0, 1, 2});
  add_clique({4, 5, 6, 7, 8, 9}, {1, 3});
  builder.AddEdge(0, 10, 11);
  builder.AddEdge(3, 10, 11);
  return builder.Build();
}

TEST(DccTest, SingleLayerEqualsDCore) {
  MultiLayerGraph graph = GenerateErdosRenyi(60, 3, 0.08, 31);
  DccSolver solver(graph);
  for (LayerId layer = 0; layer < 3; ++layer) {
    for (int d = 1; d <= 4; ++d) {
      EXPECT_EQ(solver.Compute({layer}, d, AllVertices(graph)),
                DCore(graph, layer, d));
    }
  }
}

TEST(DccTest, PaperExampleStructure) {
  MultiLayerGraph graph = PaperStyleExample();
  // 3-CC w.r.t. layers {0,1,2} is exactly the first clique.
  EXPECT_EQ(CoherentCore(graph, {0, 1, 2}, 3), (VertexSet{0, 1, 2, 3, 4, 5}));
  // 3-CC w.r.t. {1,3} is the second clique.
  EXPECT_EQ(CoherentCore(graph, {1, 3}, 3), (VertexSet{4, 5, 6, 7, 8, 9}));
  // On layer 1 both cliques are present.
  EXPECT_EQ(CoherentCore(graph, {1}, 3),
            (VertexSet{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  // No 3-CC spans {0,3}.
  EXPECT_TRUE(CoherentCore(graph, {0, 3}, 3).empty());
}

TEST(DccTest, EnginesAgreeOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    MultiLayerGraph graph = GenerateErdosRenyi(70, 4, 0.08, 300 + seed);
    DccSolver solver(graph);
    for (int d = 1; d <= 4; ++d) {
      for (LayerSet layers :
           std::vector<LayerSet>{{0}, {1, 3}, {0, 1, 2}, {0, 1, 2, 3}}) {
        VertexSet queue_result =
            solver.Compute(layers, d, AllVertices(graph), DccEngine::kQueue);
        VertexSet bins_result =
            solver.Compute(layers, d, AllVertices(graph), DccEngine::kBins);
        EXPECT_EQ(queue_result, bins_result)
            << "seed=" << seed << " d=" << d;
        EXPECT_EQ(queue_result,
                  NaiveDcc(graph, layers, d, AllVertices(graph)))
            << "seed=" << seed << " d=" << d;
      }
    }
  }
}

TEST(DccTest, PlantedCommunityRecovered) {
  PlantedGraphConfig config;
  config.num_vertices = 400;
  config.num_layers = 5;
  config.num_communities = 2;
  config.community_size_min = 20;
  config.community_size_max = 25;
  config.internal_prob_min = 0.95;
  config.internal_prob_max = 1.0;
  config.background_avg_degree = 1.0;
  config.seed = 17;
  PlantedGraph planted = GeneratePlanted(config);
  for (const auto& community : planted.communities) {
    VertexSet core =
        CoherentCore(planted.graph, community.layers, /*d=*/8);
    // The community must survive inside its own d-CC.
    EXPECT_TRUE(IsSubsetSorted(community.vertices, core));
  }
}

TEST(DccTest, ScopedComputationMatchesGlobalWithinCandidates) {
  // Lemma 1 usage: computing within the intersection of per-layer d-cores
  // yields the same d-CC as computing over all vertices.
  MultiLayerGraph graph = GenerateErdosRenyi(80, 3, 0.09, 41);
  DccSolver solver(graph);
  for (int d = 2; d <= 4; ++d) {
    LayerSet layers = {0, 2};
    VertexSet scope = IntersectSorted(DCore(graph, 0, d), DCore(graph, 2, d));
    EXPECT_EQ(solver.Compute(layers, d, scope),
              solver.Compute(layers, d, AllVertices(graph)));
  }
}

TEST(DccTest, SolverReusableAcrossCalls) {
  MultiLayerGraph graph = GenerateErdosRenyi(50, 3, 0.1, 51);
  DccSolver solver(graph);
  VertexSet first = solver.Compute({0, 1}, 2, AllVertices(graph));
  // Interleave unrelated computations, then repeat the first.
  solver.Compute({2}, 3, AllVertices(graph));
  solver.Compute({0, 1, 2}, 1, AllVertices(graph), DccEngine::kBins);
  EXPECT_EQ(solver.Compute({0, 1}, 2, AllVertices(graph)), first);
  EXPECT_EQ(solver.num_calls(), 4);
}

TEST(DccTest, EmptyScopeAndHighThreshold) {
  MultiLayerGraph graph = GenerateErdosRenyi(30, 2, 0.1, 61);
  DccSolver solver(graph);
  EXPECT_TRUE(solver.Compute({0}, 2, {}).empty());
  EXPECT_TRUE(solver.Compute({0, 1}, 1000, AllVertices(graph)).empty());
  EXPECT_TRUE(
      solver.Compute({0, 1}, 1000, AllVertices(graph), DccEngine::kBins)
          .empty());
}

// --- Paper §II properties as parameterized sweeps. ---

class DccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DccPropertyTest, UniquenessAcrossEnginesAndScopes) {
  // Property 1: the d-CC is unique — every sound computation path must
  // arrive at the same set.
  MultiLayerGraph graph = GenerateErdosRenyi(60, 4, 0.09, GetParam());
  DccSolver solver(graph);
  LayerSet layers = {0, 2, 3};
  for (int d = 1; d <= 3; ++d) {
    VertexSet a = solver.Compute(layers, d, AllVertices(graph));
    VertexSet b =
        solver.Compute(layers, d, AllVertices(graph), DccEngine::kBins);
    VertexSet scope = DCore(graph, 0, d);
    scope = IntersectSorted(scope, DCore(graph, 2, d));
    scope = IntersectSorted(scope, DCore(graph, 3, d));
    VertexSet c = solver.Compute(layers, d, scope);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST_P(DccPropertyTest, HierarchyInD) {
  // Property 2: C^d_L ⊆ C^{d-1}_L.
  MultiLayerGraph graph = GenerateErdosRenyi(60, 3, 0.1, GetParam() + 1000);
  DccSolver solver(graph);
  LayerSet layers = {0, 1};
  VertexSet previous = solver.Compute(layers, 0, AllVertices(graph));
  for (int d = 1; d <= 6; ++d) {
    VertexSet current = solver.Compute(layers, d, AllVertices(graph));
    EXPECT_TRUE(IsSubsetSorted(current, previous)) << "d=" << d;
    previous = std::move(current);
  }
}

TEST_P(DccPropertyTest, ContainmentInL) {
  // Property 3: L ⊆ L' ⇒ C^d_{L'} ⊆ C^d_L.
  MultiLayerGraph graph = GenerateErdosRenyi(60, 4, 0.1, GetParam() + 2000);
  DccSolver solver(graph);
  const int d = 2;
  VertexSet c0 = solver.Compute({0}, d, AllVertices(graph));
  VertexSet c01 = solver.Compute({0, 1}, d, AllVertices(graph));
  VertexSet c013 = solver.Compute({0, 1, 3}, d, AllVertices(graph));
  EXPECT_TRUE(IsSubsetSorted(c01, c0));
  EXPECT_TRUE(IsSubsetSorted(c013, c01));
}

TEST_P(DccPropertyTest, IntersectionBound) {
  // Lemma 1: C^d_{L1∪L2} ⊆ C^d_{L1} ∩ C^d_{L2}.
  MultiLayerGraph graph = GenerateErdosRenyi(60, 4, 0.1, GetParam() + 3000);
  DccSolver solver(graph);
  const int d = 2;
  VertexSet left = solver.Compute({0, 1}, d, AllVertices(graph));
  VertexSet right = solver.Compute({2, 3}, d, AllVertices(graph));
  VertexSet both = solver.Compute({0, 1, 2, 3}, d, AllVertices(graph));
  EXPECT_TRUE(IsSubsetSorted(both, IntersectSorted(left, right)));
}

TEST_P(DccPropertyTest, ResultIsMaximalAndDense) {
  // Definition check: the returned set is d-dense w.r.t. L, and no removed
  // vertex could be added back while preserving d-density.
  MultiLayerGraph graph = GenerateErdosRenyi(50, 3, 0.12, GetParam() + 4000);
  DccSolver solver(graph);
  LayerSet layers = {0, 1, 2};
  const int d = 2;
  VertexSet core = solver.Compute(layers, d, AllVertices(graph));
  for (VertexId v : core) {
    for (LayerId layer : layers) {
      int degree = 0;
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (std::binary_search(core.begin(), core.end(), u)) ++degree;
      }
      EXPECT_GE(degree, d);
    }
  }
  // Maximality: adding any single outside vertex breaks d-density for it.
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (std::binary_search(core.begin(), core.end(), v)) continue;
    VertexSet extended = core;
    extended.insert(std::upper_bound(extended.begin(), extended.end(), v), v);
    bool dense = true;
    for (LayerId layer : layers) {
      int degree = 0;
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (std::binary_search(extended.begin(), extended.end(), u)) {
          ++degree;
        }
      }
      if (degree < d) {
        dense = false;
        break;
      }
    }
    EXPECT_FALSE(dense) << "vertex " << v
                        << " could extend the d-CC — not maximal";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DccPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(FdsTest, BinomialCoefficient) {
  EXPECT_EQ(BinomialCoefficient(4, 2), 6);
  EXPECT_EQ(BinomialCoefficient(24, 3), 2024);
  EXPECT_EQ(BinomialCoefficient(10, 0), 1);
  EXPECT_EQ(BinomialCoefficient(10, 10), 1);
  EXPECT_EQ(BinomialCoefficient(5, 6), 0);
}

TEST(FdsTest, CombinationEnumerationCountsAndOrder) {
  std::vector<LayerSet> seen;
  ForEachLayerCombination(5, 3,
                          [&](const LayerSet& layers) { seen.push_back(layers); });
  EXPECT_EQ(static_cast<int64_t>(seen.size()), BinomialCoefficient(5, 3));
  EXPECT_EQ(seen.front(), (LayerSet{0, 1, 2}));
  EXPECT_EQ(seen.back(), (LayerSet{2, 3, 4}));
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (const auto& layers : seen) {
    EXPECT_TRUE(std::is_sorted(layers.begin(), layers.end()));
  }
}

TEST(FdsTest, EnumerateFdsMatchesDirectComputation) {
  MultiLayerGraph graph = GenerateErdosRenyi(50, 4, 0.1, 71);
  auto candidates = EnumerateFds(graph, 2, 2);
  EXPECT_EQ(static_cast<int64_t>(candidates.size()),
            BinomialCoefficient(4, 2));
  for (const auto& candidate : candidates) {
    EXPECT_EQ(candidate.vertices, CoherentCore(graph, candidate.layers, 2));
  }
}

}  // namespace
}  // namespace mlcore
