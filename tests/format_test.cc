// Tests for the MLG1 binary graph subsystem (DESIGN.md §13): round-trip
// bit-identity between the text format and the container, the corruption
// matrix (structured Status on hostile input, never UB — CI runs this file
// under ASan), zero-copy mmap'd graphs served through GraphStore/Engine
// including an update epoch on a mapped base, generator determinism, and
// the strictened std::from_chars text parser. Suite names carry the
// Format*/Mmap* prefixes the sanitizer CI filters select.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dccs/dccs.h"
#include "format/generator.h"
#include "format/mlg.h"
#include "graph/datasets.h"
#include "graph/graph_builder.h"
#include "graph/io.h"
#include "graph/multilayer_graph.h"
#include "obs/span.h"
#include "store/graph_store.h"
#include "util/mmap_file.h"

namespace mlcore {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "mlcore_format_" + name;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

/// Adjacency-array-level equality: every layer's CSR block matches entry
/// for entry — stronger than edge-set equality, and exactly the bit
/// surface MLG1 serialises.
void ExpectIdenticalCsr(const MultiLayerGraph& actual,
                        const MultiLayerGraph& expected) {
  ASSERT_EQ(actual.NumVertices(), expected.NumVertices());
  ASSERT_EQ(actual.NumLayers(), expected.NumLayers());
  for (LayerId layer = 0; layer < actual.NumLayers(); ++layer) {
    const auto a = actual.LayerCsr(layer);
    const auto b = expected.LayerCsr(layer);
    ASSERT_EQ(a.offsets.size(), b.offsets.size()) << "layer " << layer;
    EXPECT_TRUE(std::equal(a.offsets.begin(), a.offsets.end(),
                           b.offsets.begin()))
        << "layer " << layer << " offsets differ";
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << "layer " << layer;
    EXPECT_TRUE(std::equal(a.neighbors.begin(), a.neighbors.end(),
                           b.neighbors.begin()))
        << "layer " << layer << " neighbors differ";
  }
}

void ExpectSameResult(const DccsResult& actual, const DccsResult& expected) {
  ASSERT_EQ(actual.cores.size(), expected.cores.size());
  for (size_t i = 0; i < actual.cores.size(); ++i) {
    EXPECT_EQ(actual.cores[i].layers, expected.cores[i].layers) << i;
    EXPECT_EQ(actual.cores[i].vertices, expected.cores[i].vertices) << i;
  }
  EXPECT_EQ(actual.CoverSize(), expected.CoverSize());
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(FormatRoundTripTest, EveryDatasetSurvivesTextBinaryLoadBitIdentically) {
  for (const std::string& name : DatasetNames()) {
    const Dataset dataset = MakeDataset(name, 0.15);
    const std::string bin = TempPath("rt_" + name + ".mlg");
    ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, bin).ok()) << name;

    MultiLayerGraph mapped;
    format::MlgLoadStats stats;
    Status loaded = format::LoadMlgGraph(bin, &mapped, &stats);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.message;
    ExpectIdenticalCsr(mapped, dataset.graph);
    EXPECT_GT(mapped.MappedBytes(), 0) << name;
    EXPECT_EQ(stats.total_edges, dataset.graph.TotalEdges()) << name;
    EXPECT_EQ(stats.mapped_bytes, mapped.MappedBytes()) << name;
    std::remove(bin.c_str());
  }
}

TEST(FormatRoundTripTest, RewritingMappedGraphIsByteIdentical) {
  const Dataset dataset = MakeDataset("ppi");
  const std::string first = TempPath("bytes_a.mlg");
  const std::string second = TempPath("bytes_b.mlg");
  ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, first).ok());

  MultiLayerGraph mapped;
  ASSERT_TRUE(format::LoadMlgGraph(first, &mapped).ok());
  // binary → graph → binary: the writer serialises the mapped views
  // straight back out, so the container reproduces byte for byte.
  ASSERT_TRUE(format::WriteMlgGraph(mapped, second).ok());
  EXPECT_EQ(ReadAllBytes(first), ReadAllBytes(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(FormatRoundTripTest, TextRoundTripThroughContainerPreservesGraph) {
  const Dataset dataset = MakeDataset("author", 0.2);
  const std::string text = TempPath("rt.txt");
  const std::string bin = TempPath("rt.mlg");
  ASSERT_TRUE(SaveMultiLayerGraph(dataset.graph, text).ok);

  MultiLayerGraph from_text;
  ASSERT_TRUE(LoadMultiLayerGraph(text, &from_text).ok);
  ASSERT_TRUE(format::WriteMlgGraph(from_text, bin).ok());
  MultiLayerGraph mapped;
  ASSERT_TRUE(format::LoadMlgGraph(bin, &mapped).ok());
  ExpectIdenticalCsr(mapped, dataset.graph);
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST(FormatRoundTripTest, MappedGraphAnswersQueriesIdentically) {
  const Dataset dataset = MakeDataset("ppi");
  const std::string bin = TempPath("query.mlg");
  ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, bin).ok());
  MultiLayerGraph mapped;
  ASSERT_TRUE(format::LoadMlgGraph(bin, &mapped).ok());

  DccsParams params;
  params.d = 2;
  params.s = 2;
  params.k = 5;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kBottomUp, DccsAlgorithm::kTopDown,
        DccsAlgorithm::kGreedy}) {
    const DccsResult expected = SolveDccs(dataset.graph, params, algorithm);
    const DccsResult actual = SolveDccs(mapped, params, algorithm);
    ExpectSameResult(actual, expected);
  }
  std::remove(bin.c_str());
}

TEST(FormatRoundTripTest, LoadRecordsGraphLoadSpanAndStats) {
  const Dataset dataset = MakeDataset("ppi", 0.3);
  const std::string bin = TempPath("span.mlg");
  ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, bin).ok());

  obs::Trace trace;
  MultiLayerGraph mapped;
  format::MlgLoadStats stats;
  ASSERT_TRUE(format::LoadMlgGraph(bin, &mapped, &stats, &trace).ok());
  EXPECT_GE(stats.load_ms, 0);
  EXPECT_EQ(stats.num_vertices, dataset.graph.NumVertices());
  EXPECT_EQ(stats.num_layers, dataset.graph.NumLayers());

  bool saw_load_span = false;
  for (const obs::SpanRecord& record : trace.records()) {
    saw_load_span |= std::string(record.name) == "graph.load";
  }
  EXPECT_TRUE(saw_load_span);
  std::remove(bin.c_str());
}

// ---------------------------------------------------------------------------
// Corruption matrix — every entry must yield a structured Status naming the
// file; none may crash (CI runs this under ASan).
// ---------------------------------------------------------------------------

class FormatCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.mlg");
    const Dataset dataset = MakeDataset("ppi", 0.3);
    ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, path_).ok());
    bytes_ = ReadAllBytes(path_);
    ASSERT_GE(bytes_.size(), 64u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes` over the container and expects the load to fail with
  /// a Status mentioning the file.
  void ExpectRejected(const std::vector<char>& bytes) {
    WriteAllBytes(path_, bytes);
    MultiLayerGraph graph;
    const Status status = format::LoadMlgGraph(path_, &graph);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message.find(path_), std::string::npos)
        << status.message;
  }

  uint64_t ReadU64(size_t offset) const {
    uint64_t value;
    std::memcpy(&value, bytes_.data() + offset, sizeof(value));
    return value;
  }

  /// Patches 8 bytes at `offset` and recomputes the header checksum so the
  /// tamper survives the whole-file check and reaches deeper validation.
  std::vector<char> PatchedWithValidChecksum(size_t offset, uint64_t value) {
    std::vector<char> patched = bytes_;
    std::memcpy(patched.data() + offset, &value, sizeof(value));
    const uint64_t table_offset = ReadU64(40);
    const uint64_t table_len = bytes_.size() - table_offset;
    const uint64_t checksum =
        format::MlgChecksum(patched.data(), 48) ^
        format::MlgChecksum(patched.data() + table_offset, table_len);
    std::memcpy(patched.data() + 48, &checksum, sizeof(checksum));
    return patched;
  }

  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(FormatCorruptionTest, TruncationAtEveryBoundaryIsRejected) {
  for (const size_t size :
       {size_t{0}, size_t{1}, size_t{17}, size_t{63}, size_t{64},
        size_t{100}, bytes_.size() / 2, bytes_.size() - 1}) {
    std::vector<char> truncated(bytes_.begin(),
                                bytes_.begin() + static_cast<int64_t>(size));
    ExpectRejected(truncated);
  }
}

TEST_F(FormatCorruptionTest, BadMagicIsRejected) {
  std::vector<char> mangled = bytes_;
  mangled[0] = 'X';
  ExpectRejected(mangled);
  // The classic text-mode transfer accident: CR-LF expansion of byte 4.
  std::vector<char> crlf = bytes_;
  crlf.insert(crlf.begin() + 4, '\r');
  ExpectRejected(crlf);
}

TEST_F(FormatCorruptionTest, UnsupportedVersionIsRejected) {
  std::vector<char> mangled = bytes_;
  const uint32_t version = 99;
  std::memcpy(mangled.data() + 8, &version, sizeof(version));
  ExpectRejected(mangled);
}

TEST_F(FormatCorruptionTest, SectionOffsetPastEofIsRejected) {
  // Point layer 0's offsets section far past EOF (64-aligned so the
  // alignment check cannot mask the bounds check), with the header/table
  // checksum recomputed — the bounds validation itself must catch it.
  const uint64_t table_offset = ReadU64(40);
  const size_t entry_offset_field = table_offset + 8;  // kind+layer, then offset
  const uint64_t past_eof = (bytes_.size() + 4096) & ~uint64_t{63};
  ExpectRejected(PatchedWithValidChecksum(entry_offset_field, past_eof));
}

TEST_F(FormatCorruptionTest, SectionLengthOverflowIsRejected) {
  // A length that makes offset + length wrap uint64 must not bypass the
  // bounds check.
  const uint64_t table_offset = ReadU64(40);
  const size_t entry_length_field = table_offset + 16;
  ExpectRejected(PatchedWithValidChecksum(entry_length_field,
                                          UINT64_MAX - 32));
}

TEST_F(FormatCorruptionTest, FlippedDataByteFailsSectionChecksum) {
  std::vector<char> mangled = bytes_;
  mangled[128] ^= 0x01;  // inside the first (offsets) section
  ExpectRejected(mangled);
}

TEST_F(FormatCorruptionTest, TamperedSectionTableFailsFileChecksum) {
  std::vector<char> mangled = bytes_;
  const uint64_t table_offset = ReadU64(40);
  mangled[table_offset] ^= 0x01;
  ExpectRejected(mangled);
}

TEST_F(FormatCorruptionTest, CorruptCsrStructureIsRejectedEvenUnchecksummed) {
  // With checksums off, the structural CSR validation is the last line of
  // defence: break monotonicity of layer 0's offsets array.
  std::vector<char> mangled = bytes_;
  const int64_t bogus = -1;
  std::memcpy(mangled.data() + 64 + 8, &bogus, sizeof(bogus));
  WriteAllBytes(path_, mangled);
  MultiLayerGraph graph;
  format::MlgReadOptions options;
  options.verify_checksums = false;
  const Status status = format::LoadMlgGraph(path_, &graph, nullptr, nullptr,
                                             options);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message.find("CSR"), std::string::npos) << status.message;
}

TEST_F(FormatCorruptionTest, UnfinishedWriteIsRejected) {
  // Open writes a placeholder header with a zero checksum; without Finish
  // the file must not validate.
  const std::string partial = TempPath("partial.mlg");
  {
    format::MlgWriter writer;
    ASSERT_TRUE(writer.Open(partial, 4, 1).ok());
    const std::vector<int64_t> offsets = {0, 1, 2, 2, 2};
    const std::vector<VertexId> neighbors = {1, 0};
    ASSERT_TRUE(writer.AppendLayer(offsets, neighbors).ok());
    // no Finish(): destructor closes the file as-is
  }
  MultiLayerGraph graph;
  EXPECT_FALSE(format::LoadMlgGraph(partial, &graph).ok());
  std::remove(partial.c_str());
}

// ---------------------------------------------------------------------------
// Mapped graphs behind the service stack
// ---------------------------------------------------------------------------

TEST(FormatMappedEngineTest, UpdateEpochOnMappedBaseMatchesTextOracle) {
  const Dataset dataset = MakeDataset("ppi", 0.4);
  const std::string bin = TempPath("engine.mlg");
  ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, bin).ok());
  auto mapped = std::make_shared<MultiLayerGraph>();
  ASSERT_TRUE(format::LoadMlgGraph(bin, mapped.get()).ok());
  auto owned = std::make_shared<MultiLayerGraph>(dataset.graph);

  DccsRequest request;
  request.params.d = 2;
  request.params.s = 2;
  request.params.k = 5;

  // One batch exercising every edit path on the mapped base: fresh vertex,
  // one insert touching it, one removal of a mapped edge.
  const VertexId u = 0;
  ASSERT_GT(mapped->Degree(0, u), 0);
  const VertexId v = mapped->Neighbors(0, u)[0];
  const VertexId fresh = mapped->NumVertices();
  UpdateBatch batch;
  batch.AddVertices(1).Remove(0, u, v).Insert(0, u, fresh);

  DccsResult results[2];
  for (int i = 0; i < 2; ++i) {
    auto base = i == 0 ? mapped : owned;
    GraphStore::Options store_options;
    store_options.tracked_degrees = {request.params.d};
    auto store = std::make_shared<GraphStore>(
        std::shared_ptr<const MultiLayerGraph>(base), store_options);
    Engine engine(store, Engine::Options{.num_threads = 1,
                                         .search_threads = 1});
    auto initial = engine.Run(request);
    ASSERT_TRUE(initial.ok()) << initial.status().message;
    auto outcome = engine.ApplyUpdate(batch);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message;
    EXPECT_EQ(outcome->edges_inserted, 1);
    EXPECT_EQ(outcome->edges_removed, 1);
    auto updated = engine.Run(request);
    ASSERT_TRUE(updated.ok()) << updated.status().message;
    results[i] = *updated;
  }
  ExpectSameResult(results[0], results[1]);
  std::remove(bin.c_str());
}

TEST(FormatMappedEngineTest, EditedCopyKeepsUntouchedLayersMapped) {
  const Dataset dataset = MakeDataset("ppi", 0.4);
  ASSERT_GE(dataset.graph.NumLayers(), 2);
  const std::string bin = TempPath("edited.mlg");
  ASSERT_TRUE(format::WriteMlgGraph(dataset.graph, bin).ok());
  MultiLayerGraph mapped;
  ASSERT_TRUE(format::LoadMlgGraph(bin, &mapped).ok());

  const VertexId u = 0;
  ASSERT_GT(mapped.Degree(0, u), 0);
  const VertexId v = mapped.Neighbors(0, u)[0];
  std::vector<MultiLayerGraph::EdgeList> added(
      static_cast<size_t>(mapped.NumLayers()));
  std::vector<MultiLayerGraph::EdgeList> removed(
      static_cast<size_t>(mapped.NumLayers()));
  removed[0].emplace_back(std::min(u, v), std::max(u, v));

  // Only layer 0 is rebuilt; every other layer's neighbours must still
  // alias the mapping (the zero-copy epoch property).
  const MultiLayerGraph copy = mapped.EditedCopy(0, added, removed);
  EXPECT_GT(copy.MappedBytes(), 0);
  EXPECT_LT(copy.MappedBytes(), mapped.MappedBytes());
  EXPECT_FALSE(copy.HasEdge(0, u, v));

  MultiLayerGraph oracle = dataset.graph.EditedCopy(0, added, removed);
  ExpectIdenticalCsr(copy, oracle);

  // Appending vertices to a mapped graph materialises only the offset
  // tables; the neighbour arrays stay mapped.
  const MultiLayerGraph grown = mapped.EditedCopy(
      2, std::vector<MultiLayerGraph::EdgeList>(added.size()),
      std::vector<MultiLayerGraph::EdgeList>(added.size()));
  EXPECT_EQ(grown.NumVertices(), mapped.NumVertices() + 2);
  EXPECT_GT(grown.MappedBytes(), 0);
  EXPECT_EQ(grown.Degree(0, grown.NumVertices() - 1), 0);
  std::remove(bin.c_str());
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(FormatGeneratorTest, SameSeedProducesByteIdenticalFiles) {
  format::MlgGenConfig config;
  config.num_vertices = 1 << 10;
  config.num_layers = 3;
  config.edges_per_layer = 1 << 12;
  config.seed = 42;

  const std::string a = TempPath("gen_a.mlg");
  const std::string b = TempPath("gen_b.mlg");
  format::MlgGenStats stats;
  ASSERT_TRUE(GenerateMlg(config, a, &stats).ok());
  ASSERT_TRUE(GenerateMlg(config, b).ok());
  EXPECT_GT(stats.edges_written, 0);
  EXPECT_EQ(ReadAllBytes(a), ReadAllBytes(b));

  config.seed = 43;
  ASSERT_TRUE(GenerateMlg(config, b).ok());
  EXPECT_NE(ReadAllBytes(a), ReadAllBytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(FormatGeneratorTest, GeneratedGraphLoadsAndOverlapSpansLayers) {
  format::MlgGenConfig config;
  config.num_vertices = 1 << 10;
  config.num_layers = 3;
  config.edges_per_layer = 1 << 12;
  config.layer_overlap = 0.5;

  const std::string path = TempPath("gen_load.mlg");
  ASSERT_TRUE(GenerateMlg(config, path, nullptr).ok());
  MultiLayerGraph graph;
  format::MlgLoadStats stats;
  ASSERT_TRUE(format::LoadMlgGraph(path, &graph, &stats).ok());
  EXPECT_EQ(graph.NumVertices(), config.num_vertices);
  EXPECT_EQ(graph.NumLayers(), config.num_layers);
  EXPECT_GT(graph.TotalEdges(), 0);
  // The shared stream puts the same edge mass on every layer, so the
  // distinct-edge count sits well below the per-layer sum.
  EXPECT_LT(graph.DistinctEdges(), graph.TotalEdges());

  // A generated graph is a valid query target end to end.
  DccsParams params;
  params.d = 2;
  params.s = 2;
  params.k = 3;
  const DccsResult result =
      SolveDccs(graph, params, DccsAlgorithm::kBottomUp);
  EXPECT_GE(result.CoverSize(), 0);
  std::remove(path.c_str());
}

TEST(FormatGeneratorTest, InvalidConfigsAreRejected) {
  const std::string path = TempPath("gen_bad.mlg");
  format::MlgGenConfig config;
  config.num_vertices = 1;
  EXPECT_FALSE(GenerateMlg(config, path).ok());
  config = {};
  config.rmat_a = 0.9;
  config.rmat_b = 0.09;
  config.rmat_c = 0.01;  // a + b + c == 1: no fourth quadrant
  EXPECT_FALSE(GenerateMlg(config, path).ok());
  config = {};
  config.layer_overlap = 1.5;
  EXPECT_FALSE(GenerateMlg(config, path).ok());
}

// ---------------------------------------------------------------------------
// MmapFile
// ---------------------------------------------------------------------------

TEST(MmapFileTest, MissingFileReturnsStatus) {
  util::MmapFile file;
  const Status status =
      util::MmapFile::Open(TempPath("does_not_exist"), &file);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message.find("does_not_exist"), std::string::npos);
}

TEST(MmapFileTest, MapsContentsAndSupportsMoveAndReset) {
  const std::string path = TempPath("mmap.bin");
  WriteText(path, "hello mlg");
  util::MmapFile file;
  ASSERT_TRUE(util::MmapFile::Open(path, &file).ok());
  ASSERT_EQ(file.size(), 9u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(file.data()), 5),
            "hello");

  util::MmapFile moved = std::move(file);
  EXPECT_EQ(moved.size(), 9u);
  moved.Reset();
  EXPECT_TRUE(moved.empty());
  std::remove(path.c_str());
}

TEST(MmapFileTest, EmptyFileMapsAsEmpty) {
  const std::string path = TempPath("mmap_empty.bin");
  WriteText(path, "");
  util::MmapFile file;
  ASSERT_TRUE(util::MmapFile::Open(path, &file).ok());
  EXPECT_TRUE(file.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Text parser hardening (the std::from_chars rewrite)
// ---------------------------------------------------------------------------

class FormatTextParserTest : public testing::Test {
 protected:
  IoStatus Load(const std::string& text) {
    path_ = TempPath("parse.txt");
    WriteText(path_, text);
    MultiLayerGraph graph;
    IoStatus status = LoadMultiLayerGraph(path_, &graph);
    std::remove(path_.c_str());
    return status;
  }
  std::string path_;
};

TEST_F(FormatTextParserTest, OverflowingVertexIdIsRejectedNotNarrowed) {
  // 2^33 + 1 truncates to 1 in int32 — the pre-from_chars parser would
  // have silently built edge (0, 1).
  const IoStatus status = Load("n 4 1\n0 0 8589934593\n");
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("id out of range"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find(":2:"), std::string::npos) << status.error;

  // Past even long long: from_chars reports overflow, same rejection.
  const IoStatus huge = Load("n 4 1\n0 0 99999999999999999999999\n");
  EXPECT_FALSE(huge.ok);
  EXPECT_NE(huge.error.find("id out of range"), std::string::npos);
}

TEST_F(FormatTextParserTest, OverflowingHeaderCountsAreRejected) {
  const IoStatus status = Load("n 99999999999999999999 2\n");
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("expected header"), std::string::npos);
  // Fits in long long but not int32: also not a valid vertex count.
  const IoStatus wide = Load("n 4294967296 2\n");
  EXPECT_FALSE(wide.ok);
  EXPECT_NE(wide.error.find("expected header"), std::string::npos);
}

TEST_F(FormatTextParserTest, AcceptsCrlfCommentsAndTrailingTokens) {
  const IoStatus status = Load(
      "# comment\r\n"
      "\r\n"
      "n 3 2\r\n"
      "0 0 1 trailing-weight-token\r\n"
      "1 1 2\r\n");
  EXPECT_TRUE(status.ok) << status.error;
}

TEST_F(FormatTextParserTest, KeepsEstablishedErrorMessages) {
  EXPECT_NE(Load("0 1 2\n").error.find("expected header"), std::string::npos);
  EXPECT_NE(Load("n 3 1\n0 one 2\n").error.find("expected '<layer> <u> <v>'"),
            std::string::npos);
  EXPECT_NE(Load("n 3 1\n0 1 1\n").error.find("self-loop 1-1"),
            std::string::npos);
  EXPECT_NE(Load("n 3 1\n0 0 1\n0 1 0\n")
                .error.find("duplicate edge 1-0 on layer 0"),
            std::string::npos);
  EXPECT_NE(Load("# only comments\n").error.find("missing header line"),
            std::string::npos);
  EXPECT_NE(Load("n 3 1\n2 0 1\n").error.find("id out of range"),
            std::string::npos);
}

TEST_F(FormatTextParserTest, FinalLineWithoutNewlineParses) {
  const IoStatus status = Load("n 3 1\n0 0 1");
  EXPECT_TRUE(status.ok) << status.error;
}

}  // namespace
}  // namespace mlcore
