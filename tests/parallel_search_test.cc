// Tests for the intra-query parallel lattice search (DESIGN.md §10): the
// determinism contract — BU-DCCS and TD-DCCS results (cores, cover, and
// every pre-existing SearchStats counter) are bit-identical at 1/2/4/8/16
// search threads, through both the free functions and the Engine — plus
// mid-search cancellation/deadline with worker lanes in flight, a
// Subscribe revision stream evaluated by parallel searches across epochs,
// and the engine-wide lane budget. The CI TSan and ASan+UBSan jobs run
// this file (the suite names match their *Parallel* filter).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "dccs/dccs.h"
#include "graph/generators.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace mlcore {
namespace {

// Rich enough that BU and TD both visit hundreds of lattice nodes (real
// pruning, full top-k, potential-set shortcuts), small enough that a
// 5-point thread sweep of both algorithms stays fast.
MultiLayerGraph SearchGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 420;
  config.num_layers = 7;
  config.num_communities = 10;
  config.community_size_min = 10;
  config.community_size_max = 24;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

// Large enough that the search phase takes real (multi-ms) time, so the
// cancellation/deadline tests land their stops mid-search with worker
// lanes busy.
MultiLayerGraph SlowSearchGraph() {
  PlantedGraphConfig config;
  config.num_vertices = 3000;
  config.num_layers = 10;
  config.num_communities = 30;
  config.community_size_min = 14;
  config.community_size_max = 40;
  config.seed = 177;
  return GeneratePlanted(config).graph;
}

DccsParams SearchParams(DccsAlgorithm algorithm) {
  DccsParams params;
  params.d = 3;
  // BU wants small s (wide low lattice), TD wants s near l.
  params.s = algorithm == DccsAlgorithm::kBottomUp ? 3 : 5;
  params.k = 4;
  return params;
}

// Full-strength comparison: cores, cover, and every deterministic
// counter. `speculative_evals` is deliberately absent — it is the one
// thread-count-dependent statistic (DESIGN.md §10).
void ExpectBitIdentical(const DccsResult& actual, const DccsResult& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.cores.size(), expected.cores.size()) << label;
  for (size_t i = 0; i < actual.cores.size(); ++i) {
    EXPECT_EQ(actual.cores[i], expected.cores[i]) << label << " core " << i;
  }
  EXPECT_EQ(actual.Cover(), expected.Cover()) << label;
  EXPECT_EQ(actual.stats.candidates_generated,
            expected.stats.candidates_generated)
      << label;
  EXPECT_EQ(actual.stats.nodes_visited, expected.stats.nodes_visited)
      << label;
  EXPECT_EQ(actual.stats.pruned_eq1, expected.stats.pruned_eq1) << label;
  EXPECT_EQ(actual.stats.pruned_order, expected.stats.pruned_order) << label;
  EXPECT_EQ(actual.stats.pruned_layer, expected.stats.pruned_layer) << label;
  EXPECT_EQ(actual.stats.pruned_potential, expected.stats.pruned_potential)
      << label;
  EXPECT_EQ(actual.stats.updates_accepted, expected.stats.updates_accepted)
      << label;
}

const std::vector<int> kThreadSweep = {1, 2, 4, 8, 16};

// --- Free-function thread invariance --------------------------------------

class ParallelSearchTest
    : public ::testing::TestWithParam<DccsAlgorithm> {};

TEST_P(ParallelSearchTest, FreeFunctionResultsThreadInvariant) {
  const DccsAlgorithm algorithm = GetParam();
  MultiLayerGraph graph = SearchGraph(42);
  DccsParams params = SearchParams(algorithm);

  params.search_threads = 1;
  const DccsResult sequential = SolveDccs(graph, params, algorithm);
  ASSERT_FALSE(sequential.cores.empty());
  EXPECT_GT(sequential.stats.nodes_visited, 20);
  EXPECT_EQ(sequential.stats.speculative_evals, 0);

  for (int threads : kThreadSweep) {
    params.search_threads = threads;
    const DccsResult parallel = SolveDccs(graph, params, algorithm);
    ExpectBitIdentical(parallel, sequential,
                       AlgorithmName(algorithm) + " @ " +
                           std::to_string(threads) + " threads");
    if (threads == 1) EXPECT_EQ(parallel.stats.speculative_evals, 0);
  }
}

TEST_P(ParallelSearchTest, ThreadInvariantAcrossAblationToggles) {
  const DccsAlgorithm algorithm = GetParam();
  MultiLayerGraph graph = SearchGraph(43);
  // The pruning ablations exercise every driver commit path (no seeds, no
  // layer sort, reference RefineC); each must stay thread-invariant.
  for (int toggle = 0; toggle < 3; ++toggle) {
    DccsParams params = SearchParams(algorithm);
    if (toggle == 0) params.init_result = false;
    if (toggle == 1) params.sort_layers = false;
    if (toggle == 2) params.use_index_refinec = false;

    params.search_threads = 1;
    const DccsResult sequential = SolveDccs(graph, params, algorithm);
    params.search_threads = 8;
    const DccsResult parallel = SolveDccs(graph, params, algorithm);
    ExpectBitIdentical(parallel, sequential,
                       AlgorithmName(algorithm) + " toggle " +
                           std::to_string(toggle));
  }
}

INSTANTIATE_TEST_SUITE_P(LatticeSearches, ParallelSearchTest,
                         ::testing::Values(DccsAlgorithm::kBottomUp,
                                           DccsAlgorithm::kTopDown),
                         [](const auto& info) {
                           return std::string(
                               info.param == DccsAlgorithm::kBottomUp
                                   ? "BUDCCS"
                                   : "TDDCCS");
                         });

// --- Engine thread invariance ---------------------------------------------

TEST(ParallelSearchEngineTest, EngineResultsThreadInvariant) {
  MultiLayerGraph graph = SearchGraph(44);
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kBottomUp, DccsAlgorithm::kTopDown}) {
    DccsRequest request;
    request.params = SearchParams(algorithm);
    request.algorithm = algorithm;

    Engine sequential_engine(&graph);
    Expected<DccsResult> sequential = sequential_engine.Run(request);
    ASSERT_TRUE(sequential.ok());

    for (int threads : kThreadSweep) {
      Engine engine(&graph, Engine::Options{.search_threads = threads});
      // Two runs per engine: the second hits every per-entry cache
      // (preprocess, seeds, seeded top-k prototype, layer order) — warm
      // parallel queries must match cold sequential ones exactly.
      for (int run = 0; run < 2; ++run) {
        Expected<DccsResult> parallel = engine.Run(request);
        ASSERT_TRUE(parallel.ok());
        ExpectBitIdentical(*parallel, *sequential,
                           AlgorithmName(algorithm) + " engine @ " +
                               std::to_string(threads) + " threads, run " +
                               std::to_string(run));
      }
    }
  }
}

TEST(ParallelSearchEngineTest, ConcurrentQueriesShareTheLaneBudget) {
  // Eight concurrent submissions against a 4-lane budget: whatever lanes
  // each query wins, results must match the sequential reference.
  MultiLayerGraph graph = SearchGraph(45);
  DccsRequest request;
  request.params = SearchParams(DccsAlgorithm::kBottomUp);
  request.algorithm = DccsAlgorithm::kBottomUp;

  Engine reference_engine(&graph);
  Expected<DccsResult> reference = reference_engine.Run(request);
  ASSERT_TRUE(reference.ok());

  Engine engine(&graph,
                Engine::Options{.query_workers = 4, .search_threads = 4});
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(engine.Submit(request));
  for (size_t i = 0; i < handles.size(); ++i) {
    const Expected<DccsResult>& outcome = handles[i].Wait();
    ASSERT_TRUE(outcome.ok()) << outcome.status().message;
    ExpectBitIdentical(*outcome, *reference,
                       "concurrent submission " + std::to_string(i));
  }
}

// --- Cancellation and deadlines mid-parallel-search -----------------------

TEST(ParallelSearchCancellationTest, MidSearchCancelStopsWorkerLanes) {
  MultiLayerGraph graph = SlowSearchGraph();
  DccsRequest request;
  request.params.d = 2;
  request.params.s = 7;
  request.params.k = 10;
  request.algorithm = DccsAlgorithm::kBottomUp;

  Engine engine(&graph,
                Engine::Options{.query_workers = 1, .search_threads = 8});
  // Warm the caches so the cancel below lands in the search phase, not in
  // preprocessing.
  ASSERT_TRUE(engine.Run(request).ok());

  QueryHandle handle = engine.Submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  handle.Cancel();
  const Expected<DccsResult>& outcome = handle.Wait();
  // Either the cancel landed (partial result discarded) or the query beat
  // it; both must resolve promptly with the task group drained — TSan/ASan
  // guard the shutdown itself.
  if (!outcome.ok()) {
    EXPECT_EQ(outcome.status().code, StatusCode::kCancelled);
  }

  // The engine (and its lane budget) must be intact afterwards.
  Expected<DccsResult> after = engine.Run(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.stopped, QueryStop::kNone);
}

TEST(ParallelSearchCancellationTest, MidSearchDeadlineReturnsAnytimePrefix) {
  MultiLayerGraph graph = SlowSearchGraph();
  DccsRequest request;
  request.params.d = 2;
  request.params.s = 7;
  request.params.k = 10;
  request.algorithm = DccsAlgorithm::kBottomUp;

  Engine engine(&graph,
                Engine::Options{.query_workers = 0, .search_threads = 8});
  ASSERT_TRUE(engine.Run(request).ok());  // warm caches

  QueryHandle handle = engine.Submit(request, {.deadline_seconds = 0.010});
  const Expected<DccsResult>& outcome = handle.Wait();
  if (outcome.ok()) {
    // Deadline fired mid-search (anytime prefix) or the query finished
    // first; a fired deadline must be latched in the stats.
    if (outcome->stats.stopped != QueryStop::kNone) {
      EXPECT_EQ(outcome->stats.stopped, QueryStop::kDeadline);
      EXPECT_TRUE(outcome->stats.budget_exhausted);
    }
  } else {
    // Expired before the search phase started.
    EXPECT_EQ(outcome.status().code, StatusCode::kDeadlineExceeded);
  }
}

TEST(ParallelSearchCancellationTest, TimeBudgetIsHonouredWithWorkerLanes) {
  MultiLayerGraph graph = SlowSearchGraph();
  DccsParams params;
  params.d = 2;
  params.s = 7;
  params.k = 10;
  params.search_threads = 8;
  params.time_budget_seconds = 0.01;
  const DccsResult result =
      SolveDccs(graph, params, DccsAlgorithm::kBottomUp);
  if (result.stats.stopped != QueryStop::kNone) {
    EXPECT_EQ(result.stats.stopped, QueryStop::kBudget);
    EXPECT_TRUE(result.stats.budget_exhausted);
  }
}

// --- Continuous queries with parallel evaluation --------------------------

TEST(ParallelSearchSubscriptionTest, RevisionStreamMatchesSequentialEngine) {
  MultiLayerGraph graph = SearchGraph(46);
  DccsRequest request;
  request.params = SearchParams(DccsAlgorithm::kBottomUp);
  request.algorithm = DccsAlgorithm::kBottomUp;

  auto store = std::make_shared<GraphStore>(graph);
  Engine parallel_engine(store,
                         Engine::Options{.query_workers = 1,
                                         .search_threads = 8});
  Expected<Subscription> subscribed = parallel_engine.Subscribe(request);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;

  // Sequential oracle over its own identical store (same epochs applied).
  MultiLayerGraph oracle_graph = SearchGraph(46);
  auto oracle_store = std::make_shared<GraphStore>(std::move(oracle_graph));
  Engine oracle_engine(oracle_store);

  Rng rng(2026);
  const int32_t n = graph.NumVertices();
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::optional<ResultRevision> revision = sub.Next();
    ASSERT_TRUE(revision.has_value()) << "epoch " << epoch;
    Expected<DccsResult> oracle = oracle_engine.Run(request);
    ASSERT_TRUE(oracle.ok());
    ExpectBitIdentical(revision->result, *oracle,
                       "revision @ epoch " + std::to_string(epoch));
    EXPECT_EQ(revision->result.epoch, revision->epoch);

    if (epoch == 2) break;
    // Same deterministic batch into both stores → same next epoch.
    UpdateBatch batch;
    const MultiLayerGraph& current = *store->snapshot()->graph_ptr();
    std::vector<std::tuple<LayerId, VertexId, VertexId>> touched;
    for (int i = 0; i < 6;) {
      const auto u = static_cast<VertexId>(rng.Uniform(0, n - 1));
      const auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
      const auto layer = static_cast<LayerId>(
          rng.Uniform(0, current.NumLayers() - 1));
      ++i;
      if (u == v ||
          current.HasEdge(layer, std::min(u, v), std::max(u, v))) {
        continue;
      }
      const auto key =
          std::make_tuple(layer, std::min(u, v), std::max(u, v));
      if (std::find(touched.begin(), touched.end(), key) != touched.end()) {
        continue;
      }
      touched.push_back(key);
      batch.Insert(layer, std::min(u, v), std::max(u, v));
    }
    ASSERT_TRUE(store->ApplyUpdate(batch).ok());
    ASSERT_TRUE(oracle_store->ApplyUpdate(batch).ok());
  }
  sub.Cancel();
}

}  // namespace
}  // namespace mlcore
