#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/task_group.h"

// Observability primitives (DESIGN.md §12). Every suite here is named
// Obs* so the CI sanitizer jobs can select the whole family with one
// gtest filter. Assertions that depend on latency instrumentation
// (Histogram::Record, span recording) are gated on obs::kEnabled so the
// MLCORE_OBS_DISABLED build still passes; counter/gauge semantics are
// asserted unconditionally because they back correctness surfaces
// (cache_stats / scheduler_stats) in every build.

namespace mlcore {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricKind;
using obs::MetricSnapshot;
using obs::Registry;
using obs::SlowQueryLog;
using obs::Span;
using obs::SpanRecord;
using obs::Trace;
using obs::TraceSummary;

TEST(ObsCounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsGaugeTest, SetAddReset) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
  g.Set(100);
  EXPECT_EQ(g.value(), 100);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogramTest, EmptySnapshot) {
  Histogram h({1.0, 2.0, 4.0});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  ASSERT_EQ(s.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 0.0);
}

TEST(ObsHistogramTest, SingleSample) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  Histogram h({1.0, 2.0, 4.0});
  h.Record(1.5);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.sum, 1.5);
  EXPECT_EQ(s.counts[1], 1);  // (1, 2] bucket
  // Every quantile of a single sample interpolates inside its bucket:
  // rank 1 of 1 → lower + (upper - lower) * 1/1 = the upper edge.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 2.0);
}

TEST(ObsHistogramTest, ExactBoundaryIsInclusive) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  Histogram h({1.0, 2.0});
  h.Record(1.0);  // bounds are inclusive upper edges → first bucket
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.counts[0], 1);
  EXPECT_EQ(s.counts[1], 0);
}

TEST(ObsHistogramTest, OverflowClampsQuantile) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  Histogram h({1.0, 2.0});
  h.Record(5.0);  // past the last bound → overflow bucket
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[2], 1);
  // The histogram cannot see past its last finite bound.
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(s.sum, 5.0);  // sum stays exact
}

TEST(ObsHistogramTest, KnownDistributionQuantiles) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  // 1..100 with bounds 10, 20, ..., 100: each bucket holds exactly 10
  // samples, and linear interpolation lands quantiles on the integers.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.Record(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 99.0);
}

TEST(ObsRegistryTest, GetOrCreateIsIdempotent) {
  Registry reg;
  Counter* a = reg.GetCounter("test.count");
  Counter* b = reg.GetCounter("test.count");
  EXPECT_EQ(a, b);
  Gauge* g1 = reg.GetGauge("test.gauge");
  Gauge* g2 = reg.GetGauge("test.gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.GetHistogram("test.hist_ms", {1.0, 2.0});
  // The first caller fixes the boundaries; later bounds are ignored.
  Histogram* h2 = reg.GetHistogram("test.hist_ms", {99.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h2->bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h2->bounds()[0], 1.0);
}

TEST(ObsRegistryTest, SnapshotSortedByName) {
  Registry reg;
  reg.GetCounter("zz.last")->Add(3);
  reg.GetGauge("aa.first")->Set(1);
  reg.GetCounter("mm.middle")->Add(2);
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa.first");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].value, 1);
  EXPECT_EQ(snap[1].name, "mm.middle");
  EXPECT_EQ(snap[2].name, "zz.last");
  EXPECT_EQ(snap[2].value, 3);
}

TEST(ObsRegistryTest, ResetPrefixIsSelective) {
  Registry reg;
  Counter* engine = reg.GetCounter("engine.sched.executed");
  Counter* store = reg.GetCounter("store.epochs");
  engine->Add(5);
  store->Add(7);
  reg.Reset("engine.");
  EXPECT_EQ(engine->value(), 0);
  EXPECT_EQ(store->value(), 7);
  reg.Reset();  // "" resets everything
  EXPECT_EQ(store->value(), 0);
  // Cached pointers stay valid across Reset.
  engine->Add(1);
  EXPECT_EQ(engine->value(), 1);
}

TEST(ObsTraceTest, ParentChildNesting) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  Trace trace;
  obs::SpanId root_id = 0;
  {
    Span root(&trace, "query.run");
    root_id = root.id();
    EXPECT_NE(root_id, 0u);
    {
      Span child(&trace, "query.search", root.id());
      Span grandchild(&trace, "search.lane", child.id());
    }
  }
  const std::vector<SpanRecord> records = trace.records();
  ASSERT_EQ(records.size(), 3u);
  // Committed innermost-first (destruction order), sorted by start.
  const SpanRecord* root = nullptr;
  const SpanRecord* child = nullptr;
  const SpanRecord* lane = nullptr;
  for (const SpanRecord& r : records) {
    if (std::string(r.name) == "query.run") root = &r;
    if (std::string(r.name) == "query.search") child = &r;
    if (std::string(r.name) == "search.lane") lane = &r;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(lane, nullptr);
  EXPECT_EQ(root->id, root_id);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_EQ(child->parent, root->id);
  EXPECT_EQ(lane->parent, child->id);
  EXPECT_GE(root->wall_ms, child->wall_ms);
  EXPECT_EQ(trace.dropped(), 0);
}

// Trace::Add / Commit are unconditional primitives (Span gating happens at
// the call site), so these two tests run in the MLCORE_OBS_DISABLED build
// too.
TEST(ObsTraceTest, ManualAdd) {
  Trace trace;
  const obs::SpanId id =
      trace.Add("query.admission_wait", /*parent=*/0, /*start_ms=*/0.0,
                /*wall_ms=*/12.5);
  EXPECT_NE(id, 0u);
  const std::vector<SpanRecord> records = trace.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "query.admission_wait");
  EXPECT_DOUBLE_EQ(records[0].wall_ms, 12.5);
  EXPECT_DOUBLE_EQ(records[0].cpu_ms, -1.0);
}

TEST(ObsTraceTest, OverflowDropsAndCounts) {
  Trace trace(/*capacity=*/2);
  trace.Add("a", 0, 0.0, 1.0);
  trace.Add("b", 0, 0.0, 1.0);
  trace.Add("c", 0, 0.0, 1.0);  // no slot left
  EXPECT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.dropped(), 1);
}

// Spans committed from TaskGroup workers parent correctly under their
// driver's root span — the shape speculative lattice evaluations produce.
TEST(ObsTraceTest, NestingAcrossTaskGroupWorkers) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "MLCORE_OBS_DISABLED";
  constexpr int kLanes = 4;
  constexpr int kTasks = 8;
  Trace trace;
  std::atomic<int> done{0};
  {
    Span root(&trace, "query.search");
    const obs::SpanId root_id = root.id();
    TaskGroup group(kLanes);
    for (int t = 0; t < kTasks; ++t) {
      group.Spawn(/*worker=*/0, [&trace, &done, root_id](int /*worker*/) {
        Span lane(&trace, "search.lane", root_id);
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    while (done.load(std::memory_order_relaxed) < kTasks) {
      group.TryRunOne(/*worker=*/0);
    }
    // TaskGroup's destructor joins the workers, so every lane span has
    // committed before the trace is read below.
  }
  const std::vector<SpanRecord> records = trace.records();
  ASSERT_EQ(records.size(), 1u + kTasks);
  int lanes = 0;
  for (const SpanRecord& r : records) {
    if (std::string(r.name) != "search.lane") continue;
    ++lanes;
    const SpanRecord* parent = nullptr;
    for (const SpanRecord& p : records) {
      if (p.id == r.parent) parent = &p;
    }
    ASSERT_NE(parent, nullptr);
    EXPECT_STREQ(parent->name, "query.search");
  }
  EXPECT_EQ(lanes, kTasks);
  EXPECT_EQ(trace.dropped(), 0);
}

// The TSan target: concurrent Record/Add/Commit from many threads must be
// race-free, and totals must be exact once the writers join.
TEST(ObsConcurrentRecordTest, TotalsAddUpAfterQuiescence) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  Registry reg;
  Counter* counter = reg.GetCounter("test.concurrent.count");
  Histogram* hist =
      reg.GetHistogram("test.concurrent.ms", Histogram::LatencyBoundsMs());
  Trace trace(/*capacity=*/64);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist, &trace, t] {
      for (int i = 0; i < kIters; ++i) {
        counter->Add(1);
        hist->Record(0.1 * ((t + i) % 7));
        trace.Add("search.lane", /*parent=*/1, /*start_ms=*/0.0,
                  /*wall_ms=*/0.01);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(counter->value(), kThreads * kIters);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(hist->snapshot().count, kThreads * kIters);
  }
  const int64_t committed = static_cast<int64_t>(trace.records().size());
  EXPECT_EQ(committed + trace.dropped(), kThreads * kIters);
  EXPECT_EQ(committed, 64);  // capacity-bounded, rest dropped
}

TEST(ObsSlowLogTest, KeepsSlowestSortedAndClears) {
  SlowQueryLog log(/*capacity=*/2);
  auto offer = [&log](double total_ms) {
    TraceSummary s;
    s.label = "q" + std::to_string(total_ms);
    s.total_ms = total_ms;
    log.Offer(std::move(s));
  };
  offer(5.0);
  offer(1.0);
  offer(9.0);
  offer(0.5);
  offer(7.0);
  const std::vector<TraceSummary> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].total_ms, 9.0);
  EXPECT_DOUBLE_EQ(snap[1].total_ms, 7.0);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(ObsExportTest, JsonShape) {
  Registry reg;
  reg.GetCounter("engine.sched.executed")->Add(3);
  reg.GetGauge("store.epoch")->Set(11);
  Histogram* hist =
      reg.GetHistogram("engine.query.total_ms", {1.0, 10.0});
  hist->Record(0.5);
  std::vector<TraceSummary> slow;
  TraceSummary summary;
  summary.label = "bu d=3 s=2 k=5";
  summary.epoch = 11;
  summary.total_ms = 4.25;
  SpanRecord span;
  span.name = "query.run";
  span.id = 1;
  span.wall_ms = 4.25;
  summary.spans.push_back(span);
  slow.push_back(summary);
  const std::string json = obs::ToJson(reg.Snapshot(), slow);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"engine.sched.executed\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\", \"value\": 3"),
            std::string::npos);
  EXPECT_NE(json.find("\"store.epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\", \"value\": 11"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"bu d=3 s=2 k=5\""), std::string::npos);
  EXPECT_NE(json.find("\"query.run\""), std::string::npos);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  }
}

TEST(ObsExportTest, PrometheusShape) {
  Registry reg;
  reg.GetCounter("engine.sched.executed")->Add(3);
  Histogram* hist = reg.GetHistogram("engine.query.total_ms", {1.0, 10.0});
  hist->Record(0.5);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE mlcore_engine_sched_executed counter"),
            std::string::npos);
  EXPECT_NE(text.find("mlcore_engine_sched_executed 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mlcore_engine_query_total_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("mlcore_engine_query_total_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mlcore_engine_query_total_ms_count"),
            std::string::npos);
}

TEST(ObsExportTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_export_test.json";
  ASSERT_TRUE(obs::WriteFile(path, "{\"version\": 1}\n"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "{\"version\": 1}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlcore
