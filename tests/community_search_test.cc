#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcc.h"
#include "core/fds.h"
#include "dccs/community_search.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

TEST(CommunitySearchTest, FindsPlantedCommunityOfQuery) {
  PlantedGraphConfig config;
  config.num_vertices = 300;
  config.num_layers = 6;
  config.num_communities = 3;
  config.community_size_min = 18;
  config.community_size_max = 24;
  config.internal_prob_min = 0.95;
  config.internal_prob_max = 1.0;
  config.community_layers_min = 3;
  config.background_avg_degree = 1.0;
  config.seed = 21;
  PlantedGraph planted = GeneratePlanted(config);

  for (const auto& community : planted.communities) {
    const int s = static_cast<int>(community.layers.size());
    VertexId query = community.vertices[community.vertices.size() / 2];
    CommunitySearchResult result =
        SearchCommunity(planted.graph, query, /*d=*/8, s);
    ASSERT_TRUE(result.Found());
    EXPECT_TRUE(std::binary_search(result.community.begin(),
                                   result.community.end(), query));
    // The community containing the query must be covered.
    VertexSet overlap = IntersectSorted(result.community, community.vertices);
    EXPECT_GE(overlap.size(), community.vertices.size() * 9 / 10);
  }
}

TEST(CommunitySearchTest, ResultIsExactCoherentCore) {
  MultiLayerGraph graph = GenerateErdosRenyi(80, 4, 0.12, 31);
  for (VertexId query : {0, 17, 42}) {
    CommunitySearchResult result = SearchCommunity(graph, query, 2, 2);
    if (!result.Found()) continue;
    EXPECT_EQ(static_cast<int>(result.layers.size()), 2);
    EXPECT_EQ(result.community, CoherentCore(graph, result.layers, 2));
  }
}

TEST(CommunitySearchTest, IsolatedQueryNotFound) {
  GraphBuilder builder(10, 2);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      builder.AddEdge(0, u, v);
      builder.AddEdge(1, u, v);
    }
  }
  MultiLayerGraph graph = builder.Build();
  CommunitySearchResult result = SearchCommunity(graph, /*query=*/9, 2, 2);
  EXPECT_FALSE(result.Found());
  // A clique member, by contrast, is found.
  CommunitySearchResult member = SearchCommunity(graph, /*query=*/2, 2, 2);
  ASSERT_TRUE(member.Found());
  EXPECT_EQ(member.community, (VertexSet{0, 1, 2, 3, 4}));
}

TEST(CommunitySearchTest, SupportAboveLayerCountNotFound) {
  MultiLayerGraph graph = GenerateErdosRenyi(30, 2, 0.2, 41);
  EXPECT_FALSE(SearchCommunity(graph, 0, 1, 5).Found());
}

TEST(CommunitySearchTest, GreedyCloseToExhaustiveOnSmallGraphs) {
  // Compare against the best |C^d_L| over all C(l, s) subsets containing
  // the query. The greedy is a heuristic; require it to find a community
  // whenever one exists and to reach at least half the optimal size.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    MultiLayerGraph graph = GenerateErdosRenyi(60, 4, 0.14, 50 + seed);
    const int d = 2, s = 2;
    auto candidates = EnumerateFds(graph, d, s);
    for (VertexId query : {3, 25, 48}) {
      size_t best = 0;
      for (const auto& candidate : candidates) {
        if (std::binary_search(candidate.vertices.begin(),
                               candidate.vertices.end(), query)) {
          best = std::max(best, candidate.vertices.size());
        }
      }
      CommunitySearchResult result = SearchCommunity(graph, query, d, s);
      if (best == 0) {
        EXPECT_FALSE(result.Found());
      } else {
        ASSERT_TRUE(result.Found()) << "seed " << seed;
        EXPECT_GE(result.community.size() * 2, best) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace mlcore
