// Tests for the continuous-DCCS surface (Engine::Subscribe, DESIGN.md §9):
// the determinism oracle — every revision's result and delta must be
// bit-identical to a cold Engine::Run of the same request against that
// epoch's snapshot, at several thread/worker counts — plus the
// unchanged-skip fast path (zero recomputation, counter-verified),
// bounded-buffer coalescing, callback-mode ordering, cancellation, and
// engine-destruction semantics. The CI TSan and ASan+UBSan jobs run this
// file; SubscriptionRaceTest is the dedicated data-race probe.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "dccs/dccs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "service/delta.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace mlcore {
namespace {

constexpr int kTrackedD = 3;

MultiLayerGraph SubscriptionGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 200;
  config.num_layers = 4;
  config.num_communities = 6;
  config.community_size_min = 8;
  config.community_size_max = 16;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

// Two 4-cliques on both layers (each a d = 3 core) plus spare low-degree
// vertices 8..13 whose edges can never touch a 3-core — the controllable
// background for unchanged-skip tests.
MultiLayerGraph TwoCliqueGraph() {
  GraphBuilder builder(/*num_vertices=*/14, /*num_layers=*/2);
  for (LayerId layer = 0; layer < 2; ++layer) {
    for (VertexId u = 0; u < 4; ++u) {
      for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(layer, u, v);
    }
    for (VertexId u = 4; u < 8; ++u) {
      for (VertexId v = u + 1; v < 8; ++v) builder.AddEdge(layer, u, v);
    }
  }
  return builder.Build();
}

std::shared_ptr<GraphStore> MakeStore(MultiLayerGraph graph) {
  GraphStore::Options options;
  options.tracked_degrees = {kTrackedD};
  return std::make_shared<GraphStore>(std::move(graph), options);
}

DccsRequest MakeRequest(DccsAlgorithm algorithm, int k = 4) {
  DccsRequest request;
  request.params.d = kTrackedD;
  request.params.s = 2;
  request.params.k = k;
  request.algorithm = algorithm;
  return request;
}

// Deterministic churn batch against the current graph: removals of
// present edges and insertions of absent pairs, valid by construction.
UpdateBatch ChurnBatch(const MultiLayerGraph& graph, Rng& rng) {
  UpdateBatch batch;
  const int32_t n = graph.NumVertices();
  const int32_t l = graph.NumLayers();
  std::vector<std::tuple<LayerId, VertexId, VertexId>> touched;
  auto fresh = [&](LayerId layer, VertexId u, VertexId v) {
    const auto key = std::make_tuple(layer, std::min(u, v), std::max(u, v));
    if (std::find(touched.begin(), touched.end(), key) != touched.end()) {
      return false;
    }
    touched.push_back(key);
    return true;
  };
  for (int i = 0; i < 8; ++i) {
    const auto layer = static_cast<LayerId>(rng.Uniform(0, l - 1));
    const auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    const auto nbrs = graph.Neighbors(layer, v);
    if (nbrs.empty()) continue;
    const VertexId u = nbrs[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(nbrs.size()) - 1))];
    if (fresh(layer, u, v)) batch.Remove(layer, u, v);
  }
  for (int i = 0; i < 8; ++i) {
    const auto layer = static_cast<LayerId>(rng.Uniform(0, l - 1));
    const auto u = static_cast<VertexId>(rng.Uniform(0, n - 1));
    const auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    if (u == v || graph.HasEdge(layer, std::min(u, v), std::max(u, v))) {
      continue;
    }
    if (fresh(layer, u, v)) batch.Insert(layer, u, v);
  }
  return batch;
}

void ExpectSameResult(const DccsResult& actual, const DccsResult& expected,
                      const std::string& label) {
  ASSERT_EQ(actual.cores.size(), expected.cores.size()) << label;
  for (size_t i = 0; i < actual.cores.size(); ++i) {
    EXPECT_EQ(actual.cores[i], expected.cores[i]) << label << " core " << i;
  }
  EXPECT_EQ(actual.stats.candidates_generated,
            expected.stats.candidates_generated)
      << label;
  EXPECT_EQ(actual.stats.nodes_visited, expected.stats.nodes_visited)
      << label;
  EXPECT_EQ(actual.Cover(), expected.Cover()) << label;
}

// Waits (bounded) until `predicate` holds; subscriptions process epochs
// asynchronously, so counter assertions poll.
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 10000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

TEST(SubscriptionTest, ValidationRejectsMalformedRequests) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  DccsRequest bad = MakeRequest(DccsAlgorithm::kAuto);
  bad.params.s = 0;
  Expected<Subscription> sub = engine.Subscribe(bad);
  EXPECT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code, StatusCode::kInvalidArgument);
}

TEST(SubscriptionTest, InitialRevisionMatchesRunAndReportsFullDelta) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  const DccsRequest request = MakeRequest(DccsAlgorithm::kBottomUp);

  Expected<DccsResult> reference = engine.Run(request);
  ASSERT_TRUE(reference.ok());

  Expected<Subscription> subscribed = engine.Subscribe(request);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  std::optional<ResultRevision> revision = sub.Next();
  ASSERT_TRUE(revision.has_value());
  EXPECT_EQ(revision->sequence, 1u);
  EXPECT_EQ(revision->epoch, 0u);
  EXPECT_FALSE(revision->unchanged);
  ExpectSameResult(revision->result, *reference, "initial revision");
  // The first revision's delta is its whole result.
  EXPECT_EQ(revision->delta.cover_added, revision->result.Cover());
  EXPECT_TRUE(revision->delta.cover_removed.empty());
  EXPECT_EQ(revision->delta.cores_appeared, revision->result.cores);
  EXPECT_TRUE(revision->delta.cores_vanished.empty());
  EXPECT_TRUE(revision->delta.cores_changed.empty());
  EXPECT_TRUE(sub.active());
}

// The acceptance-criteria determinism oracle: for every epoch of a
// randomized update stream, each subscription's revision (result AND
// delta) is bit-identical to a cold Engine::Run of the same request
// against that epoch's snapshot — at 1/2/8 threads, including the
// zero-worker donation mode.
TEST(SubscriptionTest, RevisionsMatchColdRunsAtEveryEpoch) {
  const MultiLayerGraph initial = SubscriptionGraph(41);
  const std::vector<DccsRequest> requests = {
      MakeRequest(DccsAlgorithm::kBottomUp),
      MakeRequest(DccsAlgorithm::kGreedy)};
  constexpr int kEpochs = 5;

  // Pre-generate the batch stream and per-epoch cold references on a
  // scratch store (epoch e's reference is a fresh single-query engine
  // over that epoch's pinned snapshot).
  std::vector<UpdateBatch> batches;
  std::vector<std::vector<DccsResult>> reference;  // [epoch][request]
  {
    auto scratch = MakeStore(initial);
    Rng rng(2718);
    for (int epoch = 0; epoch <= kEpochs; ++epoch) {
      if (epoch > 0) {
        UpdateBatch batch = ChurnBatch(scratch->snapshot()->graph(), rng);
        auto outcome = scratch->ApplyUpdate(batch);
        ASSERT_TRUE(outcome.ok()) << outcome.status().message;
        batches.push_back(std::move(batch));
      }
      auto snap = scratch->snapshot();
      Engine cold(snap->graph_ptr(),
                  Engine::Options{.num_threads = 1, .query_workers = 0});
      std::vector<DccsResult> row;
      for (const DccsRequest& request : requests) {
        Expected<DccsResult> response = cold.Run(request);
        ASSERT_TRUE(response.ok());
        row.push_back(std::move(*response));
      }
      reference.push_back(std::move(row));
    }
  }

  struct Config {
    int num_threads;
    int query_workers;
  };
  for (const Config& config :
       {Config{1, 1}, Config{2, 2}, Config{8, 8}, Config{1, 0}}) {
    SCOPED_TRACE("threads=" + std::to_string(config.num_threads) +
                 " workers=" + std::to_string(config.query_workers));
    Engine engine(MakeStore(initial),
                  Engine::Options{.num_threads = config.num_threads,
                                  .query_workers = config.query_workers});
    std::vector<Subscription> subs;
    for (const DccsRequest& request : requests) {
      SubscriptionOptions options;
      options.max_buffered_revisions = kEpochs + 2;  // no coalescing here
      Expected<Subscription> subscribed = engine.Subscribe(request, options);
      ASSERT_TRUE(subscribed.ok());
      subs.push_back(*subscribed);
    }

    for (int epoch = 0; epoch <= kEpochs; ++epoch) {
      if (epoch > 0) {
        ASSERT_TRUE(engine.ApplyUpdate(batches[static_cast<size_t>(
                        epoch - 1)]).ok());
      }
      for (size_t r = 0; r < subs.size(); ++r) {
        const std::string label =
            "epoch " + std::to_string(epoch) + " request " + std::to_string(r);
        std::optional<ResultRevision> revision = subs[r].Next();
        ASSERT_TRUE(revision.has_value()) << label;
        EXPECT_EQ(revision->epoch, static_cast<uint64_t>(epoch)) << label;
        EXPECT_EQ(revision->sequence, static_cast<uint64_t>(epoch + 1))
            << label;
        EXPECT_EQ(revision->coalesced, 0) << label;
        const DccsResult& cold =
            reference[static_cast<size_t>(epoch)][r];
        ExpectSameResult(revision->result, cold, label);
        const DccsResult empty;
        const DccsResult& prev =
            epoch == 0 ? empty
                       : reference[static_cast<size_t>(epoch - 1)][r];
        EXPECT_EQ(revision->delta, ComputeResultDelta(prev, cold)) << label;
      }
    }
  }
}

// Acceptance criterion: an epoch whose updates leave the (d, s)-relevant
// core-subgraph generations untouched produces an "unchanged" revision
// with zero preprocess/search work, verified through the engine counters.
TEST(SubscriptionTest, UnchangedEpochEmitsRevisionWithoutRecomputation) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  const DccsRequest request = MakeRequest(DccsAlgorithm::kBottomUp);

  Expected<Subscription> subscribed = engine.Subscribe(request);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  std::optional<ResultRevision> initial = sub.Next();
  ASSERT_TRUE(initial.has_value());
  ASSERT_FALSE(initial->result.cores.empty());

  engine.ResetStats();

  // Background churn: an edge between spare low-degree vertices cannot
  // touch any 3-core subgraph, so the tracked generation must not move.
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Insert(0, 8, 9)).ok());
  std::optional<ResultRevision> unchanged = sub.Next();
  ASSERT_TRUE(unchanged.has_value());
  EXPECT_TRUE(unchanged->unchanged);
  EXPECT_EQ(unchanged->epoch, 1u);
  EXPECT_TRUE(unchanged->delta.empty());
  ExpectSameResult(unchanged->result, initial->result, "unchanged revision");
  // ... and it must equal a cold run against the new epoch's snapshot.
  {
    auto snap = engine.store()->snapshot();
    Engine cold(snap->graph_ptr(),
                Engine::Options{.num_threads = 1, .query_workers = 0});
    Expected<DccsResult> response = cold.Run(request);
    ASSERT_TRUE(response.ok());
    ExpectSameResult(unchanged->result, *response, "unchanged vs cold");
  }

  // Zero work, counter-verified: nothing entered the scheduler, no cache
  // was consulted or built.
  const EngineCacheStats cache = engine.cache_stats();
  const SchedulerStats sched = engine.scheduler_stats();
  EXPECT_EQ(sched.submitted, 0);
  EXPECT_EQ(sched.executed, 0);
  EXPECT_EQ(cache.preprocess_hits, 0);
  EXPECT_EQ(cache.preprocess_misses, 0);
  EXPECT_EQ(cache.base_core_hits, 0);
  EXPECT_EQ(cache.base_core_misses, 0);
  EXPECT_EQ(cache.revisions_unchanged_skipped, 1);
  EXPECT_EQ(cache.revisions_emitted, 1);

  // Core churn (removing a clique edge) must re-evaluate: the revision is
  // a fresh computation and the scheduler saw it.
  engine.ResetStats();
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Remove(0, 0, 1)).ok());
  std::optional<ResultRevision> recomputed = sub.Next();
  ASSERT_TRUE(recomputed.has_value());
  EXPECT_FALSE(recomputed->unchanged);
  EXPECT_EQ(recomputed->epoch, 2u);
  EXPECT_EQ(engine.scheduler_stats().executed, 1);
  EXPECT_EQ(engine.cache_stats().revisions_unchanged_skipped, 0);
}

TEST(SubscriptionTest, SilentUnchangedAbsorptionWhenEmitDisabled) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  SubscriptionOptions options;
  options.emit_unchanged = false;
  Expected<Subscription> subscribed =
      engine.Subscribe(MakeRequest(DccsAlgorithm::kBottomUp), options);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  ASSERT_TRUE(sub.Next().has_value());

  engine.ResetStats();
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Insert(1, 10, 11)).ok());
  ASSERT_TRUE(WaitFor([&] {
    return engine.cache_stats().revisions_unchanged_skipped == 1;
  }));
  EXPECT_EQ(engine.cache_stats().revisions_emitted, 0);
  EXPECT_FALSE(sub.TryNext().has_value());
}

// Latest-epoch-wins coalescing under a bounded buffer: a consumer that
// stops reading keeps only the newest revision, with the folded steps
// accounted in `coalesced` and a delta re-anchored to the last revision
// it actually saw.
TEST(SubscriptionTest, CoalescingBoundsTheBufferAndKeepsDeltasChained) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  const DccsRequest request = MakeRequest(DccsAlgorithm::kBottomUp);
  SubscriptionOptions options;
  options.max_buffered_revisions = 1;
  Expected<Subscription> subscribed = engine.Subscribe(request, options);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  std::optional<ResultRevision> initial = sub.Next();
  ASSERT_TRUE(initial.has_value());

  // Toggle a clique edge (core churn — every epoch re-evaluates), pacing
  // each update on the emission counter so every epoch gets its own
  // revision before the next lands on the full buffer.
  const int kEpochs = 4;
  for (int e = 1; e <= kEpochs; ++e) {
    UpdateBatch batch = e % 2 == 1 ? UpdateBatch{}.Remove(0, 0, 1)
                                   : UpdateBatch{}.Insert(0, 0, 1);
    ASSERT_TRUE(engine.ApplyUpdate(batch).ok());
    ASSERT_TRUE(WaitFor([&] {
      return engine.cache_stats().revisions_emitted >=
             static_cast<int64_t>(e + 1);
    }));
  }

  const EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.revisions_emitted, kEpochs + 1);
  EXPECT_EQ(stats.revisions_coalesced, kEpochs - 1);

  // Exactly one buffered revision survives: the newest epoch, carrying
  // the folded count and a delta against the *initial* revision (the last
  // one the consumer saw). Epoch 4 restored the initial graph, so that
  // delta is empty.
  std::optional<ResultRevision> last = sub.TryNext();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->epoch, static_cast<uint64_t>(kEpochs));
  EXPECT_EQ(last->sequence, static_cast<uint64_t>(kEpochs + 1));
  EXPECT_EQ(last->coalesced, kEpochs - 1);
  EXPECT_FALSE(last->unchanged);
  EXPECT_EQ(last->delta, ComputeResultDelta(initial->result, last->result));
  EXPECT_TRUE(last->delta.empty());
  EXPECT_FALSE(sub.TryNext().has_value());
}

// The never-silently-starved guarantee: an evaluation shed by a full
// admission queue runs inline on the dispatcher thread instead of being
// dropped.
TEST(SubscriptionTest, ShedEvaluationRunsInlineOnTheDispatcher) {
  // query_workers = 0 and a one-slot queue: the parked Submit below is
  // never executed (nobody waits on it), so every subscription evaluation
  // finds the queue full of equal-priority work and is shed → inline.
  Engine engine(MakeStore(TwoCliqueGraph()),
                Engine::Options{.query_workers = 0,
                                .max_pending_queries = 1});
  QueryHandle parked = engine.Submit(MakeRequest(DccsAlgorithm::kBottomUp));
  ASSERT_EQ(parked.TryGet(), nullptr);  // admitted, not executed

  Expected<Subscription> subscribed =
      engine.Subscribe(MakeRequest(DccsAlgorithm::kBottomUp));
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  std::optional<ResultRevision> initial = sub.Next();
  ASSERT_TRUE(initial.has_value());
  EXPECT_GE(engine.scheduler_stats().rejected, 1);

  // Core churn: the re-evaluation is shed → inline too, and still equals
  // a cold run of the new epoch.
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Remove(0, 0, 1)).ok());
  std::optional<ResultRevision> recomputed = sub.Next();
  ASSERT_TRUE(recomputed.has_value());
  EXPECT_EQ(recomputed->epoch, 1u);
  EXPECT_GE(engine.scheduler_stats().rejected, 2);
  {
    auto snap = engine.store()->snapshot();
    Engine cold(snap->graph_ptr(),
                Engine::Options{.num_threads = 1, .query_workers = 0});
    Expected<DccsResult> response =
        cold.Run(MakeRequest(DccsAlgorithm::kBottomUp));
    ASSERT_TRUE(response.ok());
    ExpectSameResult(recomputed->result, *response, "shed-inline vs cold");
  }
  sub.Cancel();
  parked.Cancel();
}

TEST(SubscriptionTest, CallbackModeDeliversInOrder) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  std::mutex mu;
  std::vector<ResultRevision> received;
  SubscriptionOptions options;
  options.on_revision = [&](const ResultRevision& revision) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(revision);
  };
  Expected<Subscription> subscribed =
      engine.Subscribe(MakeRequest(DccsAlgorithm::kBottomUp), options);
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;

  auto received_count = [&] {
    std::lock_guard<std::mutex> lock(mu);
    return received.size();
  };
  ASSERT_TRUE(WaitFor([&] { return received_count() == 1; }));
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Remove(0, 0, 1)).ok());
  ASSERT_TRUE(WaitFor([&] { return received_count() == 2; }));
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Insert(0, 8, 9)).ok());
  ASSERT_TRUE(WaitFor([&] { return received_count() == 3; }));

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 3u);
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].sequence, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(received[i].epoch, static_cast<uint64_t>(i));
    if (i > 0) {
      EXPECT_EQ(received[i].delta,
                ComputeResultDelta(received[i - 1].result,
                                   received[i].result));
    }
  }
  EXPECT_FALSE(received[1].unchanged);  // core churn
  EXPECT_TRUE(received[2].unchanged);   // background churn
  // Callback-mode revisions never buffer.
  EXPECT_FALSE(sub.TryNext().has_value());
}

TEST(SubscriptionTest, CancelStopsTheStream) {
  Engine engine(MakeStore(TwoCliqueGraph()));
  Expected<Subscription> subscribed =
      engine.Subscribe(MakeRequest(DccsAlgorithm::kBottomUp));
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;
  ASSERT_TRUE(sub.Next().has_value());
  ASSERT_TRUE(sub.active());

  sub.Cancel();
  EXPECT_FALSE(sub.active());
  const int64_t emitted_before = engine.cache_stats().revisions_emitted;
  ASSERT_TRUE(engine.ApplyUpdate(UpdateBatch{}.Remove(0, 0, 1)).ok());
  // The update is fully processed by other observers before we assert
  // nothing reached the cancelled subscription.
  Expected<Subscription> probe =
      engine.Subscribe(MakeRequest(DccsAlgorithm::kBottomUp));
  ASSERT_TRUE(probe.ok());
  Subscription probe_sub = *probe;
  ASSERT_TRUE(probe_sub.Next().has_value());
  EXPECT_EQ(engine.cache_stats().revisions_emitted, emitted_before + 1);
  EXPECT_FALSE(sub.Next().has_value());  // terminal, drained: no block
  probe_sub.Cancel();
}

TEST(SubscriptionTest, EngineDestructionTerminatesSubscriptions) {
  auto store = MakeStore(TwoCliqueGraph());
  auto engine = std::make_unique<Engine>(store);
  Expected<Subscription> subscribed =
      engine->Subscribe(MakeRequest(DccsAlgorithm::kBottomUp));
  ASSERT_TRUE(subscribed.ok());
  Subscription sub = *subscribed;

  // One consumer blocks in Next while the engine dies.
  std::optional<ResultRevision> from_blocked;
  std::thread blocked([&] {
    Subscription copy = sub;
    copy.Next();                    // initial revision
    from_blocked = copy.Next();     // blocks until ~Engine
  });
  // Let the blocked thread reach its second Next (the initial revision is
  // the only one coming).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.reset();
  blocked.join();
  EXPECT_FALSE(from_blocked.has_value());

  // Handles remain safe after destruction.
  EXPECT_FALSE(sub.active());
  EXPECT_FALSE(sub.Next().has_value());
  sub.Cancel();  // idempotent, engine-free

  // The store outlives the engine; updates keep applying.
  EXPECT_TRUE(store->ApplyUpdate(UpdateBatch{}.Insert(0, 8, 9)).ok());
}

// The TSan probe demanded by the acceptance criteria: ApplyUpdate,
// Subscribe, Next/TryNext, Cancel and engine destruction all race. The
// assertions are deliberately light — the value is the interleaving under
// the sanitizer jobs.
TEST(SubscriptionRaceTest, RacesUpdatesSubscribeCancelAndDestruction) {
  for (int iteration = 0; iteration < 2; ++iteration) {
    auto store = MakeStore(SubscriptionGraph(90 + iteration));
    // A small admission queue plus mixed subscription priorities below
    // push the interleaving through the shed-inline and
    // displaced-then-retried evaluation paths as well.
    auto engine = std::make_unique<Engine>(
        store, Engine::Options{.num_threads = 2,
                               .query_workers = 2,
                               .max_pending_queries = 2});
    std::atomic<bool> stop_updates{false};
    std::atomic<bool> stop_subscribing{false};

    std::atomic<int> done_subscribing{0};

    std::thread updater([&] {
      Rng rng(7 + iteration);
      while (!stop_updates.load(std::memory_order_acquire)) {
        UpdateBatch batch = ChurnBatch(store->snapshot()->graph(), rng);
        EXPECT_TRUE(store->ApplyUpdate(batch).ok());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    std::vector<std::thread> subscribers;
    for (int t = 0; t < 3; ++t) {
      subscribers.emplace_back([&, t] {
        Rng rng(100 + t);
        std::vector<Subscription> held;
        // Phase 1: Subscribe/TryNext/Cancel race ApplyUpdate and each
        // other (but not destruction — Subscribe vs ~Engine is UB, like
        // Submit).
        while (!stop_subscribing.load(std::memory_order_acquire)) {
          SubscriptionOptions options;
          options.max_buffered_revisions = 2;
          options.priority = t - 1;  // mixed priorities drive displacement
          Expected<Subscription> subscribed = engine->Subscribe(
              MakeRequest(t % 2 == 0 ? DccsAlgorithm::kBottomUp
                                     : DccsAlgorithm::kGreedy),
              options);
          ASSERT_TRUE(subscribed.ok());
          Subscription sub = *subscribed;
          sub.TryNext();
          if (rng.Bernoulli(0.5) || held.size() > 4) {
            sub.Cancel();
          } else {
            held.push_back(sub);
          }
        }
        done_subscribing.fetch_add(1, std::memory_order_acq_rel);
        // Phase 2: Next/Cancel on held subscriptions race ~Engine and the
        // still-running updater.
        for (Subscription& sub : held) {
          while (sub.Next().has_value()) {
          }
          sub.Cancel();
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    stop_subscribing.store(true, std::memory_order_release);
    while (done_subscribing.load(std::memory_order_acquire) < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    engine.reset();  // races Next/Cancel on held subscriptions + updates
    stop_updates.store(true, std::memory_order_release);
    for (std::thread& thread : subscribers) thread.join();
    updater.join();
  }
}

}  // namespace
}  // namespace mlcore
