#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcc.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "graph/generators.h"
#include "util/check.h"

namespace mlcore {
namespace {

TEST(VertexIndexTest, PartitionsAllActiveVertices) {
  MultiLayerGraph graph = GenerateErdosRenyi(100, 4, 0.08, 5);
  VertexSet active = AllVertices(graph);
  VertexLevelIndex index(graph, 2, active);
  size_t assigned = 0;
  for (int level = 0; level < index.num_levels(); ++level) {
    assigned += index.at_level(level).size();
    for (VertexId v : index.at_level(level)) {
      EXPECT_EQ(index.level(v), level);
    }
  }
  EXPECT_EQ(assigned, active.size());
}

TEST(VertexIndexTest, StagesAreMonotoneAcrossLevels) {
  MultiLayerGraph graph = GenerateErdosRenyi(120, 5, 0.07, 6);
  VertexLevelIndex index(graph, 2, AllVertices(graph));
  int previous_stage = 0;
  for (int level = 0; level < index.num_levels(); ++level) {
    ASSERT_FALSE(index.at_level(level).empty());
    int stage = index.stage(index.at_level(level)[0]);
    for (VertexId v : index.at_level(level)) {
      EXPECT_EQ(index.stage(v), stage) << "mixed stages within one batch";
    }
    EXPECT_GE(stage, previous_stage);
    previous_stage = stage;
  }
}

TEST(VertexIndexTest, LabelsBoundedByStage) {
  // |L(v)| can exceed the removal stage only before the first batch at that
  // stage; by construction Num(v) ≤ stage(v) at removal, so |L(v)| ≤ stage.
  MultiLayerGraph graph = GenerateErdosRenyi(90, 4, 0.08, 7);
  VertexLevelIndex index(graph, 2, AllVertices(graph));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    ASSERT_GE(index.stage(v), 1);
    EXPECT_LE(static_cast<int>(index.label(v).size()), index.stage(v));
    EXPECT_TRUE(std::is_sorted(index.label(v).begin(), index.label(v).end()));
  }
}

TEST(VertexIndexTest, Lemma8ScopeContainsCoherentCores) {
  // Lemma 8: C^d_{L'} ⊆ {v : stage(v) ≥ |L'|} for every layer subset L'.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    PlantedGraphConfig config;
    config.num_vertices = 150;
    config.num_layers = 5;
    config.num_communities = 4;
    config.seed = 500 + seed;
    MultiLayerGraph graph = GeneratePlanted(config).graph;
    const int d = 3;
    VertexLevelIndex index(graph, d, AllVertices(graph));
    DccSolver solver(graph);
    std::vector<LayerSet> subsets = {
        {0}, {0, 1}, {1, 2, 3}, {0, 2, 3, 4}, {0, 1, 2, 3, 4}};
    for (const LayerSet& layers : subsets) {
      VertexSet core = solver.Compute(layers, d, AllVertices(graph));
      for (VertexId v : core) {
        EXPECT_GE(index.stage(v), static_cast<int>(layers.size()))
            << "seed=" << seed;
      }
    }
  }
}

TEST(VertexIndexTest, VerticesOutsideActiveGetMinusOne) {
  MultiLayerGraph graph = GenerateErdosRenyi(40, 2, 0.1, 8);
  VertexSet active;
  for (VertexId v = 0; v < 20; ++v) active.push_back(v);
  VertexLevelIndex index(graph, 1, active);
  for (VertexId v = 20; v < 40; ++v) {
    EXPECT_EQ(index.level(v), -1);
    EXPECT_EQ(index.stage(v), -1);
  }
}

TEST(VertexIndexTest, LabelMatchesCoreMembershipAtRemoval) {
  // Spot property: for vertices on the very first level, L(v) must equal
  // their membership in the *initial* per-layer d-cores.
  MultiLayerGraph graph = GenerateErdosRenyi(80, 3, 0.09, 9);
  const int d = 2;
  PreprocessResult pre = Preprocess(graph, d, /*s=*/1, false);
  VertexLevelIndex index(graph, d, AllVertices(graph));
  ASSERT_GT(index.num_levels(), 0);
  for (VertexId v : index.at_level(0)) {
    LayerSet expected;
    for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
      if (pre.layer_core_bits[static_cast<size_t>(layer)].Test(
              static_cast<size_t>(v))) {
        expected.push_back(layer);
      }
    }
    EXPECT_EQ(index.label(v), expected);
  }
}

}  // namespace
}  // namespace mlcore
