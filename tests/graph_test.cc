#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/io.h"
#include "graph/multilayer_graph.h"
#include "graph/sampling.h"

namespace mlcore {
namespace {

MultiLayerGraph TwoLayerTriangle() {
  // Layer 0: triangle 0-1-2 plus pendant 3; layer 1: path 0-1-2.
  GraphBuilder builder(4, 2);
  builder.AddEdge(0, 0, 1);
  builder.AddEdge(0, 1, 2);
  builder.AddEdge(0, 0, 2);
  builder.AddEdge(0, 2, 3);
  builder.AddEdge(1, 0, 1);
  builder.AddEdge(1, 1, 2);
  return builder.Build();
}

TEST(GraphBuilderTest, BasicConstruction) {
  MultiLayerGraph graph = TwoLayerTriangle();
  EXPECT_EQ(graph.NumVertices(), 4);
  EXPECT_EQ(graph.NumLayers(), 2);
  EXPECT_EQ(graph.NumEdges(0), 4);
  EXPECT_EQ(graph.NumEdges(1), 2);
  EXPECT_EQ(graph.TotalEdges(), 6);
  EXPECT_EQ(graph.Degree(0, 2), 3);
  EXPECT_EQ(graph.Degree(1, 2), 1);
  EXPECT_TRUE(graph.HasEdge(0, 0, 2));
  EXPECT_FALSE(graph.HasEdge(1, 0, 2));
}

TEST(GraphBuilderTest, DeduplicatesAndIgnoresSelfLoops) {
  GraphBuilder builder(3, 1);
  builder.AddEdge(0, 0, 1);
  builder.AddEdge(0, 1, 0);  // duplicate in reverse orientation
  builder.AddEdge(0, 0, 1);  // duplicate
  builder.AddEdge(0, 2, 2);  // self loop
  MultiLayerGraph graph = builder.Build();
  EXPECT_EQ(graph.NumEdges(0), 1);
  EXPECT_EQ(graph.Degree(0, 2), 0);
}

TEST(GraphBuilderTest, NeighborListsSorted) {
  GraphBuilder builder(5, 1);
  builder.AddEdge(0, 2, 4);
  builder.AddEdge(0, 2, 0);
  builder.AddEdge(0, 2, 3);
  builder.AddEdge(0, 2, 1);
  MultiLayerGraph graph = builder.Build();
  auto nbrs = graph.Neighbors(0, 2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(MultiLayerGraphTest, DistinctEdges) {
  MultiLayerGraph graph = TwoLayerTriangle();
  // Union of layers: {01, 12, 02, 23} = 4 distinct edges.
  EXPECT_EQ(graph.DistinctEdges(), 4);
}

TEST(MultiLayerGraphTest, InducedSubgraph) {
  MultiLayerGraph graph = TwoLayerTriangle();
  std::vector<VertexId> old_ids;
  MultiLayerGraph sub = graph.InducedSubgraph({0, 1, 2}, &old_ids);
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(sub.NumEdges(0), 3);  // the triangle survives
  EXPECT_EQ(sub.NumEdges(1), 2);
  EXPECT_EQ(old_ids, (VertexSet{0, 1, 2}));

  MultiLayerGraph sub2 = graph.InducedSubgraph({2, 3}, nullptr);
  EXPECT_EQ(sub2.NumEdges(0), 1);  // edge (2,3) renumbered to (0,1)
  EXPECT_TRUE(sub2.HasEdge(0, 0, 1));
}

TEST(MultiLayerGraphTest, SelectLayers) {
  MultiLayerGraph graph = TwoLayerTriangle();
  MultiLayerGraph only_second = graph.SelectLayers({1});
  EXPECT_EQ(only_second.NumLayers(), 1);
  EXPECT_EQ(only_second.NumEdges(0), 2);
}

TEST(MultiLayerGraphTest, SetHelpers) {
  EXPECT_EQ(IntersectSorted({1, 2, 3}, {2, 3, 4}), (VertexSet{2, 3}));
  EXPECT_EQ(UnionSorted({1, 3}, {2, 3}), (VertexSet{1, 2, 3}));
  EXPECT_TRUE(IsSubsetSorted({2, 3}, {1, 2, 3, 4}));
  EXPECT_FALSE(IsSubsetSorted({2, 5}, {1, 2, 3, 4}));
  EXPECT_TRUE(IsSubsetSorted({}, {1}));
}

TEST(IoTest, SaveLoadRoundTrip) {
  MultiLayerGraph graph = TwoLayerTriangle();
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_io_test.txt")
          .string();
  ASSERT_TRUE(SaveMultiLayerGraph(graph, path).ok);

  MultiLayerGraph loaded;
  IoStatus status = LoadMultiLayerGraph(path, &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(loaded.NumVertices(), graph.NumVertices());
  EXPECT_EQ(loaded.NumLayers(), graph.NumLayers());
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    EXPECT_EQ(loaded.NumEdges(layer), graph.NumEdges(layer));
  }
  EXPECT_TRUE(loaded.HasEdge(0, 2, 3));
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsMissingHeader) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_io_bad.txt").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("0 1 2\n", f);
    std::fclose(f);
  }
  MultiLayerGraph graph;
  EXPECT_FALSE(LoadMultiLayerGraph(path, &graph).ok);
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsOutOfRangeIds) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_io_bad2.txt")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("n 3 1\n0 0 7\n", f);
    std::fclose(f);
  }
  MultiLayerGraph graph;
  EXPECT_FALSE(LoadMultiLayerGraph(path, &graph).ok);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTripPreservesGraph) {
  MultiLayerGraph graph = GenerateErdosRenyi(120, 4, 0.06, 99);
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_io_bin.graph")
          .string();
  ASSERT_TRUE(SaveMultiLayerGraphBinary(graph, path).ok);
  MultiLayerGraph loaded;
  IoStatus status = LoadMultiLayerGraphBinary(path, &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(loaded.NumVertices(), graph.NumVertices());
  ASSERT_EQ(loaded.NumLayers(), graph.NumLayers());
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    ASSERT_EQ(loaded.NumEdges(layer), graph.NumEdges(layer));
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      auto a = graph.Neighbors(layer, v);
      auto b = loaded.Neighbors(layer, v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, BinaryLoadRejectsGarbage) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_io_garbage").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a graph", f);
    std::fclose(f);
  }
  MultiLayerGraph graph;
  EXPECT_FALSE(LoadMultiLayerGraphBinary(path, &graph).ok);
  std::remove(path.c_str());
}

TEST(DatasetsTest, SaveLoadRoundTrip) {
  Dataset dataset = MakeDataset("ppi", 0.5);
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_ds_cache").string();
  ASSERT_TRUE(SaveDataset(dataset, path));
  Dataset loaded;
  ASSERT_TRUE(LoadDataset(path, &loaded));
  EXPECT_EQ(loaded.name, dataset.name);
  EXPECT_EQ(loaded.graph.NumVertices(), dataset.graph.NumVertices());
  EXPECT_EQ(loaded.graph.TotalEdges(), dataset.graph.TotalEdges());
  ASSERT_EQ(loaded.communities.size(), dataset.communities.size());
  for (size_t c = 0; c < loaded.communities.size(); ++c) {
    EXPECT_EQ(loaded.communities[c].vertices,
              dataset.communities[c].vertices);
    EXPECT_EQ(loaded.communities[c].layers, dataset.communities[c].layers);
  }
  ASSERT_EQ(loaded.complexes.size(), dataset.complexes.size());
  for (size_t c = 0; c < loaded.complexes.size(); ++c) {
    EXPECT_EQ(loaded.complexes[c], dataset.complexes[c]);
  }
  std::remove((path + ".graph").c_str());
  std::remove((path + ".meta").c_str());
}

TEST(DatasetsTest, LoadDatasetFailsOnMissingFiles) {
  Dataset dataset;
  EXPECT_FALSE(LoadDataset("/nonexistent/mlcore_cache", &dataset));
}

TEST(SamplingTest, VertexSampleShrinksGraph) {
  MultiLayerGraph graph = GenerateErdosRenyi(100, 3, 0.05, 11);
  MultiLayerGraph half = SampleVertices(graph, 0.5, 1);
  EXPECT_EQ(half.NumVertices(), 50);
  EXPECT_EQ(half.NumLayers(), 3);
  EXPECT_LT(half.TotalEdges(), graph.TotalEdges());
}

TEST(SamplingTest, LayerSampleKeepsVertices) {
  MultiLayerGraph graph = GenerateErdosRenyi(50, 10, 0.05, 12);
  MultiLayerGraph some = SampleLayers(graph, 0.4, 2);
  EXPECT_EQ(some.NumVertices(), 50);
  EXPECT_EQ(some.NumLayers(), 4);
}

TEST(SamplingTest, FullFractionIsIdentity) {
  MultiLayerGraph graph = GenerateErdosRenyi(30, 2, 0.1, 13);
  EXPECT_EQ(SampleVertices(graph, 1.0, 5).NumVertices(), 30);
  EXPECT_EQ(SampleLayers(graph, 1.0, 5).NumLayers(), 2);
}

TEST(SamplingTest, DeterministicForSeed) {
  MultiLayerGraph graph = GenerateErdosRenyi(60, 2, 0.1, 14);
  MultiLayerGraph a = SampleVertices(graph, 0.5, 99);
  MultiLayerGraph b = SampleVertices(graph, 0.5, 99);
  EXPECT_EQ(a.TotalEdges(), b.TotalEdges());
}

TEST(GeneratorsTest, PlantedCommunitiesAreDense) {
  PlantedGraphConfig config;
  config.num_vertices = 300;
  config.num_layers = 4;
  config.num_communities = 3;
  config.community_size_min = 15;
  config.community_size_max = 25;
  config.internal_prob_min = 0.9;
  config.internal_prob_max = 0.95;
  config.seed = 5;
  PlantedGraph planted = GeneratePlanted(config);
  EXPECT_EQ(planted.graph.NumVertices(), 300);
  ASSERT_EQ(planted.communities.size(), 3u);
  // With p_in ≈ 0.9 the average internal degree on an active layer must be
  // close to |community| − 1.
  for (const auto& community : planted.communities) {
    ASSERT_FALSE(community.layers.empty());
    LayerId layer = community.layers[0];
    double total_degree = 0;
    for (VertexId v : community.vertices) {
      int degree = 0;
      for (VertexId u : planted.graph.Neighbors(layer, v)) {
        if (std::binary_search(community.vertices.begin(),
                               community.vertices.end(), u)) {
          ++degree;
        }
      }
      total_degree += degree;
    }
    double avg = total_degree / static_cast<double>(community.vertices.size());
    EXPECT_GT(avg, 0.7 * static_cast<double>(community.vertices.size() - 1));
  }
}

TEST(GeneratorsTest, Deterministic) {
  PlantedGraphConfig config;
  config.num_vertices = 200;
  config.num_layers = 3;
  config.seed = 77;
  PlantedGraph a = GeneratePlanted(config);
  PlantedGraph b = GeneratePlanted(config);
  EXPECT_EQ(a.graph.TotalEdges(), b.graph.TotalEdges());
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (size_t c = 0; c < a.communities.size(); ++c) {
    EXPECT_EQ(a.communities[c].vertices, b.communities[c].vertices);
  }
}

TEST(DatasetsTest, RegistryNamesAndLayerCounts) {
  auto names = DatasetNames();
  ASSERT_EQ(names.size(), 6u);
  // Layer counts must match paper Fig 12.
  const std::map<std::string, int> expected_layers = {
      {"ppi", 8},    {"author", 10},  {"german", 14},
      {"wiki", 24},  {"english", 15}, {"stack", 24}};
  for (const auto& name : names) {
    Dataset dataset = MakeDataset(name, name == "ppi" || name == "author"
                                            ? 1.0
                                            : 0.05);
    EXPECT_EQ(dataset.graph.NumLayers(), expected_layers.at(name)) << name;
    EXPECT_GT(dataset.graph.TotalEdges(), 0) << name;
    EXPECT_FALSE(dataset.communities.empty()) << name;
  }
}

TEST(DatasetsTest, PpiHasComplexes) {
  Dataset ppi = MakeDataset("ppi");
  EXPECT_EQ(ppi.graph.NumVertices(), 328);
  EXPECT_FALSE(ppi.complexes.empty());
  for (const auto& complex : ppi.complexes) {
    EXPECT_GE(complex.size(), 3u);
    EXPECT_LE(complex.size(), 8u);
  }
}

}  // namespace
}  // namespace mlcore
