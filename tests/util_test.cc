#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timing.h"

namespace mlcore {
namespace {

TEST(BitsetTest, SetTestClear) {
  Bitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, ToVectorSorted) {
  Bitset bits(200);
  bits.Set(150);
  bits.Set(3);
  bits.Set(63);
  bits.Set(64);
  EXPECT_EQ(bits.ToVector(), (std::vector<int>{3, 63, 64, 150}));
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  EXPECT_TRUE(bits.Test(69));
}

TEST(BitsetTest, IntersectAndUnion) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(2);
  Bitset inter = a;
  inter.IntersectWith(b);
  EXPECT_EQ(inter.ToVector(), (std::vector<int>{50, 99}));
  Bitset uni = a;
  uni.UnionWith(b);
  EXPECT_EQ(uni.ToVector(), (std::vector<int>{1, 2, 50, 99}));
}

TEST(BitsetTest, ResetClearsEverything) {
  Bitset bits(80);
  bits.SetAll();
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SkewedIndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.SkewedIndex(100, 0.4);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--k=10", "--gamma=0.8", "--name=stack",
                        "--quick"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 0), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("gamma", 0.0), 0.8);
  EXPECT_EQ(flags.GetString("name", ""), "stack");
  EXPECT_TRUE(flags.GetBool("quick", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_TRUE(flags.Has("k"));
  EXPECT_FALSE(flags.Has("j"));
}

TEST(TableTest, CsvRoundTrip) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"x", "y"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Int(42), "42");
}

TEST(TimingTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.25), "250ms");
  EXPECT_EQ(FormatSeconds(4.2), "4.20s");
  EXPECT_EQ(FormatSeconds(151.0), "2m31s");
}

TEST(TimingTest, TimerAdvances) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(timer.Seconds(), 0.0);
}

}  // namespace
}  // namespace mlcore
