#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "util/bitset.h"
#include "util/cancellation.h"
#include "util/flags.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {
namespace {

TEST(BitsetTest, SetTestClear) {
  Bitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, ToVectorSorted) {
  Bitset bits(200);
  bits.Set(150);
  bits.Set(3);
  bits.Set(63);
  bits.Set(64);
  EXPECT_EQ(bits.ToVector(), (std::vector<int>{3, 63, 64, 150}));
}

TEST(BitsetTest, SetAllRespectsSize) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  EXPECT_TRUE(bits.Test(69));
}

TEST(BitsetTest, IntersectAndUnion) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(2);
  Bitset inter = a;
  inter.IntersectWith(b);
  EXPECT_EQ(inter.ToVector(), (std::vector<int>{50, 99}));
  Bitset uni = a;
  uni.UnionWith(b);
  EXPECT_EQ(uni.ToVector(), (std::vector<int>{1, 2, 50, 99}));
}

TEST(BitsetTest, ResetClearsEverything) {
  Bitset bits(80);
  bits.SetAll();
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SkewedIndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.SkewedIndex(100, 0.4);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--k=10", "--gamma=0.8", "--name=stack",
                        "--quick"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 0), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("gamma", 0.0), 0.8);
  EXPECT_EQ(flags.GetString("name", ""), "stack");
  EXPECT_TRUE(flags.GetBool("quick", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_TRUE(flags.Has("k"));
  EXPECT_FALSE(flags.Has("j"));
}

TEST(TableTest, CsvRoundTrip) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"x", "y"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Int(42), "42");
}

TEST(TimingTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.25), "250ms");
  EXPECT_EQ(FormatSeconds(4.2), "4.20s");
  EXPECT_EQ(FormatSeconds(151.0), "2m31s");
}

TEST(TimingTest, FormatSecondsSubMillisecondTier) {
  // Sub-ms durations (preprocess-cache hits) used to round to "0ms".
  EXPECT_EQ(FormatSeconds(0.000031), "31us");
  EXPECT_EQ(FormatSeconds(0.00099), "990us");
  EXPECT_EQ(FormatSeconds(0.0), "0us");
  EXPECT_EQ(FormatSeconds(0.001), "1ms");
}

TEST(TimingTest, ThreadCpuTimerMeasuresWork) {
  if (!ThreadCpuTimer::Supported()) {
    GTEST_SKIP() << "no CLOCK_THREAD_CPUTIME_ID on this platform";
  }
  ThreadCpuTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const double cpu = timer.Seconds();
  EXPECT_GE(cpu, 0.0);
  EXPECT_GE(timer.Millis(), 0.0);
  // A sleeping thread accrues (almost) no CPU time; just confirm Restart
  // rebases the clock instead of asserting on scheduler behaviour.
  timer.Restart();
  EXPECT_LT(timer.Seconds(), cpu + 1.0);
}

TEST(TimingTest, TimerAdvances) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(timer.Seconds(), 0.0);
}

TEST(CancellationTest, TokenSharesStateAcrossCopies) {
  CancellationToken token;
  CancellationToken copy = token;
  EXPECT_FALSE(copy.cancel_requested());
  token.RequestCancel();
  EXPECT_TRUE(copy.cancel_requested());
  copy.RequestCancel();  // idempotent
  EXPECT_TRUE(token.cancel_requested());
}

TEST(CancellationTest, InactiveControlNeverStops) {
  QueryControl control;
  EXPECT_FALSE(control.active());
  EXPECT_EQ(control.Check(), QueryStop::kNone);
}

TEST(CancellationTest, ControlReportsCancelAndDeadline) {
  CancellationToken token;
  QueryControl no_deadline = QueryControl::WithDeadline(token, 0.0);
  EXPECT_TRUE(no_deadline.active());
  EXPECT_FALSE(no_deadline.has_deadline());
  EXPECT_EQ(no_deadline.Check(), QueryStop::kNone);

  CancellationToken expired_token;
  QueryControl expired = QueryControl::WithDeadline(expired_token, 1e-9);
  while (expired.Check() == QueryStop::kNone) {
  }
  EXPECT_EQ(expired.Check(), QueryStop::kDeadline);

  // Cancellation wins the tie against an expired deadline.
  expired_token.RequestCancel();
  EXPECT_EQ(expired.Check(), QueryStop::kCancelled);

  token.RequestCancel();
  EXPECT_EQ(no_deadline.Check(), QueryStop::kCancelled);
}

namespace {
std::shared_ptr<int> Payload(int value) {
  return std::make_shared<int>(value);
}
int PayloadValue(const PriorityTaskQueue::Entry& entry) {
  return *std::static_pointer_cast<int>(entry.payload);
}
}  // namespace

TEST(PriorityTaskQueueTest, PopsByPriorityThenFifo) {
  PriorityTaskQueue queue(8);
  uint64_t id = 0;
  PriorityTaskQueue::Entry displaced;
  ASSERT_EQ(queue.TryPush(1, Payload(10), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.TryPush(3, Payload(30), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.TryPush(3, Payload(31), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.TryPush(2, Payload(20), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);

  PriorityTaskQueue::Entry entry;
  std::vector<int> order;
  while (queue.TryPop(&entry)) order.push_back(PayloadValue(entry));
  EXPECT_EQ(order, (std::vector<int>{30, 31, 20, 10}));
}

TEST(PriorityTaskQueueTest, FullQueueRejectsEqualAndDisplacesLower) {
  PriorityTaskQueue queue(2);
  uint64_t id = 0;
  PriorityTaskQueue::Entry displaced;
  ASSERT_EQ(queue.TryPush(1, Payload(11), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.TryPush(2, Payload(22), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);

  // Equal priority to the lowest queued: shed the newcomer.
  EXPECT_EQ(queue.TryPush(1, Payload(12), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kRejected);
  EXPECT_EQ(queue.size(), 2u);

  // Strictly higher: displace the (youngest) lowest-priority entry.
  EXPECT_EQ(queue.TryPush(3, Payload(33), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAcceptedDisplacing);
  EXPECT_EQ(PayloadValue(displaced), 11);
  EXPECT_EQ(queue.size(), 2u);

  PriorityTaskQueue::Entry entry;
  std::vector<int> order;
  while (queue.TryPop(&entry)) order.push_back(PayloadValue(entry));
  EXPECT_EQ(order, (std::vector<int>{33, 22}));
}

TEST(PriorityTaskQueueTest, TryRemoveClaimsExactlyOnce) {
  PriorityTaskQueue queue(4);
  uint64_t id_a = 0, id_b = 0;
  PriorityTaskQueue::Entry displaced;
  ASSERT_EQ(queue.TryPush(0, Payload(1), &id_a, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.TryPush(0, Payload(2), &id_b, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);

  PriorityTaskQueue::Entry entry;
  EXPECT_TRUE(queue.TryRemove(id_a, &entry));
  EXPECT_EQ(PayloadValue(entry), 1);
  EXPECT_FALSE(queue.TryRemove(id_a, &entry));  // already claimed

  EXPECT_TRUE(queue.TryPop(&entry));
  EXPECT_EQ(PayloadValue(entry), 2);
  EXPECT_FALSE(queue.TryRemove(id_b, &entry));  // popped first
}

TEST(PriorityTaskQueueTest, ShutdownWakesAndDrains) {
  PriorityTaskQueue queue(4);
  uint64_t id = 0;
  PriorityTaskQueue::Entry displaced;
  ASSERT_EQ(queue.TryPush(5, Payload(50), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.TryPush(7, Payload(70), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kAccepted);
  queue.Shutdown();
  EXPECT_TRUE(queue.shut_down());
  // Post-shutdown pushes are refused.
  EXPECT_EQ(queue.TryPush(9, Payload(90), &id, &displaced),
            PriorityTaskQueue::PushOutcome::kRejected);

  std::vector<PriorityTaskQueue::Entry> drained = queue.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(PayloadValue(drained[0]), 70);  // highest priority first
  EXPECT_EQ(PayloadValue(drained[1]), 50);

  PriorityTaskQueue::Entry entry;
  EXPECT_FALSE(queue.WaitPop(&entry));  // shut down and empty: no block
}

// ---------------------------------------------------------------------------
// util::Mutex wrappers (DESIGN.md §11)
// ---------------------------------------------------------------------------

TEST(MutexTest, MutualExclusionCounter) {
  util::Mutex mu;
  int counter = 0;  // guarded by mu (GUARDED_BY only applies to members)
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  util::Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  std::thread other([&] { observed = mu.TryLock() ? 1 : 0; });
  other.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
  // Free again: TryLock succeeds and must be paired with Unlock.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarWaitAndNotify) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread producer([&] {
    util::MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    util::MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(MutexTest, CondVarWaitForTimesOut) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  // Nobody ever notifies: the deadline must fire and the lock must be
  // held again on return (the dtor unlocking below would abort the debug
  // acquisition stack otherwise).
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(5)),
            std::cv_status::timeout);
}

TEST(MutexTest, MutexLockRelock) {
  util::Mutex mu;
  util::MutexLock lock(mu);
  lock.Unlock();
  // While released, another thread can take the mutex.
  std::atomic<bool> got{false};
  std::thread other([&] {
    util::MutexLock inner(mu);
    got = true;
  });
  other.join();
  EXPECT_TRUE(got.load());
  lock.Lock();  // dtor releases
}

TEST(MutexTest, UniqueLockTryMoveAndOwnership) {
  util::Mutex mu;
  util::UniqueLock lock(mu, util::kTryToLock);
  ASSERT_TRUE(lock.OwnsLock());

  // A second try-acquire on the same thread must fail without blocking.
  {
    util::UniqueLock contender(mu, util::kTryToLock);
    EXPECT_FALSE(contender.OwnsLock());
    EXPECT_FALSE(static_cast<bool>(contender));
  }

  // Ownership transfers on move; the source is left empty.
  util::UniqueLock moved(std::move(lock));
  EXPECT_TRUE(moved.OwnsLock());
  EXPECT_FALSE(lock.OwnsLock());  // NOLINT(bugprone-use-after-move): probing the moved-from state is the point

  moved.Unlock();
  EXPECT_FALSE(moved.OwnsLock());
  util::UniqueLock reacquired(mu);
  EXPECT_TRUE(reacquired.OwnsLock());
}

TEST(MutexTest, RankedInOrderAcquisitionIsClean) {
  // Strictly increasing ranks: always legal, in every build mode.
  util::Mutex outer(util::lock_rank::kEnginePool, "test_outer");
  util::Mutex inner(util::lock_rank::kEngineCache, "test_inner");
  util::MutexLock lock_outer(outer);
  util::MutexLock lock_inner(inner);
  SUCCEED();
}

// The debug lock-hierarchy checker must catch an A->B / B->A inversion
// deterministically — on the first out-of-rank acquisition, not only on
// the racy interleaving that deadlocks.
using LockHierarchyDeathTest = ::testing::Test;

TEST(LockHierarchyDeathTest, RankInversionAborts) {
  if (!util::Mutex::kRankCheckingEnabled) {
    GTEST_SKIP() << "lock-hierarchy checker compiled out (NDEBUG without "
                    "MLCORE_LOCK_DEBUG)";
  }
  EXPECT_DEATH(
      {
        util::Mutex a(util::lock_rank::kEnginePool, "death_a");
        util::Mutex b(util::lock_rank::kEngineCache, "death_b");
        util::MutexLock lock_b(b);
        util::MutexLock lock_a(a);  // rank 100 after rank 450: inversion
      },
      "lock hierarchy violation");
}

TEST(LockHierarchyDeathTest, RecursiveAcquisitionAborts) {
  if (!util::Mutex::kRankCheckingEnabled) {
    GTEST_SKIP() << "lock-hierarchy checker compiled out (NDEBUG without "
                    "MLCORE_LOCK_DEBUG)";
  }
  EXPECT_DEATH(
      {
        util::Mutex mu;  // even unranked mutexes detect self-deadlock
        util::MutexLock first(mu);
        mu.Lock();
      },
      "recursive acquisition");
}

TEST(LockHierarchyDeathTest, EqualRankAborts) {
  if (!util::Mutex::kRankCheckingEnabled) {
    GTEST_SKIP() << "lock-hierarchy checker compiled out (NDEBUG without "
                    "MLCORE_LOCK_DEBUG)";
  }
  // The order must be *strictly* increasing — two locks at the same level
  // can deadlock against each other, so blocking on an equal rank aborts.
  EXPECT_DEATH(
      {
        util::Mutex a(util::lock_rank::kSubscription, "death_eq_a");
        util::Mutex b(util::lock_rank::kSubscription, "death_eq_b");
        util::MutexLock lock_a(a);
        util::MutexLock lock_b(b);
      },
      "lock hierarchy violation");
}

}  // namespace
}  // namespace mlcore
