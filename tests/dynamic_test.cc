#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcore.h"
#include "dynamic/decremental_core.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace mlcore {
namespace {

// Reference: recompute the d-core of each layer from scratch over the
// still-alive vertices.
VertexSet ReferenceCore(const MultiLayerGraph& graph, LayerId layer, int d,
                        const std::vector<bool>& alive) {
  VertexSet scope;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (alive[static_cast<size_t>(v)]) scope.push_back(v);
  }
  return DCoreScoped(graph, layer, d, scope);
}

TEST(DecrementalCoreTest, InitialStateMatchesStaticCores) {
  MultiLayerGraph graph = GenerateErdosRenyi(80, 3, 0.08, 3);
  DecrementalCoreMaintainer maintainer(graph, 2, AllVertices(graph));
  for (LayerId layer = 0; layer < 3; ++layer) {
    EXPECT_EQ(maintainer.CoreMembers(layer), DCore(graph, layer, 2));
  }
}

TEST(DecrementalCoreTest, SupportCountsCoreMemberships) {
  MultiLayerGraph graph = GenerateErdosRenyi(60, 4, 0.1, 5);
  DecrementalCoreMaintainer maintainer(graph, 2, AllVertices(graph));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    int expected = 0;
    for (LayerId layer = 0; layer < 4; ++layer) {
      if (maintainer.InCore(layer, v)) ++expected;
    }
    EXPECT_EQ(maintainer.Support(v), expected);
  }
}

class DecrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecrementalPropertyTest, RandomDeletionsMatchRecomputation) {
  MultiLayerGraph graph =
      GenerateErdosRenyi(70, 3, 0.1, 900 + GetParam());
  const int d = 2;
  DecrementalCoreMaintainer maintainer(graph, d, AllVertices(graph));
  std::vector<bool> alive(static_cast<size_t>(graph.NumVertices()), true);

  Rng rng(GetParam());
  for (int step = 0; step < 30; ++step) {
    auto v = static_cast<VertexId>(
        rng.Uniform(0, graph.NumVertices() - 1));
    maintainer.RemoveVertex(v, nullptr);
    alive[static_cast<size_t>(v)] = false;
    // After every deletion, all three maintained quantities must agree
    // with a from-scratch recomputation.
    for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
      ASSERT_EQ(maintainer.CoreMembers(layer),
                ReferenceCore(graph, layer, d, alive))
          << "step " << step << " layer " << layer;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecrementalPropertyTest,
                         ::testing::Range<uint64_t>(0, 6));

TEST(DecrementalCoreTest, ExitEventsReported) {
  // A 4-clique on one layer: deleting any member evaporates the whole
  // 3-core, producing four exit events (the deleted vertex + cascade).
  GraphBuilder builder(6, 1);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(0, u, v);
  }
  MultiLayerGraph graph = builder.Build();
  DecrementalCoreMaintainer maintainer(graph, 3, AllVertices(graph));
  EXPECT_EQ(maintainer.CoreMembers(0), (VertexSet{0, 1, 2, 3}));

  std::vector<std::pair<VertexId, LayerId>> exits;
  maintainer.RemoveVertex(1, &exits);
  EXPECT_EQ(exits.size(), 4u);
  EXPECT_TRUE(maintainer.CoreMembers(0).empty());
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(maintainer.Support(v), 0);
}

TEST(DecrementalCoreTest, RemoveIsIdempotent) {
  MultiLayerGraph graph = GenerateErdosRenyi(40, 2, 0.15, 7);
  DecrementalCoreMaintainer maintainer(graph, 2, AllVertices(graph));
  maintainer.RemoveVertex(5, nullptr);
  VertexSet after_first = maintainer.CoreMembers(0);
  std::vector<std::pair<VertexId, LayerId>> exits;
  maintainer.RemoveVertex(5, &exits);
  EXPECT_TRUE(exits.empty());
  EXPECT_EQ(maintainer.CoreMembers(0), after_first);
  EXPECT_TRUE(maintainer.Deleted(5));
}

TEST(DecrementalCoreTest, SupportFilterMatchesPreprocessRule) {
  MultiLayerGraph graph = GenerateErdosRenyi(80, 4, 0.09, 9);
  const int d = 2, s = 3;
  DecrementalCoreMaintainer maintainer(graph, d, AllVertices(graph));
  VertexSet filtered = maintainer.VerticesWithSupportAtLeast(s);
  for (VertexId v : filtered) {
    EXPECT_GE(maintainer.Support(v), s);
  }
  // Completeness: everything above threshold is present.
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (maintainer.Support(v) >= s && !maintainer.Deleted(v)) {
      EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), v));
    }
  }
}

}  // namespace
}  // namespace mlcore
