#include <gtest/gtest.h>

#include "core/dcc.h"
#include "dccs/preprocess.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mlcore {
namespace {

MultiLayerGraph ReuseGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 300;
  config.num_layers = 6;
  config.num_communities = 8;
  config.community_size_min = 10;
  config.community_size_max = 30;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

// A reused solver must behave exactly like a fresh solver per call, for an
// adversarial mix of scopes, layer sets, thresholds and engines: stale
// scratch from call i must never leak into call i+1 (epoch-stamp
// correctness).
TEST(SolverReuseTest, ReusedMatchesFreshAcrossMixedCalls) {
  MultiLayerGraph graph = ReuseGraph(17);
  DccSolver reused(graph);
  Rng rng(123);
  const VertexSet all = AllVertices(graph);

  for (int call = 0; call < 300; ++call) {
    // Random non-empty layer set.
    LayerSet layers;
    for (LayerId i = 0; i < graph.NumLayers(); ++i) {
      if (rng.Uniform(0, 2) == 0) layers.push_back(i);
    }
    if (layers.empty()) layers.push_back(static_cast<LayerId>(
        rng.Uniform(0, graph.NumLayers() - 1)));
    // Random scope: each vertex kept with probability ~2/3.
    VertexSet scope;
    for (VertexId v : all) {
      if (rng.Uniform(0, 3) != 0) scope.push_back(v);
    }
    const int d = static_cast<int>(rng.Uniform(1, 6));
    const DccEngine engine =
        rng.Uniform(0, 2) == 0 ? DccEngine::kQueue : DccEngine::kBins;

    DccSolver fresh(graph);
    EXPECT_EQ(reused.Compute(layers, d, scope, engine),
              fresh.Compute(layers, d, scope, engine))
        << "call=" << call << " d=" << d;
  }
}

// The two engines must agree on every instance (paper Appendix B: the
// bin-based formulation computes the same unique d-CC).
TEST(SolverReuseTest, EnginesAgreeUnderReuse) {
  MultiLayerGraph graph = ReuseGraph(29);
  DccSolver solver(graph);
  const VertexSet all = AllVertices(graph);
  for (int d = 1; d <= 5; ++d) {
    for (LayerId i = 0; i < graph.NumLayers(); ++i) {
      LayerSet layers = {i, static_cast<LayerId>((i + 2) % graph.NumLayers())};
      std::sort(layers.begin(), layers.end());
      layers.erase(std::unique(layers.begin(), layers.end()), layers.end());
      EXPECT_EQ(solver.Compute(layers, d, all, DccEngine::kQueue),
                solver.Compute(layers, d, all, DccEngine::kBins));
    }
  }
}

// Shrinking-scope chains are the hot pattern of the BU/TD searches: each
// result feeds the next call's scope.
TEST(SolverReuseTest, NestedScopeChain) {
  MultiLayerGraph graph = ReuseGraph(41);
  DccSolver solver(graph);
  VertexSet scope = AllVertices(graph);
  for (int d = 1; d <= 6 && !scope.empty(); ++d) {
    LayerSet layers = {0, 3, 5};
    VertexSet next = solver.Compute(layers, d, scope);
    DccSolver fresh(graph);
    EXPECT_EQ(next, fresh.Compute(layers, d, scope)) << "d=" << d;
    ASSERT_TRUE(IsSubsetSorted(next, scope));
    scope = std::move(next);
  }
}

// The out-parameter overload must produce the same set as the
// value-returning form, and must fully overwrite whatever the reused buffer
// held from the previous call (including a larger previous result).
TEST(SolverReuseTest, OutParamMatchesValueForm) {
  MultiLayerGraph graph = ReuseGraph(53);
  DccSolver solver(graph);
  const VertexSet all = AllVertices(graph);
  VertexSet out = {999999, -5};  // stale garbage the first call must clear
  for (int d = 5; d >= 1; --d) {  // descending: results grow call-to-call
    for (DccEngine engine : {DccEngine::kQueue, DccEngine::kBins}) {
      LayerSet layers = {1, 4};
      solver.Compute(layers, d, all, &out, engine);
      EXPECT_EQ(out, solver.Compute(layers, d, all, engine)) << "d=" << d;
    }
  }
}

// Parallel preprocessing must be bit-identical for every thread count: the
// per-layer d-cores land in layer-indexed slots and the support merge is
// sequential, so the schedule cannot leak into the result.
TEST(PreprocessThreadsTest, ThreadCountInvariance) {
  MultiLayerGraph graph = ReuseGraph(61);
  for (bool vertex_deletion : {true, false}) {
    PreprocessResult reference =
        Preprocess(graph, /*d=*/3, /*s=*/3, vertex_deletion);
    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      PreprocessResult parallel =
          Preprocess(graph, 3, 3, vertex_deletion, &pool);
      EXPECT_EQ(parallel.active, reference.active) << "threads=" << threads;
      EXPECT_EQ(parallel.support, reference.support) << "threads=" << threads;
      ASSERT_EQ(parallel.layer_cores.size(), reference.layer_cores.size());
      for (size_t i = 0; i < reference.layer_cores.size(); ++i) {
        EXPECT_EQ(parallel.layer_cores[i], reference.layer_cores[i])
            << "threads=" << threads << " layer=" << i;
        EXPECT_EQ(parallel.layer_core_bits[i].ToVector(),
                  reference.layer_core_bits[i].ToVector());
      }
    }
  }
}

// A pool is reusable across many ParallelFor batches of varying sizes
// (including empty and single-item batches) without deadlock or loss.
TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int64_t count : {0, 1, 3, 100, 7, 0, 64}) {
    std::vector<int> hits(static_cast<size_t>(count), 0);
    pool.ParallelFor(count, [&](int worker, int64_t i) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, pool.num_threads());
      ++hits[static_cast<size_t>(i)];
    });
    for (int64_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)], 1) << "item " << i;
    }
  }
}

}  // namespace
}  // namespace mlcore
