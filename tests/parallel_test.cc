#include <gtest/gtest.h>

#include "dccs/dccs.h"
#include "graph/generators.h"

namespace mlcore {
namespace {

MultiLayerGraph ParallelGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 400;
  config.num_layers = 8;
  config.num_communities = 10;
  config.community_size_min = 12;
  config.community_size_max = 28;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

class ParallelGreedyTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelGreedyTest, IdenticalToSequential) {
  MultiLayerGraph graph = ParallelGraph(33);
  for (int s : {2, 3, 5}) {
    DccsParams params;
    params.d = 3;
    params.s = s;
    params.k = 6;
    DccsResult sequential = GreedyDccs(graph, params);
    params.num_threads = GetParam();
    DccsResult parallel = GreedyDccs(graph, params);
    ASSERT_EQ(parallel.cores.size(), sequential.cores.size()) << "s=" << s;
    for (size_t i = 0; i < parallel.cores.size(); ++i) {
      EXPECT_EQ(parallel.cores[i].layers, sequential.cores[i].layers);
      EXPECT_EQ(parallel.cores[i].vertices, sequential.cores[i].vertices);
    }
    EXPECT_EQ(parallel.stats.candidates_generated,
              sequential.stats.candidates_generated);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelGreedyTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(ParallelGreedyTest, MoreThreadsThanSubsets) {
  // l = 3, s = 3 → a single subset; 8 workers must degrade gracefully.
  MultiLayerGraph graph = GenerateErdosRenyi(60, 3, 0.12, 9);
  DccsParams params;
  params.d = 2;
  params.s = 3;
  params.k = 2;
  DccsResult sequential = GreedyDccs(graph, params);
  params.num_threads = 8;
  DccsResult parallel = GreedyDccs(graph, params);
  EXPECT_EQ(parallel.CoverSize(), sequential.CoverSize());
}

}  // namespace
}  // namespace mlcore
