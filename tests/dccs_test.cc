#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcc.h"
#include "core/fds.h"
#include "dccs/dccs.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

// Validates the DCCS output contract: k or fewer cores, each being exactly
// the d-CC of its layer set, with |L| = s.
void ExpectValidResult(const MultiLayerGraph& graph, const DccsParams& params,
                       const DccsResult& result) {
  EXPECT_LE(static_cast<int>(result.cores.size()), params.k);
  for (const auto& core : result.cores) {
    EXPECT_EQ(static_cast<int>(core.layers.size()), params.s);
    EXPECT_TRUE(std::is_sorted(core.layers.begin(), core.layers.end()));
    EXPECT_TRUE(
        std::adjacent_find(core.layers.begin(), core.layers.end()) ==
        core.layers.end());
    for (LayerId layer : core.layers) {
      EXPECT_GE(layer, 0);
      EXPECT_LT(layer, graph.NumLayers());
    }
    EXPECT_FALSE(core.vertices.empty());
    EXPECT_EQ(core.vertices, CoherentCore(graph, core.layers, params.d))
        << "returned set is not the exact d-CC of its layer subset";
  }
}

MultiLayerGraph SmallPlanted(uint64_t seed, int32_t n = 120, int32_t l = 5) {
  PlantedGraphConfig config;
  config.num_vertices = n;
  config.num_layers = l;
  config.num_communities = 5;
  config.community_size_min = 8;
  config.community_size_max = 16;
  config.internal_prob_min = 0.8;
  config.internal_prob_max = 0.95;
  config.background_avg_degree = 1.5;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

class DccsAlgorithmTest
    : public ::testing::TestWithParam<std::tuple<DccsAlgorithm, uint64_t>> {};

TEST_P(DccsAlgorithmTest, ResultsAreValidDccs) {
  auto [algorithm, seed] = GetParam();
  MultiLayerGraph graph = SmallPlanted(seed);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 4;
  DccsResult result = SolveDccs(graph, params, algorithm);
  ExpectValidResult(graph, params, result);
}

TEST_P(DccsAlgorithmTest, ApproximationBoundAgainstExact) {
  auto [algorithm, seed] = GetParam();
  MultiLayerGraph graph = SmallPlanted(seed, 80, 4);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 3;
  DccsResult exact = ExactDccs(graph, params);
  DccsResult approx = SolveDccs(graph, params, algorithm);
  ExpectValidResult(graph, params, approx);
  // GD guarantees 1−1/e ≈ 0.632, BU/TD guarantee 1/4; both imply ≥ 1/4.
  EXPECT_GE(4 * approx.CoverSize(), exact.CoverSize())
      << AlgorithmName(std::get<0>(GetParam()))
      << " violated its approximation bound";
  if (algorithm == DccsAlgorithm::kGreedy) {
    EXPECT_GE(static_cast<double>(approx.CoverSize()),
              (1.0 - 1.0 / 2.718281828) *
                  static_cast<double>(exact.CoverSize()));
  }
}

TEST_P(DccsAlgorithmTest, Deterministic) {
  auto [algorithm, seed] = GetParam();
  MultiLayerGraph graph = SmallPlanted(seed + 50);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 4;
  DccsResult a = SolveDccs(graph, params, algorithm);
  DccsResult b = SolveDccs(graph, params, algorithm);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (size_t i = 0; i < a.cores.size(); ++i) {
    EXPECT_EQ(a.cores[i].layers, b.cores[i].layers);
    EXPECT_EQ(a.cores[i].vertices, b.cores[i].vertices);
  }
}

TEST_P(DccsAlgorithmTest, SupportEqualsLayerCountEdgeCase) {
  auto [algorithm, seed] = GetParam();
  MultiLayerGraph graph = SmallPlanted(seed + 100, 100, 4);
  DccsParams params;
  params.d = 2;
  params.s = 4;  // s = l
  params.k = 3;
  DccsResult result = SolveDccs(graph, params, algorithm);
  ExpectValidResult(graph, params, result);
  // There is exactly one layer subset of size l, hence at most one core.
  EXPECT_LE(result.cores.size(), 1u);
  DccsResult exact = ExactDccs(graph, params);
  EXPECT_EQ(result.CoverSize(), exact.CoverSize());
}

TEST_P(DccsAlgorithmTest, SupportOneEdgeCase) {
  auto [algorithm, seed] = GetParam();
  if (std::get<0>(GetParam()) == DccsAlgorithm::kTopDown) {
    GTEST_SKIP() << "paper restricts TD-DCCS to s ≥ l/2";
  }
  MultiLayerGraph graph = SmallPlanted(seed + 150, 100, 4);
  DccsParams params;
  params.d = 2;
  params.s = 1;
  params.k = 2;
  DccsResult result = SolveDccs(graph, params, algorithm);
  ExpectValidResult(graph, params, result);
  EXPECT_GE(4 * result.CoverSize(), ExactDccs(graph, params).CoverSize());
}

TEST_P(DccsAlgorithmTest, SupportLargerThanLayersReturnsEmpty) {
  auto [algorithm, seed] = GetParam();
  MultiLayerGraph graph = SmallPlanted(seed + 200, 60, 3);
  DccsParams params;
  params.d = 2;
  params.s = 7;
  params.k = 2;
  DccsResult result = SolveDccs(graph, params, algorithm);
  EXPECT_TRUE(result.cores.empty());
}

TEST_P(DccsAlgorithmTest, AblationsPreserveValidity) {
  auto [algorithm, seed] = GetParam();
  MultiLayerGraph graph = SmallPlanted(seed + 250);
  for (int mask = 0; mask < 8; ++mask) {
    DccsParams params;
    params.d = 3;
    params.s = 2;
    params.k = 3;
    params.vertex_deletion = (mask & 1) != 0;
    params.sort_layers = (mask & 2) != 0;
    params.init_result = (mask & 4) != 0;
    DccsResult result = SolveDccs(graph, params, algorithm);
    ExpectValidResult(graph, params, result);
    EXPECT_GE(4 * result.CoverSize(), ExactDccs(graph, params).CoverSize())
        << "ablation mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DccsAlgorithmTest,
    ::testing::Combine(::testing::Values(DccsAlgorithm::kGreedy,
                                         DccsAlgorithm::kBottomUp,
                                         DccsAlgorithm::kTopDown),
                       ::testing::Range<uint64_t>(0, 5)),
    [](const auto& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(DccsTest, GreedyMatchesHandComputedExample) {
  // Two disjoint cliques on different layer pairs; with k=2 both must be
  // found and cover everything that is coverable.
  GraphBuilder builder(14, 4);
  auto add_clique = [&](VertexId first, VertexId last,
                        std::initializer_list<LayerId> layers) {
    for (VertexId u = first; u <= last; ++u) {
      for (VertexId v = u + 1; v <= last; ++v) {
        for (LayerId layer : layers) builder.AddEdge(layer, u, v);
      }
    }
  };
  add_clique(0, 5, {0, 1});
  add_clique(6, 11, {2, 3});
  MultiLayerGraph graph = builder.Build();

  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 2;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    EXPECT_EQ(result.CoverSize(), 12) << AlgorithmName(algorithm);
  }
}

TEST(DccsTest, TopDownRefineCVariantsAgree) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    MultiLayerGraph graph = SmallPlanted(seed + 300, 140, 6);
    DccsParams params;
    params.d = 3;
    params.s = 4;
    params.k = 4;
    params.use_index_refinec = true;
    DccsResult faithful = TopDownDccs(graph, params);
    params.use_index_refinec = false;
    DccsResult reference = TopDownDccs(graph, params);
    ASSERT_EQ(faithful.cores.size(), reference.cores.size()) << seed;
    for (size_t i = 0; i < faithful.cores.size(); ++i) {
      EXPECT_EQ(faithful.cores[i].layers, reference.cores[i].layers);
      EXPECT_EQ(faithful.cores[i].vertices, reference.cores[i].vertices);
    }
  }
}

TEST(DccsTest, BottomUpPrunesComparedToGreedy) {
  // The headline claim of §IV: BU searches far fewer candidates than GD.
  MultiLayerGraph graph = SmallPlanted(999, 400, 8);
  DccsParams params;
  params.d = 3;
  params.s = 3;
  params.k = 5;
  DccsResult greedy = GreedyDccs(graph, params);
  DccsResult bottom_up = BottomUpDccs(graph, params);
  EXPECT_GT(greedy.stats.candidates_generated, 0);
  EXPECT_LT(bottom_up.stats.nodes_visited,
            greedy.stats.candidates_generated)
      << "bottom-up search should explore fewer nodes than the full "
         "C(l, s) enumeration";
  // Quality stays within the approximation band in practice (paper Fig 16).
  EXPECT_GE(4 * bottom_up.CoverSize(), greedy.CoverSize());
}

TEST(DccsTest, RecommendedAlgorithmRule) {
  MultiLayerGraph graph = SmallPlanted(1, 60, 8);
  EXPECT_EQ(RecommendedAlgorithm(graph, 3), DccsAlgorithm::kBottomUp);
  EXPECT_EQ(RecommendedAlgorithm(graph, 4), DccsAlgorithm::kTopDown);
  EXPECT_EQ(RecommendedAlgorithm(graph, 7), DccsAlgorithm::kTopDown);
}

TEST(DccsTest, CoverHelpers) {
  DccsResult result;
  result.cores.push_back(ResultCore{{0, 1}, {1, 2, 3}});
  result.cores.push_back(ResultCore{{1, 2}, {3, 4}});
  EXPECT_EQ(result.Cover(), (VertexSet{1, 2, 3, 4}));
  EXPECT_EQ(result.CoverSize(), 4);
}

TEST(DccsTest, PlantedCommunitiesRecovered) {
  // End-to-end: on a planted instance the searches should cover the
  // vertices of communities recurring on ≥ s layers.
  PlantedGraphConfig config;
  config.num_vertices = 300;
  config.num_layers = 6;
  config.num_communities = 3;
  config.community_size_min = 15;
  config.community_size_max = 20;
  config.internal_prob_min = 0.95;
  config.internal_prob_max = 1.0;
  config.background_avg_degree = 1.0;
  config.community_layers_min = 3;
  config.seed = 4242;
  PlantedGraph planted = GeneratePlanted(config);

  DccsParams params;
  params.d = 5;
  params.s = 3;
  params.k = 6;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp}) {
    DccsResult result = SolveDccs(planted.graph, params, algorithm);
    VertexSet cover = result.Cover();
    for (const auto& community : planted.communities) {
      if (static_cast<int>(community.layers.size()) < params.s) continue;
      VertexSet recovered = IntersectSorted(cover, community.vertices);
      EXPECT_GE(recovered.size(), community.vertices.size() * 8 / 10)
          << AlgorithmName(algorithm) << " missed a planted community";
    }
  }
}

TEST(DccsTest, StatsAccounting) {
  MultiLayerGraph graph = SmallPlanted(77, 200, 6);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 4;
  DccsResult bu = BottomUpDccs(graph, params);
  EXPECT_GT(bu.stats.candidates_generated, 0);
  EXPECT_GT(bu.stats.nodes_visited, 0);
  EXPECT_GE(bu.stats.total_seconds, bu.stats.search_seconds);
  DccsResult td = TopDownDccs(graph, params);
  EXPECT_GT(td.stats.nodes_visited, 0);
}

}  // namespace
}  // namespace mlcore
