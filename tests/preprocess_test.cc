#include <gtest/gtest.h>

#include "core/dcc.h"
#include "core/dcore.h"
#include "dccs/preprocess.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

TEST(PreprocessTest, VertexDeletionReachesFixpoint) {
  MultiLayerGraph graph = GenerateErdosRenyi(120, 4, 0.06, 7);
  const int d = 2, s = 3;
  PreprocessResult pre = Preprocess(graph, d, s, /*vertex_deletion=*/true);
  // Every surviving vertex is in ≥ s per-layer d-cores (computed within the
  // surviving set), per BU-DCCS lines 1–7.
  for (VertexId v : pre.active) {
    EXPECT_GE(pre.support[static_cast<size_t>(v)], s);
  }
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    EXPECT_EQ(pre.layer_cores[static_cast<size_t>(layer)],
              DCoreScoped(graph, layer, d, pre.active));
  }
}

TEST(PreprocessTest, DeletionPreservesAllCandidateCores) {
  // Vertex deletion must be lossless: every C^d_L with |L| = s is contained
  // in the surviving set.
  MultiLayerGraph graph = GenerateErdosRenyi(80, 4, 0.08, 17);
  const int d = 2, s = 2;
  PreprocessResult pre = Preprocess(graph, d, s, true);
  DccSolver solver(graph);
  for (LayerId a = 0; a < 4; ++a) {
    for (LayerId b = a + 1; b < 4; ++b) {
      VertexSet core = solver.Compute({a, b}, d, AllVertices(graph));
      EXPECT_TRUE(IsSubsetSorted(core, pre.active));
      // And recomputing inside the active set changes nothing.
      EXPECT_EQ(solver.Compute({a, b}, d, pre.active), core);
    }
  }
}

TEST(PreprocessTest, NoDeletionKeepsEverything) {
  MultiLayerGraph graph = GenerateErdosRenyi(50, 3, 0.1, 27);
  PreprocessResult pre = Preprocess(graph, 2, 2, /*vertex_deletion=*/false);
  EXPECT_EQ(pre.active.size(), 50u);
  for (LayerId layer = 0; layer < 3; ++layer) {
    EXPECT_EQ(pre.layer_cores[static_cast<size_t>(layer)],
              DCore(graph, layer, 2));
  }
}

TEST(PreprocessTest, SortedLayerOrder) {
  GraphBuilder builder(20, 3);
  // Layer 0: 6-clique (6-vertex 2-core); layer 1: 4-clique; layer 2: empty.
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(0, u, v);
  }
  for (VertexId u = 10; u < 14; ++u) {
    for (VertexId v = u + 1; v < 14; ++v) builder.AddEdge(1, u, v);
  }
  MultiLayerGraph graph = builder.Build();
  PreprocessResult pre = Preprocess(graph, 2, 1, false);
  auto descending = SortedLayerOrder(pre, true, true);
  EXPECT_EQ(descending, (std::vector<LayerId>{0, 1, 2}));
  auto ascending = SortedLayerOrder(pre, false, true);
  EXPECT_EQ(ascending, (std::vector<LayerId>{2, 1, 0}));
  auto identity = SortedLayerOrder(pre, true, false);
  EXPECT_EQ(identity, (std::vector<LayerId>{0, 1, 2}));
}

TEST(PreprocessTest, InitTopKSeedsKResults) {
  PlantedGraphConfig config;
  config.num_vertices = 200;
  config.num_layers = 5;
  config.num_communities = 6;
  config.seed = 37;
  MultiLayerGraph graph = GeneratePlanted(config).graph;
  DccsParams params;
  params.d = 2;
  params.s = 2;
  params.k = 3;
  PreprocessResult pre = Preprocess(graph, params.d, params.s, true);
  DccSolver solver(graph);
  CoverageIndex index(params.k);
  InitTopK(graph, params, pre, solver, index);
  EXPECT_EQ(index.size(), params.k);
  index.CheckInvariants();
  // Every seeded entry must be a genuine d-CC with |L| = s.
  for (const auto& entry : index.entries()) {
    EXPECT_EQ(static_cast<int>(entry.layers.size()), params.s);
    EXPECT_EQ(entry.vertices, CoherentCore(graph, entry.layers, params.d));
  }
}

TEST(PreprocessTest, InitTopKDisabled) {
  MultiLayerGraph graph = GenerateErdosRenyi(40, 3, 0.1, 57);
  DccsParams params;
  params.init_result = false;
  PreprocessResult pre = Preprocess(graph, params.d, params.s, true);
  DccSolver solver(graph);
  CoverageIndex index(params.k);
  InitTopK(graph, params, pre, solver, index);
  EXPECT_EQ(index.size(), 0);
}

}  // namespace
}  // namespace mlcore
