#include <gtest/gtest.h>

#include "core/fds.h"
#include "dccs/dccs.h"
#include "graph/generators.h"
#include "mimag/mimag.h"

namespace mlcore {
namespace {

MultiLayerGraph PruningGraph() {
  // Rich instance: many overlapping communities across 8 layers so that
  // the top-k set fills early and the Eq. (1)/order bounds have teeth.
  PlantedGraphConfig config;
  config.num_vertices = 1500;
  config.num_layers = 8;
  config.num_communities = 25;
  config.community_size_min = 15;
  config.community_size_max = 45;
  config.hub_overlap_fraction = 0.5;
  config.seed = 777;
  return GeneratePlanted(config).graph;
}

TEST(PruningStatsTest, BottomUpPruningFires) {
  MultiLayerGraph graph = PruningGraph();
  DccsParams params;
  params.d = 3;
  params.s = 4;
  params.k = 5;
  DccsResult result = BottomUpDccs(graph, params);
  // The headline mechanism of §IV: with InitTopK filling R, the search
  // must prune part of the lattice via Lemmas 2–4.
  EXPECT_GT(result.stats.pruned_eq1 + result.stats.pruned_order +
                result.stats.pruned_layer,
            0)
      << "no pruning fired on a dense instance — bounds are inert";
  // And pruning must actually shrink the search below full enumeration:
  // nodes visited < Σ_{t≤s} C(l, t) lattice prefix.
  int64_t lattice = 0;
  for (int t = 1; t <= params.s; ++t) {
    lattice += BinomialCoefficient(graph.NumLayers(), t);
  }
  EXPECT_LT(result.stats.nodes_visited, lattice);
}

TEST(PruningStatsTest, BottomUpPruningDisabledWithoutInit) {
  // Without InitTopK, pruning can only start once R fills organically, so
  // the initialised search must visit no more nodes than the ablated one.
  MultiLayerGraph graph = PruningGraph();
  DccsParams params;
  params.d = 3;
  params.s = 4;
  params.k = 5;
  DccsResult with_init = BottomUpDccs(graph, params);
  params.init_result = false;
  DccsResult without_init = BottomUpDccs(graph, params);
  EXPECT_LE(with_init.stats.nodes_visited,
            without_init.stats.nodes_visited);
}

TEST(PruningStatsTest, TopDownPruningFires) {
  MultiLayerGraph graph = PruningGraph();
  DccsParams params;
  params.d = 3;
  params.s = 4;  // deep enough lattice (8 → 4) for the bounds to bite
  params.k = 5;
  DccsResult result = TopDownDccs(graph, params);
  EXPECT_GT(result.stats.pruned_eq1 + result.stats.pruned_order +
                result.stats.pruned_potential,
            0);
}

TEST(PruningStatsTest, GreedyVisitsFullEnumeration) {
  MultiLayerGraph graph = PruningGraph();
  DccsParams params;
  params.d = 3;
  params.s = 3;
  params.k = 5;
  DccsResult result = GreedyDccs(graph, params);
  // GD has no pruning: it evaluates exactly C(l, s) candidate subsets.
  EXPECT_EQ(result.stats.candidates_generated,
            BinomialCoefficient(graph.NumLayers(), params.s));
}

TEST(MimagDeterminismTest, RepeatedRunsIdentical) {
  PlantedGraphConfig config;
  config.num_vertices = 150;
  config.num_layers = 4;
  config.num_communities = 4;
  config.internal_prob_min = 0.85;
  config.internal_prob_max = 0.95;
  config.seed = 4242;
  MultiLayerGraph graph = GeneratePlanted(config).graph;
  MimagParams params;
  params.min_size = 4;
  params.min_support = 2;
  params.max_nodes = 100'000;
  MimagResult a = MineMimag(graph, params);
  MimagResult b = MineMimag(graph, params);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].vertices, b.clusters[i].vertices);
    EXPECT_EQ(a.clusters[i].layers, b.clusters[i].layers);
  }
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
}

}  // namespace
}  // namespace mlcore
