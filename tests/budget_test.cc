#include <gtest/gtest.h>

#include "core/dcc.h"
#include "dccs/dccs.h"
#include "graph/generators.h"

namespace mlcore {
namespace {

MultiLayerGraph BudgetGraph() {
  PlantedGraphConfig config;
  config.num_vertices = 2000;
  config.num_layers = 10;
  config.num_communities = 20;
  config.community_size_min = 15;
  config.community_size_max = 40;
  config.seed = 5150;
  return GeneratePlanted(config).graph;
}

TEST(TimeBudgetTest, BottomUpHonoursBudget) {
  MultiLayerGraph graph = BudgetGraph();
  DccsParams params;
  params.d = 2;
  params.s = 8;  // unfavourable regime for BU — deep lattice
  params.k = 10;
  params.time_budget_seconds = 0.05;
  DccsResult result = BottomUpDccs(graph, params);
  // Must stop well before an unbudgeted run would (allow generous slack
  // for the in-flight dCC call finishing).
  EXPECT_LT(result.stats.search_seconds, 5.0);
  // Whatever was returned must still be valid.
  for (const auto& core : result.cores) {
    EXPECT_EQ(core.vertices, CoherentCore(graph, core.layers, params.d));
  }
}

TEST(TimeBudgetTest, TopDownHonoursBudget) {
  MultiLayerGraph graph = BudgetGraph();
  DccsParams params;
  params.d = 2;
  params.s = 5;
  params.k = 10;
  params.time_budget_seconds = 0.05;
  DccsResult result = TopDownDccs(graph, params);
  EXPECT_LT(result.stats.search_seconds, 5.0);
  for (const auto& core : result.cores) {
    EXPECT_EQ(core.vertices, CoherentCore(graph, core.layers, params.d));
  }
}

TEST(TimeBudgetTest, UnlimitedByDefault) {
  MultiLayerGraph graph = BudgetGraph();
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 5;
  DccsResult result = BottomUpDccs(graph, params);
  EXPECT_FALSE(result.stats.budget_exhausted);
}

TEST(TimeBudgetTest, BudgetedResultIsSubQualityButValid) {
  // The anytime result can be worse but never invalid, and never exceeds
  // the unbudgeted cover.
  MultiLayerGraph graph = BudgetGraph();
  DccsParams params;
  params.d = 2;
  params.s = 3;
  params.k = 6;
  DccsResult full = BottomUpDccs(graph, params);
  params.time_budget_seconds = 1e-9;  // expire immediately after first poll
  DccsResult budgeted = BottomUpDccs(graph, params);
  EXPECT_LE(budgeted.CoverSize(), full.CoverSize() + 0);
}

}  // namespace
}  // namespace mlcore
