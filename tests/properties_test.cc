#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dcc.h"
#include "core/fds.h"
#include "dccs/dccs.h"
#include "graph/generators.h"

namespace mlcore {
namespace {

// Cross-algorithm property sweep over a (d, s) grid on small planted
// instances where the exact optimum is computable. For every point:
//   - results are valid, distinct members of F_{d,s},
//   - GD meets its (1 − 1/e) bound, BU/TD meet their 1/4 bounds,
//   - the greedy cover is reproducible from the materialised F_{d,s}.

MultiLayerGraph GridGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 100;
  config.num_layers = 5;
  config.num_communities = 6;
  config.community_size_min = 8;
  config.community_size_max = 14;
  config.internal_prob_min = 0.75;
  config.internal_prob_max = 0.95;
  config.background_avg_degree = 1.2;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

class GridPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GridPropertyTest, AllAlgorithmsMeetBoundsAndContracts) {
  auto [d, s] = GetParam();
  MultiLayerGraph graph = GridGraph(static_cast<uint64_t>(d * 31 + s));
  DccsParams params;
  params.d = d;
  params.s = s;
  params.k = 3;

  DccsResult exact = ExactDccs(graph, params);
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);

    // Contract: valid, distinct candidates.
    std::set<LayerSet> seen;
    for (const auto& core : result.cores) {
      EXPECT_EQ(static_cast<int>(core.layers.size()), s);
      EXPECT_TRUE(seen.insert(core.layers).second)
          << AlgorithmName(algorithm) << " returned a duplicate layer set";
      EXPECT_EQ(core.vertices, CoherentCore(graph, core.layers, d))
          << AlgorithmName(algorithm);
    }

    // Approximation bounds.
    EXPECT_GE(4 * result.CoverSize(), exact.CoverSize())
        << AlgorithmName(algorithm) << " d=" << d << " s=" << s;
    if (algorithm == DccsAlgorithm::kGreedy) {
      EXPECT_GE(static_cast<double>(result.CoverSize()) + 1e-9,
                (1.0 - 1.0 / 2.718281828) *
                    static_cast<double>(exact.CoverSize()))
          << "d=" << d << " s=" << s;
    }

    // Non-trivial instances must produce something whenever F is
    // non-empty.
    if (exact.CoverSize() > 0) {
      EXPECT_GT(result.CoverSize(), 0) << AlgorithmName(algorithm);
    }
  }
}

TEST_P(GridPropertyTest, GreedyIsReproducibleFromFds) {
  // GD-DCCS must equal a straightforward greedy max-cover over the
  // materialised F_{d,s} (same cover size; Fig 2 lines 8–10).
  auto [d, s] = GetParam();
  MultiLayerGraph graph = GridGraph(static_cast<uint64_t>(d * 131 + s));
  DccsParams params;
  params.d = d;
  params.s = s;
  params.k = 3;

  auto candidates = EnumerateFds(graph, d, s);
  std::set<VertexId> covered;
  for (int round = 0; round < params.k; ++round) {
    int64_t best_gain = 0;
    const CandidateCore* best = nullptr;
    for (const auto& candidate : candidates) {
      int64_t gain = 0;
      for (VertexId v : candidate.vertices) {
        if (covered.count(v) == 0) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = &candidate;
      }
    }
    if (best == nullptr) break;
    covered.insert(best->vertices.begin(), best->vertices.end());
  }

  DccsResult greedy = GreedyDccs(graph, params);
  EXPECT_EQ(greedy.CoverSize(), static_cast<int64_t>(covered.size()))
      << "d=" << d << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GridPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3, 5)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mlcore
