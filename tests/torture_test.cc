#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/dcc.h"
#include "dccs/dccs.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace mlcore {
namespace {

// Randomized differential torture: many random (graph, d, s, k, flags)
// configurations, each validated against the exact solver and the output
// contract. Catches interaction bugs between preprocessing, pruning and
// the coverage bookkeeping that fixed-scenario tests can miss.
class TortureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TortureTest, RandomConfigurationsStaySound) {
  Rng rng(GetParam() * 2654435761ULL + 7);
  for (int round = 0; round < 6; ++round) {
    PlantedGraphConfig config;
    config.num_vertices = static_cast<int32_t>(rng.Uniform(40, 150));
    config.num_layers = static_cast<int32_t>(rng.Uniform(2, 6));
    config.num_communities = static_cast<int>(rng.Uniform(1, 6));
    config.community_size_min = 6;
    config.community_size_max = static_cast<int>(rng.Uniform(8, 18));
    config.internal_prob_min = 0.6;
    config.internal_prob_max = 0.95;
    config.background_avg_degree = rng.UniformReal() * 2.5;
    config.seed = rng.Uniform(0, 1 << 30);
    MultiLayerGraph graph = GeneratePlanted(config).graph;

    DccsParams params;
    params.d = static_cast<int>(rng.Uniform(1, 4));
    params.s = static_cast<int>(rng.Uniform(1, config.num_layers));
    params.k = static_cast<int>(rng.Uniform(1, 5));
    params.vertex_deletion = rng.Bernoulli(0.7);
    params.sort_layers = rng.Bernoulli(0.7);
    params.init_result = rng.Bernoulli(0.7);
    params.dcc_engine =
        rng.Bernoulli(0.5) ? DccEngine::kQueue : DccEngine::kBins;
    params.use_index_refinec = rng.Bernoulli(0.5);

    DccsResult exact = ExactDccs(graph, params);
    for (DccsAlgorithm algorithm :
         {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
          DccsAlgorithm::kTopDown}) {
      DccsResult result = SolveDccs(graph, params, algorithm);
      ASSERT_GE(4 * result.CoverSize(), exact.CoverSize())
          << AlgorithmName(algorithm) << " seed=" << GetParam()
          << " round=" << round << " d=" << params.d << " s=" << params.s
          << " k=" << params.k;
      for (const auto& core : result.cores) {
        ASSERT_EQ(static_cast<int>(core.layers.size()), params.s);
        ASSERT_EQ(core.vertices,
                  CoherentCore(graph, core.layers, params.d))
            << AlgorithmName(algorithm) << " produced a non-d-CC set";
      }
      // Distinctness of the returned layer subsets.
      std::vector<LayerSet> layer_sets;
      for (const auto& core : result.cores) layer_sets.push_back(core.layers);
      std::sort(layer_sets.begin(), layer_sets.end());
      ASSERT_TRUE(std::adjacent_find(layer_sets.begin(), layer_sets.end()) ==
                  layer_sets.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest,
                         ::testing::Range<uint64_t>(0, 8));

// Robustness of the binary loader against corrupted and truncated input.
class BinaryIoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BinaryIoFuzzTest, TruncatedFilesRejectedCleanly) {
  MultiLayerGraph graph = GenerateErdosRenyi(40, 3, 0.1, 77);
  std::string path = (std::filesystem::temp_directory_path() /
                      ("mlcore_fuzz_" + std::to_string(GetParam())))
                         .string();
  ASSERT_TRUE(SaveMultiLayerGraphBinary(graph, path).ok);
  auto full_size = std::filesystem::file_size(path);

  // Truncate to GetParam() percent of the original length.
  auto truncated_size = full_size * static_cast<size_t>(GetParam()) / 100;
  std::filesystem::resize_file(path, truncated_size);

  MultiLayerGraph loaded;
  IoStatus status = LoadMultiLayerGraphBinary(path, &loaded);
  if (status.ok) {
    // Only acceptable if truncation happened to land on a valid prefix —
    // which can only be the full file.
    EXPECT_EQ(truncated_size, full_size);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(TruncationPercents, BinaryIoFuzzTest,
                         ::testing::Values(0, 3, 10, 35, 60, 85, 99));

TEST(BinaryIoFuzzTest, BitFlippedHeaderRejected) {
  MultiLayerGraph graph = GenerateErdosRenyi(30, 2, 0.1, 78);
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_fuzz_header")
          .string();
  ASSERT_TRUE(SaveMultiLayerGraphBinary(graph, path).ok);
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(2);
    file.put('X');  // corrupt the magic
  }
  MultiLayerGraph loaded;
  EXPECT_FALSE(LoadMultiLayerGraphBinary(path, &loaded).ok);
  std::remove(path.c_str());
}

TEST(BinaryIoFuzzTest, NegativeEdgeCountRejected) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_fuzz_negative")
          .string();
  {
    std::ofstream file(path, std::ios::binary);
    file.write("MLCB1\n", 6);
    int32_t n = 4, l = 1;
    file.write(reinterpret_cast<char*>(&n), sizeof(n));
    file.write(reinterpret_cast<char*>(&l), sizeof(l));
    int64_t bad_count = -5;
    file.write(reinterpret_cast<char*>(&bad_count), sizeof(bad_count));
  }
  MultiLayerGraph loaded;
  EXPECT_FALSE(LoadMultiLayerGraphBinary(path, &loaded).ok);
  std::remove(path.c_str());
}

TEST(BinaryIoFuzzTest, OutOfRangeVertexRejected) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mlcore_fuzz_range")
          .string();
  {
    std::ofstream file(path, std::ios::binary);
    file.write("MLCB1\n", 6);
    int32_t n = 4, l = 1;
    file.write(reinterpret_cast<char*>(&n), sizeof(n));
    file.write(reinterpret_cast<char*>(&l), sizeof(l));
    int64_t count = 1;
    file.write(reinterpret_cast<char*>(&count), sizeof(count));
    VertexId u = 0, v = 99;  // v out of range
    file.write(reinterpret_cast<char*>(&u), sizeof(u));
    file.write(reinterpret_cast<char*>(&v), sizeof(v));
  }
  MultiLayerGraph loaded;
  EXPECT_FALSE(LoadMultiLayerGraphBinary(path, &loaded).ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlcore
