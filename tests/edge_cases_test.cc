#include <gtest/gtest.h>

#include "core/dcc.h"
#include "core/dcore.h"
#include "dccs/dccs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

TEST(EdgeCaseTest, DegreeZeroKeepsEveryVertex) {
  // d = 0: every vertex trivially satisfies the degree constraint, so the
  // d-CC w.r.t. any layer subset is the whole vertex set.
  MultiLayerGraph graph = GenerateErdosRenyi(30, 3, 0.05, 1);
  EXPECT_EQ(CoherentCore(graph, {0, 1, 2}, 0).size(), 30u);
  DccsParams params;
  params.d = 0;
  params.s = 2;
  params.k = 3;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    ASSERT_FALSE(result.cores.empty()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.CoverSize(), 30) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, SingleLayerGraph) {
  GraphBuilder builder(8, 1);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(0, u, v);
  }
  MultiLayerGraph graph = builder.Build();
  DccsParams params;
  params.d = 3;
  params.s = 1;
  params.k = 2;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    ASSERT_EQ(result.cores.size(), 1u) << AlgorithmName(algorithm);
    EXPECT_EQ(result.cores[0].vertices, (VertexSet{0, 1, 2, 3, 4}));
  }
}

TEST(EdgeCaseTest, EmptyLayersYieldNoCores) {
  // Layers with no edges: every d-core (d ≥ 1) is empty.
  GraphBuilder builder(10, 3);
  builder.AddEdge(0, 0, 1);  // a single edge on layer 0 only
  MultiLayerGraph graph = builder.Build();
  DccsParams params;
  params.d = 2;
  params.s = 2;
  params.k = 3;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    EXPECT_TRUE(result.cores.empty()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.CoverSize(), 0);
  }
}

TEST(EdgeCaseTest, KLargerThanCandidatePool) {
  // Only C(2, 1) = 2 candidates exist but k = 10: the algorithms must
  // return the available ones and no duplicates.
  GraphBuilder builder(12, 2);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(0, u, v);
  }
  for (VertexId u = 6; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) builder.AddEdge(1, u, v);
  }
  MultiLayerGraph graph = builder.Build();
  DccsParams params;
  params.d = 2;
  params.s = 1;
  params.k = 10;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    EXPECT_EQ(result.cores.size(), 2u) << AlgorithmName(algorithm);
    EXPECT_EQ(result.CoverSize(), 11) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, KEqualsOne) {
  MultiLayerGraph graph = GenerateErdosRenyi(60, 3, 0.12, 3);
  DccsParams params;
  params.d = 2;
  params.s = 2;
  params.k = 1;
  DccsResult exact = ExactDccs(graph, params);
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    EXPECT_LE(result.cores.size(), 1u);
    // k = 1: greedy is optimal; the searches are 1/4-approximate.
    if (algorithm == DccsAlgorithm::kGreedy) {
      EXPECT_EQ(result.CoverSize(), exact.CoverSize());
    } else {
      EXPECT_GE(4 * result.CoverSize(), exact.CoverSize());
    }
  }
}

TEST(EdgeCaseTest, DisconnectedCliquesAllFound) {
  // Eight disjoint 4-cliques on both layers; with k = 8 every algorithm
  // must cover all 32 vertices.
  GraphBuilder builder(32, 2);
  for (int c = 0; c < 8; ++c) {
    for (VertexId u = 0; u < 4; ++u) {
      for (VertexId v = u + 1; v < 4; ++v) {
        builder.AddEdge(0, c * 4 + u, c * 4 + v);
        builder.AddEdge(1, c * 4 + u, c * 4 + v);
      }
    }
  }
  MultiLayerGraph graph = builder.Build();
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 8;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    DccsResult result = SolveDccs(graph, params, algorithm);
    // All cliques live in the single d-CC w.r.t. {0, 1}; one core covers
    // everything.
    EXPECT_EQ(result.CoverSize(), 32) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, HighDegreeThresholdEmptyResult) {
  MultiLayerGraph graph = GenerateErdosRenyi(40, 2, 0.2, 9);
  DccsParams params;
  params.d = 100;
  params.s = 1;
  params.k = 2;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    EXPECT_TRUE(SolveDccs(graph, params, algorithm).cores.empty());
  }
}

TEST(EdgeCaseTest, CoreDecompositionOnEmptyLayer) {
  GraphBuilder builder(5, 1);
  MultiLayerGraph graph = builder.Build();
  std::vector<int> coreness = CoreDecomposition(graph, 0);
  for (int c : coreness) EXPECT_EQ(c, 0);
  EXPECT_TRUE(DCore(graph, 0, 1).empty());
  EXPECT_EQ(DCore(graph, 0, 0).size(), 5u);
}

}  // namespace
}  // namespace mlcore
