#include <gtest/gtest.h>

#include <algorithm>

#include "core/coreness.h"
#include "core/dcc.h"
#include "core/dcore.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

TEST(CoherentCorenessTest, SingleLayerMatchesCoreDecomposition) {
  MultiLayerGraph graph = GenerateErdosRenyi(80, 3, 0.08, 5);
  for (LayerId layer = 0; layer < 3; ++layer) {
    EXPECT_EQ(CoherentCoreness(graph, {layer}),
              CoreDecomposition(graph, layer));
  }
}

class CorenessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorenessPropertyTest, ThresholdingEqualsCoherentCore) {
  // {v : coreness_L(v) ≥ d} must equal C^d_L(G) for every d.
  MultiLayerGraph graph = GenerateErdosRenyi(70, 4, 0.1, GetParam());
  LayerSet layers = {0, 2, 3};
  std::vector<int> coreness = CoherentCoreness(graph, layers);
  int max_core = *std::max_element(coreness.begin(), coreness.end());
  for (int d = 0; d <= max_core + 1; ++d) {
    VertexSet from_coreness;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (coreness[static_cast<size_t>(v)] >= d) from_coreness.push_back(v);
    }
    EXPECT_EQ(from_coreness, CoherentCore(graph, layers, d)) << "d=" << d;
  }
}

TEST_P(CorenessPropertyTest, HierarchyMatchesAndNests) {
  MultiLayerGraph graph =
      GenerateErdosRenyi(60, 3, 0.12, GetParam() + 100);
  LayerSet layers = {0, 1};
  std::vector<VertexSet> hierarchy = CoherentCoreHierarchy(graph, layers);
  ASSERT_FALSE(hierarchy.empty());
  EXPECT_EQ(hierarchy[0].size(), static_cast<size_t>(graph.NumVertices()));
  for (size_t d = 0; d < hierarchy.size(); ++d) {
    EXPECT_EQ(hierarchy[d], CoherentCore(graph, layers, static_cast<int>(d)));
    if (d > 0) {
      EXPECT_TRUE(IsSubsetSorted(hierarchy[d], hierarchy[d - 1]))
          << "hierarchy property violated at d=" << d;
    }
  }
  // The top of the hierarchy is non-empty by construction.
  EXPECT_FALSE(hierarchy.back().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorenessPropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(CoherentCorenessTest, PlantedCommunityHasHighCoreness) {
  PlantedGraphConfig config;
  config.num_vertices = 200;
  config.num_layers = 3;
  config.num_communities = 1;
  config.community_size_min = 20;
  config.community_size_max = 20;
  config.internal_prob_min = 1.0;  // a clique on its layers
  config.internal_prob_max = 1.0;
  config.all_layers_fraction = 1.0;
  config.background_avg_degree = 0.5;
  config.seed = 11;
  PlantedGraph planted = GeneratePlanted(config);
  std::vector<int> coreness =
      CoherentCoreness(planted.graph, AllLayers(planted.graph));
  for (VertexId v : planted.communities[0].vertices) {
    EXPECT_GE(coreness[static_cast<size_t>(v)], 19);
  }
}

TEST(CoherentCoreVectorTest, UniformThresholdEqualsCoherentCore) {
  MultiLayerGraph graph = GenerateErdosRenyi(60, 3, 0.1, 21);
  for (int d = 1; d <= 3; ++d) {
    LayerSet layers = {0, 1, 2};
    std::vector<int> thresholds(layers.size(), d);
    EXPECT_EQ(CoherentCoreVector(graph, layers, thresholds),
              CoherentCore(graph, layers, d));
  }
}

TEST(CoherentCoreVectorTest, AsymmetricThresholds) {
  // Clique of 6 on layer 0; a cycle (degree 2 everywhere) plus a pendant
  // vertex 6 on layer 1.
  GraphBuilder builder(8, 2);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(0, u, v);
  }
  for (VertexId v = 0; v < 6; ++v) builder.AddEdge(1, v, (v + 1) % 6);
  builder.AddEdge(1, 0, 6);
  MultiLayerGraph graph = builder.Build();

  // Degree 3 on the clique layer, 1 on the cycle layer: vertex 6 dies (no
  // clique-layer edges), the six cycle/clique vertices survive.
  EXPECT_EQ(CoherentCoreVector(graph, {0, 1}, {3, 1}),
            (VertexSet{0, 1, 2, 3, 4, 5}));
  // Raising the cycle-layer demand to 2 still keeps the cycle intact.
  EXPECT_EQ(CoherentCoreVector(graph, {0, 1}, {3, 2}),
            (VertexSet{0, 1, 2, 3, 4, 5}));
  // Demanding 3 on the cycle layer collapses everything.
  EXPECT_TRUE(CoherentCoreVector(graph, {0, 1}, {3, 3}).empty());
}

TEST(CoherentCoreVectorTest, AgainstNaiveFixpoint) {
  MultiLayerGraph graph = GenerateErdosRenyi(50, 3, 0.12, 31);
  LayerSet layers = {0, 1, 2};
  std::vector<int> thresholds = {1, 2, 3};
  VertexSet result = CoherentCoreVector(graph, layers, thresholds);
  // Fixpoint check: every member meets all thresholds inside the result.
  for (VertexId v : result) {
    for (size_t i = 0; i < layers.size(); ++i) {
      int degree = 0;
      for (VertexId u : graph.Neighbors(layers[i], v)) {
        if (std::binary_search(result.begin(), result.end(), u)) ++degree;
      }
      EXPECT_GE(degree, thresholds[i]);
    }
  }
  // Maximality: no excluded vertex meets all thresholds against result.
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (std::binary_search(result.begin(), result.end(), v)) continue;
    bool satisfies_all = true;
    for (size_t i = 0; i < layers.size() && satisfies_all; ++i) {
      int degree = 0;
      for (VertexId u : graph.Neighbors(layers[i], v)) {
        if (std::binary_search(result.begin(), result.end(), u)) ++degree;
      }
      satisfies_all = degree >= thresholds[i];
    }
    EXPECT_FALSE(satisfies_all) << "vertex " << v << " wrongly excluded";
  }
}

}  // namespace
}  // namespace mlcore
