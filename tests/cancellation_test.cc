// Tests for the Engine's asynchronous submission surface (DESIGN.md §7):
// Submit/Wait/TryGet/Cancel, cooperative cancellation racing preprocessing
// and the searches from other threads, wall-clock deadlines, admission
// control / load shedding, and the cache-consistency contract — a
// cancelled query leaves cache contents and counters as if it never ran
// (or, when its build won the race, as if it completed). The CI TSan and
// ASan+UBSan jobs both run this file.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/dcc.h"
#include "dccs/dccs.h"
#include "graph/generators.h"

namespace mlcore {
namespace {

// Large enough that preprocessing and the searches take real (multi-ms)
// time, so sleeps of a few ms land cancels mid-preprocess and mid-search.
MultiLayerGraph SlowGraph() {
  PlantedGraphConfig config;
  config.num_vertices = 3000;
  config.num_layers = 10;
  config.num_communities = 30;
  config.community_size_min = 14;
  config.community_size_max = 40;
  config.seed = 77;
  return GeneratePlanted(config).graph;
}

MultiLayerGraph SmallGraph(uint64_t seed) {
  PlantedGraphConfig config;
  config.num_vertices = 240;
  config.num_layers = 6;
  config.num_communities = 8;
  config.community_size_min = 10;
  config.community_size_max = 22;
  config.seed = seed;
  return GeneratePlanted(config).graph;
}

DccsRequest SlowRequest() {
  DccsRequest request;
  request.params.d = 2;
  request.params.s = 7;
  request.params.k = 10;
  request.algorithm = DccsAlgorithm::kBottomUp;
  return request;
}

void ExpectSameCores(const DccsResult& actual, const DccsResult& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.cores.size(), expected.cores.size()) << label;
  for (size_t i = 0; i < actual.cores.size(); ++i) {
    EXPECT_EQ(actual.cores[i].layers, expected.cores[i].layers)
        << label << " core " << i;
    EXPECT_EQ(actual.cores[i].vertices, expected.cores[i].vertices)
        << label << " core " << i;
  }
  EXPECT_EQ(actual.stats.candidates_generated,
            expected.stats.candidates_generated)
      << label;
}

// --- Deterministic status-code coverage -----------------------------------

TEST(AsyncStatusTest, CancelWhileQueuedIsDeterministic) {
  MultiLayerGraph graph = SmallGraph(1);
  // No workers: a submitted query stays queued until waited on, so the
  // cancel below always lands pre-execution.
  Engine engine(&graph, Engine::Options{.query_workers = 0});

  QueryHandle handle = engine.Submit(DccsRequest{});
  EXPECT_EQ(handle.TryGet(), nullptr);
  handle.Cancel();
  const Expected<DccsResult>& outcome = handle.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code, StatusCode::kCancelled);
  ASSERT_NE(handle.TryGet(), nullptr);
  EXPECT_EQ(handle.TryGet(), &outcome);

  SchedulerStats stats = engine.scheduler_stats();
  EXPECT_EQ(stats.cancelled_queued, 1);
  EXPECT_EQ(stats.executed, 0);
  // Nothing ran: caches look never-used.
  EXPECT_EQ(engine.cache_stats().preprocess_misses, 0);
  EXPECT_EQ(engine.cache_stats().base_core_misses, 0);
}

TEST(AsyncStatusTest, ExpiredDeadlineWhileQueuedIsDeterministic) {
  MultiLayerGraph graph = SmallGraph(2);
  Engine engine(&graph, Engine::Options{.query_workers = 0});

  QueryHandle handle =
      engine.Submit(DccsRequest{}, SubmitOptions{.deadline_seconds = 1e-9});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // A non-blocking poll is enough to resolve an already-expired queued
  // task — no worker or Wait needed.
  ASSERT_NE(handle.TryGet(), nullptr);
  const Expected<DccsResult>& outcome = handle.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.scheduler_stats().expired_queued, 1);
  EXPECT_EQ(engine.scheduler_stats().executed, 0);
}

TEST(AsyncStatusTest, CancellationBeatsExpiredDeadline) {
  MultiLayerGraph graph = SmallGraph(3);
  Engine engine(&graph, Engine::Options{.query_workers = 0});

  QueryHandle handle =
      engine.Submit(DccsRequest{}, SubmitOptions{.deadline_seconds = 1e-9});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  handle.Cancel();  // deadline has passed too; cancel wins the tie
  ASSERT_FALSE(handle.Wait().ok());
  EXPECT_EQ(handle.Wait().status().code, StatusCode::kCancelled);
}

TEST(AsyncStatusTest, FullQueueShedsWithResourceExhausted) {
  MultiLayerGraph graph = SmallGraph(4);
  Engine engine(&graph, Engine::Options{.query_workers = 0,
                                        .max_pending_queries = 2});

  QueryHandle a = engine.Submit(DccsRequest{});
  QueryHandle b = engine.Submit(DccsRequest{});
  QueryHandle shed = engine.Submit(DccsRequest{});  // equal priority: shed
  ASSERT_NE(shed.TryGet(), nullptr);
  EXPECT_EQ(shed.TryGet()->status().code, StatusCode::kResourceExhausted);

  // The admitted pair still serves normally.
  EXPECT_TRUE(a.Wait().ok());
  EXPECT_TRUE(b.Wait().ok());

  SchedulerStats stats = engine.scheduler_stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.executed, 2);
}

TEST(AsyncStatusTest, HigherPriorityDisplacesLowerOnFullQueue) {
  MultiLayerGraph graph = SmallGraph(5);
  Engine engine(&graph, Engine::Options{.query_workers = 0,
                                        .max_pending_queries = 2});

  QueryHandle low_old = engine.Submit(DccsRequest{}, {.priority = 0});
  QueryHandle low_young = engine.Submit(DccsRequest{}, {.priority = 0});
  QueryHandle high = engine.Submit(DccsRequest{}, {.priority = 5});

  // The youngest lowest-priority entry was shed in favour of `high`.
  ASSERT_NE(low_young.TryGet(), nullptr);
  EXPECT_EQ(low_young.TryGet()->status().code,
            StatusCode::kResourceExhausted);
  EXPECT_EQ(low_old.TryGet(), nullptr);
  EXPECT_TRUE(high.Wait().ok());
  EXPECT_TRUE(low_old.Wait().ok());
  EXPECT_EQ(engine.scheduler_stats().displaced, 1);
}

TEST(AsyncStatusTest, InvalidRequestIsTerminalWithoutQueueing) {
  MultiLayerGraph graph = SmallGraph(6);
  Engine engine(&graph, Engine::Options{.query_workers = 0,
                                        .max_pending_queries = 1});
  DccsRequest invalid;
  invalid.params.s = 0;
  QueryHandle handle = engine.Submit(invalid);
  ASSERT_NE(handle.TryGet(), nullptr);
  EXPECT_EQ(handle.TryGet()->status().code, StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.scheduler_stats().submitted, 0);  // never offered
}

// Blocking Run is its own backpressure: when admission sheds its
// submission it executes inline instead of surfacing kResourceExhausted,
// so PR-2 callers never see load failures from Run.
TEST(AsyncStatusTest, RunNeverShedsUnderFullQueue) {
  MultiLayerGraph graph = SmallGraph(11);
  Engine engine(&graph, Engine::Options{.query_workers = 0,
                                        .max_pending_queries = 1});
  QueryHandle parked = engine.Submit(DccsRequest{});  // fills the queue
  Expected<DccsResult> inline_run = engine.Run(DccsRequest{});
  EXPECT_TRUE(inline_run.ok());
  EXPECT_EQ(engine.scheduler_stats().rejected, 1);  // the shed was real
  EXPECT_TRUE(parked.Wait().ok());
}

TEST(AsyncStatusTest, CancelAfterCompletionKeepsResult) {
  MultiLayerGraph graph = SmallGraph(7);
  Engine engine(&graph);
  QueryHandle handle = engine.Submit(DccsRequest{});
  ASSERT_TRUE(handle.Wait().ok());
  const Expected<DccsResult>* before = handle.TryGet();
  handle.Cancel();
  EXPECT_EQ(handle.TryGet(), before);
  EXPECT_TRUE(handle.Wait().ok());
}

TEST(AsyncStatusTest, SubmitBatchMatchesIndividualRuns) {
  MultiLayerGraph graph = SmallGraph(8);
  Engine engine(&graph, Engine::Options{.num_threads = 2});

  std::vector<DccsRequest> requests;
  for (int s = 1; s <= 4; ++s) {
    DccsRequest request;
    request.params.d = 2;
    request.params.s = s;
    request.params.k = 4;
    requests.push_back(request);
  }
  std::vector<QueryHandle> handles = engine.SubmitBatch(requests);
  ASSERT_EQ(handles.size(), requests.size());

  Engine reference(&graph);
  for (size_t i = 0; i < handles.size(); ++i) {
    const Expected<DccsResult>& got = handles[i].Wait();
    ASSERT_TRUE(got.ok()) << "slot " << i;
    Expected<DccsResult> want = reference.Run(requests[i]);
    ASSERT_TRUE(want.ok());
    ExpectSameCores(*got, *want, "batch slot " + std::to_string(i));
  }
}

// --- Determinism: the async path vs the synchronous free functions --------

// Acceptance gate: uncancelled Submit/Wait queries are bit-identical to the
// historical synchronous (uncontrolled) path for 1, 2 and 8 threads.
TEST(AsyncDeterminismTest, UncancelledSubmitBitIdenticalToSyncPath) {
  MultiLayerGraph graph = SmallGraph(9);

  DccsParams params;
  params.d = 2;
  params.s = 3;
  params.k = 6;
  for (DccsAlgorithm algorithm :
       {DccsAlgorithm::kGreedy, DccsAlgorithm::kBottomUp,
        DccsAlgorithm::kTopDown}) {
    // The PR-2 synchronous path: free function, no control, no scheduler.
    DccsResult reference;
    switch (algorithm) {
      case DccsAlgorithm::kGreedy:
        reference = GreedyDccs(graph, params);
        break;
      case DccsAlgorithm::kBottomUp:
        reference = BottomUpDccs(graph, params);
        break;
      default:
        reference = TopDownDccs(graph, params);
        break;
    }
    for (int threads : {1, 2, 8}) {
      Engine engine(&graph, Engine::Options{.num_threads = threads});
      QueryHandle handle = engine.Submit(DccsRequest{params, algorithm});
      const Expected<DccsResult>& response = handle.Wait();
      ASSERT_TRUE(response.ok());
      ExpectSameCores(*response, reference,
                      AlgorithmName(algorithm) + " threads=" +
                          std::to_string(threads));
    }
  }
}

// --- Cancellation races (run under TSan and ASan+UBSan in CI) -------------

// After a cancelled query, the engine must be indistinguishable from one
// that never ran it (no published entry: next query is a clean miss) or
// one that completed it (published entry: next query hits) — and the next
// query's cores must be bit-identical to a fresh engine's either way.
void ExpectConsistentAfterPossibleCancel(Engine& engine,
                                         const DccsRequest& request,
                                         const DccsResult& reference,
                                         const std::string& label) {
  const EngineCacheStats before = engine.cache_stats();
  EXPECT_LE(before.preprocess_misses, 1) << label;

  Expected<DccsResult> rerun = engine.Run(request);
  ASSERT_TRUE(rerun.ok()) << label;
  ExpectSameCores(*rerun, reference, label + " rerun");

  const EngineCacheStats after = engine.cache_stats();
  if (before.preprocess_misses == 1) {
    // The cancelled run completed (or won) the build: rerun must hit.
    EXPECT_EQ(after.preprocess_misses, 1) << label;
    EXPECT_GE(after.preprocess_hits, before.preprocess_hits + 1) << label;
  } else {
    // Nothing was published: rerun is the clean first miss.
    EXPECT_EQ(after.preprocess_misses, 1) << label;
  }
}

TEST(CancellationRaceTest, CancelRacingPreprocessAndSearch) {
  MultiLayerGraph graph = SlowGraph();
  const DccsRequest request = SlowRequest();
  const DccsResult reference =
      SolveDccs(graph, request.params, request.algorithm);

  // Sweep the cancel delay so different trials land in the queued,
  // preprocessing and search phases; every landing must be clean.
  for (int delay_us : {0, 200, 1000, 4000, 12000, 40000}) {
    Engine engine(&graph, Engine::Options{.query_workers = 1});
    QueryHandle handle = engine.Submit(request);
    std::thread canceller([&handle, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      handle.Cancel();
    });
    const Expected<DccsResult>& outcome = handle.Wait();
    canceller.join();

    const std::string label = "delay_us=" + std::to_string(delay_us);
    if (outcome.ok()) {
      // Cancel arrived after the last checkpoint: the completed result must
      // be the full, untruncated answer.
      EXPECT_FALSE(outcome->stats.budget_exhausted) << label;
      ExpectSameCores(*outcome, reference, label + " completed");
    } else {
      EXPECT_EQ(outcome.status().code, StatusCode::kCancelled) << label;
    }
    ExpectConsistentAfterPossibleCancel(engine, request, reference, label);
  }
}

TEST(CancellationRaceTest, CancelFromSecondThreadWhileWaiterExecutes) {
  MultiLayerGraph graph = SlowGraph();
  const DccsRequest request = SlowRequest();
  const DccsResult reference =
      SolveDccs(graph, request.params, request.algorithm);

  // query_workers = 0: Wait()'s thread executes the query, and the cancel
  // always races a query that is actually mid-flight on another thread.
  for (int delay_us : {500, 3000, 15000}) {
    Engine engine(&graph, Engine::Options{.query_workers = 0});
    QueryHandle handle = engine.Submit(request);
    std::thread waiter([&handle] { handle.Wait(); });
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    handle.Cancel();
    waiter.join();

    const Expected<DccsResult>* outcome = handle.TryGet();
    ASSERT_NE(outcome, nullptr);
    const std::string label = "waiter delay_us=" + std::to_string(delay_us);
    if (!outcome->ok()) {
      EXPECT_EQ(outcome->status().code, StatusCode::kCancelled) << label;
    }
    ExpectConsistentAfterPossibleCancel(engine, request, reference, label);
  }
}

// A cancelled waiter must leave promptly even while another query is still
// building the same cache entry, and the builder must be unaffected.
TEST(CancellationRaceTest, CancelledWaiterLeavesBuilderUnaffected) {
  MultiLayerGraph graph = SlowGraph();
  const DccsRequest request = SlowRequest();
  const DccsResult reference =
      SolveDccs(graph, request.params, request.algorithm);

  Engine engine(&graph, Engine::Options{.query_workers = 0});
  QueryHandle builder = engine.Submit(request);
  QueryHandle waiter = engine.Submit(request);

  std::thread builder_thread([&builder] { builder.Wait(); });
  std::thread waiter_thread([&waiter] { waiter.Wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  waiter.Cancel();
  waiter_thread.join();
  builder_thread.join();

  ASSERT_NE(builder.TryGet(), nullptr);
  // The builder was never cancelled: whichever of the two queries ended up
  // building, the uncancelled one must complete with the full answer.
  ASSERT_TRUE(builder.TryGet()->ok());
  ExpectSameCores(**builder.TryGet(), reference, "builder");
  if (!waiter.TryGet()->ok()) {
    EXPECT_EQ(waiter.TryGet()->status().code, StatusCode::kCancelled);
  }
}

// --- Deadlines ------------------------------------------------------------

TEST(DeadlineTest, MidSearchDeadlineReturnsAnytimePrefix) {
  MultiLayerGraph graph = SlowGraph();
  DccsRequest request = SlowRequest();
  const DccsResult reference =
      SolveDccs(graph, request.params, request.algorithm);

  // Sweep deadlines; depending on where each lands the query must either
  // finish whole, return a valid anytime prefix (budget_exhausted set), or
  // report kDeadlineExceeded from the queued/preprocess phases.
  bool saw_prefix_or_expiry = false;
  for (double deadline_s : {0.001, 0.005, 0.02, 0.1}) {
    Engine engine(&graph);
    QueryHandle handle = engine.Submit(
        request, SubmitOptions{.deadline_seconds = deadline_s});
    const Expected<DccsResult>& outcome = handle.Wait();
    const std::string label = "deadline_s=" + std::to_string(deadline_s);
    if (!outcome.ok()) {
      EXPECT_EQ(outcome.status().code, StatusCode::kDeadlineExceeded)
          << label;
      saw_prefix_or_expiry = true;
      continue;
    }
    if (outcome->stats.budget_exhausted) {
      EXPECT_EQ(outcome->stats.stopped, QueryStop::kDeadline) << label;
      saw_prefix_or_expiry = true;
      // The anytime prefix contains only genuine d-CCs, like the
      // time_budget_seconds path.
      EXPECT_LE(outcome->CoverSize(), reference.CoverSize()) << label;
      for (const auto& core : outcome->cores) {
        EXPECT_EQ(core.vertices,
                  CoherentCore(graph, core.layers, request.params.d))
            << label;
      }
    } else {
      ExpectSameCores(*outcome, reference, label + " completed");
    }
  }
  EXPECT_TRUE(saw_prefix_or_expiry)
      << "every deadline outran the query; deadlines untested";
}

TEST(DeadlineTest, GreedyHonoursTimeBudget) {
  MultiLayerGraph graph = SlowGraph();
  DccsParams params;
  params.d = 2;
  params.s = 3;
  params.k = 6;
  const DccsResult full = GreedyDccs(graph, params);

  params.time_budget_seconds = 1e-9;  // expires before the first candidate
  const DccsResult budgeted = GreedyDccs(graph, params);
  EXPECT_TRUE(budgeted.stats.budget_exhausted);
  EXPECT_EQ(budgeted.stats.stopped, QueryStop::kBudget);
  EXPECT_LE(budgeted.stats.candidates_generated,
            full.stats.candidates_generated);
  EXPECT_LE(budgeted.CoverSize(), full.CoverSize());
  for (const auto& core : budgeted.cores) {
    EXPECT_EQ(core.vertices, CoherentCore(graph, core.layers, params.d));
  }

  // A generous budget changes nothing.
  params.time_budget_seconds = 3600.0;
  const DccsResult roomy = GreedyDccs(graph, params);
  EXPECT_FALSE(roomy.stats.budget_exhausted);
  ASSERT_EQ(roomy.cores.size(), full.cores.size());
  for (size_t i = 0; i < roomy.cores.size(); ++i) {
    EXPECT_EQ(roomy.cores[i].layers, full.cores[i].layers);
    EXPECT_EQ(roomy.cores[i].vertices, full.cores[i].vertices);
  }
}

// Engine teardown with queries still pending resolves their handles
// instead of leaking or deadlocking; the surviving handle's whole surface
// (TryGet, Wait, Cancel) answers from the terminal result without
// touching the destroyed engine.
TEST(AsyncStatusTest, DestructionResolvesPendingQueries) {
  MultiLayerGraph graph = SmallGraph(10);
  QueryHandle abandoned;
  {
    Engine engine(&graph, Engine::Options{.query_workers = 0});
    abandoned = engine.Submit(DccsRequest{});
    EXPECT_EQ(abandoned.TryGet(), nullptr);
  }
  ASSERT_NE(abandoned.TryGet(), nullptr);
  EXPECT_EQ(abandoned.TryGet()->status().code, StatusCode::kCancelled);
  EXPECT_EQ(abandoned.Wait().status().code, StatusCode::kCancelled);
  abandoned.Cancel();  // no-op on a terminal task
  EXPECT_EQ(abandoned.Wait().status().code, StatusCode::kCancelled);
}

}  // namespace
}  // namespace mlcore
