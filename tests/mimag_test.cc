#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "mimag/mimag.h"
#include "mimag/quasi_clique.h"

namespace mlcore {
namespace {

MultiLayerGraph TwoCliqueGraph() {
  // Clique {0..4} on layers {0,1}; clique {5..9} on layers {1,2};
  // a sparse path elsewhere.
  GraphBuilder builder(12, 3);
  auto add_clique = [&](VertexId first, VertexId last,
                        std::initializer_list<LayerId> layers) {
    for (VertexId u = first; u <= last; ++u) {
      for (VertexId v = u + 1; v <= last; ++v) {
        for (LayerId layer : layers) builder.AddEdge(layer, u, v);
      }
    }
  };
  add_clique(0, 4, {0, 1});
  add_clique(5, 9, {1, 2});
  builder.AddEdge(0, 10, 11);
  return builder.Build();
}

TEST(QuasiCliqueTest, DegreeThreshold) {
  EXPECT_EQ(QuasiCliqueDegreeThreshold(0.8, 6), 4);  // ⌈0.8·5⌉ = 4
  EXPECT_EQ(QuasiCliqueDegreeThreshold(0.5, 5), 2);  // ⌈0.5·4⌉ = 2
  EXPECT_EQ(QuasiCliqueDegreeThreshold(1.0, 4), 3);  // clique
  EXPECT_EQ(QuasiCliqueDegreeThreshold(0.0, 9), 0);
}

TEST(QuasiCliqueTest, InternalDegree) {
  MultiLayerGraph graph = TwoCliqueGraph();
  EXPECT_EQ(InternalDegree(graph, 0, 0, {0, 1, 2, 3, 4}), 4);
  EXPECT_EQ(InternalDegree(graph, 0, 0, {0, 1, 2}), 2);
  EXPECT_EQ(InternalDegree(graph, 2, 0, {0, 1, 2, 3, 4}), 0);
}

TEST(QuasiCliqueTest, CliqueIsQuasiCliqueAtGammaOne) {
  MultiLayerGraph graph = TwoCliqueGraph();
  EXPECT_TRUE(IsQuasiClique(graph, 0, {0, 1, 2, 3, 4}, 1.0));
  EXPECT_TRUE(IsQuasiClique(graph, 1, {0, 1, 2, 3, 4}, 1.0));
  EXPECT_FALSE(IsQuasiClique(graph, 2, {0, 1, 2, 3, 4}, 0.5));
}

TEST(QuasiCliqueTest, SupportingLayers) {
  MultiLayerGraph graph = TwoCliqueGraph();
  EXPECT_EQ(SupportingLayers(graph, {0, 1, 2, 3, 4}, 0.8), (LayerSet{0, 1}));
  EXPECT_EQ(SupportingLayers(graph, {5, 6, 7, 8, 9}, 0.8), (LayerSet{1, 2}));
}

TEST(QuasiCliqueTest, SingletonSupportedEverywhere) {
  MultiLayerGraph graph = TwoCliqueGraph();
  EXPECT_EQ(SupportingLayers(graph, {0}, 0.8).size(), 3u);
}

TEST(MimagTest, FindsPlantedCliques) {
  MultiLayerGraph graph = TwoCliqueGraph();
  MimagParams params;
  params.gamma = 0.8;
  params.min_size = 4;
  params.min_support = 2;
  MimagResult result = MineMimag(graph, params);
  ASSERT_FALSE(result.clusters.empty());
  VertexSet cover = result.Cover();
  EXPECT_TRUE(IsSubsetSorted({0, 1, 2, 3, 4}, cover));
  EXPECT_TRUE(IsSubsetSorted({5, 6, 7, 8, 9}, cover));
  // The path vertices cannot belong to any size-4 quasi-clique.
  EXPECT_FALSE(std::binary_search(cover.begin(), cover.end(), VertexId{10}));
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(MimagTest, EveryClusterSatisfiesItsContract) {
  PlantedGraphConfig config;
  config.num_vertices = 120;
  config.num_layers = 4;
  config.num_communities = 3;
  config.community_size_min = 6;
  config.community_size_max = 10;
  config.internal_prob_min = 0.9;
  config.internal_prob_max = 1.0;
  config.seed = 11;
  MultiLayerGraph graph = GeneratePlanted(config).graph;
  MimagParams params;
  params.gamma = 0.8;
  params.min_size = 4;
  params.min_support = 2;
  MimagResult result = MineMimag(graph, params);
  for (const auto& cluster : result.clusters) {
    EXPECT_GE(static_cast<int>(cluster.vertices.size()), params.min_size);
    EXPECT_GE(static_cast<int>(cluster.layers.size()), params.min_support);
    for (LayerId layer : cluster.layers) {
      EXPECT_TRUE(
          IsQuasiClique(graph, layer, cluster.vertices, params.gamma));
    }
    // The recorded layer set is exactly the supporting set.
    EXPECT_EQ(cluster.layers,
              SupportingLayers(graph, cluster.vertices, params.gamma));
  }
}

TEST(MimagTest, DiversificationLimitsOverlap) {
  MultiLayerGraph graph = TwoCliqueGraph();
  MimagParams params;
  params.gamma = 0.8;
  params.min_size = 4;
  params.min_support = 2;
  params.redundancy_threshold = 0.5;
  MimagResult result = MineMimag(graph, params);
  // Kept clusters must pairwise overlap at most ~50% with earlier ones.
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      VertexSet overlap = IntersectSorted(result.clusters[i].vertices,
                                          result.clusters[j].vertices);
      EXPECT_LE(overlap.size(),
                result.clusters[i].vertices.size() / 2 + 1);
    }
  }
}

TEST(MimagTest, ClustersAreMaximal) {
  // After the maximalisation pass, no returned cluster can absorb another
  // vertex without dropping below the support threshold.
  PlantedGraphConfig config;
  config.num_vertices = 100;
  config.num_layers = 4;
  config.num_communities = 3;
  config.community_size_min = 8;
  config.community_size_max = 12;
  config.internal_prob_min = 0.9;
  config.internal_prob_max = 1.0;
  config.seed = 99;
  MultiLayerGraph graph = GeneratePlanted(config).graph;
  MimagParams params;
  params.gamma = 0.8;
  params.min_size = 4;
  params.min_support = 2;
  MimagResult result = MineMimag(graph, params);
  ASSERT_FALSE(result.clusters.empty());
  for (const auto& cluster : result.clusters) {
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      if (std::binary_search(cluster.vertices.begin(),
                             cluster.vertices.end(), u)) {
        continue;
      }
      VertexSet extended = cluster.vertices;
      extended.insert(
          std::upper_bound(extended.begin(), extended.end(), u), u);
      EXPECT_LT(SupportingLayers(graph, extended, params.gamma).size(),
                static_cast<size_t>(params.min_support))
          << "cluster extensible by vertex " << u << " — not maximal";
    }
  }
}

TEST(MimagTest, BudgetStopsExploration) {
  PlantedGraphConfig config;
  config.num_vertices = 150;
  config.num_layers = 4;
  config.num_communities = 4;
  config.community_size_min = 12;
  config.community_size_max = 16;
  config.internal_prob_min = 0.95;
  config.internal_prob_max = 1.0;
  config.seed = 13;
  MultiLayerGraph graph = GeneratePlanted(config).graph;
  MimagParams params;
  params.min_size = 3;
  params.min_support = 2;
  params.max_nodes = 500;
  MimagResult result = MineMimag(graph, params);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LE(result.nodes_explored, 502);
}

TEST(MimagTest, MinSupportFiltersClusters) {
  MultiLayerGraph graph = TwoCliqueGraph();
  MimagParams params;
  params.gamma = 0.8;
  params.min_size = 4;
  params.min_support = 3;  // no clique spans 3 layers
  MimagResult result = MineMimag(graph, params);
  EXPECT_TRUE(result.clusters.empty());
}

}  // namespace
}  // namespace mlcore
