#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcc.h"
#include "dccs/dccs.h"
#include "eval/complexes.h"
#include "eval/metrics.h"
#include "graph/datasets.h"
#include "mimag/mimag.h"

namespace mlcore {
namespace {

// End-to-end runs over the (scaled) evaluation datasets: every algorithm,
// several parameter points, full output validation — the ctest-level
// equivalent of the benchmark harness.

class DatasetIntegrationTest : public ::testing::TestWithParam<const char*> {
 protected:
  static constexpr double kScale = 0.1;  // keep ctest fast
};

TEST_P(DatasetIntegrationTest, SmallSupportPipelines) {
  Dataset dataset = MakeDataset(GetParam(), kScale);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 5;
  DccsResult gd = GreedyDccs(dataset.graph, params);
  DccsResult bu = BottomUpDccs(dataset.graph, params);
  for (const DccsResult* result : {&gd, &bu}) {
    for (const auto& core : result->cores) {
      EXPECT_EQ(static_cast<int>(core.layers.size()), params.s);
      EXPECT_EQ(core.vertices,
                CoherentCore(dataset.graph, core.layers, params.d));
    }
  }
  // Practical quality: BU within the 1/4 guarantee of GD, usually equal.
  EXPECT_GE(4 * bu.CoverSize(), gd.CoverSize());
  if (gd.CoverSize() > 0) {
    EXPECT_GT(bu.CoverSize(), 0);
  }
}

TEST_P(DatasetIntegrationTest, LargeSupportPipelines) {
  Dataset dataset = MakeDataset(GetParam(), kScale);
  const int l = dataset.graph.NumLayers();
  DccsParams params;
  params.d = 2;
  params.s = std::max(1, l - 2);
  params.k = 5;
  DccsResult gd = GreedyDccs(dataset.graph, params);
  DccsResult td = TopDownDccs(dataset.graph, params);
  for (const auto& core : td.cores) {
    EXPECT_EQ(static_cast<int>(core.layers.size()), params.s);
    EXPECT_EQ(core.vertices,
              CoherentCore(dataset.graph, core.layers, params.d));
  }
  EXPECT_GE(4 * td.CoverSize(), gd.CoverSize());
}

TEST_P(DatasetIntegrationTest, SearchStatsConsistent) {
  Dataset dataset = MakeDataset(GetParam(), kScale);
  DccsParams params;
  params.d = 3;
  params.s = 2;
  params.k = 5;
  DccsResult bu = BottomUpDccs(dataset.graph, params);
  EXPECT_GE(bu.stats.candidates_generated, bu.stats.nodes_visited);
  EXPECT_GE(bu.stats.updates_accepted,
            static_cast<int64_t>(bu.cores.size()) > 0 ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetIntegrationTest,
                         ::testing::Values("ppi", "author", "german", "wiki",
                                           "english", "stack"));

TEST(QuasiCliqueIntegrationTest, PpiComparisonShape) {
  // The Fig 29/32 pipeline end to end on the full PPI stand-in: MiMAG's
  // quasi-cliques must be largely contained in the BU-DCCS cover, and
  // BU-DCCS must find at least as many planted complexes as MiMAG.
  Dataset ppi = MakeDataset("ppi");
  const int d = 3;
  const int support = ppi.graph.NumLayers() / 2;

  MimagParams mimag_params;
  mimag_params.gamma = 0.8;
  mimag_params.min_size = d + 1;
  mimag_params.min_support = support;
  mimag_params.max_nodes = 300'000;
  MimagResult mimag = MineMimag(ppi.graph, mimag_params);
  ASSERT_FALSE(mimag.clusters.empty());

  DccsParams params;
  params.d = d;
  params.s = support;
  params.k = 10;
  DccsResult bu = BottomUpDccs(ppi.graph, params);
  ASSERT_FALSE(bu.cores.empty());

  OverlapMetrics metrics = CoverOverlap(mimag.Cover(), bu.Cover());
  EXPECT_GT(metrics.recall, 0.5)
      << "d-CC cover should subsume most quasi-clique vertices (Fig 29)";

  std::vector<VertexSet> mimag_subgraphs, bu_subgraphs;
  for (const auto& cluster : mimag.clusters) {
    mimag_subgraphs.push_back(cluster.vertices);
  }
  for (const auto& core : bu.cores) bu_subgraphs.push_back(core.vertices);
  double mimag_recall = ComplexRecall(ppi.complexes, mimag_subgraphs);
  double bu_recall = ComplexRecall(ppi.complexes, bu_subgraphs);
  EXPECT_GE(bu_recall, mimag_recall)
      << "BU-DCCS should find at least as many complexes as MiMAG (Fig 32)";
  EXPECT_GT(bu_recall, 0.3);
}

TEST(AlgorithmCrossCheckTest, AllThreeAgreeOnCoverMagnitude) {
  // On moderate planted instances all three algorithms land within a small
  // constant of each other (paper: "comparably good results").
  Dataset dataset = MakeDataset("author", 0.5);
  const int l = dataset.graph.NumLayers();
  for (int s : {2, l / 2, l - 1}) {
    DccsParams params;
    params.d = 3;
    params.s = s;
    params.k = 8;
    int64_t gd = GreedyDccs(dataset.graph, params).CoverSize();
    int64_t bu = BottomUpDccs(dataset.graph, params).CoverSize();
    int64_t td = TopDownDccs(dataset.graph, params).CoverSize();
    EXPECT_GE(4 * bu, gd) << "s=" << s;
    EXPECT_GE(4 * td, gd) << "s=" << s;
  }
}

}  // namespace
}  // namespace mlcore
