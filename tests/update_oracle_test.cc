#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/dcore.h"
#include "dccs/cover.h"
#include "graph/generators.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace mlcore {
namespace {

// A deliberately slow, obviously-correct model of the §IV-A Update rules.
// Every decision of the production CoverageIndex is replayed against it.
class NaiveResultSet {
 public:
  explicit NaiveResultSet(int k) : k_(k) {}

  int64_t CoverSize() const { return static_cast<int64_t>(Cover().size()); }

  bool Update(const VertexSet& candidate, const LayerSet& layers) {
    if (candidate.empty()) return false;
    for (const auto& [l, c] : entries_) {
      if (l == layers) return false;
    }
    if (static_cast<int>(entries_.size()) < k_) {  // Rule 1
      entries_.emplace_back(layers, candidate);
      return true;
    }
    // Rule 2: replace the entry with minimum exclusive coverage if the
    // replacement cover reaches (1 + 1/k)|Cov(R)|.
    size_t star = MinExclusiveIndex();
    std::set<VertexId> replaced;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i == star) continue;
      replaced.insert(entries_[i].second.begin(), entries_[i].second.end());
    }
    replaced.insert(candidate.begin(), candidate.end());
    if (static_cast<int64_t>(replaced.size()) * k_ >=
        (k_ + 1) * CoverSize()) {
      entries_[star] = {layers, candidate};
      return true;
    }
    return false;
  }

  std::set<VertexId> Cover() const {
    std::set<VertexId> cover;
    for (const auto& [l, c] : entries_) cover.insert(c.begin(), c.end());
    return cover;
  }

  int64_t MinExclusiveSize() const {
    if (entries_.empty()) return 0;
    return Exclusive(MinExclusiveIndex());
  }

 private:
  int64_t Exclusive(size_t slot) const {
    int64_t count = 0;
    for (VertexId v : entries_[slot].second) {
      bool elsewhere = false;
      for (size_t i = 0; i < entries_.size() && !elsewhere; ++i) {
        if (i == slot) continue;
        elsewhere = std::binary_search(entries_[i].second.begin(),
                                       entries_[i].second.end(), v);
      }
      if (!elsewhere) ++count;
    }
    return count;
  }

  size_t MinExclusiveIndex() const {
    // Same tie-breaking rule as the production index: minimal |Δ|, then
    // lexicographically smallest layer set.
    size_t best = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      int64_t delta = Exclusive(i), best_delta = Exclusive(best);
      if (delta < best_delta ||
          (delta == best_delta && entries_[i].first < entries_[best].first)) {
        best = i;
      }
    }
    return best;
  }

  int k_;
  std::vector<std::pair<LayerSet, VertexSet>> entries_;
};

class UpdateOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdateOracleTest, ProductionMatchesOracleOnRandomStreams) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 7919 + 13);
  CoverageIndex index(k);
  NaiveResultSet oracle(k);
  for (int round = 0; round < 400; ++round) {
    VertexSet candidate;
    const int size = static_cast<int>(rng.Uniform(0, 25));
    for (int i = 0; i < size; ++i) {
      candidate.push_back(static_cast<VertexId>(rng.Uniform(0, 70)));
    }
    std::sort(candidate.begin(), candidate.end());
    candidate.erase(std::unique(candidate.begin(), candidate.end()),
                    candidate.end());
    LayerSet layers = {static_cast<LayerId>(round % 59),
                       static_cast<LayerId>(59 + round / 59)};

    bool expected = oracle.Update(candidate, layers);
    bool actual = index.Update(candidate, layers);
    ASSERT_EQ(actual, expected) << "round " << round << " k=" << k;
    ASSERT_EQ(index.cover_size(), oracle.CoverSize()) << "round " << round;
    ASSERT_EQ(index.MinExclusiveSize(), oracle.MinExclusiveSize())
        << "round " << round;
    index.CheckInvariants();
  }
  // Final covers agree element-wise.
  std::set<VertexId> expected_cover = oracle.Cover();
  std::set<VertexId> actual_cover;
  for (const auto& entry : index.entries()) {
    actual_cover.insert(entry.vertices.begin(), entry.vertices.end());
  }
  EXPECT_EQ(actual_cover, expected_cover);
}

INSTANTIATE_TEST_SUITE_P(Capacities, UpdateOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// GraphStore insertion/deletion oracle (DESIGN.md §8): randomized
// interleaved insert/delete batches — including vertex adds and removals —
// asserting that the incrementally maintained per-layer cores and Num(v)
// are bit-identical to a from-scratch CoreDecomposition / DCore of the
// snapshot graph at every epoch.
// ---------------------------------------------------------------------------

class StoreUpdateOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreUpdateOracleTest, IncrementalCoresMatchFromScratchEveryEpoch) {
  const uint64_t seed = GetParam();
  const std::vector<int> tracked = {1, 2, 3};
  GraphStore::Options options;
  options.tracked_degrees = tracked;
  // Alternate between a tight threshold (exercises the full-recompute
  // fallback) and a huge one (pure bounded re-coring) across seeds.
  options.recore_damage_threshold = seed % 2 == 0 ? 4 : (1 << 20);
  GraphStore store(GenerateErdosRenyi(70, 3, 0.07, 900 + seed), options);

  Rng rng(seed * 31 + 7);
  for (int epoch = 1; epoch <= 12; ++epoch) {
    auto snap = store.snapshot();
    const MultiLayerGraph& graph = snap->graph();
    const int32_t n = graph.NumVertices();
    const int32_t l = graph.NumLayers();

    UpdateBatch batch;
    std::set<std::pair<VertexId, VertexId>> touched[3];
    // Occasionally grow the id space and wire the newcomers in.
    if (epoch % 4 == 0) batch.AddVertices(2);
    const int32_t reach = n + batch.add_vertices;
    // Random removals of present edges.
    for (int i = 0; i < 8; ++i) {
      auto layer = static_cast<LayerId>(rng.Uniform(0, l - 1));
      auto v = static_cast<VertexId>(rng.Uniform(0, n - 1));
      auto nbrs = graph.Neighbors(layer, v);
      if (nbrs.empty()) continue;
      VertexId u = nbrs[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(nbrs.size()) - 1))];
      auto key = std::minmax(u, v);
      if (!touched[layer].insert({key.first, key.second}).second) continue;
      batch.Remove(layer, u, v);
    }
    // Random insertions of absent pairs (new vertices included).
    for (int i = 0; i < 12; ++i) {
      auto layer = static_cast<LayerId>(rng.Uniform(0, l - 1));
      auto u = static_cast<VertexId>(rng.Uniform(0, reach - 1));
      auto v = static_cast<VertexId>(rng.Uniform(0, reach - 1));
      if (u == v) continue;
      auto key = std::minmax(u, v);
      if (u < n && v < n && graph.HasEdge(layer, key.first, key.second)) {
        continue;
      }
      if (!touched[layer].insert({key.first, key.second}).second) continue;
      batch.Insert(layer, u, v);
    }
    // Occasionally isolate a vertex — but never one referenced by this
    // batch's edge records (the store rejects that, by design).
    if (epoch % 3 == 0) {
      auto victim = static_cast<VertexId>(rng.Uniform(0, n - 1));
      bool referenced = false;
      for (const auto& lists : {batch.insert_edges, batch.remove_edges}) {
        for (const EdgeUpdate& e : lists) {
          if (e.u == victim || e.v == victim) referenced = true;
        }
      }
      if (!referenced) batch.RemoveVertex(victim);
    }

    auto outcome = store.ApplyUpdate(batch);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message;
    if (!batch.empty()) {
      ASSERT_EQ(outcome->epoch, static_cast<uint64_t>(store.epoch()));
    }

    // Oracle: every tracked core and support must equal a from-scratch
    // recomputation on the published snapshot — via both DCore and the
    // Batagelj–Zaversnik CoreDecomposition.
    auto now = store.snapshot();
    const MultiLayerGraph& updated = now->graph();
    for (int d : tracked) {
      const TrackedCores* cores = now->tracked(d);
      ASSERT_NE(cores, nullptr);
      std::vector<int> support_oracle(
          static_cast<size_t>(updated.NumVertices()), 0);
      for (LayerId layer = 0; layer < l; ++layer) {
        const VertexSet& maintained =
            *cores->cores[static_cast<size_t>(layer)];
        ASSERT_EQ(maintained, DCore(updated, layer, d))
            << "epoch " << epoch << " d " << d << " layer " << layer;
        std::vector<int> coreness = CoreDecomposition(updated, layer);
        VertexSet via_coreness;
        for (VertexId v = 0; v < updated.NumVertices(); ++v) {
          if (coreness[static_cast<size_t>(v)] >= d) via_coreness.push_back(v);
        }
        ASSERT_EQ(maintained, via_coreness)
            << "epoch " << epoch << " d " << d << " layer " << layer;
        for (VertexId v : maintained) ++support_oracle[static_cast<size_t>(v)];
      }
      ASSERT_EQ(*cores->support, support_oracle)
          << "epoch " << epoch << " d " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreUpdateOracleTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace mlcore
