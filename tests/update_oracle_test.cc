#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "dccs/cover.h"
#include "util/rng.h"

namespace mlcore {
namespace {

// A deliberately slow, obviously-correct model of the §IV-A Update rules.
// Every decision of the production CoverageIndex is replayed against it.
class NaiveResultSet {
 public:
  explicit NaiveResultSet(int k) : k_(k) {}

  int64_t CoverSize() const { return static_cast<int64_t>(Cover().size()); }

  bool Update(const VertexSet& candidate, const LayerSet& layers) {
    if (candidate.empty()) return false;
    for (const auto& [l, c] : entries_) {
      if (l == layers) return false;
    }
    if (static_cast<int>(entries_.size()) < k_) {  // Rule 1
      entries_.emplace_back(layers, candidate);
      return true;
    }
    // Rule 2: replace the entry with minimum exclusive coverage if the
    // replacement cover reaches (1 + 1/k)|Cov(R)|.
    size_t star = MinExclusiveIndex();
    std::set<VertexId> replaced;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i == star) continue;
      replaced.insert(entries_[i].second.begin(), entries_[i].second.end());
    }
    replaced.insert(candidate.begin(), candidate.end());
    if (static_cast<int64_t>(replaced.size()) * k_ >=
        (k_ + 1) * CoverSize()) {
      entries_[star] = {layers, candidate};
      return true;
    }
    return false;
  }

  std::set<VertexId> Cover() const {
    std::set<VertexId> cover;
    for (const auto& [l, c] : entries_) cover.insert(c.begin(), c.end());
    return cover;
  }

  int64_t MinExclusiveSize() const {
    if (entries_.empty()) return 0;
    return Exclusive(MinExclusiveIndex());
  }

 private:
  int64_t Exclusive(size_t slot) const {
    int64_t count = 0;
    for (VertexId v : entries_[slot].second) {
      bool elsewhere = false;
      for (size_t i = 0; i < entries_.size() && !elsewhere; ++i) {
        if (i == slot) continue;
        elsewhere = std::binary_search(entries_[i].second.begin(),
                                       entries_[i].second.end(), v);
      }
      if (!elsewhere) ++count;
    }
    return count;
  }

  size_t MinExclusiveIndex() const {
    // Same tie-breaking rule as the production index: minimal |Δ|, then
    // lexicographically smallest layer set.
    size_t best = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      int64_t delta = Exclusive(i), best_delta = Exclusive(best);
      if (delta < best_delta ||
          (delta == best_delta && entries_[i].first < entries_[best].first)) {
        best = i;
      }
    }
    return best;
  }

  int k_;
  std::vector<std::pair<LayerSet, VertexSet>> entries_;
};

class UpdateOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdateOracleTest, ProductionMatchesOracleOnRandomStreams) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 7919 + 13);
  CoverageIndex index(k);
  NaiveResultSet oracle(k);
  for (int round = 0; round < 400; ++round) {
    VertexSet candidate;
    const int size = static_cast<int>(rng.Uniform(0, 25));
    for (int i = 0; i < size; ++i) {
      candidate.push_back(static_cast<VertexId>(rng.Uniform(0, 70)));
    }
    std::sort(candidate.begin(), candidate.end());
    candidate.erase(std::unique(candidate.begin(), candidate.end()),
                    candidate.end());
    LayerSet layers = {static_cast<LayerId>(round % 59),
                       static_cast<LayerId>(59 + round / 59)};

    bool expected = oracle.Update(candidate, layers);
    bool actual = index.Update(candidate, layers);
    ASSERT_EQ(actual, expected) << "round " << round << " k=" << k;
    ASSERT_EQ(index.cover_size(), oracle.CoverSize()) << "round " << round;
    ASSERT_EQ(index.MinExclusiveSize(), oracle.MinExclusiveSize())
        << "round " << round;
    index.CheckInvariants();
  }
  // Final covers agree element-wise.
  std::set<VertexId> expected_cover = oracle.Cover();
  std::set<VertexId> actual_cover;
  for (const auto& entry : index.entries()) {
    actual_cover.insert(entry.vertices.begin(), entry.vertices.end());
  }
  EXPECT_EQ(actual_cover, expected_cover);
}

INSTANTIATE_TEST_SUITE_P(Capacities, UpdateOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mlcore
