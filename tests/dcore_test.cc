#include <gtest/gtest.h>

#include <algorithm>

#include "core/dcore.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mlcore {
namespace {

// Independent reference: repeatedly drop any vertex below the threshold.
VertexSet NaiveDCore(const MultiLayerGraph& graph, LayerId layer, int d,
                     VertexSet scope) {
  bool changed = true;
  while (changed) {
    changed = false;
    VertexSet next;
    for (VertexId v : scope) {
      int degree = 0;
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (std::binary_search(scope.begin(), scope.end(), u)) ++degree;
      }
      if (degree >= d) {
        next.push_back(v);
      } else {
        changed = true;
      }
    }
    scope = std::move(next);
  }
  return scope;
}

TEST(DCoreTest, TriangleWithPendant) {
  GraphBuilder builder(4, 1);
  builder.AddEdge(0, 0, 1);
  builder.AddEdge(0, 1, 2);
  builder.AddEdge(0, 0, 2);
  builder.AddEdge(0, 2, 3);
  MultiLayerGraph graph = builder.Build();

  EXPECT_EQ(DCore(graph, 0, 1).size(), 4u);
  EXPECT_EQ(DCore(graph, 0, 2), (VertexSet{0, 1, 2}));
  EXPECT_TRUE(DCore(graph, 0, 3).empty());
}

TEST(DCoreTest, ZeroCoreIsEverything) {
  MultiLayerGraph graph = GenerateErdosRenyi(30, 1, 0.05, 3);
  EXPECT_EQ(DCore(graph, 0, 0).size(), 30u);
}

TEST(DCoreTest, CascadingDeletion) {
  // Path 0-1-2-3-4: the 1-core keeps the path, the 2-core dies entirely
  // through cascades.
  GraphBuilder builder(5, 1);
  for (VertexId v = 0; v + 1 < 5; ++v) builder.AddEdge(0, v, v + 1);
  MultiLayerGraph graph = builder.Build();
  EXPECT_EQ(DCore(graph, 0, 1).size(), 5u);
  EXPECT_TRUE(DCore(graph, 0, 2).empty());
}

TEST(DCoreTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    MultiLayerGraph graph = GenerateErdosRenyi(80, 1, 0.06, 100 + seed);
    for (int d = 1; d <= 5; ++d) {
      EXPECT_EQ(DCore(graph, 0, d),
                NaiveDCore(graph, 0, d, AllVertices(graph)))
          << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(DCoreTest, ScopedMatchesNaive) {
  MultiLayerGraph graph = GenerateErdosRenyi(60, 1, 0.08, 9);
  VertexSet scope;
  for (VertexId v = 0; v < 40; ++v) scope.push_back(v);
  for (int d = 1; d <= 4; ++d) {
    EXPECT_EQ(DCoreScoped(graph, 0, d, scope),
              NaiveDCore(graph, 0, d, scope));
  }
}

TEST(DCoreTest, HierarchyProperty) {
  // C^d ⊆ C^{d-1} (paper Property 2 restricted to one layer).
  MultiLayerGraph graph = GenerateErdosRenyi(100, 1, 0.08, 21);
  VertexSet previous = DCore(graph, 0, 0);
  for (int d = 1; d <= 8; ++d) {
    VertexSet current = DCore(graph, 0, d);
    EXPECT_TRUE(IsSubsetSorted(current, previous)) << "d=" << d;
    previous = std::move(current);
  }
}

TEST(CoreDecompositionTest, CorenessConsistentWithDCore) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    MultiLayerGraph graph = GenerateErdosRenyi(70, 1, 0.08, 200 + seed);
    std::vector<int> coreness = CoreDecomposition(graph, 0);
    int max_core = *std::max_element(coreness.begin(), coreness.end());
    for (int d = 0; d <= max_core + 1; ++d) {
      VertexSet expected = DCore(graph, 0, d);
      VertexSet from_coreness;
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        if (coreness[static_cast<size_t>(v)] >= d) from_coreness.push_back(v);
      }
      EXPECT_EQ(from_coreness, expected) << "seed=" << seed << " d=" << d;
    }
  }
}

TEST(CoreDecompositionTest, CliqueCoreness) {
  GraphBuilder builder(6, 1);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(0, u, v);
  }
  MultiLayerGraph graph = builder.Build();
  std::vector<int> coreness = CoreDecomposition(graph, 0);
  for (int c : coreness) EXPECT_EQ(c, 5);
}

TEST(CoreDecompositionTest, IsolatedVerticesGetZero) {
  GraphBuilder builder(4, 1);
  builder.AddEdge(0, 0, 1);
  MultiLayerGraph graph = builder.Build();
  std::vector<int> coreness = CoreDecomposition(graph, 0);
  EXPECT_EQ(coreness[0], 1);
  EXPECT_EQ(coreness[1], 1);
  EXPECT_EQ(coreness[2], 0);
  EXPECT_EQ(coreness[3], 0);
}

}  // namespace
}  // namespace mlcore
