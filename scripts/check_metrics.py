#!/usr/bin/env python3
"""Validates the machine-readable stats surface (DESIGN.md §12).

Two modes, both stdlib-only so CI needs no extra packages:

  --validate FILE
      Structural schema check of an obs::ToJson document (the output of
      `dccs_cli --metrics_json=PATH` or a bench binary's --metrics_json):
      version == 1, every metric has a stable dotted name and a known
      kind, histograms carry count/sum/p50/p90/p99 and a bucket list whose
      final edge is "+Inf", and slow-query entries carry complete span
      records. Metrics with a pinned kind in EXPECTED_KINDS (the graph
      ingest names of DESIGN.md §13, for now) must carry exactly that
      kind. Repeatable `--require NAME` flags additionally fail the check
      when a metric is absent — the CI format job requires the ingest
      metrics after a `dccs_cli --graph_bin` run. Exit 0 = schema holds.

  --overhead ENABLED.json DISABLED.json [--tolerance 0.02]
      Instrumentation-overhead guard: both files are google-benchmark JSON
      (bench_micro --benchmark_format=json) from an observability-enabled
      and an MLCORE_OBS_DISABLED build of the same revision. Compares the
      per-benchmark median real_time (falling back to the mean of raw
      iterations when aggregates are absent) and fails when the geometric
      mean of enabled/disabled ratios exceeds 1 + tolerance. Exit 0 =
      within budget.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

VALID_KINDS = {"counter", "gauge", "histogram"}
SPAN_FIELDS = {"name", "id", "parent", "start_ms", "wall_ms", "cpu_ms"}

# Registered names whose kind is part of the stable surface: a document
# exporting one of these under a different kind is a naming-scheme bug,
# not a schema variation.
EXPECTED_KINDS = {
    "format.load_ms": "histogram",
    "format.mmap_bytes": "gauge",
}


def fail(msg: str) -> None:
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(doc: object, context: str) -> None:
    # cpu_ms may be null (unsupported clock); everything else is numeric.
    if not isinstance(doc, (int, float)) or isinstance(doc, bool):
        fail(f"{context}: expected a number, got {type(doc).__name__}")


def validate_histogram(m: dict, name: str) -> None:
    for field in ("count", "sum", "p50", "p90", "p99"):
        if field not in m:
            fail(f"metric '{name}': histogram missing '{field}'")
        check_number(m[field], f"metric '{name}'.{field}")
    buckets = m.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        fail(f"metric '{name}': histogram missing non-empty 'buckets'")
    prev_edge = -math.inf
    total = 0
    for i, b in enumerate(buckets):
        if not isinstance(b, dict) or "le" not in b or "count" not in b:
            fail(f"metric '{name}': bucket {i} missing le/count")
        check_number(b["count"], f"metric '{name}' bucket {i} count")
        total += b["count"]
        if i == len(buckets) - 1:
            if b["le"] != "+Inf":
                fail(f"metric '{name}': final bucket edge must be \"+Inf\"")
        else:
            check_number(b["le"], f"metric '{name}' bucket {i} le")
            if b["le"] <= prev_edge:
                fail(f"metric '{name}': bucket edges not ascending")
            prev_edge = b["le"]
    if total != m["count"]:
        fail(
            f"metric '{name}': bucket counts sum to {total}, "
            f"'count' says {m['count']}"
        )


def validate(path: str, required: list[str]) -> None:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if doc.get("version") != 1:
        fail(f"version must be 1, got {doc.get('version')!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail("'metrics' must be a list")
    seen: set[str] = set()
    for m in metrics:
        if not isinstance(m, dict):
            fail("metric entries must be objects")
        name = m.get("name")
        if not isinstance(name, str) or "." not in name:
            fail(f"metric name {name!r} is not a dotted path")
        if name in seen:
            fail(f"duplicate metric name '{name}'")
        seen.add(name)
        kind = m.get("kind")
        if kind not in VALID_KINDS:
            fail(f"metric '{name}': unknown kind {kind!r}")
        expected = EXPECTED_KINDS.get(name)
        if expected is not None and kind != expected:
            fail(f"metric '{name}': kind {kind!r}, expected {expected!r}")
        if kind == "histogram":
            validate_histogram(m, name)
        else:
            check_number(m.get("value"), f"metric '{name}'.value")
    for name in required:
        if name not in seen:
            fail(f"required metric '{name}' is absent")
    slow = doc.get("slow_queries")
    if not isinstance(slow, list):
        fail("'slow_queries' must be a list")
    prev_ms = math.inf
    for i, q in enumerate(slow):
        for field in ("label", "epoch", "total_ms", "dropped_spans", "spans"):
            if field not in q:
                fail(f"slow_queries[{i}] missing '{field}'")
        check_number(q["total_ms"], f"slow_queries[{i}].total_ms")
        if q["total_ms"] > prev_ms:
            fail("slow_queries must be sorted slowest-first")
        prev_ms = q["total_ms"]
        for j, span in enumerate(q["spans"]):
            missing = SPAN_FIELDS - span.keys()
            if missing:
                fail(
                    f"slow_queries[{i}].spans[{j}] missing "
                    f"{sorted(missing)}"
                )
            if span["cpu_ms"] is not None:
                check_number(
                    span["cpu_ms"], f"slow_queries[{i}].spans[{j}].cpu_ms"
                )
    print(
        f"check_metrics: OK ({len(metrics)} metrics, "
        f"{len(slow)} slow queries)"
    )


def bench_medians(path: str) -> dict[str, float]:
    """Per-benchmark representative real_time from google-benchmark JSON:
    the *_median aggregate when repetitions were requested, else the mean
    of that benchmark's raw iterations."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    medians: dict[str, float] = {}
    raw: dict[str, list[float]] = {}
    for b in doc.get("benchmarks", []):
        name = b.get("run_name", b.get("name", ""))
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[name] = float(b["real_time"])
        else:
            raw.setdefault(name, []).append(float(b["real_time"]))
    for name, times in raw.items():
        if name not in medians:
            medians[name] = sum(times) / len(times)
    if not medians:
        fail(f"{path}: no benchmarks found")
    return medians


def overhead(enabled_path: str, disabled_path: str, tolerance: float) -> None:
    enabled = bench_medians(enabled_path)
    disabled = bench_medians(disabled_path)
    common = sorted(enabled.keys() & disabled.keys())
    if not common:
        fail("no common benchmarks between the two files")
    log_sum = 0.0
    worst_name, worst_ratio = "", 0.0
    for name in common:
        ratio = enabled[name] / disabled[name]
        log_sum += math.log(ratio)
        if ratio > worst_ratio:
            worst_name, worst_ratio = name, ratio
        print(f"  {name}: enabled/disabled = {ratio:.4f}")
    geomean = math.exp(log_sum / len(common))
    print(
        f"check_metrics: geomean overhead {geomean:.4f} over "
        f"{len(common)} benchmarks (worst {worst_name}: {worst_ratio:.4f}, "
        f"budget {1 + tolerance:.2f})"
    )
    if geomean > 1 + tolerance:
        fail(
            f"observability overhead {geomean:.4f} exceeds "
            f"{1 + tolerance:.2f} (DESIGN.md §12 budget)"
        )
    print("check_metrics: overhead within budget")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--validate", metavar="FILE")
    group.add_argument(
        "--overhead", nargs=2, metavar=("ENABLED", "DISABLED")
    )
    parser.add_argument("--tolerance", type=float, default=0.02)
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="with --validate: fail unless this metric is present",
    )
    args = parser.parse_args()
    if args.validate:
        validate(args.validate, args.require)
    else:
        overhead(args.overhead[0], args.overhead[1], args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
