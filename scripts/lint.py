#!/usr/bin/env python3
"""Repo-specific concurrency/robustness lint (DESIGN.md §11, §12, §13).

Five rules over src/:

  naked-mutex      std::mutex / std::condition_variable / std::lock_guard /
                   std::unique_lock / std::scoped_lock / std::shared_mutex /
                   std::recursive_mutex / std::timed_mutex are banned
                   outside the annotated wrapper layer (util/mutex.{h,cc},
                   util/thread_annotations.h). Everything else must use
                   util::Mutex / util::MutexLock / util::UniqueLock /
                   util::CondVar so MLCORE_GUARDED_BY contracts stay
                   machine-checkable. (std::once_flag / std::call_once are
                   fine — they carry no guarded state.)

  release-check    MLCORE_CHECK / MLCORE_CHECK_MSG (always-abort, also in
                   release) are banned in code reachable from Engine
                   request handling: src/service, src/dccs, src/core,
                   src/dynamic, src/store and graph/multilayer_graph.cc.
                   Preconditions guaranteed by Engine::Validate belong in
                   MLCORE_DCHECK; genuine abort-by-contract sites carry a
                   `NOLINT(mlcore-release-check): <reason>` marker on the
                   same line or within the three lines above.

  snapshot-bypass  `current_graph(` is banned in src/service: it reads the
                   store without pinning an epoch and is valid only until
                   the next ApplyUpdate. Request paths must hold
                   store()->snapshot(). Deliberate uses carry
                   `NOLINT(mlcore-snapshot-bypass): <reason>`.

  raw-walltimer    declaring a WallTimer by value is banned in src/service:
                   service timings must flow through obs::Span (a null-trace
                   Span is the sanctioned stopwatch) so every measured
                   duration is also observable in the trace/metric surface
                   (DESIGN.md §12). References returned by Span::timer()
                   (`const WallTimer&`) are fine. Deliberate uses carry
                   `NOLINT(mlcore-raw-walltimer): <reason>`.

  raw-mmap         calling mmap( / munmap( is banned outside
                   util/mmap_file.{h,cc}: mapping lifetime must be owned by
                   util::MmapFile (RAII, shared via MultiLayerGraph's
                   backing handle) so no view can outlive its mapping
                   (DESIGN.md §13). Deliberate uses carry
                   `NOLINT(mlcore-raw-mmap): <reason>`.

Exit status 0 = clean, 1 = findings (printed one per line as
path:line: [rule] message).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

WRAPPER_FILES = {
    SRC / "util" / "mutex.h",
    SRC / "util" / "mutex.cc",
    SRC / "util" / "thread_annotations.h",
}

NAKED_MUTEX = re.compile(
    r"std::(?:mutex|condition_variable(?:_any)?|lock_guard|unique_lock"
    r"|scoped_lock|shared_mutex|shared_lock|recursive_mutex|timed_mutex"
    r"|recursive_timed_mutex|shared_timed_mutex)\b"
)
RELEASE_CHECK = re.compile(r"\bMLCORE_CHECK(?:_MSG)?\s*\(")
SNAPSHOT_BYPASS = re.compile(r"\bcurrent_graph\s*\(")
# Value declarations only: `WallTimer t;` / `mlcore::WallTimer t;`.
# `const WallTimer& t = span.timer()` has '&' before the identifier and
# does not match (no new clock is created).
RAW_WALLTIMER = re.compile(r"\bWallTimer\s+[A-Za-z_]")
RAW_MMAP = re.compile(r"\b(?:mmap|munmap)\s*\(")

MMAP_WRAPPER_FILES = {
    SRC / "util" / "mmap_file.h",
    SRC / "util" / "mmap_file.cc",
}

CHECK_SCOPE_DIRS = ("service", "dccs", "core", "dynamic", "store", "format")
CHECK_SCOPE_FILES = {SRC / "graph" / "multilayer_graph.cc"}

MARKER_WINDOW = 3  # a NOLINT marker covers its own line and the next three


def strip_code(lines: list[str]) -> list[str]:
    """Returns lines with comments and string/char literals blanked out
    (same line count, so reported line numbers match the file)."""
    text = "\n".join(lines)
    out: list[str] = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        c = text[i]
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            in_block = True
            out.append("  ")
            i += 2
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out).split("\n")


def has_marker(raw_lines: list[str], idx: int, marker: str) -> bool:
    lo = max(0, idx - MARKER_WINDOW)
    return any(marker in raw_lines[j] for j in range(lo, idx + 1))


def in_check_scope(path: Path) -> bool:
    if path in CHECK_SCOPE_FILES:
        return True
    rel = path.relative_to(SRC)
    return rel.parts[0] in CHECK_SCOPE_DIRS


def lint_file(path: Path) -> list[str]:
    raw = path.read_text().splitlines()
    code = strip_code(raw)
    rel = path.relative_to(REPO)
    findings: list[str] = []

    if path not in WRAPPER_FILES:
        for i, line in enumerate(code):
            if NAKED_MUTEX.search(line):
                findings.append(
                    f"{rel}:{i + 1}: [naked-mutex] use util::Mutex / "
                    "util::MutexLock / util::CondVar (util/mutex.h) so the "
                    "thread-safety contracts stay machine-checked"
                )

    if in_check_scope(path):
        for i, line in enumerate(code):
            if RELEASE_CHECK.search(line) and not has_marker(
                raw, i, "NOLINT(mlcore-release-check)"
            ):
                findings.append(
                    f"{rel}:{i + 1}: [release-check] MLCORE_CHECK aborts in "
                    "release builds on an Engine request path; use "
                    "MLCORE_DCHECK (Validate-guaranteed precondition) or "
                    "return a Status, or justify with "
                    "NOLINT(mlcore-release-check): <reason>"
                )

    if rel.parts[:2] == ("src", "service"):
        for i, line in enumerate(code):
            if SNAPSHOT_BYPASS.search(line) and not has_marker(
                raw, i, "NOLINT(mlcore-snapshot-bypass)"
            ):
                findings.append(
                    f"{rel}:{i + 1}: [snapshot-bypass] current_graph() is "
                    "valid only until the next ApplyUpdate; pin "
                    "store()->snapshot() instead, or justify with "
                    "NOLINT(mlcore-snapshot-bypass): <reason>"
                )

    if rel.parts[:2] == ("src", "service"):
        for i, line in enumerate(code):
            if RAW_WALLTIMER.search(line) and not has_marker(
                raw, i, "NOLINT(mlcore-raw-walltimer)"
            ):
                findings.append(
                    f"{rel}:{i + 1}: [raw-walltimer] service timings must "
                    "flow through obs::Span (use a null-trace Span as a "
                    "stopwatch) so durations stay observable, or justify "
                    "with NOLINT(mlcore-raw-walltimer): <reason>"
                )

    if path not in MMAP_WRAPPER_FILES:
        for i, line in enumerate(code):
            if RAW_MMAP.search(line) and not has_marker(
                raw, i, "NOLINT(mlcore-raw-mmap)"
            ):
                findings.append(
                    f"{rel}:{i + 1}: [raw-mmap] raw mmap/munmap outside "
                    "util/mmap_file.*: mapping lifetime must be owned by "
                    "util::MmapFile so adjacency views cannot outlive their "
                    "mapping, or justify with NOLINT(mlcore-raw-mmap): "
                    "<reason>"
                )

    return findings


def main() -> int:
    findings: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix in (".h", ".cc", ".cpp", ".hpp"):
            findings.extend(lint_file(path))
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print(f"lint: OK ({sum(1 for p in SRC.rglob('*') if p.suffix in ('.h', '.cc', '.cpp', '.hpp'))} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
