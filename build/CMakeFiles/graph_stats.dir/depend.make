# Empty dependencies file for graph_stats.
# This may be replaced when dependencies are built.
