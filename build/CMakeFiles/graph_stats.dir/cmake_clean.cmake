file(REMOVE_RECURSE
  "CMakeFiles/graph_stats.dir/examples/graph_stats.cpp.o"
  "CMakeFiles/graph_stats.dir/examples/graph_stats.cpp.o.d"
  "graph_stats"
  "graph_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
