# Empty dependencies file for bench_fig28_preprocessing.
# This may be replaced when dependencies are built.
