file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_preprocessing.dir/bench/bench_fig28_preprocessing.cc.o"
  "CMakeFiles/bench_fig28_preprocessing.dir/bench/bench_fig28_preprocessing.cc.o.d"
  "bench_fig28_preprocessing"
  "bench_fig28_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
