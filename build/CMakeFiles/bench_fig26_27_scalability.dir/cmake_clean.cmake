file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_27_scalability.dir/bench/bench_fig26_27_scalability.cc.o"
  "CMakeFiles/bench_fig26_27_scalability.dir/bench/bench_fig26_27_scalability.cc.o.d"
  "bench_fig26_27_scalability"
  "bench_fig26_27_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_27_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
