# Empty dependencies file for bench_fig26_27_scalability.
# This may be replaced when dependencies are built.
