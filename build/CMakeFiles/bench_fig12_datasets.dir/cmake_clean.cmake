file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_datasets.dir/bench/bench_fig12_datasets.cc.o"
  "CMakeFiles/bench_fig12_datasets.dir/bench/bench_fig12_datasets.cc.o.d"
  "bench_fig12_datasets"
  "bench_fig12_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
