# Empty dependencies file for bench_fig12_datasets.
# This may be replaced when dependencies are built.
