# Empty dependencies file for bench_fig14_15_time_vs_s.
# This may be replaced when dependencies are built.
