file(REMOVE_RECURSE
  "libmlcore.a"
)
