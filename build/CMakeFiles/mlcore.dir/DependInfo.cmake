
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/statistics.cc" "CMakeFiles/mlcore.dir/src/analysis/statistics.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/analysis/statistics.cc.o.d"
  "/root/repo/src/core/coreness.cc" "CMakeFiles/mlcore.dir/src/core/coreness.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/core/coreness.cc.o.d"
  "/root/repo/src/core/dcc.cc" "CMakeFiles/mlcore.dir/src/core/dcc.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/core/dcc.cc.o.d"
  "/root/repo/src/core/dcore.cc" "CMakeFiles/mlcore.dir/src/core/dcore.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/core/dcore.cc.o.d"
  "/root/repo/src/core/fds.cc" "CMakeFiles/mlcore.dir/src/core/fds.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/core/fds.cc.o.d"
  "/root/repo/src/dccs/bottom_up.cc" "CMakeFiles/mlcore.dir/src/dccs/bottom_up.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/bottom_up.cc.o.d"
  "/root/repo/src/dccs/community_search.cc" "CMakeFiles/mlcore.dir/src/dccs/community_search.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/community_search.cc.o.d"
  "/root/repo/src/dccs/cover.cc" "CMakeFiles/mlcore.dir/src/dccs/cover.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/cover.cc.o.d"
  "/root/repo/src/dccs/exact.cc" "CMakeFiles/mlcore.dir/src/dccs/exact.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/exact.cc.o.d"
  "/root/repo/src/dccs/greedy.cc" "CMakeFiles/mlcore.dir/src/dccs/greedy.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/greedy.cc.o.d"
  "/root/repo/src/dccs/params.cc" "CMakeFiles/mlcore.dir/src/dccs/params.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/params.cc.o.d"
  "/root/repo/src/dccs/preprocess.cc" "CMakeFiles/mlcore.dir/src/dccs/preprocess.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/preprocess.cc.o.d"
  "/root/repo/src/dccs/top_down.cc" "CMakeFiles/mlcore.dir/src/dccs/top_down.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/top_down.cc.o.d"
  "/root/repo/src/dccs/vertex_index.cc" "CMakeFiles/mlcore.dir/src/dccs/vertex_index.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dccs/vertex_index.cc.o.d"
  "/root/repo/src/dynamic/decremental_core.cc" "CMakeFiles/mlcore.dir/src/dynamic/decremental_core.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/dynamic/decremental_core.cc.o.d"
  "/root/repo/src/eval/complexes.cc" "CMakeFiles/mlcore.dir/src/eval/complexes.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/eval/complexes.cc.o.d"
  "/root/repo/src/eval/dot_export.cc" "CMakeFiles/mlcore.dir/src/eval/dot_export.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/eval/dot_export.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/mlcore.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "CMakeFiles/mlcore.dir/src/graph/datasets.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/graph/datasets.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/mlcore.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "CMakeFiles/mlcore.dir/src/graph/graph_builder.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/io.cc" "CMakeFiles/mlcore.dir/src/graph/io.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/graph/io.cc.o.d"
  "/root/repo/src/graph/multilayer_graph.cc" "CMakeFiles/mlcore.dir/src/graph/multilayer_graph.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/graph/multilayer_graph.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "CMakeFiles/mlcore.dir/src/graph/sampling.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/graph/sampling.cc.o.d"
  "/root/repo/src/mimag/mimag.cc" "CMakeFiles/mlcore.dir/src/mimag/mimag.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/mimag/mimag.cc.o.d"
  "/root/repo/src/mimag/quasi_clique.cc" "CMakeFiles/mlcore.dir/src/mimag/quasi_clique.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/mimag/quasi_clique.cc.o.d"
  "/root/repo/src/util/flags.cc" "CMakeFiles/mlcore.dir/src/util/flags.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/util/flags.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/mlcore.dir/src/util/table.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/mlcore.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/util/thread_pool.cc.o.d"
  "/root/repo/src/util/timing.cc" "CMakeFiles/mlcore.dir/src/util/timing.cc.o" "gcc" "CMakeFiles/mlcore.dir/src/util/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
