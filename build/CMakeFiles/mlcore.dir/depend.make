# Empty dependencies file for mlcore.
# This may be replaced when dependencies are built.
