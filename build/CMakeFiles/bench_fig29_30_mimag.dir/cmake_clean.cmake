file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_30_mimag.dir/bench/bench_fig29_30_mimag.cc.o"
  "CMakeFiles/bench_fig29_30_mimag.dir/bench/bench_fig29_30_mimag.cc.o.d"
  "bench_fig29_30_mimag"
  "bench_fig29_30_mimag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_30_mimag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
