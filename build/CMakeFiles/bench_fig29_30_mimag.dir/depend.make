# Empty dependencies file for bench_fig29_30_mimag.
# This may be replaced when dependencies are built.
