file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_cover_vs_s.dir/bench/bench_fig16_17_cover_vs_s.cc.o"
  "CMakeFiles/bench_fig16_17_cover_vs_s.dir/bench/bench_fig16_17_cover_vs_s.cc.o.d"
  "bench_fig16_17_cover_vs_s"
  "bench_fig16_17_cover_vs_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_cover_vs_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
