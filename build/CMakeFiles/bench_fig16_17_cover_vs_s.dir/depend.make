# Empty dependencies file for bench_fig16_17_cover_vs_s.
# This may be replaced when dependencies are built.
