file(REMOVE_RECURSE
  "CMakeFiles/bench_fig32_complexes.dir/bench/bench_fig32_complexes.cc.o"
  "CMakeFiles/bench_fig32_complexes.dir/bench/bench_fig32_complexes.cc.o.d"
  "bench_fig32_complexes"
  "bench_fig32_complexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig32_complexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
