# Empty dependencies file for bench_fig32_complexes.
# This may be replaced when dependencies are built.
