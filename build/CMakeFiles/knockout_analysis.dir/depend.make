# Empty dependencies file for knockout_analysis.
# This may be replaced when dependencies are built.
