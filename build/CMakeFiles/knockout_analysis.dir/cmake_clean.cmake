file(REMOVE_RECURSE
  "CMakeFiles/knockout_analysis.dir/examples/knockout_analysis.cpp.o"
  "CMakeFiles/knockout_analysis.dir/examples/knockout_analysis.cpp.o.d"
  "knockout_analysis"
  "knockout_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knockout_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
