file(REMOVE_RECURSE
  "CMakeFiles/dccs_cli.dir/examples/dccs_cli.cpp.o"
  "CMakeFiles/dccs_cli.dir/examples/dccs_cli.cpp.o.d"
  "dccs_cli"
  "dccs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dccs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
