# Empty dependencies file for dccs_cli.
# This may be replaced when dependencies are built.
