# Empty dependencies file for bench_fig31_dot_export.
# This may be replaced when dependencies are built.
