file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31_dot_export.dir/bench/bench_fig31_dot_export.cc.o"
  "CMakeFiles/bench_fig31_dot_export.dir/bench/bench_fig31_dot_export.cc.o.d"
  "bench_fig31_dot_export"
  "bench_fig31_dot_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31_dot_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
