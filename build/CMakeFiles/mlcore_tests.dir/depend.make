# Empty dependencies file for mlcore_tests.
# This may be replaced when dependencies are built.
