
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/budget_test.cc" "CMakeFiles/mlcore_tests.dir/tests/budget_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/budget_test.cc.o.d"
  "/root/repo/tests/community_search_test.cc" "CMakeFiles/mlcore_tests.dir/tests/community_search_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/community_search_test.cc.o.d"
  "/root/repo/tests/coreness_test.cc" "CMakeFiles/mlcore_tests.dir/tests/coreness_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/coreness_test.cc.o.d"
  "/root/repo/tests/cover_test.cc" "CMakeFiles/mlcore_tests.dir/tests/cover_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/cover_test.cc.o.d"
  "/root/repo/tests/dcc_test.cc" "CMakeFiles/mlcore_tests.dir/tests/dcc_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/dcc_test.cc.o.d"
  "/root/repo/tests/dccs_test.cc" "CMakeFiles/mlcore_tests.dir/tests/dccs_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/dccs_test.cc.o.d"
  "/root/repo/tests/dcore_test.cc" "CMakeFiles/mlcore_tests.dir/tests/dcore_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/dcore_test.cc.o.d"
  "/root/repo/tests/dynamic_test.cc" "CMakeFiles/mlcore_tests.dir/tests/dynamic_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/dynamic_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "CMakeFiles/mlcore_tests.dir/tests/edge_cases_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/edge_cases_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "CMakeFiles/mlcore_tests.dir/tests/eval_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/eval_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "CMakeFiles/mlcore_tests.dir/tests/graph_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "CMakeFiles/mlcore_tests.dir/tests/integration_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/integration_test.cc.o.d"
  "/root/repo/tests/mimag_test.cc" "CMakeFiles/mlcore_tests.dir/tests/mimag_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/mimag_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "CMakeFiles/mlcore_tests.dir/tests/parallel_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/parallel_test.cc.o.d"
  "/root/repo/tests/preprocess_test.cc" "CMakeFiles/mlcore_tests.dir/tests/preprocess_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/preprocess_test.cc.o.d"
  "/root/repo/tests/properties_test.cc" "CMakeFiles/mlcore_tests.dir/tests/properties_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/properties_test.cc.o.d"
  "/root/repo/tests/pruning_test.cc" "CMakeFiles/mlcore_tests.dir/tests/pruning_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/pruning_test.cc.o.d"
  "/root/repo/tests/solver_reuse_test.cc" "CMakeFiles/mlcore_tests.dir/tests/solver_reuse_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/solver_reuse_test.cc.o.d"
  "/root/repo/tests/statistics_test.cc" "CMakeFiles/mlcore_tests.dir/tests/statistics_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/statistics_test.cc.o.d"
  "/root/repo/tests/torture_test.cc" "CMakeFiles/mlcore_tests.dir/tests/torture_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/torture_test.cc.o.d"
  "/root/repo/tests/update_oracle_test.cc" "CMakeFiles/mlcore_tests.dir/tests/update_oracle_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/update_oracle_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "CMakeFiles/mlcore_tests.dir/tests/util_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/util_test.cc.o.d"
  "/root/repo/tests/vertex_index_test.cc" "CMakeFiles/mlcore_tests.dir/tests/vertex_index_test.cc.o" "gcc" "CMakeFiles/mlcore_tests.dir/tests/vertex_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mlcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
