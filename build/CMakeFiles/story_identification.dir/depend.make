# Empty dependencies file for story_identification.
# This may be replaced when dependencies are built.
