file(REMOVE_RECURSE
  "CMakeFiles/story_identification.dir/examples/story_identification.cpp.o"
  "CMakeFiles/story_identification.dir/examples/story_identification.cpp.o.d"
  "story_identification"
  "story_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/story_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
