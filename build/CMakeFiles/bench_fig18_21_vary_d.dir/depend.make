# Empty dependencies file for bench_fig18_21_vary_d.
# This may be replaced when dependencies are built.
