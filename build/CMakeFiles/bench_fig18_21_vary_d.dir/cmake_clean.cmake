file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_21_vary_d.dir/bench/bench_fig18_21_vary_d.cc.o"
  "CMakeFiles/bench_fig18_21_vary_d.dir/bench/bench_fig18_21_vary_d.cc.o.d"
  "bench_fig18_21_vary_d"
  "bench_fig18_21_vary_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_21_vary_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
