# Empty dependencies file for bench_fig22_25_vary_k.
# This may be replaced when dependencies are built.
