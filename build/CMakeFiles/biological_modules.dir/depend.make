# Empty dependencies file for biological_modules.
# This may be replaced when dependencies are built.
