file(REMOVE_RECURSE
  "CMakeFiles/biological_modules.dir/examples/biological_modules.cpp.o"
  "CMakeFiles/biological_modules.dir/examples/biological_modules.cpp.o.d"
  "biological_modules"
  "biological_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biological_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
