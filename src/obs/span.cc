#include "obs/span.h"

#include <algorithm>

namespace mlcore::obs {

Trace::Trace(uint32_t capacity) : slots_(capacity) {}

void Trace::Commit(const SpanRecord& record) {
  const uint32_t slot = used_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot] = record;
}

SpanId Trace::Add(const char* name, SpanId parent, double start_ms,
                  double wall_ms, double cpu_ms) {
  SpanRecord record;
  record.name = name;
  record.id = NextId();
  record.parent = parent;
  record.start_ms = start_ms;
  record.wall_ms = wall_ms;
  record.cpu_ms = cpu_ms;
  Commit(record);
  return record.id;
}

std::vector<SpanRecord> Trace::records() const {
  const uint32_t used = std::min(used_.load(std::memory_order_relaxed),
                                 static_cast<uint32_t>(slots_.size()));
  std::vector<SpanRecord> out(slots_.begin(), slots_.begin() + used);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ms < b.start_ms;
                   });
  return out;
}

void SlowQueryLog::Offer(TraceSummary summary) {
  util::MutexLock lock(mu_);
  if (entries_.size() >= capacity_) {
    if (summary.total_ms <= entries_.back().total_ms) return;
    entries_.pop_back();
  }
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), summary.total_ms,
      [](double ms, const TraceSummary& e) { return ms > e.total_ms; });
  entries_.insert(pos, std::move(summary));
}

std::vector<TraceSummary> SlowQueryLog::Snapshot() const {
  util::MutexLock lock(mu_);
  return entries_;
}

void SlowQueryLog::Clear() {
  util::MutexLock lock(mu_);
  entries_.clear();
}

}  // namespace mlcore::obs
