#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace mlcore::obs {

namespace {

// Shortest-round-trip double formatting; JSON has no Infinity/NaN, so
// non-finite values (an unsupported cpu clock never produces them, but be
// safe) degrade to null.
void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendMetricJson(std::string& out, const MetricSnapshot& m) {
  out += "{\"name\": ";
  AppendEscaped(out, m.name);
  switch (m.kind) {
    case MetricKind::kCounter:
    case MetricKind::kGauge:
      out += m.kind == MetricKind::kCounter ? ", \"kind\": \"counter\""
                                            : ", \"kind\": \"gauge\"";
      out += ", \"value\": " + std::to_string(m.value);
      break;
    case MetricKind::kHistogram: {
      const Histogram::Snapshot& h = m.hist;
      out += ", \"kind\": \"histogram\"";
      out += ", \"count\": " + std::to_string(h.count);
      out += ", \"sum\": ";
      AppendNumber(out, h.sum);
      out += ", \"p50\": ";
      AppendNumber(out, h.Quantile(0.50));
      out += ", \"p90\": ";
      AppendNumber(out, h.Quantile(0.90));
      out += ", \"p99\": ";
      AppendNumber(out, h.Quantile(0.99));
      out += ", \"buckets\": [";
      for (size_t b = 0; b < h.counts.size(); ++b) {
        if (b > 0) out += ", ";
        out += "{\"le\": ";
        if (b < h.bounds.size()) {
          AppendNumber(out, h.bounds[b]);
        } else {
          out += "\"+Inf\"";
        }
        out += ", \"count\": " + std::to_string(h.counts[b]) + "}";
      }
      out += "]";
      break;
    }
  }
  out += "}";
}

void AppendSpanJson(std::string& out, const SpanRecord& s) {
  out += "{\"name\": ";
  AppendEscaped(out, s.name);
  out += ", \"id\": " + std::to_string(s.id);
  out += ", \"parent\": " + std::to_string(s.parent);
  out += ", \"start_ms\": ";
  AppendNumber(out, s.start_ms);
  out += ", \"wall_ms\": ";
  AppendNumber(out, s.wall_ms);
  out += ", \"cpu_ms\": ";
  AppendNumber(out, s.cpu_ms);
  out += "}";
}

std::string PrometheusName(const std::string& prefix,
                           const std::string& name) {
  std::string out = prefix;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string ToJson(const std::vector<MetricSnapshot>& metrics,
                   const std::vector<TraceSummary>& slow_queries) {
  std::string out = "{\n  \"version\": 1,\n  \"metrics\": [";
  for (size_t i = 0; i < metrics.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendMetricJson(out, metrics[i]);
  }
  out += "\n  ],\n  \"slow_queries\": [";
  for (size_t i = 0; i < slow_queries.size(); ++i) {
    const TraceSummary& t = slow_queries[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"label\": ";
    AppendEscaped(out, t.label);
    out += ", \"epoch\": " + std::to_string(t.epoch);
    out += ", \"total_ms\": ";
    AppendNumber(out, t.total_ms);
    out += ", \"dropped_spans\": " + std::to_string(t.dropped_spans);
    out += ", \"spans\": [";
    for (size_t s = 0; s < t.spans.size(); ++s) {
      if (s > 0) out += ", ";
      AppendSpanJson(out, t.spans[s]);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string ToPrometheusText(const std::vector<MetricSnapshot>& metrics,
                             const std::string& name_prefix) {
  std::string out;
  char buf[128];
  for (const MetricSnapshot& m : metrics) {
    const std::string name = PrometheusName(name_prefix, m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += "# TYPE " + name +
               (m.kind == MetricKind::kCounter ? " counter\n" : " gauge\n");
        out += name + " " + std::to_string(m.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        int64_t cumulative = 0;
        for (size_t b = 0; b < m.hist.counts.size(); ++b) {
          cumulative += m.hist.counts[b];
          if (b < m.hist.bounds.size()) {
            std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.9g\"} %lld\n",
                          name.c_str(), m.hist.bounds[b],
                          static_cast<long long>(cumulative));
          } else {
            std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %lld\n",
                          name.c_str(), static_cast<long long>(cumulative));
          }
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_sum %.9g\n%s_count %lld\n",
                      name.c_str(), m.hist.sum, name.c_str(),
                      static_cast<long long>(m.hist.count));
        out += buf;
        break;
      }
    }
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok) std::fprintf(stderr, "obs: short write to '%s'\n", path.c_str());
  return ok;
}

}  // namespace mlcore::obs
