#ifndef MLCORE_OBS_METRICS_H_
#define MLCORE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

// Process observability: metric primitives and the registry (DESIGN.md §12).
//
// Metric names are stable dotted paths, `<subsystem>.<object>.<field>`
// (e.g. "engine.query.search_ms", "store.apply_update_ms"). Names are
// static — never interpolate ids, epochs, or request parameters into a
// name; per-query detail belongs in trace spans (obs/span.h), not in
// metric cardinality.
//
// Hot-path contract: Counter::Add / Gauge::Set / Histogram::Record are
// single relaxed atomic RMWs with no locks and no allocation — safe from
// any thread, including search lanes. Registry lookups (GetCounter etc.)
// take the registry mutex and are for setup paths only; hosts cache the
// returned pointers, which stay valid for the registry's lifetime.
//
// MLCORE_OBS_DISABLED (compile-time escape hatch, CMake option of the same
// name): Histogram::Record compiles to nothing. Counters and gauges stay
// live in every build — Engine::cache_stats() / scheduler_stats() are views
// over them, so disabling observability must not change *correctness*
// surfaces, only strip the latency instrumentation (histograms, spans,
// cpu timing).

namespace mlcore::obs {

#if defined(MLCORE_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic event count. Relaxed atomics: totals are exact once the
/// writers quiesce; mid-flight reads may trail concurrent increments.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, current epoch).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary latency histogram. `bounds` are ascending inclusive
/// upper edges; values above the last bound land in an implicit +Inf
/// overflow bucket. Recording is one binary search plus two relaxed RMWs.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;   // finite upper edges
    std::vector<int64_t> counts;  // bounds.size() + 1 (last = overflow)
    int64_t count = 0;
    double sum = 0;

    /// Quantile in [0, 1] by linear interpolation inside the holding
    /// bucket (lower edge 0 for the first). Overflow-bucket quantiles
    /// clamp to the last finite bound — the histogram cannot see past it.
    /// 0 when empty.
    double Quantile(double q) const;
  };

  explicit Histogram(std::vector<double> bounds);

  void Record(double value) {
    if constexpr (!kEnabled) {
      (void)value;
      return;
    }
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;
  void Reset();
  const std::vector<double>& bounds() const { return bounds_; }

  /// Default latency boundaries in milliseconds, 10µs..10s.
  static std::vector<double> LatencyBoundsMs();

 private:
  size_t BucketFor(double value) const;

  std::vector<double> bounds_;
  // unique_ptr-wrapped because std::atomic is immovable and the bucket
  // count is a constructor argument.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one registered metric, for export (obs/export.h)
/// and for Engine::stats_report().
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;            // counter / gauge
  Histogram::Snapshot hist;     // histogram only
};

/// Name → metric table. Get-or-create is idempotent: the first caller
/// fixes the kind (and, for histograms, the boundaries); later calls with
/// the same name return the same pointer and ignore their arguments.
/// Asking for an existing name as a different kind aborts — that is a
/// naming-scheme bug, not a runtime condition.
///
/// Each host owns its own registry (per-Engine, per-GraphStore) so tests
/// running hosts concurrently see exact per-host counts; `Global()` is the
/// process-wide aggregate that latency histograms are mirrored into for
/// whole-process export (bench_common --metrics_json).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Snapshot of every registered metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Resets (not: unregisters) every metric whose name starts with
  /// `prefix`; "" resets everything. Cached pointers stay valid.
  void Reset(const std::string& prefix = "");

  static Registry& Global();

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name) MLCORE_REQUIRES(mu_);

  mutable util::Mutex mu_{util::lock_rank::kObsRegistry,
                          "obs::Registry::mu_"};
  std::vector<std::unique_ptr<Entry>> entries_ MLCORE_GUARDED_BY(mu_);
};

}  // namespace mlcore::obs

#endif  // MLCORE_OBS_METRICS_H_
