#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mlcore::obs {

double Histogram::Snapshot::Quantile(double q) const {
  if (count <= 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample (1-based, ceil so q=1 names the last one).
  const auto rank = static_cast<int64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count))));
  int64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const int64_t in_bucket = counts[b];
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (b >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    // Linear interpolation of the rank's position within the bucket.
    const double frac =
        static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  MLCORE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

size_t Histogram::BucketFor(double value) const {
  // First bound >= value; inclusive upper edges, so an exact boundary hit
  // lands in the bucket it bounds. Everything past the last bound is the
  // overflow bucket at index bounds_.size().
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  // A racing Record can make the per-bucket sum momentarily exceed
  // count_; clamp so Quantile never reads past the recorded samples.
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  snap.count = std::min(snap.count, bucket_total);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBoundsMs() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,
          10.0, 25.0,  50.0, 100., 250., 500., 1000.0, 2500.0, 10000.0};
}

Registry::Entry* Registry::Find(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name) {
  util::MutexLock lock(mu_);
  if (Entry* e = Find(name)) {
    MLCORE_CHECK_MSG(e->kind == MetricKind::kCounter,
                     "metric re-registered as a different kind");
    return e->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = MetricKind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* Registry::GetGauge(const std::string& name) {
  util::MutexLock lock(mu_);
  if (Entry* e = Find(name)) {
    MLCORE_CHECK_MSG(e->kind == MetricKind::kGauge,
                     "metric re-registered as a different kind");
    return e->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = MetricKind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  if (Entry* e = Find(name)) {
    MLCORE_CHECK_MSG(e->kind == MetricKind::kHistogram,
                     "metric re-registered as a different kind");
    return e->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = MetricKind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    util::MutexLock lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSnapshot snap;
      snap.name = e->name;
      snap.kind = e->kind;
      switch (e->kind) {
        case MetricKind::kCounter:
          snap.value = e->counter->value();
          break;
        case MetricKind::kGauge:
          snap.value = e->gauge->value();
          break;
        case MetricKind::kHistogram:
          snap.hist = e->histogram->snapshot();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::Reset(const std::string& prefix) {
  util::MutexLock lock(mu_);
  for (auto& e : entries_) {
    if (e->name.compare(0, prefix.size(), prefix) != 0) continue;
    switch (e->kind) {
      case MetricKind::kCounter:
        e->counter->Reset();
        break;
      case MetricKind::kGauge:
        e->gauge->Reset();
        break;
      case MetricKind::kHistogram:
        e->histogram->Reset();
        break;
    }
  }
}

Registry& Registry::Global() {
  static Registry* global = new Registry();  // never destroyed: metric
  return *global;  // pointers must outlive static-teardown-order races
}

}  // namespace mlcore::obs
