#ifndef MLCORE_OBS_SPAN_H_
#define MLCORE_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timing.h"

// Per-query trace spans (DESIGN.md §12).
//
// A Trace is a fixed-capacity buffer of SpanRecords owned by one query:
// the Engine allocates it at submission, hands it (plus a parent span id)
// through DccsExecution into the search, and reads it back after the query
// quiesces — the completed span tree feeds the slow-query log and
// stats_report(). Span names are static string literals from the span
// taxonomy (DESIGN.md §12); never pass a dynamically built name.
//
// Concurrency contract: Commit() is safe from any number of threads
// concurrently (one fetch_add claims a slot; overflow drops the record and
// counts it). Reading (records()) is only safe after every recording
// thread is done with the trace — for the Engine that is after RunValidated
// returns, which joins the search TaskGroup. This keeps the hot path to a
// slot claim and a struct write, with no locking.

namespace mlcore::obs {

/// 0 = "no span" (the null parent).
using SpanId = uint32_t;

struct SpanRecord {
  const char* name = "";  // static literal from the span taxonomy
  SpanId id = 0;
  SpanId parent = 0;
  double start_ms = 0;  // offset from the owning trace's creation
  double wall_ms = 0;
  double cpu_ms = -1;  // thread CPU time; -1 = not measured / unsupported
};

class Trace {
 public:
  /// Default capacity covers the query taxonomy (root + 4 phases + one
  /// lane span per search thread + subscription stages) with headroom.
  explicit Trace(uint32_t capacity = 64);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Claims a fresh span id (never 0). Ids are per-trace, not global.
  SpanId NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Milliseconds since this trace was created; span start offsets are
  /// measured on this clock.
  double AgeMs() const { return clock_.Millis(); }

  /// Appends a finished span. Thread-safe; drops (and counts) when full.
  void Commit(const SpanRecord& record);

  /// Convenience for spans whose duration was measured externally
  /// (admission wait, snapshot pin): claims an id, commits, returns it.
  SpanId Add(const char* name, SpanId parent, double start_ms,
             double wall_ms, double cpu_ms = -1);

  /// All committed spans in start order. Only call once every recording
  /// thread has finished (see the file comment).
  std::vector<SpanRecord> records() const;

  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  WallTimer clock_;
  std::atomic<SpanId> next_id_{1};
  std::atomic<uint32_t> used_{0};
  std::vector<SpanRecord> slots_;
  std::atomic<int64_t> dropped_{0};
};

/// RAII span. Construction claims an id and starts a wall (and thread-CPU)
/// stopwatch; destruction (or End()) commits the record. A Span built with
/// a null trace — or any Span under MLCORE_OBS_DISABLED — records nothing
/// but still runs its wall stopwatch, because callers read durations off
/// it (`wall_seconds()`, `timer()` for CheckQueryStop): the disabled build
/// pays exactly the WallTimer the uninstrumented code already paid.
///
/// Must start and end on the same thread (the CPU clock is per-thread).
class Span {
 public:
  Span() = default;  // inert

  Span(Trace* trace, const char* name, SpanId parent = 0) : name_(name) {
    if constexpr (kEnabled) {
      if (trace != nullptr) {
        trace_ = trace;
        parent_ = parent;
        id_ = trace->NextId();
        start_ms_ = trace->AgeMs();
        cpu_.Restart();
      }
    } else {
      (void)trace;
      (void)parent;
    }
    timer_.Restart();
  }

  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

  ~Span() { End(); }

  /// Commits now (idempotent); later wall_seconds() reads keep ticking but
  /// the recorded span is frozen.
  void End() {
    if (trace_ == nullptr) return;
    SpanRecord record;
    record.name = name_;
    record.id = id_;
    record.parent = parent_;
    record.start_ms = start_ms_;
    record.wall_ms = timer_.Millis();
    record.cpu_ms = cpu_.Millis();
    trace_->Commit(record);
    trace_ = nullptr;
  }

  /// This span's id for parenting children; 0 when not recording.
  SpanId id() const { return id_; }

  /// The span's wall stopwatch — CheckQueryStop measures search budgets
  /// against exactly this timer, so budget semantics cannot drift from
  /// what the span reports.
  const WallTimer& timer() const { return timer_; }
  double wall_seconds() const { return timer_.Seconds(); }

 private:
  Trace* trace_ = nullptr;
  const char* name_ = "";
  SpanId id_ = 0;
  SpanId parent_ = 0;
  double start_ms_ = 0;
  WallTimer timer_;
  ThreadCpuTimer cpu_;
};

/// One completed query's trace, annotated for the slow-query log.
struct TraceSummary {
  std::string label;  // request shape, e.g. "run algo=bu d=3 s=2 k=5"
  uint64_t epoch = 0;
  double total_ms = 0;
  std::vector<SpanRecord> spans;
  int64_t dropped_spans = 0;
};

/// Keeps the N slowest queries by total duration. Offer() is called once
/// per completed query (cold path) and takes a ranked mutex; Snapshot()
/// returns entries sorted slowest-first.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 16) : capacity_(capacity) {}

  void Offer(TraceSummary summary);
  std::vector<TraceSummary> Snapshot() const;
  void Clear();

 private:
  const size_t capacity_;
  mutable util::Mutex mu_{util::lock_rank::kObsSlowLog,
                          "obs::SlowQueryLog::mu_"};
  // Sorted slowest-first; size <= capacity_.
  std::vector<TraceSummary> entries_ MLCORE_GUARDED_BY(mu_);
};

}  // namespace mlcore::obs

#endif  // MLCORE_OBS_SPAN_H_
