#ifndef MLCORE_OBS_EXPORT_H_
#define MLCORE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

// Machine-readable exposure of the metrics registry and slow-query log
// (DESIGN.md §12). Two formats:
//
//   JSON        — the `--metrics_json` document consumed by
//                 scripts/check_metrics.py; schema sketch:
//                   {"version": 1,
//                    "metrics": [{"name": "...", "kind": "counter|gauge",
//                                 "value": N} |
//                                {"name": "...", "kind": "histogram",
//                                 "count": N, "sum": X,
//                                 "p50": X, "p90": X, "p99": X,
//                                 "buckets": [{"le": B, "count": N}...,
//                                             {"le": "+Inf", "count": N}]}],
//                    "slow_queries": [{"label": "...", "epoch": N,
//                                      "total_ms": X, "dropped_spans": N,
//                                      "spans": [{"name": "...", "id": N,
//                                                 "parent": N,
//                                                 "start_ms": X,
//                                                 "wall_ms": X,
//                                                 "cpu_ms": X}...]}]}
//   Prometheus  — text exposition (dots become underscores, histogram
//                 buckets cumulative with the conventional `le` label),
//                 for scraping once ROADMAP item 3's server lands.

namespace mlcore::obs {

std::string ToJson(const std::vector<MetricSnapshot>& metrics,
                   const std::vector<TraceSummary>& slow_queries = {});

std::string ToPrometheusText(const std::vector<MetricSnapshot>& metrics,
                             const std::string& name_prefix = "mlcore_");

/// Writes `content` to `path` ("-" = stdout). Returns false (and prints to
/// stderr) on I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace mlcore::obs

#endif  // MLCORE_OBS_EXPORT_H_
