#ifndef MLCORE_UTIL_CANCELLATION_H_
#define MLCORE_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

namespace mlcore {

/// Why a cooperative stage stopped before finishing its work (DESIGN.md §7).
/// Ordered by how the checks resolve ties: an expired deadline is only
/// reported when no cancellation was requested.
enum class QueryStop {
  kNone = 0,
  /// DccsParams::time_budget_seconds expired (the pre-existing anytime
  /// budget, measured from the start of the search phase).
  kBudget = 1,
  /// The wall-clock deadline of the submitting QueryControl passed.
  kDeadline = 2,
  /// CancellationToken::RequestCancel was called.
  kCancelled = 3,
};

/// Shared cancellation flag: copy the token anywhere (each copy aliases the
/// same state) and call RequestCancel from any thread; workers observe it
/// through QueryControl::Check at their cooperative checkpoints. Requesting
/// cancellation is idempotent and never blocks.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const {
    state_->store(true, std::memory_order_release);
  }
  bool cancel_requested() const {
    return state_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Cooperative stop policy for one query: a cancellation token plus an
/// optional absolute wall-clock deadline, polled together at the search
/// checkpoints (subset-lattice nodes, greedy candidate boundaries,
/// preprocessing rounds). An inactive control — default-constructed, no
/// deadline — costs one branch per checkpoint; an active one costs an
/// atomic load, plus a steady_clock read when a deadline is set.
///
/// Cancellation wins ties: Check reports kCancelled even when the deadline
/// has also passed, so a caller that cancels an already-late query sees a
/// deterministic status.
class QueryControl {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  QueryControl() = default;
  QueryControl(CancellationToken token, std::optional<TimePoint> deadline)
      : token_(std::move(token)), deadline_(deadline), active_(true) {}

  /// Control with a deadline `seconds` from now (<= 0 means no deadline).
  static QueryControl WithDeadline(CancellationToken token, double seconds) {
    std::optional<TimePoint> deadline;
    if (seconds > 0) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    }
    return QueryControl(std::move(token), deadline);
  }

  QueryStop Check() const {
    if (!active_) return QueryStop::kNone;
    if (token_.cancel_requested()) return QueryStop::kCancelled;
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() > *deadline_) {
      return QueryStop::kDeadline;
    }
    return QueryStop::kNone;
  }

  bool active() const { return active_; }
  bool has_deadline() const { return deadline_.has_value(); }
  const CancellationToken& token() const { return token_; }

 private:
  CancellationToken token_;
  std::optional<TimePoint> deadline_;
  bool active_ = false;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_CANCELLATION_H_
