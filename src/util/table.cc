#include "util/table.h"

#include <cstdio>

#include "util/check.h"

namespace mlcore {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  MLCORE_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::printf("|");
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c];
    }
    out += "\n";
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace mlcore
