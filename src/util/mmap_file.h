#ifndef MLCORE_UTIL_MMAP_FILE_H_
#define MLCORE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "service/status.h"

namespace mlcore::util {

/// RAII read-only memory mapping of a whole file (DESIGN.md §13).
///
/// The single sanctioned owner of raw mmap/munmap in the codebase
/// (scripts/lint.py bans the syscalls elsewhere): every zero-copy load
/// path goes through this class so mapping lifetime is always tied to an
/// object that higher layers can hold — `MultiLayerGraph` keeps its
/// backing mapping alive via a shared_ptr to the MmapFile that produced
/// its adjacency views.
///
/// Move-only; the destructor unmaps. A default-constructed (or moved-from)
/// instance is empty: data() == nullptr, size() == 0.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only into *out (replacing any previous mapping). On
  /// error *out is left empty and the status names the path and the
  /// failing step. An empty file maps successfully to (nullptr, 0).
  static Status Open(const std::string& path, MmapFile* out);

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Unmaps now (idempotent).
  void Reset();

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace mlcore::util

#endif  // MLCORE_UTIL_MMAP_FILE_H_
