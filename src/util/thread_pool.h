#ifndef MLCORE_UTIL_THREAD_POOL_H_
#define MLCORE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlcore {

/// A small reusable fork-join pool for the embarrassingly parallel loops in
/// the DCCS stack (per-layer d-core preprocessing, GD-DCCS candidate
/// generation). Construct once per search, reuse across many ParallelFor
/// calls; workers sleep between calls.
///
/// Determinism contract (see DESIGN.md §4): ParallelFor schedules item
/// indices dynamically, so the *assignment* of items to workers varies
/// between runs, but callers write results only into per-item slots (and
/// keep any mutable scratch per-worker), which makes the merged output
/// bit-identical for every thread count. Worker ids are in
/// [0, num_threads()) and the calling thread participates as worker 0.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism (callers usually pass
  /// DccsParams::num_threads); values < 1 are clamped to 1. The pool spawns
  /// `num_threads - 1` background workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(worker, item) for every item in [0, count), blocking until all
  /// items finish. Items are claimed dynamically; `worker` identifies the
  /// executing lane for indexing per-worker scratch arenas. Not reentrant:
  /// fn must not call ParallelFor on the same pool.
  void ParallelFor(int64_t count, const std::function<void(int, int64_t)>& fn);

 private:
  void WorkerLoop(int worker);
  // Claims and runs items until the current batch is drained. Completion is
  // tracked per *item*, not per worker, so a small batch finishes as soon
  // as its items do — the caller never waits for idle workers to wake, and
  // a worker waking late simply finds nothing to claim.
  void RunBatch(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(int, int64_t)>* fn_ = nullptr;  // current batch
  int64_t count_ = 0;
  int64_t next_ = 0;        // next unclaimed item
  int64_t done_ = 0;        // items finished in the current batch
  uint64_t generation_ = 0; // bumped once per ParallelFor to wake workers
  bool shutdown_ = false;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_THREAD_POOL_H_
