#ifndef MLCORE_UTIL_THREAD_POOL_H_
#define MLCORE_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mlcore {

/// A small reusable fork-join pool for the embarrassingly parallel loops in
/// the DCCS stack (per-layer d-core preprocessing, GD-DCCS candidate
/// generation). Construct once per search, reuse across many ParallelFor
/// calls; workers sleep between calls.
///
/// Determinism contract (see DESIGN.md §4): ParallelFor schedules item
/// indices dynamically, so the *assignment* of items to workers varies
/// between runs, but callers write results only into per-item slots (and
/// keep any mutable scratch per-worker), which makes the merged output
/// bit-identical for every thread count. Worker ids are in
/// [0, num_threads()) and the calling thread participates as worker 0.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism (callers usually pass
  /// DccsParams::num_threads); values < 1 are clamped to 1. The pool spawns
  /// `num_threads - 1` background workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(worker, item) for every item in [0, count), blocking until all
  /// items finish. Items are claimed dynamically; `worker` identifies the
  /// executing lane for indexing per-worker scratch arenas. Not reentrant:
  /// fn must not call ParallelFor on the same pool.
  void ParallelFor(int64_t count, const std::function<void(int, int64_t)>& fn);

 private:
  void WorkerLoop(int worker);
  // Claims and runs items until the current batch is drained. Completion is
  // tracked per *item*, not per worker, so a small batch finishes as soon
  // as its items do — the caller never waits for idle workers to wake, and
  // a worker waking late simply finds nothing to claim.
  void RunBatch(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  util::Mutex mu_{util::lock_rank::kThreadPool, "ThreadPool::mu_"};
  util::CondVar work_ready_;
  util::CondVar batch_done_;
  // Current batch; non-null exactly while a batch is in flight.
  const std::function<void(int, int64_t)>* fn_ MLCORE_GUARDED_BY(mu_) =
      nullptr;
  int64_t count_ MLCORE_GUARDED_BY(mu_) = 0;
  int64_t next_ MLCORE_GUARDED_BY(mu_) = 0;  // next unclaimed item
  // Items finished in the current batch.
  int64_t done_ MLCORE_GUARDED_BY(mu_) = 0;
  // Bumped once per ParallelFor to wake workers.
  uint64_t generation_ MLCORE_GUARDED_BY(mu_) = 0;
  bool shutdown_ MLCORE_GUARDED_BY(mu_) = false;
};

/// Bounded, priority-ordered queue of opaque work items — the admission
/// layer in front of a pool of executor threads (the `mlcore::Engine`'s
/// async scheduler, DESIGN.md §7). Unlike ThreadPool::ParallelFor's
/// fork-join batches, entries here are independent long-lived tasks with
/// per-entry priorities, and the queue enforces a capacity instead of
/// growing without bound.
///
/// Semantics:
///  * Pop order: highest priority first; FIFO (admission order) within a
///    priority.
///  * TryPush on a full queue sheds load rather than blocking: if the
///    lowest-priority queued entry has *strictly lower* priority than the
///    new one it is displaced (returned through `displaced` for the caller
///    to resolve), otherwise the push is rejected.
///  * TryRemove lets a producer claim back a still-queued entry (cooperative
///    cancellation, or a waiter electing to run its own task). Exactly one
///    of {WaitPop, TryRemove} obtains any given entry.
///  * Shutdown wakes all poppers; WaitPop then drains remaining entries and
///    finally returns false. Drain removes everything at once (engine
///    teardown).
///
/// Thread-safe; all operations are O(queue length) worst case, which the
/// capacity bound keeps small.
class PriorityTaskQueue {
 public:
  struct Entry {
    int priority = 0;
    uint64_t id = 0;
    std::shared_ptr<void> payload;
  };

  enum class PushOutcome {
    kAccepted,
    /// Accepted by displacing the lowest-priority queued entry (written to
    /// `displaced`).
    kAcceptedDisplacing,
    /// Queue full and no queued entry has lower priority: caller must shed
    /// this request.
    kRejected,
  };

  explicit PriorityTaskQueue(size_t capacity);

  PriorityTaskQueue(const PriorityTaskQueue&) = delete;
  PriorityTaskQueue& operator=(const PriorityTaskQueue&) = delete;

  /// Attempts to enqueue `payload`. On success `*id` receives a handle for
  /// TryRemove; on kAcceptedDisplacing `*displaced` receives the evicted
  /// entry.
  PushOutcome TryPush(int priority, std::shared_ptr<void> payload,
                      uint64_t* id, Entry* displaced);

  /// Blocks until an entry is available (returns true) or the queue is shut
  /// down and empty (returns false).
  bool WaitPop(Entry* out);

  /// Non-blocking pop; false when empty.
  bool TryPop(Entry* out);

  /// Claims a specific queued entry. Returns false when it was already
  /// popped, removed, or displaced.
  bool TryRemove(uint64_t id, Entry* out);

  /// Removes and returns every queued entry (highest priority first).
  std::vector<Entry> Drain();

  void Shutdown();
  bool shut_down() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  // Both selection rules in one scan; see the definition.
  size_t BestIndex(bool top) const MLCORE_REQUIRES(mu_);
  // Index of the entry WaitPop would return next, or entries_.size().
  size_t TopIndex() const MLCORE_REQUIRES(mu_);
  // Index of the displacement victim (lowest priority, youngest within it).
  size_t BottomIndex() const MLCORE_REQUIRES(mu_);

  const size_t capacity_;
  mutable util::Mutex mu_{util::lock_rank::kTaskQueue,
                          "PriorityTaskQueue::mu_"};
  util::CondVar ready_;
  // Unordered; selection scans (small, bounded).
  std::vector<Entry> entries_ MLCORE_GUARDED_BY(mu_);
  uint64_t next_id_ MLCORE_GUARDED_BY(mu_) = 1;
  bool shutdown_ MLCORE_GUARDED_BY(mu_) = false;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_THREAD_POOL_H_
