#include "util/thread_pool.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace mlcore {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch(int worker) {
  while (true) {
    int64_t item;
    const std::function<void(int, int64_t)>* fn;
    {
      util::MutexLock lock(mu_);
      if (next_ >= count_) break;
      item = next_++;
      fn = fn_;  // non-null while unclaimed items remain
    }
    (*fn)(worker, item);
    bool finished;
    {
      util::MutexLock lock(mu_);
      finished = ++done_ == count_;
    }
    if (finished) batch_done_.NotifyOne();
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      util::MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) {
        work_ready_.Wait(mu_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunBatch(worker);
  }
}

PriorityTaskQueue::PriorityTaskQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

// The one ordering rule, both polarities: `top` selects the entry WaitPop
// serves next (highest priority, oldest within it), `!top` the
// displacement victim (lowest priority, youngest within it).
size_t PriorityTaskQueue::BestIndex(bool top) const {
  size_t best = entries_.size();
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (best == entries_.size()) {
      best = i;
      continue;
    }
    const Entry& a = entries_[i];
    const Entry& b = entries_[best];
    const bool wins = a.priority != b.priority
                          ? (a.priority > b.priority) == top
                          : (a.id < b.id) == top;
    if (wins) best = i;
  }
  return best;
}

size_t PriorityTaskQueue::TopIndex() const { return BestIndex(true); }

size_t PriorityTaskQueue::BottomIndex() const { return BestIndex(false); }

PriorityTaskQueue::PushOutcome PriorityTaskQueue::TryPush(
    int priority, std::shared_ptr<void> payload, uint64_t* id,
    Entry* displaced) {
  PushOutcome outcome = PushOutcome::kAccepted;
  {
    util::MutexLock lock(mu_);
    if (shutdown_) return PushOutcome::kRejected;
    if (entries_.size() >= capacity_) {
      const size_t victim = BottomIndex();
      if (entries_[victim].priority >= priority) {
        return PushOutcome::kRejected;
      }
      *displaced = std::move(entries_[victim]);
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
      outcome = PushOutcome::kAcceptedDisplacing;
    }
    Entry entry;
    entry.priority = priority;
    entry.id = next_id_++;
    entry.payload = std::move(payload);
    *id = entry.id;
    entries_.push_back(std::move(entry));
  }
  ready_.NotifyOne();
  return outcome;
}

bool PriorityTaskQueue::WaitPop(Entry* out) {
  util::MutexLock lock(mu_);
  while (!shutdown_ && entries_.empty()) ready_.Wait(mu_);
  if (entries_.empty()) return false;
  const size_t top = TopIndex();
  *out = std::move(entries_[top]);
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(top));
  return true;
}

bool PriorityTaskQueue::TryPop(Entry* out) {
  util::MutexLock lock(mu_);
  if (entries_.empty()) return false;
  const size_t top = TopIndex();
  *out = std::move(entries_[top]);
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(top));
  return true;
}

bool PriorityTaskQueue::TryRemove(uint64_t id, Entry* out) {
  util::MutexLock lock(mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      *out = std::move(entries_[i]);
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::vector<PriorityTaskQueue::Entry> PriorityTaskQueue::Drain() {
  util::MutexLock lock(mu_);
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.id < b.id;
            });
  std::vector<Entry> drained = std::move(entries_);
  entries_.clear();
  return drained;
}

void PriorityTaskQueue::Shutdown() {
  {
    util::MutexLock lock(mu_);
    shutdown_ = true;
  }
  ready_.NotifyAll();
}

bool PriorityTaskQueue::shut_down() const {
  util::MutexLock lock(mu_);
  return shutdown_;
}

size_t PriorityTaskQueue::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int, int64_t)>& fn) {
  if (count <= 0) return;
  if (num_threads_ == 1 || count == 1) {
    // Sequential fast path: no locking, same per-item semantics.
    for (int64_t item = 0; item < count; ++item) fn(0, item);
    return;
  }
  {
    util::MutexLock lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    done_ = 0;
    ++generation_;
  }
  work_ready_.NotifyAll();
  RunBatch(/*worker=*/0);
  util::MutexLock lock(mu_);
  while (done_ != count_) batch_done_.Wait(mu_);
  fn_ = nullptr;
}

}  // namespace mlcore
