#include "util/thread_pool.h"

#include <algorithm>

namespace mlcore {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch(int worker) {
  while (true) {
    int64_t item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= count_) break;
      item = next_++;
    }
    (*fn_)(worker, item);
    bool finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished = ++done_ == count_;
    }
    if (finished) batch_done_.notify_one();
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunBatch(worker);
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int, int64_t)>& fn) {
  if (count <= 0) return;
  if (num_threads_ == 1 || count == 1) {
    // Sequential fast path: no locking, same per-item semantics.
    for (int64_t item = 0; item < count; ++item) fn(0, item);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    done_ = 0;
    ++generation_;
  }
  work_ready_.notify_all();
  RunBatch(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [&] { return done_ == count_; });
  fn_ = nullptr;
}

}  // namespace mlcore
