#ifndef MLCORE_UTIL_RNG_H_
#define MLCORE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace mlcore {

/// Deterministic pseudo-random generator used throughout the library.
///
/// All synthetic datasets and randomized tests draw from this wrapper with a
/// fixed seed so that every build reproduces byte-identical graphs and hence
/// comparable benchmark output.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric-ish skewed pick in [0, n): heavier mass on small values.
  /// Used by the generators to produce heavy-tailed degree sequences.
  int64_t SkewedIndex(int64_t n, double alpha) {
    // Inverse-transform sampling of a truncated Pareto-like distribution.
    double u = UniformReal();
    double x = (1.0 - u);
    double idx = static_cast<double>(n) * (1.0 - std::pow(x, alpha));
    auto i = static_cast<int64_t>(idx);
    if (i < 0) i = 0;
    if (i >= n) i = n - 1;
    return i;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_RNG_H_
