#ifndef MLCORE_UTIL_THREAD_ANNOTATIONS_H_
#define MLCORE_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (DESIGN.md §11).
//
// Every locking invariant in this codebase — which mutex guards which
// member, which helpers require a lock already held, acquisition order —
// is declared with these macros so Clang's `-Wthread-safety` analysis
// checks the contracts at compile time (`-Werror=thread-safety` in the
// Clang build, so a violation fails the build). Under compilers without
// the attributes (GCC) the macros expand to nothing; the annotated code
// compiles identically.
//
// The annotated `util::Mutex` / `util::MutexLock` / `util::CondVar`
// wrappers live in util/mutex.h. Naked `std::mutex` is banned outside
// that layer (scripts/lint.py enforces it): a mutex the analysis cannot
// see is a contract it cannot check.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MLCORE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef MLCORE_THREAD_ANNOTATION_
#define MLCORE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex class).
#define MLCORE_CAPABILITY(x) MLCORE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define MLCORE_SCOPED_CAPABILITY MLCORE_THREAD_ANNOTATION_(scoped_lockable)

/// Member is readable/writable only while holding the given mutex(es).
#define MLCORE_GUARDED_BY(x) MLCORE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee is guarded by the given mutex (the pointer itself is not).
#define MLCORE_PT_GUARDED_BY(x) MLCORE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares static acquisition order between mutexes.
#define MLCORE_ACQUIRED_BEFORE(...) \
  MLCORE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MLCORE_ACQUIRED_AFTER(...) \
  MLCORE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held on entry (and does not
/// release it). This is the annotation for `*_locked()` helpers.
#define MLCORE_REQUIRES(...) \
  MLCORE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MLCORE_REQUIRES_SHARED(...) \
  MLCORE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define MLCORE_ACQUIRE(...) \
  MLCORE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MLCORE_ACQUIRE_SHARED(...) \
  MLCORE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define MLCORE_RELEASE(...) \
  MLCORE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MLCORE_RELEASE_SHARED(...) \
  MLCORE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it iff the return value equals
/// the first argument.
#define MLCORE_TRY_ACQUIRE(...) \
  MLCORE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy declaration).
#define MLCORE_EXCLUDES(...) MLCORE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis level) that the capability is held.
#define MLCORE_ASSERT_CAPABILITY(x) \
  MLCORE_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define MLCORE_RETURN_CAPABILITY(x) MLCORE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is correct by a contract the
/// analysis cannot express (ownership-passing locks, single-driver reads).
/// Every use must carry a comment citing the contract.
#define MLCORE_NO_THREAD_SAFETY_ANALYSIS \
  MLCORE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MLCORE_UTIL_THREAD_ANNOTATIONS_H_
