#include "util/timing.h"

#include <cstdio>

namespace mlcore {

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    int minutes = static_cast<int>(seconds) / 60;
    int rem = static_cast<int>(seconds) % 60;
    std::snprintf(buf, sizeof(buf), "%dm%02ds", minutes, rem);
  }
  return buf;
}

}  // namespace mlcore
