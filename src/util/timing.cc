#include "util/timing.h"

#include <cstdio>
#include <ctime>

namespace mlcore {

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    // Sub-millisecond tier: preprocess-cache hits land here (~0.03ms) and
    // used to round to "0ms".
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    int minutes = static_cast<int>(seconds) / 60;
    int rem = static_cast<int>(seconds) % 60;
    std::snprintf(buf, sizeof(buf), "%dm%02ds", minutes, rem);
  }
  return buf;
}

#if defined(CLOCK_THREAD_CPUTIME_ID)

bool ThreadCpuTimer::Supported() { return true; }

double ThreadCpuTimer::Now() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return -1.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

#else

bool ThreadCpuTimer::Supported() { return false; }
double ThreadCpuTimer::Now() { return -1.0; }

#endif

}  // namespace mlcore
