#ifndef MLCORE_UTIL_MUTEX_H_
#define MLCORE_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

// Annotated mutex wrappers (DESIGN.md §11).
//
// `util::Mutex` wraps `std::mutex` as a Clang thread-safety *capability*
// so `MLCORE_GUARDED_BY` / `MLCORE_REQUIRES` contracts are machine-checked
// in the Clang build. In release builds the wrapper is a zero-overhead
// pass-through. When MLCORE_LOCK_DEBUG_ENABLED is 1 (debug or sanitized
// builds, or -DMLCORE_LOCK_DEBUG=1) each thread additionally records its
// acquisition stack and every blocking acquisition asserts the documented
// lock hierarchy below — a lock-order inversion aborts deterministically
// at the first out-of-rank acquisition instead of deadlocking on a racy
// interleaving.
//
// All long-lived mutexes in src/ are constructed with a rank from
// `lock_rank` (the single authoritative ordering table; DESIGN.md §11
// mirrors it). Rule: a thread may block on a ranked mutex only while
// every ranked mutex it already holds has a strictly smaller rank.
// Unranked mutexes (default constructor — tests, scratch use) are exempt
// from rank checks but still detect recursive self-acquisition.

#if defined(MLCORE_LOCK_DEBUG) || !defined(NDEBUG)
#define MLCORE_LOCK_DEBUG_ENABLED 1
#else
#define MLCORE_LOCK_DEBUG_ENABLED 0
#endif

namespace mlcore {
namespace util {

// Acquisition order for every long-lived mutex in the repo, outermost
// first. A thread must acquire strictly increasing ranks. Gaps are left
// for future subsystems (ROADMAP items 3–4: network front-end shards,
// partition coordinators) to slot in without renumbering.
namespace lock_rank {
inline constexpr int kEnginePool = 100;      // Engine::pool_mu_
inline constexpr int kStoreWriter = 150;     // GraphStore::update_mu_
inline constexpr int kStoreListeners = 200;  // GraphStore::listeners_mu_
inline constexpr int kEngineSubs = 250;      // Engine::subs_mu_
inline constexpr int kSubscription = 300;    // SubscriptionState::mu
inline constexpr int kQueryEntry = 310;      // QueryEntry::mu
inline constexpr int kQuerySeeds = 320;      // QueryEntry::seeds_mu
inline constexpr int kWorkerSolvers = 330;   // WorkerSolvers::mu_
inline constexpr int kSolverPool = 350;      // Engine::solver_mu_
inline constexpr int kStoreSnapshot = 400;   // GraphStore::snapshot_mu_
inline constexpr int kEngineCache = 450;     // Engine::cache_mu_
inline constexpr int kStoreStats = 500;      // GraphStore::stats_mu_
inline constexpr int kThreadPool = 510;      // ThreadPool::mu_
inline constexpr int kTaskLane = 520;        // TaskGroup::Lane::mu
inline constexpr int kTaskPark = 530;        // TaskGroup::park_mu_
inline constexpr int kTaskQueue = 540;       // PriorityTaskQueue::mu_
inline constexpr int kQueryTask = 550;       // QueryTask::mu
inline constexpr int kTopK = 560;            // ConcurrentTopK::mu_
inline constexpr int kObsSlowLog = 570;      // obs::SlowQueryLog::mu_
inline constexpr int kObsRegistry = 580;     // obs::Registry::mu_
}  // namespace lock_rank

class CondVar;

class MLCORE_CAPABILITY("mutex") Mutex {
 public:
  // True when the debug acquisition-stack / rank checker is compiled in.
  static constexpr bool kRankCheckingEnabled = MLCORE_LOCK_DEBUG_ENABLED != 0;

  Mutex() noexcept = default;  // unranked: exempt from hierarchy checks

#if MLCORE_LOCK_DEBUG_ENABLED
  Mutex(int rank, const char* name) noexcept : rank_(rank), name_(name) {}
#else
  Mutex(int, const char*) noexcept {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MLCORE_ACQUIRE() {
#if MLCORE_LOCK_DEBUG_ENABLED
    DebugCheckBeforeLock();
#endif
    mu_.lock();
#if MLCORE_LOCK_DEBUG_ENABLED
    DebugPushHeld();
#endif
  }

  // Never blocks, so it carries no rank precondition; a successful
  // acquisition is still recorded on the debug acquisition stack.
  bool TryLock() MLCORE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if MLCORE_LOCK_DEBUG_ENABLED
    DebugPushHeld();
#endif
    return true;
  }

  void Unlock() MLCORE_RELEASE() {
#if MLCORE_LOCK_DEBUG_ENABLED
    DebugPopHeld();
#endif
    mu_.unlock();
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if MLCORE_LOCK_DEBUG_ENABLED
  // Asserts (and aborts on failure) that blocking on this mutex respects
  // the rank order and is not a recursive self-acquisition. Runs BEFORE
  // std::mutex::lock so a violation fails loudly instead of deadlocking.
  void DebugCheckBeforeLock() const;
  void DebugPushHeld() const;
  void DebugPopHeld() const;

  int rank_ = -1;  // -1 = unranked
  const char* name_ = "<unranked>";
#endif
};

// RAII lock. Scoped-capability annotated and relockable (Unlock/Lock),
// mirroring the MutexLocker pattern from the Clang TSA documentation.
class MLCORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MLCORE_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }

  ~MutexLock() MLCORE_RELEASE() {
    if (held_) mu_.Unlock();
  }

  // Temporarily release / re-acquire within the scope.
  void Unlock() MLCORE_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() MLCORE_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

struct TryToLockT {
  explicit TryToLockT() = default;
};
inline constexpr TryToLockT kTryToLock{};

// Movable lock handle for ownership-passing patterns (e.g. Engine hands
// the acquired pool lock into RunValidated by value). Thread-safety
// analysis cannot track capabilities across moves, so this type is
// deliberately opaque to it (NO_THREAD_SAFETY_ANALYSIS): never use it
// for mutexes with MLCORE_GUARDED_BY members — use Mutex/MutexLock so
// the guards stay checkable.
class UniqueLock {
 public:
  UniqueLock() noexcept = default;

  // Single-driver contract: blocks until acquired.
  explicit UniqueLock(Mutex& mu) MLCORE_NO_THREAD_SAFETY_ANALYSIS
      : mu_(&mu), owns_(true) {
    mu.Lock();
  }

  // Non-blocking attempt; OwnsLock() reports the outcome.
  UniqueLock(Mutex& mu, TryToLockT) MLCORE_NO_THREAD_SAFETY_ANALYSIS
      : mu_(&mu), owns_(mu.TryLock()) {}

  UniqueLock(UniqueLock&& other) noexcept
      : mu_(other.mu_), owns_(other.owns_) {
    other.mu_ = nullptr;
    other.owns_ = false;
  }

  UniqueLock& operator=(UniqueLock&& other) MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      if (owns_) mu_->Unlock();
      mu_ = other.mu_;
      owns_ = other.owns_;
      other.mu_ = nullptr;
      other.owns_ = false;
    }
    return *this;
  }

  ~UniqueLock() MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    if (owns_) mu_->Unlock();
  }

  void Unlock() MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    mu_->Unlock();
    owns_ = false;
  }

  bool OwnsLock() const noexcept { return owns_; }
  explicit operator bool() const noexcept { return owns_; }

 private:
  Mutex* mu_ = nullptr;
  bool owns_ = false;
};

// Condition variable paired with util::Mutex. Waits keep the debug
// acquisition stack honest (the mutex is popped for the duration of the
// wait and re-checked on re-acquisition).
//
// Deliberately no predicate overload: a predicate lambda is analyzed as
// a separate function by TSA and cannot see the caller's lock, so
// guarded reads inside it would defeat the checks. Write the loop at the
// call site instead:   while (!cond) cv.Wait(mu);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) MLCORE_REQUIRES(mu);
  std::cv_status WaitFor(Mutex& mu, std::chrono::nanoseconds rel_time)
      MLCORE_REQUIRES(mu);

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace util
}  // namespace mlcore

#endif  // MLCORE_UTIL_MUTEX_H_
