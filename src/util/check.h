#ifndef MLCORE_UTIL_CHECK_H_
#define MLCORE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// MLCORE_CHECK is always on (also in release builds): the DCCS algorithms
// rely on nontrivial invariants (coverage bookkeeping, pruning bounds) whose
// violation should abort loudly rather than silently corrupt results.
// MLCORE_DCHECK compiles away in NDEBUG builds and is used on hot paths.

#define MLCORE_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define MLCORE_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define MLCORE_DCHECK(cond) \
  do {                      \
  } while (0)
#define MLCORE_DCHECK_MSG(cond, msg) \
  do {                               \
  } while (0)
#else
#define MLCORE_DCHECK(cond) MLCORE_CHECK(cond)
#define MLCORE_DCHECK_MSG(cond, msg) MLCORE_CHECK_MSG(cond, msg)
#endif

#endif  // MLCORE_UTIL_CHECK_H_
