#ifndef MLCORE_UTIL_FLAGS_H_
#define MLCORE_UTIL_FLAGS_H_

#include <map>
#include <string>

namespace mlcore {

/// Tiny `--key=value` command-line parser for the examples and benchmark
/// binaries. Not a general flags library; supports exactly the `--k=10`
/// and `--quick` (boolean) forms the harness needs.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Returns the flag value or `def` when absent.
  std::string GetString(const std::string& key, const std::string& def) const;
  long long GetInt(const std::string& key, long long def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  bool Has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_FLAGS_H_
