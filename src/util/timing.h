#ifndef MLCORE_UTIL_TIMING_H_
#define MLCORE_UTIL_TIMING_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace mlcore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / the last Restart, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Measures the
/// CPU seconds consumed by the *calling* thread only, so Restart() and
/// Seconds() must run on the same thread — obs::Span keeps that invariant
/// by being strictly scope-local. On platforms without a thread CPU clock
/// Supported() is false and Seconds() returns -1 (callers render it as
/// "unavailable" rather than 0, which would read as free).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }

  void Restart() { start_ = Now(); }

  /// CPU seconds this thread consumed since construction / the last
  /// Restart, or -1 when unsupported.
  double Seconds() const {
    const double now = Now();
    return (now < 0 || start_ < 0) ? -1.0 : now - start_;
  }

  double Millis() const {
    const double s = Seconds();
    return s < 0 ? -1.0 : s * 1e3;
  }

  static bool Supported();

 private:
  static double Now();  // -1 when unsupported
  double start_ = -1.0;
};

/// Formats a duration in seconds as a short human-readable string
/// ("31us", "312ms", "4.21s", "2m31s").
std::string FormatSeconds(double seconds);

}  // namespace mlcore

#endif  // MLCORE_UTIL_TIMING_H_
