#ifndef MLCORE_UTIL_TIMING_H_
#define MLCORE_UTIL_TIMING_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace mlcore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / the last Restart, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds as a short human-readable string
/// ("312ms", "4.21s", "2m31s").
std::string FormatSeconds(double seconds);

}  // namespace mlcore

#endif  // MLCORE_UTIL_TIMING_H_
