#include "util/task_group.h"

#include <algorithm>
#include <utility>

namespace mlcore {

TaskGroup::TaskGroup(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  lanes_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskGroup::~TaskGroup() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Pairs with the predicate check in WorkerLoop: once this lock is
    // held, every lane has either observed shutdown or is parked and will
    // be woken below.
    util::MutexLock lock(park_mu_);
  }
  park_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Never-started tasks die with the lanes, closures unexecuted.
}

void TaskGroup::Spawn(int worker, Task task) {
  Lane& lane = *lanes_[static_cast<size_t>(worker)];
  {
    util::MutexLock lock(lane.mu);
    lane.tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Without this fence a lane could check the (old) count, decide to
    // park, and miss the notify below.
    util::MutexLock lock(park_mu_);
  }
  park_cv_.NotifyOne();
}

bool TaskGroup::Pop(int lane_index, bool oldest_first, Task* out) {
  Lane& lane = *lanes_[static_cast<size_t>(lane_index)];
  util::MutexLock lock(lane.mu);
  if (lane.tasks.empty()) return false;
  if (oldest_first) {
    *out = std::move(lane.tasks.front());
    lane.tasks.pop_front();
  } else {
    *out = std::move(lane.tasks.back());
    lane.tasks.pop_back();
  }
  return true;
}

bool TaskGroup::TryRunOne(int worker) {
  if (queued_.load(std::memory_order_acquire) == 0) return false;
  Task task;
  bool found = Pop(worker, /*oldest_first=*/false, &task);
  for (int i = 1; !found && i < num_threads_; ++i) {
    found = Pop((worker + i) % num_threads_, /*oldest_first=*/true, &task);
  }
  if (!found) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task(worker);
  return true;
}

void TaskGroup::WorkerLoop(int worker) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (TryRunOne(worker)) continue;
    util::MutexLock lock(park_mu_);
    while (!shutdown_.load(std::memory_order_acquire) &&
           queued_.load(std::memory_order_acquire) == 0) {
      park_cv_.Wait(park_mu_);
    }
  }
}

}  // namespace mlcore
