#ifndef MLCORE_UTIL_BITSET_H_
#define MLCORE_UTIL_BITSET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mlcore {

/// Fixed-capacity dynamic bitset with word-level set operations.
///
/// Used pervasively as the membership-test companion of sorted vertex-id
/// vectors: algorithms keep vertex subsets as sorted `std::vector<int>` for
/// iteration and as a `Bitset` for O(1) membership and O(n/64) intersection.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  void Resize(size_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  /// Grows capacity to `n` bits, preserving existing bits (the dynamic
  /// graph store appends vertices without disturbing core membership).
  /// `n` must be >= size().
  void GrowTo(size_t n) {
    MLCORE_DCHECK(n >= n_);
    n_ = n;
    words_.resize((n + 63) / 64, 0);
  }

  size_t size() const { return n_; }

  void Set(size_t i) {
    MLCORE_DCHECK(i < n_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Clear(size_t i) {
    MLCORE_DCHECK(i < n_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    MLCORE_DCHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Reset() { std::fill(words_.begin(), words_.end(), uint64_t{0}); }

  /// Sets every bit in [0, size()).
  void SetAll() {
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    TrimTail();
  }

  /// this &= other. Both bitsets must have the same size.
  void IntersectWith(const Bitset& other) {
    MLCORE_DCHECK(n_ == other.n_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }

  /// this |= other. Both bitsets must have the same size.
  void UnionWith(const Bitset& other) {
    MLCORE_DCHECK(n_ == other.n_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Extracts the sorted list of set positions.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(Count());
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int b = __builtin_ctzll(bits);
        out.push_back(static_cast<int>(w * 64 + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
    return out;
  }

 private:
  void TrimTail() {
    size_t tail = n_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_BITSET_H_
