#include "util/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

namespace mlcore {
namespace util {

#if MLCORE_LOCK_DEBUG_ENABLED

namespace {

struct HeldEntry {
  const Mutex* mu;
  int rank;
  const char* name;
};

// Per-thread acquisition stack, outermost first. Ranked and unranked
// mutexes are both recorded (unranked for recursion detection); only
// ranked ones participate in hierarchy checks.
thread_local std::vector<HeldEntry> tls_held;

[[noreturn]] void LockFatal(const char* what, const char* acquiring_name,
                            int acquiring_rank) {
  std::fprintf(stderr, "[mlcore/mutex] FATAL: %s: acquiring %s (rank %d)\n",
               what, acquiring_name, acquiring_rank);
  std::fprintf(stderr, "  held by this thread (outermost first):\n");
  for (const HeldEntry& e : tls_held) {
    std::fprintf(stderr, "    %s (rank %d)\n", e.name, e.rank);
  }
  std::abort();
}

}  // namespace

void Mutex::DebugCheckBeforeLock() const {
  int max_held_rank = -1;
  const char* max_held_name = nullptr;
  for (const HeldEntry& e : tls_held) {
    if (e.mu == this) {
      LockFatal("recursive acquisition (self-deadlock)", name_, rank_);
    }
    if (e.rank >= 0 && e.rank >= max_held_rank) {
      max_held_rank = e.rank;
      max_held_name = e.name;
    }
  }
  if (rank_ >= 0 && max_held_rank >= 0 && max_held_rank >= rank_) {
    std::fprintf(stderr,
                 "[mlcore/mutex] conflicting lock: %s (rank %d) held\n",
                 max_held_name, max_held_rank);
    LockFatal("lock hierarchy violation", name_, rank_);
  }
}

void Mutex::DebugPushHeld() const {
  tls_held.push_back(HeldEntry{this, rank_, name_});
}

void Mutex::DebugPopHeld() const {
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->mu == this) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  LockFatal("unlock of a mutex this thread does not hold", name_, rank_);
}

#endif  // MLCORE_LOCK_DEBUG_ENABLED

// Ownership dance: std::condition_variable wants a std::unique_lock, so
// adopt the already-held native mutex for the wait and release the
// unique_lock before it can unlock in its destructor — the caller keeps
// ownership throughout, exactly as MLCORE_REQUIRES(mu) declares.
void CondVar::Wait(Mutex& mu) {
#if MLCORE_LOCK_DEBUG_ENABLED
  mu.DebugPopHeld();  // the wait releases mu until the thread wakes
#endif
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
#if MLCORE_LOCK_DEBUG_ENABLED
  // Re-acquired with the same outer locks held: re-validate and re-push.
  mu.DebugCheckBeforeLock();
  mu.DebugPushHeld();
#endif
}

std::cv_status CondVar::WaitFor(Mutex& mu, std::chrono::nanoseconds rel_time) {
#if MLCORE_LOCK_DEBUG_ENABLED
  mu.DebugPopHeld();
#endif
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_for(native, rel_time);
  native.release();
#if MLCORE_LOCK_DEBUG_ENABLED
  mu.DebugCheckBeforeLock();
  mu.DebugPushHeld();
#endif
  return status;
}

}  // namespace util
}  // namespace mlcore
