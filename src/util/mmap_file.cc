#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mlcore::util {

Status MmapFile::Open(const std::string& path, MmapFile* out) {
  out->Reset();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::InvalidArgument("cannot stat " + path + ": " +
                                   std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + ": not a regular file");
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(len = 0) is EINVAL; an empty file is a valid (empty) mapping.
    ::close(fd);
    return Status::Ok();
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  // The mapping outlives the descriptor; POSIX keeps the pages valid.
  ::close(fd);
  if (data == MAP_FAILED) {
    return Status::InvalidArgument("cannot mmap " + path + ": " +
                                   std::strerror(err));
  }
  out->data_ = data;
  out->size_ = size;
  return Status::Ok();
}

void MmapFile::Reset() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace mlcore::util
