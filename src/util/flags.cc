#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace mlcore {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

long long Flags::GetInt(const std::string& key, long long def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::atoll(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

}  // namespace mlcore
