#ifndef MLCORE_UTIL_TASK_GROUP_H_
#define MLCORE_UTIL_TASK_GROUP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mlcore {

/// Work-stealing fork/join scope for the speculative child-evaluation tasks
/// of the parallel BU-/TD-DCCS lattice searches (DESIGN.md §10).
///
/// The group owns `num_threads - 1` worker lanes plus the constructing
/// (driver) thread as lane 0. Each lane has a LIFO deque: owners pop from
/// the back, thieves pop from the front, so the oldest spawned task is
/// stolen first — tasks are consumed roughly in spawn order, which the
/// searches arrange to match their deterministic commit order.
///
/// Tasks are *speculative*: whether a task's output is used is decided
/// elsewhere (by the search's sequential commit driver), so the group makes
/// no completion promises per task. Instead, callers encode claiming in the
/// task body (compare-and-swap on a per-slot state), which also lets the
/// driver run an unclaimed task inline — at one thread the entire search
/// degenerates to the historical sequential execution.
///
/// Lifetime contract: the destructor discards tasks that never started
/// (their closures are destroyed unexecuted), waits for in-flight tasks to
/// finish, and joins the lanes. Everything a task closure references must
/// therefore outlive the group, which the searches guarantee by declaring
/// the group as their last member.
class TaskGroup {
 public:
  using Task = std::function<void(int worker)>;

  /// `num_threads` is the total lane count including the driver; values
  /// < 1 are clamped to 1 (no worker threads are spawned, Spawn still
  /// enqueues and TryRunOne still drains).
  explicit TaskGroup(int num_threads);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues `task` on `worker`'s deque (the spawning lane; the searches
  /// spawn from the driver, lane 0). Thread-safe.
  void Spawn(int worker, Task task);

  /// Runs one queued task on the calling thread — own deque first (LIFO),
  /// then steals the oldest task from another lane. Returns false when no
  /// task was available. `worker` must be the calling thread's lane; the
  /// driver passes 0 to help while it waits on a specific slot.
  bool TryRunOne(int worker);

 private:
  struct Lane {
    // All lanes share one rank: a thread holds at most one lane mutex at a
    // time (Pop releases before the task runs), so lane mutexes never nest.
    util::Mutex mu{util::lock_rank::kTaskLane, "TaskGroup::Lane::mu"};
    std::deque<Task> tasks MLCORE_GUARDED_BY(mu);
  };

  void WorkerLoop(int worker);
  bool Pop(int lane, bool oldest_first, Task* out);

  const int num_threads_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<int64_t> queued_{0};
  std::atomic<bool> shutdown_{false};

  // Parking only; the guarded state is the two atomics above, re-checked
  // under this mutex so a parking lane cannot miss a wakeup.
  util::Mutex park_mu_{util::lock_rank::kTaskPark, "TaskGroup::park_mu_"};
  util::CondVar park_cv_;

  std::vector<std::thread> workers_;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_TASK_GROUP_H_
