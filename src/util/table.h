#ifndef MLCORE_UTIL_TABLE_H_
#define MLCORE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace mlcore {

/// Minimal fixed-column text table used by the benchmark harness to print
/// the rows/series reported by the paper's figures and tables.
///
/// Usage:
///   Table t({"s", "GD-DCCS (s)", "BU-DCCS (s)"});
///   t.AddRow({"1", "0.42", "0.05"});
///   t.Print();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to stdout.
  void Print() const;

  /// Renders the table as comma-separated values (for scripting).
  std::string ToCsv() const;

  /// Convenience numeric formatting helpers.
  static std::string Num(double v, int precision = 3);
  static std::string Int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlcore

#endif  // MLCORE_UTIL_TABLE_H_
