#include "dccs/exact.h"

#include <algorithm>

#include "core/fds.h"
#include "util/bitset.h"
#include "util/timing.h"

namespace mlcore {

namespace {

void Recurse(const std::vector<CandidateCore>& candidates, size_t first,
             int remaining, std::vector<size_t>& chosen, Bitset& covered,
             std::vector<size_t>& best, int64_t& best_cover,
             int64_t current_cover) {
  if (remaining == 0 || first == candidates.size()) {
    if (current_cover > best_cover) {
      best_cover = current_cover;
      best = chosen;
    }
    return;
  }
  // Upper bound: even taking everything cannot be checked cheaply, so this
  // is plain exhaustive search — fine for the test-sized inputs it serves.
  for (size_t c = first; c < candidates.size(); ++c) {
    chosen.push_back(c);
    std::vector<VertexId> newly;
    for (VertexId v : candidates[c].vertices) {
      if (!covered.Test(static_cast<size_t>(v))) {
        covered.Set(static_cast<size_t>(v));
        newly.push_back(v);
      }
    }
    Recurse(candidates, c + 1, remaining - 1, chosen, covered, best,
            best_cover, current_cover + static_cast<int64_t>(newly.size()));
    for (VertexId v : newly) covered.Clear(static_cast<size_t>(v));
    chosen.pop_back();
  }
}

}  // namespace

DccsResult ExactDccs(const MultiLayerGraph& graph, const DccsParams& params) {
  WallTimer timer;
  DccsResult result;
  if (params.s > graph.NumLayers()) {
    result.stats.total_seconds = timer.Seconds();
    return result;
  }

  std::vector<CandidateCore> candidates =
      EnumerateFds(graph, params.d, params.s);
  // Drop empty candidates; they can never contribute coverage.
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [](const CandidateCore& c) {
                                    return c.vertices.empty();
                                  }),
                   candidates.end());
  result.stats.candidates_generated =
      static_cast<int64_t>(candidates.size());

  Bitset covered(static_cast<size_t>(graph.NumVertices()));
  std::vector<size_t> chosen, best;
  int64_t best_cover = -1;
  Recurse(candidates, 0, params.k, chosen, covered, best, best_cover, 0);

  for (size_t c : best) {
    result.cores.push_back(
        ResultCore{candidates[c].layers, candidates[c].vertices});
  }
  result.stats.total_seconds = timer.Seconds();
  result.stats.search_seconds = result.stats.total_seconds;
  return result;
}

}  // namespace mlcore
