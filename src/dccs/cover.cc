#include "dccs/cover.h"

#include <algorithm>

#include "util/check.h"

namespace mlcore {

VertexSet CoverOf(const std::vector<ResultCore>& cores) {
  VertexSet cover;
  for (const ResultCore& core : cores) {
    cover = UnionSorted(cover, core.vertices);
  }
  return cover;
}

CoverageIndex::CoverageIndex(int k) : k_(k) {
  MLCORE_DCHECK(k >= 1);  // Engine::Validate guarantees k >= 1
  entries_.reserve(static_cast<size_t>(k));
  exclusive_.reserve(static_cast<size_t>(k));
}

int CoverageIndex::MinExclusiveSlot() const {
  MLCORE_DCHECK(!entries_.empty());  // hot pruning path
  // Ties on |Δ| are broken by the lexicographically smallest layer set so
  // that the chosen victim C*(R) does not depend on internal slot order
  // (slots are permuted by Delete's swap-with-last compaction).
  int best = 0;
  for (int slot = 1; slot < size(); ++slot) {
    const int64_t delta = exclusive_[static_cast<size_t>(slot)];
    const int64_t best_delta = exclusive_[static_cast<size_t>(best)];
    if (delta < best_delta ||
        (delta == best_delta && entries_[static_cast<size_t>(slot)].layers <
                                    entries_[static_cast<size_t>(best)].layers)) {
      best = slot;
    }
  }
  return best;
}

int64_t CoverageIndex::MinExclusiveSize() const {
  if (entries_.empty()) return 0;
  return exclusive_[static_cast<size_t>(MinExclusiveSlot())];
}

int64_t CoverageIndex::SizeWithReplacement(const VertexSet& candidate) const {
  // Appendix C, Size(R, C): decompose Cov((R − {C*}) ∪ {C}) into
  // Cov(R − {C*}), C − Cov(R), and C ∩ Δ(R, C*).
  MLCORE_DCHECK(!entries_.empty());  // hot pruning path
  const int star = MinExclusiveSlot();
  int64_t count = 0;
  for (VertexId v : candidate) {
    auto it = owners_.find(v);
    if (it == owners_.end()) {
      ++count;  // v ∈ C − Cov(R)
    } else if (it->second.size() == 1 && it->second[0] == star) {
      ++count;  // v ∈ C ∩ Δ(R, C*)
    }
  }
  return count + cover_size_ - exclusive_[static_cast<size_t>(star)];
}

int64_t CoverageIndex::MarginalGain(const VertexSet& candidate) const {
  int64_t gain = 0;
  for (VertexId v : candidate) {
    if (owners_.find(v) == owners_.end()) ++gain;
  }
  return gain;
}

bool CoverageIndex::SatisfiesEq1(const VertexSet& candidate) const {
  if (!full()) return true;
  // |Cov((R − {C*}) ∪ {C})| ≥ (1 + 1/k)|Cov(R)|, in exact integer form:
  // k·size ≥ (k + 1)·|Cov(R)|.
  return SizeWithReplacement(candidate) * k_ >= (k_ + 1) * cover_size_;
}

double CoverageIndex::OrderPruneThreshold() const {
  return static_cast<double>(cover_size_) / k_ +
         static_cast<double>(MinExclusiveSize());
}

bool CoverageIndex::BelowOrderThreshold(int64_t upper_bound_size) const {
  // |bound| < |Cov(R)|/k + |Δ(R, C*)|  ⇔  k·|bound| < |Cov| + k·|Δ*|.
  return upper_bound_size * k_ < cover_size_ + k_ * MinExclusiveSize();
}

bool CoverageIndex::SatisfiesEq2(int64_t potential_size) const {
  // |U| < (1/k + 1/k²)|Cov| + (1 + 1/k)|Δ*|
  //  ⇔  k²·|U| < (k + 1)·|Cov| + k(k + 1)·|Δ*|.
  const int64_t k = k_;
  return potential_size * k * k <
         (k + 1) * cover_size_ + k * (k + 1) * MinExclusiveSize();
}

bool CoverageIndex::Update(const VertexSet& candidate, const LayerSet& layers) {
  if (candidate.empty()) return false;
  // R is a subset of F_{d,s}: a layer subset identifies its (unique) d-CC,
  // so a candidate already present must not occupy a second slot.
  for (const ResultCore& entry : entries_) {
    if (entry.layers == layers) return false;
  }
  if (!full()) {  // Rule 1
    Insert(candidate, layers);
    return true;
  }
  // Rule 2
  if (SizeWithReplacement(candidate) * k_ < (k_ + 1) * cover_size_) {
    return false;
  }
  Delete(MinExclusiveSlot());
  Insert(candidate, layers);
  return true;
}

void CoverageIndex::Insert(const VertexSet& candidate, const LayerSet& layers) {
  const int slot = size();
  entries_.push_back(ResultCore{layers, candidate});
  exclusive_.push_back(0);
  for (VertexId v : candidate) {
    auto& slots = owners_[v];
    slots.push_back(slot);
    if (slots.size() == 1) {
      ++cover_size_;
      ++exclusive_[static_cast<size_t>(slot)];
    } else if (slots.size() == 2) {
      // v was exclusive to its previous single owner; it no longer is.
      --exclusive_[static_cast<size_t>(slots[0])];
    }
  }
}

void CoverageIndex::Delete(int slot) {
  MLCORE_DCHECK(slot >= 0 && slot < size());
  const int last = size() - 1;
  // Detach the slot's vertices.
  for (VertexId v : entries_[static_cast<size_t>(slot)].vertices) {
    auto it = owners_.find(v);
    MLCORE_DCHECK(it != owners_.end());
    auto& slots = it->second;
    slots.erase(std::find(slots.begin(), slots.end(), slot));
    if (slots.empty()) {
      owners_.erase(it);
      --cover_size_;
    } else if (slots.size() == 1) {
      ++exclusive_[static_cast<size_t>(slots[0])];
    }
  }
  // Move the last slot into the vacated position to keep slots dense.
  if (slot != last) {
    for (VertexId v : entries_[static_cast<size_t>(last)].vertices) {
      auto& slots = owners_.at(v);
      *std::find(slots.begin(), slots.end(), last) = slot;
    }
    entries_[static_cast<size_t>(slot)] =
        std::move(entries_[static_cast<size_t>(last)]);
    exclusive_[static_cast<size_t>(slot)] =
        exclusive_[static_cast<size_t>(last)];
  }
  entries_.pop_back();
  exclusive_.pop_back();
}

void CoverageIndex::CheckInvariants() const {
  std::unordered_map<VertexId, int> counts;
  std::unordered_map<VertexId, int> sole_owner;
  for (int slot = 0; slot < size(); ++slot) {
    for (VertexId v : entries_[static_cast<size_t>(slot)].vertices) {
      ++counts[v];
      sole_owner[v] = slot;
    }
  }
  // NOLINT(mlcore-release-check): test oracle — aborting IS the point
  MLCORE_CHECK(static_cast<int64_t>(counts.size()) == cover_size_);
  std::vector<int64_t> expected(static_cast<size_t>(size()), 0);
  for (const auto& [v, count] : counts) {
    if (count == 1) ++expected[static_cast<size_t>(sole_owner[v])];
  }
  for (int slot = 0; slot < size(); ++slot) {
    // NOLINT(mlcore-release-check): test oracle
    MLCORE_CHECK(expected[static_cast<size_t>(slot)] ==
                 exclusive_[static_cast<size_t>(slot)]);
  }
  for (const auto& [v, slots] : owners_) {
    // NOLINT(mlcore-release-check): test oracle
    MLCORE_CHECK(counts.at(v) == static_cast<int>(slots.size()));
  }
}

}  // namespace mlcore
