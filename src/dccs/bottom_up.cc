#include "dccs/bottom_up.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "core/dcc.h"
#include "dccs/cover.h"
#include "dccs/preprocess.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {

namespace {

/// DFS state for BU-Gen (paper Fig 3). Layers are addressed by *position*
/// in the sorted layer order (Fig 7 line 9); positions are translated back
/// to original layer ids whenever a dCC is computed or reported.
class BottomUpSearch {
 public:
  BottomUpSearch(const MultiLayerGraph& graph, const DccsParams& params,
                 const PreprocessResult& preprocess,
                 const std::vector<LayerId>& order,
                 const QueryControl* control, DccSolver& solver,
                 CoverageIndex& result, SearchStats& stats)
      : graph_(graph),
        params_(params),
        preprocess_(preprocess),
        order_(order),
        control_(control),
        solver_(solver),
        result_(result),
        stats_(stats) {}

  void Run() {
    LayerSet root;
    Gen(root, preprocess_.active, /*excluded=*/0);
  }

 private:
  // Cooperative checkpoint, polled once per generated child (a
  // subset-lattice node boundary): the anytime time_budget_seconds, plus
  // the injected QueryControl's cancellation/deadline. When any fires the
  // search unwinds; for budget/deadline the temporary top-k set becomes the
  // (anytime) result, for cancellation the caller discards it. Inactive
  // control and zero budget reduce this to two predictable branches.
  bool StopRequested() {
    if (stats_.stopped != QueryStop::kNone) return true;
    return LatchQueryStop(
        CheckQueryStop(control_, params_.time_budget_seconds, timer_),
        &stats_);
  }

  const VertexSet& CoreAtPosition(int pos) const {
    return preprocess_.layer_cores[static_cast<size_t>(
        order_[static_cast<size_t>(pos)])];
  }

  void ToLayerIdsInto(const LayerSet& positions, LayerSet* ids) const {
    PositionsToLayerIds(order_, positions, ids);
  }

  // BU-Gen (Fig 3). `positions` is the node's L (ascending positions),
  // `core` its d-CC, `excluded` the LQ bitmask of Lemma 4 exclusions.
  void Gen(const LayerSet& positions, const VertexSet& core,
           uint64_t excluded) {
    const int l = graph_.NumLayers();
    const int max_pos = positions.empty() ? -1 : positions.back();
    const auto depth = static_cast<int>(positions.size());

    // LP: positions usable to expand L (line 1).
    std::vector<int> expandable;
    for (int j = max_pos + 1; j < l; ++j) {
      if ((excluded >> j) & 1) continue;
      expandable.push_back(j);
    }
    if (expandable.empty()) return;

    struct Child {
      int position;
      VertexSet core;
    };
    std::vector<Child> recurse;  // the LR set with its computed d-CCs
    uint64_t in_lr = 0;

    const bool leaf = depth + 1 == params_.s;
    if (!result_.full()) {
      // Lines 2–9: no pruning is applicable while |R| < k.
      for (int j : expandable) {
        if (StopRequested()) return;
        ++stats_.nodes_visited;
        positions_buf_ = positions;
        positions_buf_.push_back(static_cast<LayerId>(j));
        ToLayerIdsInto(positions_buf_, &ids_buf_);
        IntersectSortedInto(core, CoreAtPosition(j), &scope_buf_);
        solver_.Compute(ids_buf_, params_.d, scope_buf_, &core_buf_,
                        params_.dcc_engine);
        if (leaf) {
          if (result_.Update(core_buf_, ids_buf_)) {
            ++stats_.updates_accepted;
          }
        } else if (!core_buf_.empty()) {
          in_lr |= uint64_t{1} << j;
          recurse.push_back(Child{j, core_buf_});
        }
      }
    } else {
      // Lines 10–22: sort candidates by |C ∩ C^d(G_j)| descending and apply
      // order-based (Lemma 3), Eq. (1) (Lemma 2) and layer (Lemma 4)
      // pruning. The scopes live in a member arena indexed by expandable
      // position and only the index permutation is sorted; the arena is
      // dead by the time the recursion below reuses it.
      const size_t num_scoped = expandable.size();
      if (scope_arena_.size() < num_scoped) scope_arena_.resize(num_scoped);
      scoped_order_.clear();
      for (size_t idx = 0; idx < num_scoped; ++idx) {
        IntersectSortedInto(core, CoreAtPosition(expandable[idx]),
                            &scope_arena_[idx]);
        scoped_order_.push_back(idx);
      }
      std::stable_sort(scoped_order_.begin(), scoped_order_.end(),
                       [&](size_t a, size_t b) {
                         return scope_arena_[a].size() > scope_arena_[b].size();
                       });
      for (size_t rank = 0; rank < num_scoped; ++rank) {
        if (StopRequested()) return;
        const int j = expandable[scoped_order_[rank]];
        const VertexSet& scope = scope_arena_[scoped_order_[rank]];
        if (result_.BelowOrderThreshold(
                static_cast<int64_t>(scope.size()))) {
          // Lemma 3: this and all later children in the order are hopeless.
          stats_.pruned_order += static_cast<int64_t>(num_scoped - rank);
          break;
        }
        ++stats_.nodes_visited;
        positions_buf_ = positions;
        positions_buf_.push_back(static_cast<LayerId>(j));
        ToLayerIdsInto(positions_buf_, &ids_buf_);
        solver_.Compute(ids_buf_, params_.d, scope, &core_buf_,
                        params_.dcc_engine);
        if (leaf) {
          if (result_.Update(core_buf_, ids_buf_)) {
            ++stats_.updates_accepted;
          }
        } else if (!core_buf_.empty() && result_.SatisfiesEq1(core_buf_)) {
          in_lr |= uint64_t{1} << j;
          recurse.push_back(Child{j, core_buf_});
        } else {
          ++stats_.pruned_eq1;  // Lemma 2 subtree prune
        }
      }
    }

    if (depth + 1 >= params_.s) return;

    // Lemma 4: positions tried here but not admitted to LR are excluded in
    // the whole subtree below (LQ ∪ (LP − LR), line 26).
    uint64_t child_excluded = excluded;
    for (int j : expandable) {
      if (!((in_lr >> j) & 1)) {
        child_excluded |= uint64_t{1} << j;
        ++stats_.pruned_layer;
      }
    }
    for (const Child& child : recurse) {
      if (StopRequested()) return;
      LayerSet child_positions = positions;
      child_positions.push_back(static_cast<LayerId>(child.position));
      Gen(child_positions, child.core, child_excluded);
    }
  }

  const MultiLayerGraph& graph_;
  const DccsParams& params_;
  const PreprocessResult& preprocess_;
  const std::vector<LayerId>& order_;
  const QueryControl* control_;
  DccSolver& solver_;
  CoverageIndex& result_;
  SearchStats& stats_;
  WallTimer timer_;

  // Reusable per-node buffers; leaf children (the vast majority of tree
  // nodes at the search frontier) complete without any allocation.
  LayerSet positions_buf_, ids_buf_;
  VertexSet scope_buf_, core_buf_;
  std::vector<VertexSet> scope_arena_;
  std::vector<size_t> scoped_order_;
};

}  // namespace

DccsResult BottomUpDccs(const MultiLayerGraph& graph,
                        const DccsParams& params) {
  // Per-layer d-cores of preprocessing fan out over a pool scoped to this
  // call; the search itself is sequential through the shared top-k state.
  ThreadPool pool(params.num_threads);
  DccsExecution exec;
  exec.pool = &pool;
  return BottomUpDccs(graph, params, exec);
}

DccsResult BottomUpDccs(const MultiLayerGraph& graph, const DccsParams& params,
                        const DccsExecution& exec) {
  MLCORE_CHECK(params.s >= 1);
  MLCORE_CHECK(params.k >= 1);
  MLCORE_CHECK(graph.NumLayers() <= 64);

  WallTimer total_timer;
  DccsResult result;
  if (params.s > graph.NumLayers()) {
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // Fig 7 lines 1–7: vertex deletion, unless the caller injected a cached
  // §IV-C result (then preprocess_seconds stays 0; the host reports the
  // true acquisition cost).
  std::optional<PreprocessResult> local_preprocess;
  if (exec.preprocess == nullptr) {
    local_preprocess =
        Preprocess(graph, params.d, params.s, params.vertex_deletion,
                   exec.pool, /*base_cores=*/nullptr, exec.control);
    result.stats.preprocess_seconds = local_preprocess->seconds;
    if (local_preprocess->stopped != QueryStop::kNone) {
      // Cancelled/deadline-expired before the fixpoint completed: no search
      // phase, no usable (partial) preprocessing.
      result.stats.stopped = local_preprocess->stopped;
      result.stats.total_seconds = total_timer.Seconds();
      return result;
    }
  }
  const PreprocessResult& preprocess =
      exec.preprocess != nullptr ? *exec.preprocess : *local_preprocess;

  WallTimer search_timer;
  std::optional<DccSolver> local_solver;
  if (exec.solver == nullptr) local_solver.emplace(graph);
  DccSolver& solver = exec.solver != nullptr ? *exec.solver : *local_solver;
  const int64_t calls_before = solver.num_calls();

  CoverageIndex top_k(params.k);
  // Fig 7 line 8: greedy initialisation of R (Appendix D), replayed from a
  // cached capture when available. Replay performs the same Update sequence
  // as the computation, so the seeded state is identical either way; its
  // recorded dCC evaluations keep candidates_generated exact.
  int64_t seed_calls = 0;
  if (exec.seeds != nullptr) {
    ReplayInitSeeds(*exec.seeds, top_k);
    seed_calls = exec.seeds->solver_calls;
  } else {
    InitTopK(graph, params, preprocess, solver, top_k);
  }
  // Fig 7 line 9: sort layers by |C^d(G_i)| descending.
  std::vector<LayerId> order =
      SortedLayerOrder(preprocess, /*descending=*/true, params.sort_layers);

  // Fig 7 line 10: recursive candidate generation.
  BottomUpSearch search(graph, params, preprocess, order, exec.control,
                        solver, top_k, result.stats);
  search.Run();

  result.cores = top_k.entries();
  result.stats.candidates_generated =
      solver.num_calls() - calls_before + seed_calls;
  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
