#include "dccs/bottom_up.h"

#include <algorithm>
#include <cstdint>

#include "core/dcc.h"
#include "dccs/cover.h"
#include "dccs/preprocess.h"
#include "util/timing.h"

namespace mlcore {

namespace {

/// DFS state for BU-Gen (paper Fig 3). Layers are addressed by *position*
/// in the sorted layer order (Fig 7 line 9); positions are translated back
/// to original layer ids whenever a dCC is computed or reported.
class BottomUpSearch {
 public:
  BottomUpSearch(const MultiLayerGraph& graph, const DccsParams& params,
                 const PreprocessResult& preprocess,
                 const std::vector<LayerId>& order, DccSolver& solver,
                 CoverageIndex& result, SearchStats& stats)
      : graph_(graph),
        params_(params),
        preprocess_(preprocess),
        order_(order),
        solver_(solver),
        result_(result),
        stats_(stats) {}

  void Run() {
    LayerSet root;
    Gen(root, preprocess_.active, /*excluded=*/0);
  }

 private:
  // Anytime budget: polled once per generated child; when expired, the
  // search unwinds and the temporary top-k set becomes the result.
  bool BudgetExpired() {
    if (params_.time_budget_seconds <= 0) return false;
    if (stats_.budget_exhausted) return true;
    if (timer_.Seconds() > params_.time_budget_seconds) {
      stats_.budget_exhausted = true;
    }
    return stats_.budget_exhausted;
  }

  const VertexSet& CoreAtPosition(int pos) const {
    return preprocess_.layer_cores[static_cast<size_t>(
        order_[static_cast<size_t>(pos)])];
  }

  LayerSet ToLayerIds(const LayerSet& positions) const {
    LayerSet ids;
    ids.reserve(positions.size());
    for (LayerId pos : positions) {
      ids.push_back(order_[static_cast<size_t>(pos)]);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  // BU-Gen (Fig 3). `positions` is the node's L (ascending positions),
  // `core` its d-CC, `excluded` the LQ bitmask of Lemma 4 exclusions.
  void Gen(const LayerSet& positions, const VertexSet& core,
           uint64_t excluded) {
    const int l = graph_.NumLayers();
    const int max_pos = positions.empty() ? -1 : positions.back();
    const auto depth = static_cast<int>(positions.size());

    // LP: positions usable to expand L (line 1).
    std::vector<int> expandable;
    for (int j = max_pos + 1; j < l; ++j) {
      if ((excluded >> j) & 1) continue;
      expandable.push_back(j);
    }
    if (expandable.empty()) return;

    struct Child {
      int position;
      VertexSet core;
    };
    std::vector<Child> recurse;  // the LR set with its computed d-CCs
    uint64_t in_lr = 0;

    if (!result_.full()) {
      // Lines 2–9: no pruning is applicable while |R| < k.
      for (int j : expandable) {
        if (BudgetExpired()) return;
        ++stats_.nodes_visited;
        LayerSet child_positions = positions;
        child_positions.push_back(static_cast<LayerId>(j));
        LayerSet child_ids = ToLayerIds(child_positions);
        VertexSet scope = IntersectSorted(core, CoreAtPosition(j));
        VertexSet child_core =
            solver_.Compute(child_ids, params_.d, scope, params_.dcc_engine);
        if (depth + 1 == params_.s) {
          if (result_.Update(child_core, child_ids)) {
            ++stats_.updates_accepted;
          }
        } else if (!child_core.empty()) {
          in_lr |= uint64_t{1} << j;
          recurse.push_back(Child{j, std::move(child_core)});
        }
      }
    } else {
      // Lines 10–22: sort candidates by |C ∩ C^d(G_j)| descending and apply
      // order-based (Lemma 3), Eq. (1) (Lemma 2) and layer (Lemma 4)
      // pruning.
      struct Scoped {
        int position;
        VertexSet scope;
      };
      std::vector<Scoped> scoped;
      scoped.reserve(expandable.size());
      for (int j : expandable) {
        scoped.push_back(Scoped{j, IntersectSorted(core, CoreAtPosition(j))});
      }
      std::stable_sort(scoped.begin(), scoped.end(),
                       [](const Scoped& a, const Scoped& b) {
                         return a.scope.size() > b.scope.size();
                       });
      for (size_t idx = 0; idx < scoped.size(); ++idx) {
        if (BudgetExpired()) return;
        const auto& [j, scope] = scoped[idx];
        if (result_.BelowOrderThreshold(
                static_cast<int64_t>(scope.size()))) {
          // Lemma 3: this and all later children in the order are hopeless.
          stats_.pruned_order += static_cast<int64_t>(scoped.size() - idx);
          break;
        }
        ++stats_.nodes_visited;
        LayerSet child_positions = positions;
        child_positions.push_back(static_cast<LayerId>(j));
        LayerSet child_ids = ToLayerIds(child_positions);
        VertexSet child_core =
            solver_.Compute(child_ids, params_.d, scope, params_.dcc_engine);
        if (depth + 1 == params_.s) {
          if (result_.Update(child_core, child_ids)) {
            ++stats_.updates_accepted;
          }
        } else if (!child_core.empty() && result_.SatisfiesEq1(child_core)) {
          in_lr |= uint64_t{1} << j;
          recurse.push_back(Child{j, std::move(child_core)});
        } else {
          ++stats_.pruned_eq1;  // Lemma 2 subtree prune
        }
      }
    }

    if (depth + 1 >= params_.s) return;

    // Lemma 4: positions tried here but not admitted to LR are excluded in
    // the whole subtree below (LQ ∪ (LP − LR), line 26).
    uint64_t child_excluded = excluded;
    for (int j : expandable) {
      if (!((in_lr >> j) & 1)) {
        child_excluded |= uint64_t{1} << j;
        ++stats_.pruned_layer;
      }
    }
    for (const Child& child : recurse) {
      if (BudgetExpired()) return;
      LayerSet child_positions = positions;
      child_positions.push_back(static_cast<LayerId>(child.position));
      Gen(child_positions, child.core, child_excluded);
    }
  }

  const MultiLayerGraph& graph_;
  const DccsParams& params_;
  const PreprocessResult& preprocess_;
  const std::vector<LayerId>& order_;
  DccSolver& solver_;
  CoverageIndex& result_;
  SearchStats& stats_;
  WallTimer timer_;
};

}  // namespace

DccsResult BottomUpDccs(const MultiLayerGraph& graph,
                        const DccsParams& params) {
  MLCORE_CHECK(params.s >= 1);
  MLCORE_CHECK(params.k >= 1);
  MLCORE_CHECK(graph.NumLayers() <= 64);

  WallTimer total_timer;
  DccsResult result;
  if (params.s > graph.NumLayers()) {
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // Fig 7 lines 1–7: vertex deletion.
  PreprocessResult preprocess =
      Preprocess(graph, params.d, params.s, params.vertex_deletion);
  result.stats.preprocess_seconds = preprocess.seconds;

  WallTimer search_timer;
  DccSolver solver(graph);
  CoverageIndex top_k(params.k);
  // Fig 7 line 8: greedy initialisation of R (Appendix D).
  InitTopK(graph, params, preprocess, solver, top_k);
  // Fig 7 line 9: sort layers by |C^d(G_i)| descending.
  std::vector<LayerId> order =
      SortedLayerOrder(preprocess, /*descending=*/true, params.sort_layers);

  // Fig 7 line 10: recursive candidate generation.
  BottomUpSearch search(graph, params, preprocess, order, solver, top_k,
                        result.stats);
  search.Run();

  result.cores = top_k.entries();
  result.stats.candidates_generated = solver.num_calls();
  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
