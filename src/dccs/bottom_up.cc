#include "dccs/bottom_up.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/dcc.h"
#include "dccs/concurrent_topk.h"
#include "dccs/cover.h"
#include "dccs/preprocess.h"
#include "obs/span.h"
#include "util/task_group.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {

namespace {

// Lifecycle of one speculative child evaluation (DESIGN.md §10). Exactly
// one thread wins the kPending -> kRunning CAS — a task-group worker, or
// the commit driver claiming the slot inline (which at search_threads == 1
// is how every slot runs, reproducing the sequential search).
constexpr uint8_t kSlotPending = 0;
constexpr uint8_t kSlotRunning = 1;
constexpr uint8_t kSlotDone = 2;
constexpr uint8_t kSlotCancelled = 3;

/// The BU-Gen search (paper Fig 3), restructured for intra-query
/// parallelism: the recursion below is the sequential *commit driver* — it
/// makes every pruning, ordering, recursion and top-k decision in the
/// exact order and against the exact state of the historical sequential
/// search — while the d-CC evaluations of lattice children (the expensive
/// part) run as speculative tasks on a work-stealing TaskGroup. A stale
/// published bound only launches evaluations the driver will later discard
/// (counted as stats.speculative_evals), so results are bit-identical at
/// any thread count. Layers are addressed by *position* in the sorted
/// layer order (Fig 7 line 9); positions are translated back to original
/// layer ids whenever a dCC is computed or reported.
class BottomUpSearch {
 public:
  BottomUpSearch(const MultiLayerGraph& graph, const DccsParams& params,
                 const PreprocessResult& preprocess,
                 const std::vector<LayerId>& order,
                 const DccsExecution& exec, DccSolver& solver,
                 ConcurrentTopK& result, SearchStats& stats,
                 obs::SpanId lane_parent)
      : graph_(graph),
        params_(params),
        preprocess_(preprocess),
        order_(order),
        control_(exec.control),
        worker_solver_(exec.worker_solver),
        solver_(solver),
        result_(result),
        stats_(stats),
        trace_(exec.trace),
        lane_parent_(lane_parent) {
    const int threads = std::max(1, exec.search_threads);
    if (threads > 1) {
      lane_solvers_.resize(static_cast<size_t>(threads), nullptr);
      owned_solvers_.resize(static_cast<size_t>(threads));
      group_.emplace(threads);
      if (obs::kEnabled && trace_ != nullptr) {
        lane_obs_.resize(static_cast<size_t>(threads));
      }
    }
  }

  void Run() {
    auto root = std::make_shared<Node>();
    root->core = &preprocess_.active;
    root->excluded = 0;
    Prepare(*root);
    SpawnEvals(root);
    Gen(root);
    if (!lane_obs_.empty()) {
      // Joining here (instead of at destruction) quiesces the lanes so the
      // per-lane aggregates below are complete; stale speculative tasks
      // are discarded either way.
      group_.reset();
      CommitLaneSpans();
    }
  }

  /// dCC evaluations the commit driver consumed — the deterministic part
  /// of candidates_generated.
  int64_t committed_calls() const { return committed_calls_; }
  /// All dCC evaluations performed, including speculative ones whose slot
  /// was never committed; thread-count-dependent.
  int64_t executed_calls() const {
    return executed_calls_.load(std::memory_order_relaxed);
  }

 private:
  struct EvalSlot {
    LayerSet ids;     // the child's L translated to layer ids
    VertexSet core;   // output: C^d_L of the child
    int64_t solver_calls = 0;
    std::atomic<uint8_t> state{kSlotPending};
  };

  /// One prepared lattice node: its children's scopes and evaluation
  /// slots, indexed like `expandable`. Shared with task closures, which
  /// may outlive the driver's interest in the node (a cancelled slot's
  /// task still holds a reference until a lane pops and skips it).
  struct Node {
    LayerSet positions;        // the node's L (ascending positions)
    VertexSet core_storage;    // owned for non-root nodes
    const VertexSet* core = nullptr;
    uint64_t excluded = 0;     // LQ bitmask of Lemma 4 exclusions
    bool leaf_children = false;
    std::vector<int> expandable;      // LP (Fig 3 line 1)
    std::vector<VertexSet> scopes;    // C ∩ C^d(G_j) per expandable child
    std::unique_ptr<EvalSlot[]> slots;
  };

  // Cooperative checkpoint, polled by the driver once per committed child
  // (a subset-lattice node boundary): the anytime time_budget_seconds,
  // plus the injected QueryControl's cancellation/deadline. When any fires
  // the search unwinds; for budget/deadline the temporary top-k set
  // becomes the (anytime) result, for cancellation the caller discards it.
  bool StopRequested() {
    if (stats_.stopped != QueryStop::kNone) return true;
    return LatchQueryStop(
        CheckQueryStop(control_, params_.time_budget_seconds, timer_),
        &stats_);
  }

  const VertexSet& CoreAtPosition(int pos) const {
    return preprocess_.layer_cores[static_cast<size_t>(
        order_[static_cast<size_t>(pos)])];
  }

  DccSolver& SolverFor(int worker) {
    if (worker == 0) return solver_;
    DccSolver*& lane = lane_solvers_[static_cast<size_t>(worker)];
    // Each lane is serviced by exactly one thread, so lazy init is
    // race-free without synchronisation.
    if (lane == nullptr) {
      if (worker_solver_) {
        lane = worker_solver_(worker);
      } else {
        owned_solvers_[static_cast<size_t>(worker)] =
            std::make_unique<DccSolver>(graph_);
        lane = owned_solvers_[static_cast<size_t>(worker)].get();
      }
    }
    return *lane;
  }

  /// Computes LP, the per-child scopes and the child evaluation slots.
  /// Pure derivation from the node's (positions, core, excluded) — safe to
  /// run any time before the node is committed.
  void Prepare(Node& node) {
    const int l = graph_.NumLayers();
    const int max_pos = node.positions.empty() ? -1 : node.positions.back();
    for (int j = max_pos + 1; j < l; ++j) {
      if ((node.excluded >> j) & 1) continue;
      node.expandable.push_back(j);
    }
    node.leaf_children =
        static_cast<int>(node.positions.size()) + 1 == params_.s;
    const size_t n = node.expandable.size();
    if (n == 0) return;
    node.scopes.resize(n);
    node.slots = std::make_unique<EvalSlot[]>(n);
    for (size_t idx = 0; idx < n; ++idx) {
      const int j = node.expandable[idx];
      IntersectSortedInto(*node.core, CoreAtPosition(j), &node.scopes[idx]);
      positions_buf_ = node.positions;
      positions_buf_.push_back(static_cast<LayerId>(j));
      PositionsToLayerIds(order_, positions_buf_, &node.slots[idx].ids);
    }
  }

  /// Launches the node's child evaluations on the task group, largest
  /// scope first (the order the commit loop consumes once R is full).
  /// Children already hopeless under the *published* bound are not
  /// launched: if the driver nevertheless needs one (the published bound
  /// was stale), it claims the still-pending slot inline.
  void SpawnEvals(const std::shared_ptr<Node>& node) {
    if (!group_) return;
    const size_t n = node->expandable.size();
    if (n == 0) return;
    spawn_order_.clear();
    for (size_t idx = 0; idx < n; ++idx) spawn_order_.push_back(idx);
    if (result_.SpeculativelyFull()) {
      std::stable_sort(spawn_order_.begin(), spawn_order_.end(),
                       [&](size_t a, size_t b) {
                         return node->scopes[a].size() > node->scopes[b].size();
                       });
    }
    for (size_t idx : spawn_order_) {
      if (result_.SpeculativelyBelowOrderThreshold(
              static_cast<int64_t>(node->scopes[idx].size()))) {
        continue;
      }
      group_->Spawn(0, [this, node, idx](int worker) {
        RunEval(*node, idx, worker);
      });
    }
  }

  /// Claims and runs one child evaluation; no-op when another thread (or a
  /// cancellation) already owns the slot.
  void RunEval(Node& node, size_t idx, int worker) {
    EvalSlot& slot = node.slots[idx];
    uint8_t expected = kSlotPending;
    if (!slot.state.compare_exchange_strong(expected, kSlotRunning,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return;
    }
    DccSolver& solver = SolverFor(worker);
    const int64_t before = solver.num_calls();
    if (LaneObs* lane = LaneFor(worker)) {
      WallTimer busy;
      ThreadCpuTimer cpu;
      solver.Compute(slot.ids, params_.d, node.scopes[idx], &slot.core,
                     params_.dcc_engine);
      lane->busy_seconds += busy.Seconds();
      const double cpu_seconds = cpu.Seconds();
      if (cpu_seconds > 0) lane->cpu_seconds += cpu_seconds;
      ++lane->evals;
    } else {
      solver.Compute(slot.ids, params_.d, node.scopes[idx], &slot.core,
                     params_.dcc_engine);
    }
    slot.solver_calls = solver.num_calls() - before;
    executed_calls_.fetch_add(slot.solver_calls, std::memory_order_relaxed);
    slot.state.store(kSlotDone, std::memory_order_release);
  }

  /// Blocks (productively) until the slot's evaluation exists: claims an
  /// unclaimed slot inline, otherwise helps drain the task group while a
  /// worker finishes it.
  EvalSlot& WaitSlot(Node& node, size_t idx) {
    EvalSlot& slot = node.slots[idx];
    RunEval(node, idx, 0);
    while (slot.state.load(std::memory_order_acquire) != kSlotDone) {
      if (!group_ || !group_->TryRunOne(0)) std::this_thread::yield();
    }
    return slot;
  }

  void CancelSlot(EvalSlot& slot) {
    uint8_t expected = kSlotPending;
    slot.state.compare_exchange_strong(expected, kSlotCancelled,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  void CancelPending(Node& node) {
    for (size_t idx = 0; idx < node.expandable.size(); ++idx) {
      CancelSlot(node.slots[idx]);
    }
  }

  // BU-Gen (Fig 3), commit side. Every stats increment, Update call,
  // pruning test and recursion decision below happens on this thread in
  // the sequential DFS order.
  void Gen(const std::shared_ptr<Node>& node) {
    const size_t n = node->expandable.size();
    if (n == 0) return;
    const bool leaf = node->leaf_children;

    struct ChildRef {
      int position;
      size_t idx;
    };
    std::vector<ChildRef> recurse;  // the LR set (slots hold their d-CCs)
    uint64_t in_lr = 0;

    if (!result_.full()) {
      // Lines 2–9: no pruning is applicable while |R| < k.
      for (size_t idx = 0; idx < n; ++idx) {
        if (StopRequested()) {
          CancelPending(*node);
          return;
        }
        const int j = node->expandable[idx];
        ++stats_.nodes_visited;
        EvalSlot& slot = WaitSlot(*node, idx);
        committed_calls_ += slot.solver_calls;
        if (leaf) {
          if (result_.Update(slot.core, slot.ids)) {
            ++stats_.updates_accepted;
          }
        } else if (!slot.core.empty()) {
          in_lr |= uint64_t{1} << j;
          recurse.push_back(ChildRef{j, idx});
        }
      }
    } else {
      // Lines 10–22: sort candidates by |C ∩ C^d(G_j)| descending and
      // apply order-based (Lemma 3), Eq. (1) (Lemma 2) and layer (Lemma 4)
      // pruning. Only the index permutation is sorted.
      order_buf_.clear();
      for (size_t idx = 0; idx < n; ++idx) order_buf_.push_back(idx);
      std::stable_sort(order_buf_.begin(), order_buf_.end(),
                       [&](size_t a, size_t b) {
                         return node->scopes[a].size() > node->scopes[b].size();
                       });
      for (size_t rank = 0; rank < n; ++rank) {
        if (StopRequested()) {
          CancelPending(*node);
          return;
        }
        const size_t idx = order_buf_[rank];
        const int j = node->expandable[idx];
        const VertexSet& scope = node->scopes[idx];
        if (result_.BelowOrderThreshold(static_cast<int64_t>(scope.size()))) {
          // Lemma 3: this and all later children in the order are hopeless.
          stats_.pruned_order += static_cast<int64_t>(n - rank);
          for (size_t r = rank; r < n; ++r) {
            CancelSlot(node->slots[order_buf_[r]]);
          }
          break;
        }
        ++stats_.nodes_visited;
        EvalSlot& slot = WaitSlot(*node, idx);
        committed_calls_ += slot.solver_calls;
        if (leaf) {
          if (result_.Update(slot.core, slot.ids)) {
            ++stats_.updates_accepted;
          }
        } else if (!slot.core.empty() && result_.SatisfiesEq1(slot.core)) {
          in_lr |= uint64_t{1} << j;
          recurse.push_back(ChildRef{j, idx});
        } else {
          ++stats_.pruned_eq1;  // Lemma 2 subtree prune
        }
      }
    }

    if (static_cast<int>(node->positions.size()) + 1 >= params_.s) return;

    // Lemma 4: positions tried here but not admitted to LR are excluded in
    // the whole subtree below (LQ ∪ (LP − LR), line 26).
    uint64_t child_excluded = node->excluded;
    for (int j : node->expandable) {
      if (!((in_lr >> j) & 1)) {
        child_excluded |= uint64_t{1} << j;
        ++stats_.pruned_layer;
      }
    }

    // Prepare and launch every admitted subtree before descending into the
    // first: sibling subtrees evaluate on the workers while the driver
    // commits this one — the frontier spans the whole DFS spine.
    std::vector<std::shared_ptr<Node>> children;
    children.reserve(recurse.size());
    for (const ChildRef& ref : recurse) {
      auto child = std::make_shared<Node>();
      child->positions = node->positions;
      child->positions.push_back(static_cast<LayerId>(ref.position));
      child->core_storage = std::move(node->slots[ref.idx].core);
      child->core = &child->core_storage;
      child->excluded = child_excluded;
      Prepare(*child);
      SpawnEvals(child);
      children.push_back(std::move(child));
    }
    for (size_t c = 0; c < children.size(); ++c) {
      if (StopRequested()) {
        for (size_t rest = c; rest < children.size(); ++rest) {
          CancelPending(*children[rest]);
        }
        return;
      }
      Gen(children[c]);
    }
  }

  /// One "search.lane" span per TaskGroup lane, aggregating the lane's
  /// claimed-evaluation busy time (wall + thread CPU). Lane entries are
  /// single-writer while the group runs; committed only after the group
  /// joins. Cache-line aligned so lanes never false-share.
  struct alignas(64) LaneObs {
    double busy_seconds = 0;
    double cpu_seconds = 0;
    int64_t evals = 0;
  };

  LaneObs* LaneFor(int worker) {
    return lane_obs_.empty() ? nullptr
                             : &lane_obs_[static_cast<size_t>(worker)];
  }

  void CommitLaneSpans() {
    for (const LaneObs& lane : lane_obs_) {
      if (lane.evals == 0) continue;
      trace_->Add("search.lane", lane_parent_, trace_->AgeMs(),
                  lane.busy_seconds * 1e3,
                  lane.cpu_seconds > 0 ? lane.cpu_seconds * 1e3 : -1);
    }
  }

  const MultiLayerGraph& graph_;
  const DccsParams& params_;
  const PreprocessResult& preprocess_;
  const std::vector<LayerId>& order_;
  const QueryControl* control_;
  const std::function<DccSolver*(int worker)> worker_solver_;
  DccSolver& solver_;
  ConcurrentTopK& result_;
  SearchStats& stats_;
  obs::Trace* trace_;
  const obs::SpanId lane_parent_;
  std::vector<LaneObs> lane_obs_;
  WallTimer timer_;

  int64_t committed_calls_ = 0;
  std::atomic<int64_t> executed_calls_{0};

  // Driver-side reusable buffers (never touched by tasks).
  LayerSet positions_buf_;
  std::vector<size_t> order_buf_, spawn_order_;

  // Lane 0 uses solver_; other lanes resolve through worker_solver_ or an
  // owned per-lane fallback, each lane single-threaded by construction.
  std::vector<DccSolver*> lane_solvers_;
  std::vector<std::unique_ptr<DccSolver>> owned_solvers_;

  // Last member: destroyed first, so in-flight task closures (which
  // reference this object and its nodes) finish before anything above
  // goes away.
  std::optional<TaskGroup> group_;
};

}  // namespace

DccsResult BottomUpDccs(const MultiLayerGraph& graph,
                        const DccsParams& params) {
  // Per-layer d-cores of preprocessing fan out over a pool scoped to this
  // call; the search phase parallelises over params.search_threads lanes
  // of its own (DESIGN.md §10).
  ThreadPool pool(params.num_threads);
  DccsExecution exec;
  exec.pool = &pool;
  exec.search_threads = params.search_threads;
  return BottomUpDccs(graph, params, exec);
}

DccsResult BottomUpDccs(const MultiLayerGraph& graph, const DccsParams& params,
                        const DccsExecution& exec) {
  // Guaranteed by Engine::Validate on every request path; debug-only so a
  // malformed direct call still trips in development builds.
  MLCORE_DCHECK(params.s >= 1);
  MLCORE_DCHECK(params.k >= 1);

  WallTimer total_timer;
  DccsResult result;
  if (params.s > graph.NumLayers() || graph.NumLayers() > 64) {
    // > 64 layers: the lattice's word-sized position masks cannot represent
    // the layer subsets. Library callers get the same (empty) result as the
    // vacuous s > l case; the Engine rejects such requests up front with
    // kInvalidArgument instead of ever dispatching here (DESIGN.md §5).
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // Fig 7 lines 1–7: vertex deletion, unless the caller injected a cached
  // §IV-C result (then preprocess_seconds stays 0; the host reports the
  // true acquisition cost).
  std::optional<PreprocessResult> local_preprocess;
  if (exec.preprocess == nullptr) {
    obs::Span preprocess_span(exec.trace, "query.preprocess",
                              exec.trace_parent);
    local_preprocess =
        Preprocess(graph, params.d, params.s, params.vertex_deletion,
                   exec.pool, /*base_cores=*/nullptr, exec.control);
    result.stats.preprocess_seconds = local_preprocess->seconds;
    if (local_preprocess->stopped != QueryStop::kNone) {
      // Cancelled/deadline-expired before the fixpoint completed: no search
      // phase, no usable (partial) preprocessing.
      result.stats.stopped = local_preprocess->stopped;
      result.stats.total_seconds = total_timer.Seconds();
      return result;
    }
  }
  const PreprocessResult& preprocess =
      exec.preprocess != nullptr ? *exec.preprocess : *local_preprocess;

  obs::Span search_span(exec.trace, "query.search", exec.trace_parent);
  const WallTimer& search_timer = search_span.timer();
  std::optional<DccSolver> local_solver;
  if (exec.solver == nullptr) local_solver.emplace(graph);
  DccSolver& solver = exec.solver != nullptr ? *exec.solver : *local_solver;

  // Fig 7 line 8: greedy initialisation of R (Appendix D) — replayed from a
  // cached capture, copied from an already-seeded prototype, or computed.
  // All three leave the identical seeded state; the capture's recorded dCC
  // evaluations keep candidates_generated exact.
  CoverageIndex seeded(params.k);
  int64_t seed_calls = 0;
  if (exec.seeded_topk != nullptr) {
    seeded = *exec.seeded_topk;
    seed_calls = exec.seeds != nullptr ? exec.seeds->solver_calls : 0;
  } else if (exec.seeds != nullptr) {
    ReplayInitSeeds(*exec.seeds, seeded);
    seed_calls = exec.seeds->solver_calls;
  } else {
    const int64_t calls_before = solver.num_calls();
    InitTopK(graph, params, preprocess, solver, seeded);
    seed_calls = solver.num_calls() - calls_before;
  }
  // Fig 7 line 9: sort layers by |C^d(G_i)| descending (cached by the
  // Engine per query entry).
  std::optional<std::vector<LayerId>> local_order;
  if (exec.layer_order == nullptr) {
    local_order =
        SortedLayerOrder(preprocess, /*descending=*/true, params.sort_layers);
  }
  const std::vector<LayerId>& order =
      exec.layer_order != nullptr ? *exec.layer_order : *local_order;

  // Fig 7 line 10: recursive candidate generation (the commit driver),
  // with child evaluations fanned out over exec.search_threads lanes.
  ConcurrentTopK top_k(std::move(seeded));
  BottomUpSearch search(graph, params, preprocess, order, exec, solver, top_k,
                        result.stats, search_span.id());
  search.Run();
  search_span.End();

  obs::Span cover_span(exec.trace, "query.cover", exec.trace_parent);
  result.cores = top_k.index().entries();
  cover_span.End();
  result.stats.candidates_generated = seed_calls + search.committed_calls();
  result.stats.speculative_evals =
      search.executed_calls() - search.committed_calls();
  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
