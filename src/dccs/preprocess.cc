#include "dccs/preprocess.h"

#include <algorithm>
#include <numeric>

#include "core/dcore.h"
#include "util/timing.h"

namespace mlcore {

PreprocessResult Preprocess(const MultiLayerGraph& graph, int d, int s,
                            bool vertex_deletion, ThreadPool* pool,
                            const std::vector<VertexSet>* base_cores,
                            const QueryControl* control) {
  WallTimer timer;
  PreprocessResult result;
  const auto n = static_cast<size_t>(graph.NumVertices());
  const auto l = static_cast<size_t>(graph.NumLayers());

  result.active = AllVertices(graph);
  result.support.assign(n, 0);

  // Lines 1–7 of BU-DCCS: iterate {recompute per-layer d-cores; drop
  // vertices supported by fewer than s layers} to a fixpoint. One pass with
  // no deletion when the ablation disables vertex deletion. The l per-layer
  // d-cores of a round are independent, so they fan out over `pool`; every
  // core lands in its layer-indexed slot and the support/bitmap merge runs
  // sequentially afterwards, keeping the result thread-count-invariant.
  bool first_round = true;
  while (true) {
    // Cooperative checkpoint, once per deletion round. A started round runs
    // to completion, so callers observing stopped == kNone always hold a
    // full fixpoint.
    if (control != nullptr) {
      result.stopped = control->Check();
      if (result.stopped != QueryStop::kNone) {
        result.seconds = timer.Seconds();
        return result;
      }
    }
    if (first_round && base_cores != nullptr) {
      // The first round runs over the full vertex set, so its cores are
      // exactly the caller-provided full-graph d-cores.
      MLCORE_DCHECK(base_cores->size() == l);
      result.layer_cores = *base_cores;
    } else {
      result.layer_cores.assign(l, VertexSet());
      auto compute_layer = [&](int /*worker*/, int64_t layer) {
        result.layer_cores[static_cast<size_t>(layer)] =
            DCoreScoped(graph, static_cast<LayerId>(layer), d, result.active);
      };
      if (pool != nullptr) {
        pool->ParallelFor(static_cast<int64_t>(l), compute_layer);
      } else {
        for (int64_t layer = 0; layer < static_cast<int64_t>(l); ++layer) {
          compute_layer(0, layer);
        }
      }
    }
    first_round = false;
    result.layer_core_bits.assign(l, Bitset(n));
    std::fill(result.support.begin(), result.support.end(), 0);
    for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
      for (VertexId v : result.layer_cores[static_cast<size_t>(layer)]) {
        result.layer_core_bits[static_cast<size_t>(layer)].Set(
            static_cast<size_t>(v));
        ++result.support[static_cast<size_t>(v)];
      }
    }
    if (!vertex_deletion) break;

    VertexSet next;
    next.reserve(result.active.size());
    for (VertexId v : result.active) {
      if (result.support[static_cast<size_t>(v)] >= s) next.push_back(v);
    }
    if (next.size() == result.active.size()) break;
    result.active = std::move(next);
  }
  // Zero the support of deleted vertices so callers can rely on it.
  if (vertex_deletion) {
    Bitset active_bits(n);
    for (VertexId v : result.active) active_bits.Set(static_cast<size_t>(v));
    for (size_t v = 0; v < n; ++v) {
      if (!active_bits.Test(v)) result.support[v] = 0;
    }
  }

  result.seconds = timer.Seconds();
  return result;
}

std::vector<LayerId> SortedLayerOrder(const PreprocessResult& preprocess,
                                      bool descending, bool sort_layers) {
  std::vector<LayerId> order(preprocess.layer_cores.size());
  std::iota(order.begin(), order.end(), 0);
  if (!sort_layers) return order;
  std::stable_sort(order.begin(), order.end(), [&](LayerId a, LayerId b) {
    size_t size_a = preprocess.layer_cores[static_cast<size_t>(a)].size();
    size_t size_b = preprocess.layer_cores[static_cast<size_t>(b)].size();
    return descending ? size_a > size_b : size_a < size_b;
  });
  return order;
}

void PositionsToLayerIds(const std::vector<LayerId>& order,
                         const LayerSet& positions, LayerSet* ids) {
  ids->clear();
  ids->reserve(positions.size());
  for (LayerId pos : positions) {
    ids->push_back(order[static_cast<size_t>(pos)]);
  }
  std::sort(ids->begin(), ids->end());
}

InitSeeds ComputeInitSeeds(const MultiLayerGraph& graph,
                           const DccsParams& params,
                           const PreprocessResult& preprocess,
                           DccSolver& solver) {
  InitSeeds captured;
  if (!params.init_result) return captured;
  const int32_t l = graph.NumLayers();
  if (params.s > l) return captured;

  // The greedy seeding consults the result set built so far (MarginalGain),
  // so the capture runs against a private CoverageIndex; replaying the
  // recorded Update arguments into another fresh index reproduces the
  // identical state.
  CoverageIndex result(params.k);
  const int64_t calls_before = solver.num_calls();
  captured.seeds.reserve(static_cast<size_t>(params.k));
  for (int p = 0; p < params.k; ++p) {
    // Seed layer: the d-core with the largest marginal cover gain.
    LayerId best_layer = 0;
    int64_t best_gain = -1;
    for (LayerId i = 0; i < l; ++i) {
      int64_t gain =
          result.MarginalGain(preprocess.layer_cores[static_cast<size_t>(i)]);
      if (gain > best_gain) {
        best_gain = gain;
        best_layer = i;
      }
    }
    LayerSet chosen = {best_layer};
    VertexSet intersection =
        preprocess.layer_cores[static_cast<size_t>(best_layer)];

    // Extend to s layers, each time maximising |C ∩ C^d(G_j)|.
    for (int q = 1; q < params.s; ++q) {
      LayerId best_j = -1;
      int64_t best_size = -1;
      for (LayerId j = 0; j < l; ++j) {
        if (std::find(chosen.begin(), chosen.end(), j) != chosen.end()) {
          continue;
        }
        int64_t size = 0;
        const Bitset& bits =
            preprocess.layer_core_bits[static_cast<size_t>(j)];
        for (VertexId v : intersection) {
          if (bits.Test(static_cast<size_t>(v))) ++size;
        }
        if (size > best_size) {
          best_size = size;
          best_j = j;
        }
      }
      chosen.push_back(best_j);
      intersection = IntersectSorted(
          intersection, preprocess.layer_cores[static_cast<size_t>(best_j)]);
    }
    std::sort(chosen.begin(), chosen.end());
    VertexSet core =
        solver.Compute(chosen, params.d, intersection, params.dcc_engine);
    result.Update(core, chosen);
    captured.seeds.push_back(ResultCore{std::move(chosen), std::move(core)});
  }
  captured.solver_calls = solver.num_calls() - calls_before;
  return captured;
}

void ReplayInitSeeds(const InitSeeds& seeds, CoverageIndex& result) {
  for (const ResultCore& seed : seeds.seeds) {
    result.Update(seed.vertices, seed.layers);
  }
}

void InitTopK(const MultiLayerGraph& graph, const DccsParams& params,
              const PreprocessResult& preprocess, DccSolver& solver,
              CoverageIndex& result) {
  ReplayInitSeeds(ComputeInitSeeds(graph, params, preprocess, solver),
                  result);
}

}  // namespace mlcore
