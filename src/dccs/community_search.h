#ifndef MLCORE_DCCS_COMMUNITY_SEARCH_H_
#define MLCORE_DCCS_COMMUNITY_SEARCH_H_

#include <vector>

#include "core/dcc.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// Result of a query-anchored coherent community search. `Found()` is
/// false when the query vertex lies in no d-CC recurring on s layers.
struct CommunitySearchResult {
  LayerSet layers;      // the chosen layer subset, |layers| = s (or empty)
  VertexSet community;  // C^d_layers(G); contains the query when found

  bool Found() const { return !community.empty(); }
};

/// Query-anchored variant of DCCS (in the spirit of influential community
/// search, paper ref [10]): find a layer subset L with |L| = s whose
/// coherent core C^d_L(G) contains the query vertex, greedily maximising
/// the community size. Layers are added one at a time, each step keeping
/// the query inside the shrinking core — a direct application of the
/// containment property (Property 3). Cost: O(l·s) dCC evaluations.
///
/// The greedy choice is a heuristic (maximising |C^d_L| over all C(l, s)
/// subsets containing the query is as hard as DCCS); tests validate it
/// against exhaustive search on small graphs.
CommunitySearchResult SearchCommunity(const MultiLayerGraph& graph,
                                      VertexId query, int d, int s);

/// Reuse-friendly form for long-lived hosts (the Engine, DESIGN.md §5):
/// `layer_cores[i]` must equal DCore(graph, i, d) — the full-graph per-layer
/// d-cores the one-shot form computes itself (the dominant cost for repeat
/// queries with the same d) — and `solver` provides the dCC scratch.
CommunitySearchResult SearchCommunityWithCores(
    const MultiLayerGraph& graph, const std::vector<VertexSet>& layer_cores,
    DccSolver& solver, VertexId query, int d, int s);

}  // namespace mlcore

#endif  // MLCORE_DCCS_COMMUNITY_SEARCH_H_
