#ifndef MLCORE_DCCS_VERTEX_INDEX_H_
#define MLCORE_DCCS_VERTEX_INDEX_H_

#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// The hierarchical vertex index of paper §V-C.
///
/// Vertices are iteratively removed from the (preprocessed) graph in stages
/// h = 1, 2, …, l: at stage h, batches of vertices whose support
/// Num(v) — the number of layers whose current d-core contains v — has
/// dropped to ≤ h are removed together, cascading core membership via
/// decremental d-core maintenance. Every batch forms one *level*; levels
/// are numbered globally in removal order. For each vertex the index
/// records:
///   - stage(v): the h at which v was removed (v ∈ I_h in paper notation),
///   - level(v): the global batch number,
///   - label(v): L(v), the layers whose d-core contained v just before its
///     batch was removed.
///
/// Lemma 8 then bounds any C^d_{L'}(G) inside {v : stage(v) ≥ |L'|}, and
/// Lemma 9 justifies the level-by-level RefineC search.
class VertexLevelIndex {
 public:
  /// Builds the index over the vertices in `active` (sorted) with degree
  /// threshold d. Vertices outside `active` get stage/level −1.
  VertexLevelIndex(const MultiLayerGraph& graph, int d,
                   const VertexSet& active);

  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Global removal-batch number of v; −1 for vertices outside the index.
  int level(VertexId v) const { return level_[static_cast<size_t>(v)]; }

  /// Stage h with v ∈ I_h; −1 for vertices outside the index.
  int stage(VertexId v) const { return stage_[static_cast<size_t>(v)]; }

  /// L(v): sorted layers whose d-core contained v just before removal.
  const LayerSet& label(VertexId v) const {
    return label_[static_cast<size_t>(v)];
  }

  /// Vertices removed in batch `level`, sorted.
  const VertexSet& at_level(int level) const {
    return levels_[static_cast<size_t>(level)];
  }

 private:
  std::vector<int> level_;
  std::vector<int> stage_;
  std::vector<LayerSet> label_;
  std::vector<VertexSet> levels_;
};

}  // namespace mlcore

#endif  // MLCORE_DCCS_VERTEX_INDEX_H_
