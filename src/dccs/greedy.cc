#include "dccs/greedy.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>

#include "core/dcc.h"
#include "core/fds.h"
#include "dccs/preprocess.h"
#include "obs/span.h"
#include "util/bitset.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {

DccsResult GreedyDccs(const MultiLayerGraph& graph, const DccsParams& params) {
  // One pool serves both phases: per-layer d-cores in preprocessing and the
  // C(l, s) candidate evaluations.
  ThreadPool pool(params.num_threads);
  DccsExecution exec;
  exec.pool = &pool;
  return GreedyDccs(graph, params, exec);
}

DccsResult GreedyDccs(const MultiLayerGraph& graph, const DccsParams& params,
                      const DccsExecution& exec) {
  WallTimer total_timer;
  DccsResult result;
  const auto n = static_cast<size_t>(graph.NumVertices());

  if (params.s > graph.NumLayers()) {
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  ThreadPool* pool = exec.pool;
  std::optional<PreprocessResult> local_preprocess;
  if (exec.preprocess == nullptr) {
    obs::Span preprocess_span(exec.trace, "query.preprocess",
                              exec.trace_parent);
    local_preprocess =
        Preprocess(graph, params.d, params.s, params.vertex_deletion, pool,
                   /*base_cores=*/nullptr, exec.control);
    result.stats.preprocess_seconds = local_preprocess->seconds;
    if (local_preprocess->stopped != QueryStop::kNone) {
      result.stats.stopped = local_preprocess->stopped;
      result.stats.total_seconds = total_timer.Seconds();
      return result;
    }
  }
  const PreprocessResult& preprocess =
      exec.preprocess != nullptr ? *exec.preprocess : *local_preprocess;

  // The span's stopwatch doubles as the budget clock for check_stop, so
  // the recorded search phase and the budget semantics share one timer.
  obs::Span search_span(exec.trace, "query.search", exec.trace_parent);
  const WallTimer& search_timer = search_span.timer();
  // Lines 4–7: generate F = all d-CCs w.r.t. size-s layer subsets, each
  // computed inside the intersection of the per-layer d-cores (Lemma 1).
  // The subsets are independent, so the loop parallelises over a static
  // index partition; candidate order (and hence the final result) is
  // identical for every thread count.
  struct Candidate {
    LayerSet layers;
    VertexSet vertices;
  };
  const int64_t total_subsets =
      BinomialCoefficient(graph.NumLayers(), params.s);
  // Engine::Validate pre-rejects this with kUnsupported; the abort guards
  // *direct* GreedyDccs callers against materialising an intractable
  // subset table.
  // NOLINT(mlcore-release-check): resource guard for direct callers
  MLCORE_CHECK_MSG(total_subsets <= kMaxGreedySubsets,
                   "C(l, s) too large to materialise; this instance is "
                   "intractable for GD-DCCS regardless");
  std::vector<LayerSet> subsets;
  subsets.reserve(static_cast<size_t>(total_subsets));
  ForEachLayerCombination(graph.NumLayers(), params.s,
                          [&](const LayerSet& layers) {
                            subsets.push_back(layers);
                          });

  // Per-worker arenas: one solver plus reusable scope/core buffers per pool
  // lane, so the candidate loop performs no steady-state allocation. Each
  // candidate writes only its own subset-indexed slot, which keeps the
  // output independent of how the pool schedules items across lanes. The
  // lane solvers come from `exec.worker_solver` when a host provides them
  // (the Engine's cross-query arenas), else lane 0 borrows `exec.solver`
  // and the remaining lanes build their own lazily — lanes that never claim
  // an item never pay the solver's O(n) scratch.
  std::vector<Candidate> slots(subsets.size());
  struct WorkerArena {
    std::unique_ptr<DccSolver> owned_solver;
    DccSolver* solver = nullptr;
    VertexSet scope;
    VertexSet tmp;
    VertexSet core;
  };
  const int num_lanes = pool != nullptr ? pool->num_threads() : 1;
  std::vector<WorkerArena> arenas(static_cast<size_t>(num_lanes));

  // Cooperative stop for the candidate phase: checked once per candidate
  // (the "candidate-evaluation boundary"), shared across lanes. A fired
  // stop makes the remaining candidates no-ops; evaluated candidates keep
  // their slots, so the greedy selection below runs over the anytime prefix
  // of F. `controlled` is false for the historical uncontrolled,
  // unbudgeted call, which then skips every per-candidate check and atomic.
  const bool controlled =
      (exec.control != nullptr && exec.control->active()) ||
      params.time_budget_seconds > 0;
  std::atomic<int> stop_reason{static_cast<int>(QueryStop::kNone)};
  std::atomic<int64_t> evaluated{0};
  auto check_stop = [&]() -> QueryStop {
    const int seen = stop_reason.load(std::memory_order_relaxed);
    if (seen != static_cast<int>(QueryStop::kNone)) {
      return static_cast<QueryStop>(seen);
    }
    const QueryStop stop = CheckQueryStop(
        exec.control, params.time_budget_seconds, search_timer);
    if (stop != QueryStop::kNone) {
      // First writer wins; later candidates observe the fast path above.
      int expected = static_cast<int>(QueryStop::kNone);
      stop_reason.compare_exchange_strong(expected, static_cast<int>(stop),
                                          std::memory_order_relaxed);
      return static_cast<QueryStop>(
          stop_reason.load(std::memory_order_relaxed));
    }
    return QueryStop::kNone;
  };

  auto evaluate_candidate = [&](int worker, int64_t i) {
    if (controlled) {
      if (check_stop() != QueryStop::kNone) return;
      evaluated.fetch_add(1, std::memory_order_relaxed);
    }
    WorkerArena& arena = arenas[static_cast<size_t>(worker)];
    if (arena.solver == nullptr) {
      if (exec.worker_solver) {
        arena.solver = exec.worker_solver(worker);
      } else if (worker == 0 && exec.solver != nullptr) {
        arena.solver = exec.solver;
      } else {
        arena.owned_solver = std::make_unique<DccSolver>(graph);
        arena.solver = arena.owned_solver.get();
      }
    }
    const LayerSet& layers = subsets[static_cast<size_t>(i)];
    const VertexSet& first =
        preprocess.layer_cores[static_cast<size_t>(layers[0])];
    arena.scope.assign(first.begin(), first.end());
    for (size_t j = 1; j < layers.size() && !arena.scope.empty(); ++j) {
      IntersectSortedInto(
          arena.scope,
          preprocess.layer_cores[static_cast<size_t>(layers[j])],
          &arena.tmp);
      std::swap(arena.scope, arena.tmp);
    }
    arena.solver->Compute(layers, params.d, arena.scope, &arena.core,
                          params.dcc_engine);
    if (!arena.core.empty()) {
      slots[static_cast<size_t>(i)] = Candidate{layers, arena.core};
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(subsets.size()),
                      evaluate_candidate);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(subsets.size()); ++i) {
      evaluate_candidate(0, i);
    }
  }

  // Budget/deadline are anytime: select over the candidates evaluated so
  // far (the (1 - 1/e) guarantee only holds for the full F). Cancellation
  // abandons the query; the caller discards the result.
  const auto stopped =
      static_cast<QueryStop>(stop_reason.load(std::memory_order_relaxed));
  LatchQueryStop(stopped, &result.stats);
  if (stopped == QueryStop::kCancelled) {
    result.stats.candidates_generated =
        evaluated.load(std::memory_order_relaxed);
    result.stats.search_seconds = search_timer.Seconds();
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  std::vector<Candidate> candidates;
  candidates.reserve(slots.size());
  for (auto& slot : slots) {
    if (!slot.vertices.empty()) candidates.push_back(std::move(slot));
  }
  result.stats.candidates_generated =
      stopped != QueryStop::kNone ? evaluated.load(std::memory_order_relaxed)
                                  : static_cast<int64_t>(subsets.size());

  // Lines 8–10: greedy max-cover selection of k candidates.
  search_span.End();
  obs::Span cover_span(exec.trace, "query.cover", exec.trace_parent);
  Bitset covered(n);
  std::vector<bool> taken(candidates.size(), false);
  for (int round = 0; round < params.k; ++round) {
    int64_t best_gain = -1;
    size_t best = candidates.size();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (taken[c]) continue;
      int64_t gain = 0;
      for (VertexId v : candidates[c].vertices) {
        if (!covered.Test(static_cast<size_t>(v))) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size()) break;  // fewer than k candidates exist
    taken[best] = true;
    for (VertexId v : candidates[best].vertices) {
      covered.Set(static_cast<size_t>(v));
    }
    result.cores.push_back(ResultCore{candidates[best].layers,
                                      std::move(candidates[best].vertices)});
    ++result.stats.updates_accepted;
  }

  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
