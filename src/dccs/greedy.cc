#include "dccs/greedy.h"

#include <algorithm>
#include <thread>

#include "core/dcc.h"
#include "core/fds.h"
#include "dccs/preprocess.h"
#include "util/bitset.h"
#include "util/timing.h"

namespace mlcore {

DccsResult GreedyDccs(const MultiLayerGraph& graph, const DccsParams& params) {
  WallTimer total_timer;
  DccsResult result;
  const auto n = static_cast<size_t>(graph.NumVertices());

  PreprocessResult preprocess =
      Preprocess(graph, params.d, params.s, params.vertex_deletion);
  result.stats.preprocess_seconds = preprocess.seconds;

  if (params.s > graph.NumLayers()) {
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  WallTimer search_timer;
  // Lines 4–7: generate F = all d-CCs w.r.t. size-s layer subsets, each
  // computed inside the intersection of the per-layer d-cores (Lemma 1).
  // The subsets are independent, so the loop parallelises over a static
  // index partition; candidate order (and hence the final result) is
  // identical for every thread count.
  struct Candidate {
    LayerSet layers;
    VertexSet vertices;
  };
  const int64_t total_subsets =
      BinomialCoefficient(graph.NumLayers(), params.s);
  MLCORE_CHECK_MSG(total_subsets <= (int64_t{1} << 26),
                   "C(l, s) too large to materialise; this instance is "
                   "intractable for GD-DCCS regardless");
  std::vector<LayerSet> subsets;
  subsets.reserve(static_cast<size_t>(total_subsets));
  ForEachLayerCombination(graph.NumLayers(), params.s,
                          [&](const LayerSet& layers) {
                            subsets.push_back(layers);
                          });

  std::vector<Candidate> slots(subsets.size());
  auto evaluate_range = [&](size_t begin, size_t end) {
    DccSolver solver(graph);
    for (size_t i = begin; i < end; ++i) {
      const LayerSet& layers = subsets[i];
      VertexSet scope =
          preprocess.layer_cores[static_cast<size_t>(layers[0])];
      for (size_t j = 1; j < layers.size() && !scope.empty(); ++j) {
        scope = IntersectSorted(
            scope, preprocess.layer_cores[static_cast<size_t>(layers[j])]);
      }
      VertexSet core =
          solver.Compute(layers, params.d, scope, params.dcc_engine);
      if (!core.empty()) {
        slots[i] = Candidate{layers, std::move(core)};
      }
    }
  };

  const int threads =
      std::max(1, std::min<int>(params.num_threads,
                                static_cast<int>(subsets.size()) > 0
                                    ? static_cast<int>(subsets.size())
                                    : 1));
  if (threads == 1) {
    evaluate_range(0, subsets.size());
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    const size_t chunk = (subsets.size() + static_cast<size_t>(threads) - 1) /
                         static_cast<size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      size_t begin = static_cast<size_t>(t) * chunk;
      size_t end = std::min(subsets.size(), begin + chunk);
      if (begin >= end) break;
      workers.emplace_back(evaluate_range, begin, end);
    }
    for (auto& worker : workers) worker.join();
  }

  std::vector<Candidate> candidates;
  candidates.reserve(slots.size());
  for (auto& slot : slots) {
    if (!slot.vertices.empty()) candidates.push_back(std::move(slot));
  }
  result.stats.candidates_generated = static_cast<int64_t>(subsets.size());

  // Lines 8–10: greedy max-cover selection of k candidates.
  Bitset covered(n);
  std::vector<bool> taken(candidates.size(), false);
  for (int round = 0; round < params.k; ++round) {
    int64_t best_gain = -1;
    size_t best = candidates.size();
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (taken[c]) continue;
      int64_t gain = 0;
      for (VertexId v : candidates[c].vertices) {
        if (!covered.Test(static_cast<size_t>(v))) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size()) break;  // fewer than k candidates exist
    taken[best] = true;
    for (VertexId v : candidates[best].vertices) {
      covered.Set(static_cast<size_t>(v));
    }
    result.cores.push_back(ResultCore{candidates[best].layers,
                                      std::move(candidates[best].vertices)});
    ++result.stats.updates_accepted;
  }

  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
