#ifndef MLCORE_DCCS_PREPROCESS_H_
#define MLCORE_DCCS_PREPROCESS_H_

#include <vector>

#include "core/dcc.h"
#include "dccs/cover.h"
#include "dccs/params.h"
#include "graph/multilayer_graph.h"
#include "util/bitset.h"
#include "util/thread_pool.h"

namespace mlcore {

/// Output of the shared preprocessing stage (§IV-C, lines 1–7 of BU-DCCS).
struct PreprocessResult {
  /// Vertices surviving iterated vertex deletion: every v has
  /// Num(v) ≥ s, where Num(v) counts layers whose d-core contains v.
  VertexSet active;
  /// Per-layer d-cores computed within `active` (indexed by layer id).
  std::vector<VertexSet> layer_cores;
  /// Bitmap form of layer_cores for O(1) membership tests.
  std::vector<Bitset> layer_core_bits;
  /// Num(v) for surviving vertices (0 for deleted ones).
  std::vector<int> support;

  /// kNone for a completed fixpoint. When a QueryControl stop fires between
  /// deletion rounds the run returns immediately with the reason recorded
  /// here; the other fields are then partial and MUST NOT be used (or
  /// cached) by the caller.
  QueryStop stopped = QueryStop::kNone;

  double seconds = 0.0;
};

/// Runs the vertex-deletion preprocessing of §IV-C. When `vertex_deletion`
/// is false (the Fig 28 No-VD ablation) the per-layer d-cores are computed
/// once over the whole graph and no vertex is deleted.
///
/// When `pool` is non-null the l independent per-layer d-core computations
/// of each deletion round fan out over the pool. Each core lands in its
/// layer-indexed slot and the support merge stays sequential, so the result
/// is bit-identical for every thread count (DESIGN.md §4).
///
/// When `base_cores` is non-null it must hold the full-graph per-layer
/// d-cores for this `d` (base_cores[i] == DCore(graph, i, d)); the first
/// deletion round copies them instead of recomputing, which lets a caller
/// that caches d-cores by `d` (the Engine, DESIGN.md §5) amortise the most
/// expensive round across queries with different `s`.
///
/// `control` adds a cooperative checkpoint at the top of every deletion
/// round: when it fires the function returns immediately with
/// `PreprocessResult::stopped` set and partial contents (see the struct
/// comment). A round that has started always completes, so an observed
/// kNone result is always a full, consistent fixpoint.
PreprocessResult Preprocess(const MultiLayerGraph& graph, int d, int s,
                            bool vertex_deletion, ThreadPool* pool = nullptr,
                            const std::vector<VertexSet>* base_cores = nullptr,
                            const QueryControl* control = nullptr);

/// Layer ids sorted by |C^d(G_i)|; descending order for BU-DCCS (Fig 7
/// line 9), ascending for TD-DCCS (Fig 11 line 2). When `sort_layers` is
/// false (the No-SL ablation) returns the identity order.
std::vector<LayerId> SortedLayerOrder(const PreprocessResult& preprocess,
                                      bool descending, bool sort_layers);

/// Translates sorted layer *positions* (indices into `order`) into the
/// ascending original layer ids, reusing `ids`' capacity. The BU and TD
/// searches address layers by position in their sorted order and call this
/// on every dCC evaluation / result update.
void PositionsToLayerIds(const std::vector<LayerId>& order,
                         const LayerSet& positions, LayerSet* ids);

/// Captured output of the InitTopK procedure (Appendix D): the candidate
/// (layers, core) pairs in the order they were offered to the result set,
/// plus the number of dCC evaluations spent producing them. Replaying the
/// pairs through `CoverageIndex::Update` reconstructs the exact seeded
/// state, so an engine can cache the seeds per (d, s, k, engine) and skip
/// the k·s dCC evaluations on repeat queries (DESIGN.md §5).
struct InitSeeds {
  std::vector<ResultCore> seeds;
  int64_t solver_calls = 0;
};

/// Runs the InitTopK greedy seeding (Appendix D) and returns its captured
/// form. Deterministic: depends only on (graph, preprocess, params.d,
/// params.s, params.k, params.dcc_engine). Returns empty seeds when
/// `params.init_result` is false (No-IR) or s > l.
InitSeeds ComputeInitSeeds(const MultiLayerGraph& graph,
                           const DccsParams& params,
                           const PreprocessResult& preprocess,
                           DccSolver& solver);

/// Replays captured seeds into a (fresh) top-k result set, reproducing the
/// state ComputeInitSeeds left its internal result set in.
void ReplayInitSeeds(const InitSeeds& seeds, CoverageIndex& result);

/// The InitTopK procedure (Appendix D): greedily seeds the top-k result set
/// with k candidate d-CCs so that the Eq. (1) pruning rules engage from the
/// start of the search. No-op when `params.init_result` is false (No-IR).
/// `result` must be freshly constructed (empty).
void InitTopK(const MultiLayerGraph& graph, const DccsParams& params,
              const PreprocessResult& preprocess, DccSolver& solver,
              CoverageIndex& result);

}  // namespace mlcore

#endif  // MLCORE_DCCS_PREPROCESS_H_
