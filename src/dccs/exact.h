#ifndef MLCORE_DCCS_EXACT_H_
#define MLCORE_DCCS_EXACT_H_

#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// Brute-force exact DCCS: enumerates F_{d,s}(G) and every k-combination of
/// it, returning a cover-maximal selection. Exponential in C(l, s); the
/// paper explicitly skips it in the evaluation ("cannot terminate in
/// reasonable time"), but it is invaluable as ground truth for the
/// approximation-ratio property tests on small graphs.
DccsResult ExactDccs(const MultiLayerGraph& graph, const DccsParams& params);

}  // namespace mlcore

#endif  // MLCORE_DCCS_EXACT_H_
