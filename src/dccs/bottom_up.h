#ifndef MLCORE_DCCS_BOTTOM_UP_H_
#define MLCORE_DCCS_BOTTOM_UP_H_

#include "dccs/execution.h"
#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// The BU-DCCS algorithm (paper §IV, Figs 3 and 7): depth-first search over
/// the bottom-up layer-subset lattice, interleaving candidate generation
/// with top-k maintenance. Implements all three §IV-B pruning rules:
/// Eq. (1) subtree pruning (Lemma 2), order-based pruning (Lemma 3) and
/// layer pruning (Lemma 4), plus the §IV-C preprocessing (vertex deletion,
/// layer sorting, InitTopK). Approximation ratio 1/4 (Theorem 3).
///
/// Preferable when s < l/2; see TD-DCCS for large s.
///
/// One-shot form: self-contained, preprocesses from scratch (a thin wrapper
/// over the execution-injecting overload below; prefer `mlcore::Engine` for
/// repeated queries on one graph).
DccsResult BottomUpDccs(const MultiLayerGraph& graph,
                        const DccsParams& params);

/// Execution-injecting form: reuses whatever cached state `exec` provides
/// (see dccs/execution.h). Semantics and results are identical to the
/// one-shot form for a matching execution.
DccsResult BottomUpDccs(const MultiLayerGraph& graph, const DccsParams& params,
                        const DccsExecution& exec);

}  // namespace mlcore

#endif  // MLCORE_DCCS_BOTTOM_UP_H_
