#ifndef MLCORE_DCCS_EXECUTION_H_
#define MLCORE_DCCS_EXECUTION_H_

#include <functional>

#include "core/dcc.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "util/thread_pool.h"

namespace mlcore {

/// Borrowed, reusable state injected into a DCCS algorithm call by a
/// long-lived host (the `mlcore::Engine`, DESIGN.md §5). Every field is
/// optional: a default-constructed execution makes the algorithms
/// self-contained, computing whatever they need per call — exactly the
/// historical one-shot behaviour of the free functions.
///
/// All pointed-to state is borrowed for the duration of the call and never
/// mutated (the solver and pool are mutated but owned-elsewhere scratch).
/// Injected state must match the query: `preprocess` must be the §IV-C
/// output for (d, s, vertex_deletion), `seeds` the InitTopK capture for
/// (d, s, k, dcc_engine), and `index` the §V-C vertex index built over
/// `preprocess->active` with threshold d. The algorithms MLCORE_DCHECK what
/// they cheaply can; semantic agreement is the injector's contract.
struct DccsExecution {
  /// §IV-C preprocessing to reuse; when set, the algorithm skips vertex
  /// deletion entirely and reports preprocess_seconds = 0 (the host knows
  /// the true acquisition cost and patches the stat).
  const PreprocessResult* preprocess = nullptr;

  /// Captured InitTopK seeds to replay instead of re-running Appendix D.
  /// Ignored by GD-DCCS (which has no InitTopK stage). When null and
  /// params.init_result is set, the algorithm computes seeds itself.
  const InitSeeds* seeds = nullptr;

  /// §V-C vertex index to reuse (TD-DCCS only). When null, TD-DCCS builds
  /// its own over preprocess->active.
  const VertexLevelIndex* index = nullptr;

  /// Solver scratch to reuse across calls. The algorithms account
  /// `stats.candidates_generated` as a num_calls() delta, so a solver shared
  /// across many queries keeps per-query statistics exact. Must not be used
  /// concurrently by two calls (DccSolver is not thread-safe).
  DccSolver* solver = nullptr;

  /// Fork-join pool for the parallel stages (per-layer d-core rounds of
  /// preprocessing, GD-DCCS candidate generation). Null runs them
  /// sequentially; results are bit-identical either way (DESIGN.md §4).
  ThreadPool* pool = nullptr;

  /// Per-lane solver provider for GD-DCCS candidate generation: called at
  /// most once per pool worker id, must be thread-safe, and the returned
  /// solvers must stay valid for the duration of the call. When empty, the
  /// candidate loop constructs (and discards) its own per-lane solvers.
  std::function<DccSolver*(int worker)> worker_solver;
};

}  // namespace mlcore

#endif  // MLCORE_DCCS_EXECUTION_H_
