#ifndef MLCORE_DCCS_EXECUTION_H_
#define MLCORE_DCCS_EXECUTION_H_

#include <functional>

#include "core/dcc.h"
#include "dccs/cover.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "obs/span.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {

/// Borrowed, reusable state injected into a DCCS algorithm call by a
/// long-lived host (the `mlcore::Engine`, DESIGN.md §5). Every field is
/// optional: a default-constructed execution makes the algorithms
/// self-contained, computing whatever they need per call — exactly the
/// historical one-shot behaviour of the free functions.
///
/// All pointed-to state is borrowed for the duration of the call and never
/// mutated (the solver and pool are mutated but owned-elsewhere scratch).
/// Injected state must match the query: `preprocess` must be the §IV-C
/// output for (d, s, vertex_deletion), `seeds` the InitTopK capture for
/// (d, s, k, dcc_engine), and `index` the §V-C vertex index built over
/// `preprocess->active` with threshold d. The algorithms MLCORE_DCHECK what
/// they cheaply can; semantic agreement is the injector's contract.
struct DccsExecution {
  /// §IV-C preprocessing to reuse; when set, the algorithm skips vertex
  /// deletion entirely and reports preprocess_seconds = 0 (the host knows
  /// the true acquisition cost and patches the stat).
  const PreprocessResult* preprocess = nullptr;

  /// Captured InitTopK seeds to replay instead of re-running Appendix D.
  /// Ignored by GD-DCCS (which has no InitTopK stage). When null and
  /// params.init_result is set, the algorithm computes seeds itself.
  const InitSeeds* seeds = nullptr;

  /// Already-seeded top-k prototype for (k, dcc_engine): the CoverageIndex
  /// state after replaying `seeds`. When set, BU/TD start from a *copy* of
  /// it and skip the per-query replay loop entirely (the Engine caches one
  /// per query entry). `seeds` must still be set — its solver_calls keeps
  /// candidates_generated exact — and must be the capture the prototype was
  /// seeded from.
  const CoverageIndex* seeded_topk = nullptr;

  /// Sorted layer order to reuse (SortedLayerOrder output): descending
  /// |C^d(G_i)| for BU, ascending for TD, identity when the query's
  /// params.sort_layers is false. When null the algorithm sorts per call.
  const std::vector<LayerId>* layer_order = nullptr;

  /// §V-C vertex index to reuse (TD-DCCS only). When null, TD-DCCS builds
  /// its own over preprocess->active.
  const VertexLevelIndex* index = nullptr;

  /// Solver scratch to reuse across calls. The algorithms account
  /// `stats.candidates_generated` as a num_calls() delta, so a solver shared
  /// across many queries keeps per-query statistics exact. Must not be used
  /// concurrently by two calls (DccSolver is not thread-safe).
  DccSolver* solver = nullptr;

  /// Fork-join pool for the parallel stages (per-layer d-core rounds of
  /// preprocessing, GD-DCCS candidate generation). Null runs them
  /// sequentially; results are bit-identical either way (DESIGN.md §4).
  ThreadPool* pool = nullptr;

  /// Per-lane solver provider for the parallel stages that evaluate d-CCs
  /// on worker threads: GD-DCCS candidate generation (lanes of `pool`) and
  /// the BU/TD parallel search (lanes of the per-query task group, see
  /// `search_threads`). Called at most once per worker id, must be
  /// thread-safe, and the returned solvers must stay valid for the duration
  /// of the call. When empty, the algorithms construct their own per-lane
  /// solvers. Lane 0 is the calling (driver) thread and always uses
  /// `solver`, never this provider.
  std::function<DccSolver*(int worker)> worker_solver;

  /// Worker lanes for the BU/TD search phase (DESIGN.md §10): the search
  /// spins up a TaskGroup of `search_threads` lanes (driver included) and
  /// evaluates lattice children speculatively on them while the driver
  /// commits results in the exact sequential order — bit-identical output
  /// at any value. <= 1 runs the historical sequential search with no task
  /// group at all. Hosts running concurrent queries should budget lanes so
  /// the sum stays within the machine (the Engine debits a shared lane
  /// budget, see Engine::Options::search_threads).
  int search_threads = 1;

  /// Cooperative stop control (util/cancellation.h): polled at the
  /// subset-lattice nodes of BU/TD, at GD-DCCS candidate-evaluation
  /// boundaries, and once per vertex-deletion round of a locally run
  /// preprocess. Null (or inactive) adds a single branch per checkpoint and
  /// changes nothing — an uncancelled, deadline-free query is bit-identical
  /// to one run without a control. When a stop fires, the algorithm returns
  /// early with `stats.stopped` set: kDeadline behaves exactly like the
  /// kBudget anytime path (best-so-far cores, budget_exhausted set), while
  /// kCancelled abandons the search and the partial result must be
  /// discarded by the caller (the Engine maps it to StatusCode::kCancelled).
  /// A stop during a locally run preprocess returns an empty result with
  /// `stats.stopped` set and no search phase.
  const QueryControl* control = nullptr;

  /// Trace buffer for this query's phase spans (DESIGN.md §12). When set,
  /// the algorithms commit "query.preprocess" (locally run preprocessing
  /// only — a host injecting `preprocess` records its own acquisition
  /// span), "query.search", "query.cover", and — for the parallel BU/TD
  /// search — one "search.lane" span per TaskGroup lane summarising that
  /// lane's busy wall/CPU time, parented under the search span so
  /// speculative evaluation waste is attributable to its driver. Null (or
  /// an MLCORE_OBS_DISABLED build) records nothing; the checks are a
  /// pointer test per *phase*, never per lattice node.
  obs::Trace* trace = nullptr;

  /// Parent span id the phase spans attach under (the host's root query
  /// span); 0 roots them at the trace itself.
  obs::SpanId trace_parent = 0;
};

/// The one tie-break order every cooperative checkpoint applies
/// (DESIGN.md §7): cancellation, then wall-clock deadline, then the
/// anytime search budget measured on `search_timer`. All three searches
/// poll through this so their stop semantics cannot drift apart.
inline QueryStop CheckQueryStop(const QueryControl* control,
                                double budget_seconds,
                                const WallTimer& search_timer) {
  if (control != nullptr) {
    const QueryStop stop = control->Check();
    if (stop != QueryStop::kNone) return stop;
  }
  if (budget_seconds > 0 && search_timer.Seconds() > budget_seconds) {
    return QueryStop::kBudget;
  }
  return QueryStop::kNone;
}

/// Records a fired stop in `stats`: kDeadline and kBudget are the anytime
/// outcomes (budget_exhausted), kCancelled is not (the partial result gets
/// discarded, not served). Returns whether a stop fired.
inline bool LatchQueryStop(QueryStop stop, SearchStats* stats) {
  if (stop == QueryStop::kNone) return false;
  stats->stopped = stop;
  if (stop != QueryStop::kCancelled) stats->budget_exhausted = true;
  return true;
}

}  // namespace mlcore

#endif  // MLCORE_DCCS_EXECUTION_H_
