#include "dccs/params.h"

#include "dccs/cover.h"

namespace mlcore {

VertexSet DccsResult::Cover() const { return CoverOf(cores); }

int64_t DccsResult::CoverSize() const {
  return static_cast<int64_t>(Cover().size());
}

std::string AlgorithmName(DccsAlgorithm algorithm) {
  switch (algorithm) {
    case DccsAlgorithm::kGreedy:
      return "GD-DCCS";
    case DccsAlgorithm::kBottomUp:
      return "BU-DCCS";
    case DccsAlgorithm::kTopDown:
      return "TD-DCCS";
    case DccsAlgorithm::kAuto:
      return "AUTO";
  }
  return "unknown";
}

DccsAlgorithm RecommendedAlgorithm(const MultiLayerGraph& graph, int s) {
  return RecommendedAlgorithm(graph.NumLayers(), s);
}

DccsAlgorithm RecommendedAlgorithm(int32_t num_layers, int s) {
  return 2 * s < num_layers ? DccsAlgorithm::kBottomUp
                            : DccsAlgorithm::kTopDown;
}

}  // namespace mlcore
