#ifndef MLCORE_DCCS_CONCURRENT_TOPK_H_
#define MLCORE_DCCS_CONCURRENT_TOPK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "dccs/cover.h"
#include "dccs/params.h"
#include "graph/multilayer_graph.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mlcore {

/// The shared top-k state of the parallel BU-/TD-DCCS searches
/// (DESIGN.md §10): a `CoverageIndex` owned by the sequential commit
/// driver, plus a lock-free *published bound* that speculative worker
/// tasks read to decide whether launching or executing an evaluation is
/// still worthwhile.
///
/// Division of labour:
///   * The commit driver — exactly one thread — calls the exact methods
///     (`Update`, `full`, `SatisfiesEq1`, `BelowOrderThreshold`,
///     `SatisfiesEq2`, `index`). These reproduce the sequential search's
///     pruning decisions bit-for-bit, because the driver applies them in
///     the sequential total order (depth, parent path, sibling rank).
///   * Any thread may call the `Speculatively*` methods, which read a
///     relaxed-atomic snapshot republished after every Update. A stale
///     snapshot can only *under*-prune (the snapshot lags the driver, and
///     a weaker bound admits a superset of evaluations), so speculation
///     costs wasted work, never a wrong result — the commit driver
///     re-checks everything against the exact state before anything enters
///     R. Update itself additionally serialises under a mutex so the class
///     stays safe if a future host ever commits from more than one thread.
class ConcurrentTopK {
 public:
  /// Starts from an already-seeded index (InitTopK replay); takes the
  /// index by value and publishes its bound.
  explicit ConcurrentTopK(CoverageIndex seeded);

  ConcurrentTopK(const ConcurrentTopK&) = delete;
  ConcurrentTopK& operator=(const ConcurrentTopK&) = delete;

  // --- Exact API: commit driver only. ---
  //
  // The reads below deliberately bypass mu_ (NO_THREAD_SAFETY_ANALYSIS):
  // by the single-driver contract above, exactly one thread calls them,
  // and that same thread is the only one that mutates index_ (through
  // Update, which does serialise under mu_), so the accesses are ordered
  // by program order alone. Taking the lock here would put a mutex
  // acquisition on the hottest pruning path for no exclusion gain.
  bool Update(const VertexSet& candidate, const LayerSet& layers)
      MLCORE_EXCLUDES(mu_);
  bool full() const MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    return index_.full();
  }
  bool SatisfiesEq1(const VertexSet& candidate) const
      MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    return index_.SatisfiesEq1(candidate);
  }
  bool BelowOrderThreshold(int64_t upper_bound_size) const
      MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    return index_.BelowOrderThreshold(upper_bound_size);
  }
  bool SatisfiesEq2(int64_t potential_size) const
      MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    return index_.SatisfiesEq2(potential_size);
  }
  const CoverageIndex& index() const MLCORE_NO_THREAD_SAFETY_ANALYSIS {
    return index_;
  }

  // --- Speculative API: any thread, lock-free, stale-is-safe. ---
  /// Snapshot of full(); false while |R| < k (no pruning applies then).
  bool SpeculativelyFull() const {
    return size_.load(std::memory_order_relaxed) >=
           cap_.load(std::memory_order_relaxed);
  }
  /// Snapshot of BelowOrderThreshold (Lemmas 3/6): true when a candidate
  /// whose size is at most `upper_bound_size` was already hopeless at the
  /// last published bound. Returns false while R was not yet full.
  bool SpeculativelyBelowOrderThreshold(int64_t upper_bound_size) const {
    if (!SpeculativelyFull()) return false;
    const int64_t k = cap_.load(std::memory_order_relaxed);
    return upper_bound_size * k <
           cover_size_.load(std::memory_order_relaxed) +
               k * min_exclusive_.load(std::memory_order_relaxed);
  }

 private:
  // Re-publishes the atomic bound mirror from index_.
  void Publish() MLCORE_REQUIRES(mu_);

  mutable util::Mutex mu_{util::lock_rank::kTopK, "ConcurrentTopK::mu_"};
  CoverageIndex index_ MLCORE_GUARDED_BY(mu_);

  std::atomic<int64_t> cover_size_{0};
  std::atomic<int64_t> min_exclusive_{0};
  std::atomic<int32_t> size_{0};
  std::atomic<int32_t> cap_{1};
};

}  // namespace mlcore

#endif  // MLCORE_DCCS_CONCURRENT_TOPK_H_
