#ifndef MLCORE_DCCS_DCCS_H_
#define MLCORE_DCCS_DCCS_H_

/// Umbrella header for the diversified coherent core search library.
///
/// Quick start:
///
///   #include "dccs/dccs.h"
///
///   mlcore::MultiLayerGraph graph = ...;   // via GraphBuilder / io / datasets
///   mlcore::DccsParams params;
///   params.d = 4; params.s = 3; params.k = 10;
///   mlcore::DccsResult result = mlcore::SolveDccs(
///       graph, params, mlcore::DccsAlgorithm::kBottomUp);
///   for (const auto& core : result.cores) { ... }

#include "dccs/bottom_up.h"
#include "dccs/exact.h"
#include "dccs/greedy.h"
#include "dccs/params.h"
#include "dccs/top_down.h"

namespace mlcore {

/// Dispatches to the requested DCCS algorithm.
inline DccsResult SolveDccs(const MultiLayerGraph& graph,
                            const DccsParams& params,
                            DccsAlgorithm algorithm) {
  switch (algorithm) {
    case DccsAlgorithm::kGreedy:
      return GreedyDccs(graph, params);
    case DccsAlgorithm::kBottomUp:
      return BottomUpDccs(graph, params);
    case DccsAlgorithm::kTopDown:
      return TopDownDccs(graph, params);
  }
  return {};
}

/// Picks the algorithm the paper recommends for the given support
/// threshold: bottom-up when s < l/2, top-down otherwise (§I, §V).
inline DccsAlgorithm RecommendedAlgorithm(const MultiLayerGraph& graph,
                                          int s) {
  return 2 * s < graph.NumLayers() ? DccsAlgorithm::kBottomUp
                                   : DccsAlgorithm::kTopDown;
}

}  // namespace mlcore

#endif  // MLCORE_DCCS_DCCS_H_
