#ifndef MLCORE_DCCS_DCCS_H_
#define MLCORE_DCCS_DCCS_H_

/// Umbrella header for the diversified coherent core search library.
///
/// Quick start — the service path (preferred; reuses preprocessing across
/// queries and never aborts on bad input, see DESIGN.md §5):
///
///   #include "dccs/dccs.h"
///
///   mlcore::MultiLayerGraph graph = ...;   // via GraphBuilder / io / datasets
///   mlcore::Engine engine(std::move(graph),
///                         {.num_threads = 4});
///   mlcore::DccsRequest request;           // algorithm defaults to kAuto
///   request.params.d = 4; request.params.s = 3; request.params.k = 10;
///   mlcore::Expected<mlcore::DccsResult> response = engine.Run(request);
///   if (!response.ok()) { /* response.status().message */ }
///   for (const auto& core : response->cores) { ... }
///
///   // A second query with the same d (and s) skips vertex deletion
///   // entirely; independent queries batch over the engine's pool:
///   std::vector<mlcore::DccsRequest> sweep = ...;
///   auto responses = engine.RunBatch(sweep);
///
///   // Async submission with deadline/priority and cooperative
///   // cancellation (DESIGN.md §7):
///   mlcore::QueryHandle handle = engine.Submit(
///       request, {.priority = 1, .deadline_seconds = 0.5});
///   // ... later, from any thread:
///   handle.Cancel();                        // or let the deadline fire
///   const auto& outcome = handle.Wait();    // kCancelled / result
///
///   // Standing query over an evolving graph (DESIGN.md §9): one
///   // revision per published epoch, each carrying the full result plus
///   // a vertex-level delta against the previous revision:
///   mlcore::Subscription sub = *engine.Subscribe(request);
///   while (auto revision = sub.Next()) { /* revision->delta */ }
///
/// One-shot form — a thin wrapper constructing a temporary Engine per call;
/// fine for scripts and tests, wasteful for repeated queries:
///
///   mlcore::DccsResult result = mlcore::SolveDccs(
///       graph, params, mlcore::DccsAlgorithm::kBottomUp);

#include "dccs/bottom_up.h"
#include "dccs/exact.h"
#include "dccs/greedy.h"
#include "dccs/params.h"
#include "dccs/top_down.h"
#include "service/engine.h"

namespace mlcore {

/// Dispatches to the requested DCCS algorithm (kAuto applies the paper's
/// recommendation rule) through a temporary single-query `Engine`.
///
/// Invalid parameters — including an out-of-enum `algorithm` value — abort
/// with the engine's validation message rather than returning a silently
/// empty result; services that must stay up on bad input should hold a
/// long-lived `Engine` and branch on `Engine::Run`'s status instead.
inline DccsResult SolveDccs(const MultiLayerGraph& graph,
                            const DccsParams& params,
                            DccsAlgorithm algorithm) {
  // query_workers = 0: the single Run executes on this thread via the
  // waiter-donation path, so the one-shot wrapper spawns no scheduler
  // thread.
  Engine engine(&graph,
                Engine::Options{.num_threads = params.num_threads,
                                .query_workers = 0,
                                .search_threads = params.search_threads});
  Expected<DccsResult> response = engine.Run(DccsRequest{params, algorithm});
  // NOLINT(mlcore-release-check): documented one-shot contract — the
  // legacy wrapper aborts on bad input; servers use Engine::Run instead.
  MLCORE_CHECK_MSG(response.ok(), response.status().message.c_str());
  return std::move(response).value();
}

}  // namespace mlcore

#endif  // MLCORE_DCCS_DCCS_H_
