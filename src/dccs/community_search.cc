#include "dccs/community_search.h"

#include <algorithm>

#include "core/dcc.h"
#include "core/dcore.h"
#include "util/check.h"

namespace mlcore {

CommunitySearchResult SearchCommunity(const MultiLayerGraph& graph,
                                      VertexId query, int d, int s) {
  // Engine::Validate(CommunityRequest) guarantees both on request paths.
  MLCORE_DCHECK(query >= 0 && query < graph.NumVertices());
  MLCORE_DCHECK(s >= 1);
  if (s > graph.NumLayers()) return {};  // vacuous; skip the core loop

  std::vector<VertexSet> cores(static_cast<size_t>(graph.NumLayers()));
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    cores[static_cast<size_t>(layer)] = DCore(graph, layer, d);
  }
  DccSolver solver(graph);
  return SearchCommunityWithCores(graph, cores, solver, query, d, s);
}

CommunitySearchResult SearchCommunityWithCores(
    const MultiLayerGraph& graph, const std::vector<VertexSet>& cores,
    DccSolver& solver, VertexId query, int d, int s) {
  // Engine::Validate(CommunityRequest) guarantees the first two on
  // request paths; the cores shape is the caller's (engine's) contract.
  MLCORE_DCHECK(query >= 0 && query < graph.NumVertices());
  MLCORE_DCHECK(s >= 1);
  MLCORE_DCHECK(static_cast<int32_t>(cores.size()) == graph.NumLayers());
  CommunitySearchResult result;
  if (s > graph.NumLayers()) return result;

  // Layers whose d-core contains the query at all.
  std::vector<LayerId> usable;
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    if (std::binary_search(cores[static_cast<size_t>(layer)].begin(),
                           cores[static_cast<size_t>(layer)].end(), query)) {
      usable.push_back(layer);
    }
  }
  if (static_cast<int>(usable.size()) < s) return result;

  LayerSet chosen;
  VertexSet community;
  for (int step = 0; step < s; ++step) {
    LayerId best_layer = -1;
    VertexSet best_community;
    for (LayerId candidate : usable) {
      if (std::find(chosen.begin(), chosen.end(), candidate) !=
          chosen.end()) {
        continue;
      }
      LayerSet extended = chosen;
      extended.insert(
          std::upper_bound(extended.begin(), extended.end(), candidate),
          candidate);
      VertexSet scope =
          step == 0 ? cores[static_cast<size_t>(candidate)]
                    : IntersectSorted(community,
                                      cores[static_cast<size_t>(candidate)]);
      VertexSet core = solver.Compute(extended, d, scope);
      if (!std::binary_search(core.begin(), core.end(), query)) continue;
      if (core.size() > best_community.size()) {
        best_community = std::move(core);
        best_layer = candidate;
      }
    }
    if (best_layer < 0) return result;  // query fell out of every extension
    chosen.insert(
        std::upper_bound(chosen.begin(), chosen.end(), best_layer),
        best_layer);
    community = std::move(best_community);
  }

  result.layers = std::move(chosen);
  result.community = std::move(community);
  return result;
}

}  // namespace mlcore
