#ifndef MLCORE_DCCS_COVER_H_
#define MLCORE_DCCS_COVER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// Union of the cores' (sorted) vertex sets — the paper's Cov(R) for an
/// arbitrary result list. Shared by `DccsResult::Cover` and the
/// subscription delta computation (service/delta.h).
VertexSet CoverOf(const std::vector<ResultCore>& cores);

/// Maintains the temporary top-k diversified d-CC set R and implements the
/// `Update` procedure of paper §IV-A / Appendix C.
///
/// Internally mirrors Appendix C's hash table M (vertex → owning results)
/// and the per-result exclusive-coverage sizes |Δ(R, C')|. Because k ≤ 25 in
/// every experiment, the argmin result C*(R) is located by an O(k) scan
/// rather than the paper's secondary hash H — same asymptotics up to the
/// constant k, much simpler invariants (see DESIGN.md §3).
///
/// Update rules (paper §IV-A):
///   Rule 1: if |R| < k, C is inserted unconditionally.
///   Rule 2: if |R| = k and |Cov((R − {C*}) ∪ {C})| ≥ (1 + 1/k)|Cov(R)|,
///           C replaces C*(R), the result covering the fewest exclusive
///           vertices.
class CoverageIndex {
 public:
  explicit CoverageIndex(int k);

  int capacity() const { return k_; }
  int size() const { return static_cast<int>(entries_.size()); }
  bool full() const { return size() == k_; }

  /// |Cov(R)|.
  int64_t cover_size() const { return cover_size_; }

  const std::vector<ResultCore>& entries() const { return entries_; }

  /// |Δ(R, C')| for result slot `slot`: vertices covered only by that
  /// result.
  int64_t ExclusiveSize(int slot) const {
    return exclusive_[static_cast<size_t>(slot)];
  }

  /// Index of C*(R), the result with minimum exclusive coverage.
  /// Requires size() > 0.
  int MinExclusiveSlot() const;

  /// |Δ(R, C*(R))|; 0 when R is empty.
  int64_t MinExclusiveSize() const;

  /// The Size operation of Appendix C: |Cov((R − {C*(R)}) ∪ {candidate})|.
  int64_t SizeWithReplacement(const VertexSet& candidate) const;

  /// Number of candidate vertices not yet covered by R
  /// (|Cov(R ∪ {candidate})| − |Cov(R)|); used by InitTopK and GD-DCCS.
  int64_t MarginalGain(const VertexSet& candidate) const;

  /// True iff the candidate passes Eq. (1):
  /// |Cov((R − {C*}) ∪ {C})| ≥ (1 + 1/k)|Cov(R)|. Only meaningful when R is
  /// full; returns true otherwise (Rule 1 always accepts).
  bool SatisfiesEq1(const VertexSet& candidate) const;

  /// The order-based pruning threshold of Lemmas 3 and 6:
  /// |Cov(R)|/k + |Δ(R, C*(R))|. A candidate upper bound strictly below
  /// this value cannot satisfy Eq. (1).
  double OrderPruneThreshold() const;

  /// True iff `upper_bound_size` (an upper bound on a candidate's size)
  /// falls below OrderPruneThreshold(), i.e. the subtree can be skipped.
  bool BelowOrderThreshold(int64_t upper_bound_size) const;

  /// Eq. (2) of Lemma 7 for a potential set of size `potential_size`:
  /// |U| < (1/k + 1/k²)|Cov(R)| + (1 + 1/k)|Δ(R, C*)|.
  bool SatisfiesEq2(int64_t potential_size) const;

  /// The Update procedure (Appendix C). Returns true iff R changed.
  bool Update(const VertexSet& candidate, const LayerSet& layers);

  /// Rebuilds Δ sizes from scratch; test-only consistency check.
  void CheckInvariants() const;

 private:
  void Insert(const VertexSet& candidate, const LayerSet& layers);
  void Delete(int slot);

  int k_;
  int64_t cover_size_ = 0;
  std::vector<ResultCore> entries_;
  std::vector<int64_t> exclusive_;
  // Appendix C's M: vertex -> slots covering it. Slot lists are tiny
  // (bounded by k), so a flat vector beats a hash set.
  std::unordered_map<VertexId, std::vector<int>> owners_;
};

}  // namespace mlcore

#endif  // MLCORE_DCCS_COVER_H_
