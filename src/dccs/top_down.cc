#include "dccs/top_down.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "core/dcc.h"
#include "dccs/cover.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {

namespace {

/// DFS machinery for TD-Gen (paper Fig 8). As in the bottom-up search,
/// layers are addressed by *position* in the sorted layer order (ascending
/// |C^d(G_i)|, Fig 11 line 2); positions translate back to layer ids at
/// every dCC/RefineC evaluation.
class TopDownSearch {
 public:
  TopDownSearch(const MultiLayerGraph& graph, const DccsParams& params,
                const PreprocessResult& preprocess,
                const std::vector<LayerId>& order,
                const VertexLevelIndex& index, const QueryControl* control,
                DccSolver& solver, CoverageIndex& result, SearchStats& stats)
      : graph_(graph),
        params_(params),
        preprocess_(preprocess),
        order_(order),
        index_(index),
        control_(control),
        solver_(solver),
        result_(result),
        stats_(stats),
        rng_(kSeed),
        state_(static_cast<size_t>(graph.NumVertices()), kUntouched),
        dplus_(static_cast<size_t>(graph.NumVertices()) *
                   static_cast<size_t>(graph.NumLayers()),
               0),
        in_z_(static_cast<size_t>(graph.NumVertices())) {}

  void Run() {
    const int l = graph_.NumLayers();
    LayerSet root_positions(static_cast<size_t>(l));
    for (int j = 0; j < l; ++j) root_positions[static_cast<size_t>(j)] = j;
    // Fig 11 line 4: the root d-CC w.r.t. all layers.
    VertexSet root_core = solver_.Compute(ToLayerIds(root_positions),
                                          params_.d, preprocess_.active,
                                          params_.dcc_engine);
    if (params_.s == l) {
      if (result_.Update(root_core, ToLayerIds(root_positions))) {
        ++stats_.updates_accepted;
      }
      return;
    }
    Gen(root_positions, root_core, preprocess_.active);
  }

 private:
  static constexpr uint64_t kSeed = 0x5851f42d4c957f2dULL;

  // Cooperative checkpoint at subset-lattice node boundaries: the anytime
  // time_budget_seconds plus the injected QueryControl (cancellation /
  // wall-clock deadline) — see BottomUpSearch::StopRequested.
  bool StopRequested() {
    if (stats_.stopped != QueryStop::kNone) return true;
    return LatchQueryStop(
        CheckQueryStop(control_, params_.time_budget_seconds, timer_),
        &stats_);
  }

  const VertexSet& CoreAtPosition(int pos) const {
    return preprocess_.layer_cores[static_cast<size_t>(
        order_[static_cast<size_t>(pos)])];
  }
  const Bitset& CoreBitsAtPosition(int pos) const {
    return preprocess_.layer_core_bits[static_cast<size_t>(
        order_[static_cast<size_t>(pos)])];
  }

  LayerSet ToLayerIds(const LayerSet& positions) const {
    LayerSet ids;
    ToLayerIdsInto(positions, &ids);
    return ids;
  }

  // Buffer-reusing form for transient translations on the hot path.
  void ToLayerIdsInto(const LayerSet& positions, LayerSet* ids) const {
    PositionsToLayerIds(order_, positions, ids);
  }

  // Largest position missing from sorted `positions`, or -1 if none below
  // l. l ≤ 64 (checked at entry), so a word-sized mask replaces the Bitset
  // this built per tree node.
  int MaxComplement(const LayerSet& positions) const {
    const int l = graph_.NumLayers();
    uint64_t present = 0;
    for (LayerId p : positions) present |= uint64_t{1} << p;
    const uint64_t missing = ~present & ((l == 64) ? ~uint64_t{0}
                                                   : (uint64_t{1} << l) - 1);
    if (missing == 0) return -1;
    return 63 - __builtin_clzll(missing);
  }

  // RefineU (Fig 9): shrinks the parent's potential set to U^d_{L'}.
  // Refinement Method 2 filters by support over the Class-2 layers against
  // the preprocessed per-layer d-cores (static), then Method 1 peels to
  // d-density on the Class-1 layers; since the Method-2 counts never change
  // during peeling, one pass of each reaches the paper's fixpoint.
  void RefineU(const VertexSet& parent_u, const LayerSet& positions,
               VertexSet* out) {
    const int max_comp = MaxComplement(positions);
    class1_.clear();
    class2_.clear();
    for (LayerId p : positions) {
      (p < max_comp ? class1_ : class2_).push_back(p);
    }
    const int need =
        params_.s - static_cast<int>(class1_.size());  // s − |M_{L'}|

    VertexSet& filtered = class1_.empty() ? *out : filter_buf_;
    filtered.clear();
    filtered.reserve(parent_u.size());
    for (VertexId v : parent_u) {
      int count = 0;
      if (need > 0) {
        for (LayerId p : class2_) {
          if (CoreBitsAtPosition(p).Test(static_cast<size_t>(v))) ++count;
          if (count >= need) break;
        }
        if (count < need) continue;  // Method 2 removal
      }
      filtered.push_back(v);
    }
    if (class1_.empty()) return;
    // Method 1: peel to d-density on the must-keep layers.
    ToLayerIdsInto(class1_, &ids_buf_);
    solver_.Compute(ids_buf_, params_.d, filtered, out, params_.dcc_engine);
  }

  // RefineC: computes C^d_{L'}(G) inside U^d_{L'}. Both paths first apply
  // the Lemma 8 stage bound.
  void RefineC(const VertexSet& potential, const LayerSet& positions,
               VertexSet* out) {
    const auto depth = static_cast<int>(positions.size());
    scope_buf_.clear();
    scope_buf_.reserve(potential.size());
    for (VertexId v : potential) {
      if (index_.stage(v) >= depth) scope_buf_.push_back(v);
    }
    ToLayerIdsInto(positions, &ids_buf_);
    if (!params_.use_index_refinec) {
      solver_.Compute(ids_buf_, params_.d, scope_buf_, out,
                      params_.dcc_engine);
      return;
    }
    RefineCIndexed(scope_buf_, ids_buf_, out);
  }

  // The index-based Fig 10 search in the two-pass form justified by
  // Lemma 9: (1) keep only vertices reachable through a level-monotone
  // chain of index edges from a vertex whose label L(w) covers L'; (2) peel
  // the reached set to d-density on L'. Fig 10's single fused sweep
  // (states + CascadeD) discards reachable vertices on mixed levels and
  // under-approximates the d-CC; see DESIGN.md §3.
  void RefineCIndexed(const VertexSet& scope, const LayerSet& ids,
                      VertexSet* out);

  // TD-Gen (Fig 8). `positions` = L (|L| > s), `core` = C^d_L, `potential`
  // = U^d_L.
  void Gen(const LayerSet& positions, const VertexSet& core,
           const VertexSet& potential) {
    (void)core;  // the parent d-CC guides no decision beyond reaching here
    const auto depth = static_cast<int>(positions.size());
    const int max_comp = MaxComplement(positions);

    // LR: removable positions (line 1).
    std::vector<int> removable;
    for (LayerId p : positions) {
      if (p > max_comp) removable.push_back(p);
    }
    if (removable.empty()) return;

    // Lines 2–5: materialise every child's U and C up front.
    struct Child {
      int removed_position;
      LayerSet positions;
      VertexSet potential;
      VertexSet core;
    };
    std::vector<Child> children;
    children.reserve(removable.size());
    for (int j : removable) {
      if (StopRequested()) return;
      ++stats_.nodes_visited;
      Child child;
      child.removed_position = j;
      child.positions = positions;
      child.positions.erase(std::find(child.positions.begin(),
                                      child.positions.end(),
                                      static_cast<LayerId>(j)));
      RefineU(potential, child.positions, &child.potential);
      RefineC(child.potential, child.positions, &child.core);
      children.push_back(std::move(child));
    }

    if (!result_.full()) {
      // Cases 1–2 (lines 6–12).
      for (Child& child : children) {
        if (StopRequested()) return;
        if (depth - 1 == params_.s) {
          ToLayerIdsInto(child.positions, &ids_buf_);
          if (result_.Update(child.core, ids_buf_)) {
            ++stats_.updates_accepted;
          }
        } else {
          Gen(child.positions, child.core, child.potential);
        }
      }
      return;
    }

    // Cases 3–4 (lines 13–29): order children by |U| descending (Lemma 6).
    std::stable_sort(children.begin(), children.end(),
                     [](const Child& a, const Child& b) {
                       return a.potential.size() > b.potential.size();
                     });
    for (size_t idx = 0; idx < children.size(); ++idx) {
      if (StopRequested()) return;
      Child& child = children[idx];
      if (result_.BelowOrderThreshold(
              static_cast<int64_t>(child.potential.size()))) {
        stats_.pruned_order += static_cast<int64_t>(children.size() - idx);
        break;  // Lemma 6
      }
      if (depth - 1 == params_.s) {
        ToLayerIdsInto(child.positions, &ids_buf_);
        if (result_.Update(child.core, ids_buf_)) {
          ++stats_.updates_accepted;
        }
        continue;
      }
      // Lemma 5: every descendant candidate is contained in U^d_{L'}, so if
      // U fails Eq. (1) the whole subtree is hopeless. (Fig 8 line 23
      // prints C^d_{L'} here; the §V-A text and Lemma 5 establish the bound
      // via the potential set, which is what we check — see DESIGN.md.)
      if (!result_.SatisfiesEq1(child.potential)) {
        ++stats_.pruned_eq1;
        continue;
      }
      // Lemma 7: in the optimistic regime a single random descendant
      // represents the subtree.
      if (result_.SatisfiesEq1(child.core) &&
          result_.SatisfiesEq2(static_cast<int64_t>(child.potential.size()))) {
        if (TryPotentialShortcut(child.positions, child.potential)) {
          ++stats_.pruned_potential;
          continue;
        }
      }
      Gen(child.positions, child.core, child.potential);
    }
  }

  // Lines 25–27 of Fig 8: pick a random size-s descendant S of L', compute
  // its d-CC inside U^d_{L'}, and update R with it. Returns false when L'
  // has no size-s descendant (a dead-end branch of the top-down lattice).
  bool TryPotentialShortcut(const LayerSet& positions,
                            const VertexSet& potential) {
    const auto depth = static_cast<int>(positions.size());
    const int max_comp = MaxComplement(positions);
    std::vector<LayerId> removable;
    for (LayerId p : positions) {
      if (p > max_comp) removable.push_back(p);
    }
    const int to_remove = depth - params_.s;
    if (static_cast<int>(removable.size()) < to_remove) return false;
    std::shuffle(removable.begin(), removable.end(), rng_.engine());
    removable.resize(static_cast<size_t>(to_remove));

    LayerSet descendant;
    for (LayerId p : positions) {
      if (std::find(removable.begin(), removable.end(), p) ==
          removable.end()) {
        descendant.push_back(p);
      }
    }
    scope_buf_.clear();
    scope_buf_.reserve(potential.size());
    for (VertexId v : potential) {
      if (index_.stage(v) >= params_.s) scope_buf_.push_back(v);
    }
    ToLayerIdsInto(descendant, &ids_buf_);
    solver_.Compute(ids_buf_, params_.d, scope_buf_, &core_buf_,
                    params_.dcc_engine);
    if (result_.Update(core_buf_, ids_buf_)) ++stats_.updates_accepted;
    return true;
  }

  const MultiLayerGraph& graph_;
  const DccsParams& params_;
  const PreprocessResult& preprocess_;
  const std::vector<LayerId>& order_;
  const VertexLevelIndex& index_;
  const QueryControl* control_;
  DccSolver& solver_;
  CoverageIndex& result_;
  SearchStats& stats_;
  Rng rng_;
  WallTimer timer_;

  // RefineCIndexed scratch (cleared per call along the visited scope).
  static constexpr uint8_t kUntouched = 0;    // unexplored
  static constexpr uint8_t kUndetermined = 1;
  static constexpr uint8_t kDiscarded = 2;
  std::vector<uint8_t> state_;
  std::vector<int32_t> dplus_;
  Bitset in_z_;

  // Reusable per-node buffers: the tree search calls RefineU/RefineC/
  // TryPotentialShortcut thousands of times; these hold their transient
  // layer translations, scope filters and leaf cores across calls.
  LayerSet class1_, class2_, ids_buf_;
  VertexSet filter_buf_, scope_buf_, core_buf_, reached_buf_;
  std::vector<std::pair<int, VertexId>> by_level_buf_;
  std::vector<VertexId> peel_queue_;
};

void TopDownSearch::RefineCIndexed(const VertexSet& scope,
                                   const LayerSet& ids, VertexSet* out) {
  const auto l = static_cast<size_t>(graph_.NumLayers());
  out->clear();
  if (scope.empty()) return;

  for (VertexId v : scope) {
    in_z_.Set(static_cast<size_t>(v));
    state_[static_cast<size_t>(v)] = kUntouched;
  }

  // --- Pass 1 (Lemma 9 filter): keep vertices reachable through a
  // level-monotone chain of index edges starting from a vertex whose label
  // covers L'. Sweeping levels in ascending order makes one pass
  // sufficient: a vertex is reached either by its own label or from a
  // strictly lower (already swept) level.
  std::vector<std::pair<int, VertexId>>& by_level = by_level_buf_;
  by_level.clear();
  by_level.reserve(scope.size());
  for (VertexId v : scope) by_level.emplace_back(index_.level(v), v);
  std::sort(by_level.begin(), by_level.end());

  auto label_covers = [&](VertexId v) {
    const LayerSet& label = index_.label(v);
    return std::includes(label.begin(), label.end(), ids.begin(), ids.end());
  };

  VertexSet& reached = reached_buf_;
  reached.clear();
  reached.reserve(scope.size());
  for (const auto& [level, v] : by_level) {
    if (state_[static_cast<size_t>(v)] == kUntouched && !label_covers(v)) {
      state_[static_cast<size_t>(v)] = kDiscarded;
      continue;
    }
    state_[static_cast<size_t>(v)] = kUndetermined;
    reached.push_back(v);
    for (LayerId layer : ids) {
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (!in_z_.Test(static_cast<size_t>(u))) continue;
        if (state_[static_cast<size_t>(u)] == kUntouched &&
            index_.level(u) > level) {
          // Mark u as reached-from-below; validated when its level sweeps.
          state_[static_cast<size_t>(u)] = kUndetermined;
        }
      }
    }
  }
  std::sort(reached.begin(), reached.end());

  // --- Pass 2: peel `reached` to d-density on L' (cascading deletions on
  // the d⁺ counters — the RefineC/CascadeD bookkeeping of Fig 10).
  for (VertexId v : reached) {
    for (LayerId layer : ids) {
      int32_t count = 0;
      for (VertexId u : graph_.Neighbors(layer, v)) {
        // Every vertex still kUndetermined after pass 1 is in `reached`.
        if (in_z_.Test(static_cast<size_t>(u)) &&
            state_[static_cast<size_t>(u)] == kUndetermined) {
          ++count;
        }
      }
      dplus_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] = count;
    }
  }
  std::vector<VertexId>& queue = peel_queue_;
  queue.clear();
  for (VertexId v : reached) {
    for (LayerId layer : ids) {
      if (dplus_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] <
          params_.d) {
        state_[static_cast<size_t>(v)] = kDiscarded;
        queue.push_back(v);
        break;
      }
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    VertexId v = queue[head];
    for (LayerId layer : ids) {
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (!in_z_.Test(static_cast<size_t>(u)) ||
            state_[static_cast<size_t>(u)] != kUndetermined) {
          continue;
        }
        auto& du =
            dplus_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
        if (--du < params_.d) {
          state_[static_cast<size_t>(u)] = kDiscarded;
          queue.push_back(u);
        }
      }
    }
  }

  for (VertexId v : reached) {
    if (state_[static_cast<size_t>(v)] == kUndetermined) out->push_back(v);
  }
  for (VertexId v : scope) {
    in_z_.Clear(static_cast<size_t>(v));
    state_[static_cast<size_t>(v)] = kUntouched;
  }
}

}  // namespace

DccsResult TopDownDccs(const MultiLayerGraph& graph, const DccsParams& params) {
  // Per-layer d-cores of preprocessing fan out over a pool scoped to this
  // call; the search itself is sequential through the shared top-k state.
  ThreadPool pool(params.num_threads);
  DccsExecution exec;
  exec.pool = &pool;
  return TopDownDccs(graph, params, exec);
}

DccsResult TopDownDccs(const MultiLayerGraph& graph, const DccsParams& params,
                       const DccsExecution& exec) {
  MLCORE_CHECK(params.s >= 1);
  MLCORE_CHECK(params.k >= 1);
  MLCORE_CHECK(graph.NumLayers() <= 64);

  WallTimer total_timer;
  DccsResult result;
  if (params.s > graph.NumLayers()) {
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // Fig 11 line 1 = BU-DCCS lines 1–8: vertex deletion + InitTopK, both
  // replayable from an injected execution (see BottomUpDccs).
  std::optional<PreprocessResult> local_preprocess;
  if (exec.preprocess == nullptr) {
    local_preprocess =
        Preprocess(graph, params.d, params.s, params.vertex_deletion,
                   exec.pool, /*base_cores=*/nullptr, exec.control);
    result.stats.preprocess_seconds = local_preprocess->seconds;
    if (local_preprocess->stopped != QueryStop::kNone) {
      result.stats.stopped = local_preprocess->stopped;
      result.stats.total_seconds = total_timer.Seconds();
      return result;
    }
  }
  const PreprocessResult& preprocess =
      exec.preprocess != nullptr ? *exec.preprocess : *local_preprocess;

  WallTimer search_timer;
  std::optional<DccSolver> local_solver;
  if (exec.solver == nullptr) local_solver.emplace(graph);
  DccSolver& solver = exec.solver != nullptr ? *exec.solver : *local_solver;
  const int64_t calls_before = solver.num_calls();

  CoverageIndex top_k(params.k);
  int64_t seed_calls = 0;
  if (exec.seeds != nullptr) {
    ReplayInitSeeds(*exec.seeds, top_k);
    seed_calls = exec.seeds->solver_calls;
  } else {
    InitTopK(graph, params, preprocess, solver, top_k);
  }
  // Fig 11 line 2: ascending order of |C^d(G_i)|.
  std::vector<LayerId> order =
      SortedLayerOrder(preprocess, /*descending=*/false, params.sort_layers);
  // Fig 11 line 3: the vertex index (always consulted — RefineC's Lemma 8
  // stage filter needs it even on the reference path), cached by the
  // engine per (d, s) because it is built over `preprocess.active`.
  std::optional<VertexLevelIndex> local_index;
  if (exec.index == nullptr) {
    local_index.emplace(graph, params.d, preprocess.active);
  }
  const VertexLevelIndex& index =
      exec.index != nullptr ? *exec.index : *local_index;

  TopDownSearch search(graph, params, preprocess, order, index, exec.control,
                       solver, top_k, result.stats);
  search.Run();

  result.cores = top_k.entries();
  result.stats.candidates_generated =
      solver.num_calls() - calls_before + seed_calls;
  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
