#include "dccs/top_down.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/dcc.h"
#include "dccs/concurrent_topk.h"
#include "dccs/cover.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "obs/span.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/task_group.h"
#include "util/thread_pool.h"
#include "util/timing.h"

namespace mlcore {

namespace {

// Slot lifecycle shared with the bottom-up search; see DESIGN.md §10.
constexpr uint8_t kSlotPending = 0;
constexpr uint8_t kSlotRunning = 1;
constexpr uint8_t kSlotDone = 2;
constexpr uint8_t kSlotCancelled = 3;

// Largest position missing from sorted `positions`, or -1 if none below
// l. l ≤ 64 (validated at entry), so a word-sized mask replaces the Bitset
// this built per tree node.
int MaxComplement(int l, const LayerSet& positions) {
  uint64_t present = 0;
  for (LayerId p : positions) present |= uint64_t{1} << p;
  const uint64_t missing =
      ~present & ((l == 64) ? ~uint64_t{0} : (uint64_t{1} << l) - 1);
  if (missing == 0) return -1;
  return 63 - __builtin_clzll(missing);
}

/// Per-lane RefineU/RefineC machinery of TD-Gen (paper Figs 9/10) with its
/// scratch arenas. The parallel search materialises lattice children on
/// worker lanes concurrently; each lane owns one refiner (and one solver),
/// so the hot-path buffers below never need locks. Refinement is a pure
/// function of (parent potential, child layer set) — independent of the
/// shared top-k state — which is what makes the child materialisations
/// safe to run out of order (DESIGN.md §10).
class TdRefiner {
 public:
  TdRefiner(const MultiLayerGraph& graph, const DccsParams& params,
            const PreprocessResult& preprocess,
            const std::vector<LayerId>& order, const VertexLevelIndex& index,
            DccSolver& solver)
      : graph_(graph),
        params_(params),
        preprocess_(preprocess),
        order_(order),
        index_(index),
        solver_(solver),
        state_(static_cast<size_t>(graph.NumVertices()), kUntouched),
        dplus_(static_cast<size_t>(graph.NumVertices()) *
                   static_cast<size_t>(graph.NumLayers()),
               0),
        in_z_(static_cast<size_t>(graph.NumVertices())) {}

  DccSolver& solver() { return solver_; }

  // RefineU (Fig 9): shrinks the parent's potential set to U^d_{L'}.
  // Refinement Method 2 filters by support over the Class-2 layers against
  // the preprocessed per-layer d-cores (static), then Method 1 peels to
  // d-density on the Class-1 layers; since the Method-2 counts never change
  // during peeling, one pass of each reaches the paper's fixpoint.
  void RefineU(const VertexSet& parent_u, const LayerSet& positions,
               VertexSet* out) {
    const int max_comp = MaxComplement(graph_.NumLayers(), positions);
    class1_.clear();
    class2_.clear();
    for (LayerId p : positions) {
      (p < max_comp ? class1_ : class2_).push_back(p);
    }
    const int need =
        params_.s - static_cast<int>(class1_.size());  // s − |M_{L'}|

    VertexSet& filtered = class1_.empty() ? *out : filter_buf_;
    filtered.clear();
    filtered.reserve(parent_u.size());
    for (VertexId v : parent_u) {
      int count = 0;
      if (need > 0) {
        for (LayerId p : class2_) {
          if (CoreBitsAtPosition(p).Test(static_cast<size_t>(v))) ++count;
          if (count >= need) break;
        }
        if (count < need) continue;  // Method 2 removal
      }
      filtered.push_back(v);
    }
    if (class1_.empty()) return;
    // Method 1: peel to d-density on the must-keep layers.
    ToLayerIdsInto(class1_, &ids_buf_);
    solver_.Compute(ids_buf_, params_.d, filtered, out, params_.dcc_engine);
  }

  // RefineC: computes C^d_{L'}(G) inside U^d_{L'}. Both paths first apply
  // the Lemma 8 stage bound.
  void RefineC(const VertexSet& potential, const LayerSet& positions,
               VertexSet* out) {
    const auto depth = static_cast<int>(positions.size());
    scope_buf_.clear();
    scope_buf_.reserve(potential.size());
    for (VertexId v : potential) {
      if (index_.stage(v) >= depth) scope_buf_.push_back(v);
    }
    ToLayerIdsInto(positions, &ids_buf_);
    if (!params_.use_index_refinec) {
      solver_.Compute(ids_buf_, params_.d, scope_buf_, out,
                      params_.dcc_engine);
      return;
    }
    RefineCIndexed(scope_buf_, ids_buf_, out);
  }

 private:
  const Bitset& CoreBitsAtPosition(int pos) const {
    return preprocess_.layer_core_bits[static_cast<size_t>(
        order_[static_cast<size_t>(pos)])];
  }

  void ToLayerIdsInto(const LayerSet& positions, LayerSet* ids) const {
    PositionsToLayerIds(order_, positions, ids);
  }

  // The index-based Fig 10 search in the two-pass form justified by
  // Lemma 9: (1) keep only vertices reachable through a level-monotone
  // chain of index edges from a vertex whose label L(w) covers L'; (2) peel
  // the reached set to d-density on L'. Fig 10's single fused sweep
  // (states + CascadeD) discards reachable vertices on mixed levels and
  // under-approximates the d-CC; see DESIGN.md §3.
  void RefineCIndexed(const VertexSet& scope, const LayerSet& ids,
                      VertexSet* out);

  const MultiLayerGraph& graph_;
  const DccsParams& params_;
  const PreprocessResult& preprocess_;
  const std::vector<LayerId>& order_;
  const VertexLevelIndex& index_;
  DccSolver& solver_;

  // RefineCIndexed scratch (cleared per call along the visited scope).
  static constexpr uint8_t kUntouched = 0;  // unexplored
  static constexpr uint8_t kUndetermined = 1;
  static constexpr uint8_t kDiscarded = 2;
  std::vector<uint8_t> state_;
  std::vector<int32_t> dplus_;
  Bitset in_z_;

  // Reusable buffers: the search calls RefineU/RefineC thousands of times
  // on this lane; these hold their transient layer translations, scope
  // filters and intermediate sets across calls.
  LayerSet class1_, class2_, ids_buf_;
  VertexSet filter_buf_, scope_buf_, reached_buf_;
  std::vector<std::pair<int, VertexId>> by_level_buf_;
  std::vector<VertexId> peel_queue_;
};

void TdRefiner::RefineCIndexed(const VertexSet& scope, const LayerSet& ids,
                               VertexSet* out) {
  const auto l = static_cast<size_t>(graph_.NumLayers());
  out->clear();
  if (scope.empty()) return;

  for (VertexId v : scope) {
    in_z_.Set(static_cast<size_t>(v));
    state_[static_cast<size_t>(v)] = kUntouched;
  }

  // --- Pass 1 (Lemma 9 filter): keep vertices reachable through a
  // level-monotone chain of index edges starting from a vertex whose label
  // covers L'. Sweeping levels in ascending order makes one pass
  // sufficient: a vertex is reached either by its own label or from a
  // strictly lower (already swept) level.
  std::vector<std::pair<int, VertexId>>& by_level = by_level_buf_;
  by_level.clear();
  by_level.reserve(scope.size());
  for (VertexId v : scope) by_level.emplace_back(index_.level(v), v);
  std::sort(by_level.begin(), by_level.end());

  auto label_covers = [&](VertexId v) {
    const LayerSet& label = index_.label(v);
    return std::includes(label.begin(), label.end(), ids.begin(), ids.end());
  };

  VertexSet& reached = reached_buf_;
  reached.clear();
  reached.reserve(scope.size());
  for (const auto& [level, v] : by_level) {
    if (state_[static_cast<size_t>(v)] == kUntouched && !label_covers(v)) {
      state_[static_cast<size_t>(v)] = kDiscarded;
      continue;
    }
    state_[static_cast<size_t>(v)] = kUndetermined;
    reached.push_back(v);
    for (LayerId layer : ids) {
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (!in_z_.Test(static_cast<size_t>(u))) continue;
        if (state_[static_cast<size_t>(u)] == kUntouched &&
            index_.level(u) > level) {
          // Mark u as reached-from-below; validated when its level sweeps.
          state_[static_cast<size_t>(u)] = kUndetermined;
        }
      }
    }
  }
  std::sort(reached.begin(), reached.end());

  // --- Pass 2: peel `reached` to d-density on L' (cascading deletions on
  // the d⁺ counters — the RefineC/CascadeD bookkeeping of Fig 10).
  for (VertexId v : reached) {
    for (LayerId layer : ids) {
      int32_t count = 0;
      for (VertexId u : graph_.Neighbors(layer, v)) {
        // Every vertex still kUndetermined after pass 1 is in `reached`.
        if (in_z_.Test(static_cast<size_t>(u)) &&
            state_[static_cast<size_t>(u)] == kUndetermined) {
          ++count;
        }
      }
      dplus_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] = count;
    }
  }
  std::vector<VertexId>& queue = peel_queue_;
  queue.clear();
  for (VertexId v : reached) {
    for (LayerId layer : ids) {
      if (dplus_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] <
          params_.d) {
        state_[static_cast<size_t>(v)] = kDiscarded;
        queue.push_back(v);
        break;
      }
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    VertexId v = queue[head];
    for (LayerId layer : ids) {
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (!in_z_.Test(static_cast<size_t>(u)) ||
            state_[static_cast<size_t>(u)] != kUndetermined) {
          continue;
        }
        auto& du =
            dplus_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
        if (--du < params_.d) {
          state_[static_cast<size_t>(u)] = kDiscarded;
          queue.push_back(u);
        }
      }
    }
  }

  for (VertexId v : reached) {
    if (state_[static_cast<size_t>(v)] == kUndetermined) out->push_back(v);
  }
  for (VertexId v : scope) {
    in_z_.Clear(static_cast<size_t>(v));
    state_[static_cast<size_t>(v)] = kUntouched;
  }
}

/// TD-Gen (paper Fig 8), restructured like BottomUpSearch: this class is
/// the sequential commit driver — it owns every pruning test, Update, rng
/// draw (Lemma 7) and stats increment, applied in the exact order of the
/// historical sequential search — while the per-child RefineU/RefineC
/// materialisations (all of the heavy lifting) run as tasks on a
/// work-stealing TaskGroup. The sequential search materialises *every*
/// child of a visited node before pruning any of them (Fig 8 lines 2–5),
/// so unlike the bottom-up case these tasks are not speculative: the only
/// wasted work is what a mid-node stop request abandons.
class TopDownSearch {
 public:
  TopDownSearch(const MultiLayerGraph& graph, const DccsParams& params,
                const PreprocessResult& preprocess,
                const std::vector<LayerId>& order,
                const VertexLevelIndex& index, const DccsExecution& exec,
                DccSolver& solver, ConcurrentTopK& result, SearchStats& stats,
                obs::SpanId lane_parent)
      : graph_(graph),
        params_(params),
        preprocess_(preprocess),
        order_(order),
        index_(index),
        control_(exec.control),
        worker_solver_(exec.worker_solver),
        solver_(solver),
        result_(result),
        stats_(stats),
        trace_(exec.trace),
        lane_parent_(lane_parent),
        rng_(kSeed) {
    const int threads = std::max(1, exec.search_threads);
    lane_refiners_.resize(static_cast<size_t>(std::max(1, threads)));
    owned_solvers_.resize(static_cast<size_t>(std::max(1, threads)));
    lane_refiners_[0] = std::make_unique<TdRefiner>(
        graph_, params_, preprocess_, order_, index_, solver_);
    if (threads > 1) {
      group_.emplace(threads);
      if (obs::kEnabled && trace_ != nullptr) {
        lane_obs_.resize(static_cast<size_t>(threads));
      }
    }
  }

  void Run() {
    const int l = graph_.NumLayers();
    LayerSet root_positions(static_cast<size_t>(l));
    for (int j = 0; j < l; ++j) root_positions[static_cast<size_t>(j)] = j;
    // Fig 11 line 4: the root d-CC w.r.t. all layers.
    const int64_t before = solver_.num_calls();
    VertexSet root_core =
        solver_.Compute(ToLayerIds(root_positions), params_.d,
                        preprocess_.active, params_.dcc_engine);
    driver_calls_ += solver_.num_calls() - before;
    if (params_.s == l) {
      if (result_.Update(root_core, ToLayerIds(root_positions))) {
        ++stats_.updates_accepted;
      }
      return;
    }
    auto root = std::make_shared<Node>();
    root->positions = std::move(root_positions);
    root->potential = &preprocess_.active;
    Prepare(*root);
    SpawnMaterialise(root);
    Gen(root);
    if (!lane_obs_.empty()) {
      // Join the lanes here so the per-lane aggregates are complete before
      // they are committed as spans (see BottomUpSearch::Run).
      group_.reset();
      CommitLaneSpans();
    }
  }

  int64_t committed_calls() const {
    return driver_calls_ + committed_slot_calls_;
  }
  int64_t speculative_calls() const {
    return executed_slot_calls_.load(std::memory_order_relaxed) -
           committed_slot_calls_;
  }

 private:
  static constexpr uint64_t kSeed = 0x5851f42d4c957f2dULL;

  /// One materialised-or-in-flight child (Fig 8 lines 2–5): L' and the
  /// refined U^d_{L'} / C^d_{L'} outputs.
  struct ChildSlot {
    LayerSet positions;
    VertexSet potential;
    VertexSet core;
    int64_t solver_calls = 0;
    std::atomic<uint8_t> state{kSlotPending};
  };

  /// A visited lattice node whose children are being materialised. Shared
  /// with task closures (see BottomUpSearch::Node).
  struct Node {
    LayerSet positions;           // the node's L
    VertexSet potential_storage;  // owned for non-root nodes
    const VertexSet* potential = nullptr;
    std::vector<int> removable;   // LR (Fig 8 line 1)
    std::unique_ptr<ChildSlot[]> slots;
  };

  // Cooperative checkpoint at subset-lattice node boundaries: the anytime
  // time_budget_seconds plus the injected QueryControl (cancellation /
  // wall-clock deadline) — see BottomUpSearch::StopRequested.
  bool StopRequested() {
    if (stats_.stopped != QueryStop::kNone) return true;
    return LatchQueryStop(
        CheckQueryStop(control_, params_.time_budget_seconds, timer_),
        &stats_);
  }

  LayerSet ToLayerIds(const LayerSet& positions) const {
    LayerSet ids;
    ToLayerIdsInto(positions, &ids);
    return ids;
  }

  // Buffer-reusing form for transient translations on the hot path.
  void ToLayerIdsInto(const LayerSet& positions, LayerSet* ids) const {
    PositionsToLayerIds(order_, positions, ids);
  }

  TdRefiner& RefinerFor(int worker) {
    std::unique_ptr<TdRefiner>& lane =
        lane_refiners_[static_cast<size_t>(worker)];
    // Each lane is serviced by exactly one thread (lane 0 = the driver),
    // so lazy init is race-free without synchronisation.
    if (lane == nullptr) {
      DccSolver* solver = nullptr;
      if (worker_solver_) {
        solver = worker_solver_(worker);
      } else {
        owned_solvers_[static_cast<size_t>(worker)] =
            std::make_unique<DccSolver>(graph_);
        solver = owned_solvers_[static_cast<size_t>(worker)].get();
      }
      lane = std::make_unique<TdRefiner>(graph_, params_, preprocess_, order_,
                                         index_, *solver);
    }
    return *lane;
  }

  /// Computes LR and the child slots (child layer sets only — the refined
  /// sets are what the tasks fill in).
  void Prepare(Node& node) {
    const int max_comp = MaxComplement(graph_.NumLayers(), node.positions);
    for (LayerId p : node.positions) {
      if (p > max_comp) node.removable.push_back(p);
    }
    const size_t n = node.removable.size();
    if (n == 0) return;
    node.slots = std::make_unique<ChildSlot[]>(n);
    for (size_t idx = 0; idx < n; ++idx) {
      ChildSlot& slot = node.slots[idx];
      slot.positions = node.positions;
      slot.positions.erase(std::find(
          slot.positions.begin(), slot.positions.end(),
          static_cast<LayerId>(node.removable[idx])));
    }
  }

  void SpawnMaterialise(const std::shared_ptr<Node>& node) {
    if (!group_) return;
    for (size_t idx = 0; idx < node->removable.size(); ++idx) {
      group_->Spawn(0, [this, node, idx](int worker) {
        RunMaterialise(*node, idx, worker);
      });
    }
  }

  void RunMaterialise(Node& node, size_t idx, int worker) {
    ChildSlot& slot = node.slots[idx];
    uint8_t expected = kSlotPending;
    if (!slot.state.compare_exchange_strong(expected, kSlotRunning,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return;
    }
    TdRefiner& refiner = RefinerFor(worker);
    const int64_t before = refiner.solver().num_calls();
    if (LaneObs* lane = LaneFor(worker)) {
      WallTimer busy;
      ThreadCpuTimer cpu;
      refiner.RefineU(*node.potential, slot.positions, &slot.potential);
      refiner.RefineC(slot.potential, slot.positions, &slot.core);
      lane->busy_seconds += busy.Seconds();
      const double cpu_seconds = cpu.Seconds();
      if (cpu_seconds > 0) lane->cpu_seconds += cpu_seconds;
      ++lane->evals;
    } else {
      refiner.RefineU(*node.potential, slot.positions, &slot.potential);
      refiner.RefineC(slot.potential, slot.positions, &slot.core);
    }
    slot.solver_calls = refiner.solver().num_calls() - before;
    executed_slot_calls_.fetch_add(slot.solver_calls,
                                   std::memory_order_relaxed);
    slot.state.store(kSlotDone, std::memory_order_release);
  }

  ChildSlot& WaitSlot(Node& node, size_t idx) {
    ChildSlot& slot = node.slots[idx];
    RunMaterialise(node, idx, 0);
    while (slot.state.load(std::memory_order_acquire) != kSlotDone) {
      if (!group_ || !group_->TryRunOne(0)) std::this_thread::yield();
    }
    return slot;
  }

  void CancelPending(Node& node) {
    for (size_t idx = 0; idx < node.removable.size(); ++idx) {
      uint8_t expected = kSlotPending;
      node.slots[idx].state.compare_exchange_strong(
          expected, kSlotCancelled, std::memory_order_acq_rel,
          std::memory_order_acquire);
    }
  }

  /// Moves a committed slot into a child node, launches its own children
  /// and descends.
  void Descend(Node& node, size_t idx) {
    ChildSlot& slot = node.slots[idx];
    auto child = std::make_shared<Node>();
    child->positions = std::move(slot.positions);
    child->potential_storage = std::move(slot.potential);
    child->potential = &child->potential_storage;
    Prepare(*child);
    SpawnMaterialise(child);
    Gen(child);
  }

  // TD-Gen (Fig 8), commit side.
  void Gen(const std::shared_ptr<Node>& node) {
    const auto depth = static_cast<int>(node->positions.size());
    const size_t n = node->removable.size();
    if (n == 0) return;

    // Lines 2–5: materialise every child's U and C up front — committed in
    // removable order; the refinement work itself runs on the task group.
    for (size_t idx = 0; idx < n; ++idx) {
      if (StopRequested()) {
        CancelPending(*node);
        return;
      }
      ++stats_.nodes_visited;
      ChildSlot& slot = WaitSlot(*node, idx);
      committed_slot_calls_ += slot.solver_calls;
    }

    if (!result_.full()) {
      // Cases 1–2 (lines 6–12).
      for (size_t idx = 0; idx < n; ++idx) {
        if (StopRequested()) return;
        ChildSlot& slot = node->slots[idx];
        if (depth - 1 == params_.s) {
          ToLayerIdsInto(slot.positions, &ids_buf_);
          if (result_.Update(slot.core, ids_buf_)) {
            ++stats_.updates_accepted;
          }
        } else {
          Descend(*node, idx);
        }
      }
      return;
    }

    // Cases 3–4 (lines 13–29): order children by |U| descending (Lemma 6).
    std::vector<size_t> by_potential;  // local: Gen recurses inside the loop
    by_potential.reserve(n);
    for (size_t idx = 0; idx < n; ++idx) by_potential.push_back(idx);
    std::stable_sort(by_potential.begin(), by_potential.end(),
                     [&](size_t a, size_t b) {
                       return node->slots[a].potential.size() >
                              node->slots[b].potential.size();
                     });
    for (size_t rank = 0; rank < n; ++rank) {
      if (StopRequested()) return;
      ChildSlot& slot = node->slots[by_potential[rank]];
      if (result_.BelowOrderThreshold(
              static_cast<int64_t>(slot.potential.size()))) {
        stats_.pruned_order += static_cast<int64_t>(n - rank);
        break;  // Lemma 6
      }
      if (depth - 1 == params_.s) {
        ToLayerIdsInto(slot.positions, &ids_buf_);
        if (result_.Update(slot.core, ids_buf_)) {
          ++stats_.updates_accepted;
        }
        continue;
      }
      // Lemma 5: every descendant candidate is contained in U^d_{L'}, so if
      // U fails Eq. (1) the whole subtree is hopeless. (Fig 8 line 23
      // prints C^d_{L'} here; the §V-A text and Lemma 5 establish the bound
      // via the potential set, which is what we check — see DESIGN.md.)
      if (!result_.SatisfiesEq1(slot.potential)) {
        ++stats_.pruned_eq1;
        continue;
      }
      // Lemma 7: in the optimistic regime a single random descendant
      // represents the subtree.
      if (result_.SatisfiesEq1(slot.core) &&
          result_.SatisfiesEq2(static_cast<int64_t>(slot.potential.size()))) {
        if (TryPotentialShortcut(slot.positions, slot.potential)) {
          ++stats_.pruned_potential;
          continue;
        }
      }
      Descend(*node, by_potential[rank]);
    }
  }

  // Lines 25–27 of Fig 8: pick a random size-s descendant S of L', compute
  // its d-CC inside U^d_{L'}, and update R with it. Returns false when L'
  // has no size-s descendant (a dead-end branch of the top-down lattice).
  // Driver-only: the rng_ stream must be drawn in the sequential commit
  // order for results to stay thread-count-invariant.
  bool TryPotentialShortcut(const LayerSet& positions,
                            const VertexSet& potential) {
    const auto depth = static_cast<int>(positions.size());
    const int max_comp = MaxComplement(graph_.NumLayers(), positions);
    std::vector<LayerId> removable;
    for (LayerId p : positions) {
      if (p > max_comp) removable.push_back(p);
    }
    const int to_remove = depth - params_.s;
    if (static_cast<int>(removable.size()) < to_remove) return false;
    std::shuffle(removable.begin(), removable.end(), rng_.engine());
    removable.resize(static_cast<size_t>(to_remove));

    LayerSet descendant;
    for (LayerId p : positions) {
      if (std::find(removable.begin(), removable.end(), p) ==
          removable.end()) {
        descendant.push_back(p);
      }
    }
    scope_buf_.clear();
    scope_buf_.reserve(potential.size());
    for (VertexId v : potential) {
      if (index_.stage(v) >= params_.s) scope_buf_.push_back(v);
    }
    ToLayerIdsInto(descendant, &ids_buf_);
    const int64_t before = solver_.num_calls();
    solver_.Compute(ids_buf_, params_.d, scope_buf_, &core_buf_,
                    params_.dcc_engine);
    driver_calls_ += solver_.num_calls() - before;
    if (result_.Update(core_buf_, ids_buf_)) ++stats_.updates_accepted;
    return true;
  }

  /// Per-lane busy-time aggregates, committed as "search.lane" spans after
  /// the group joins (see BottomUpSearch::LaneObs).
  struct alignas(64) LaneObs {
    double busy_seconds = 0;
    double cpu_seconds = 0;
    int64_t evals = 0;
  };

  LaneObs* LaneFor(int worker) {
    return lane_obs_.empty() ? nullptr
                             : &lane_obs_[static_cast<size_t>(worker)];
  }

  void CommitLaneSpans() {
    for (const LaneObs& lane : lane_obs_) {
      if (lane.evals == 0) continue;
      trace_->Add("search.lane", lane_parent_, trace_->AgeMs(),
                  lane.busy_seconds * 1e3,
                  lane.cpu_seconds > 0 ? lane.cpu_seconds * 1e3 : -1);
    }
  }

  const MultiLayerGraph& graph_;
  const DccsParams& params_;
  const PreprocessResult& preprocess_;
  const std::vector<LayerId>& order_;
  const VertexLevelIndex& index_;
  const QueryControl* control_;
  const std::function<DccSolver*(int worker)> worker_solver_;
  DccSolver& solver_;
  ConcurrentTopK& result_;
  SearchStats& stats_;
  obs::Trace* trace_;
  const obs::SpanId lane_parent_;
  std::vector<LaneObs> lane_obs_;
  Rng rng_;
  WallTimer timer_;

  int64_t driver_calls_ = 0;           // root core + Lemma 7 shortcuts
  int64_t committed_slot_calls_ = 0;   // materialisations the driver used
  std::atomic<int64_t> executed_slot_calls_{0};

  // Driver-side buffers for Update translations and the shortcut.
  LayerSet ids_buf_;
  VertexSet scope_buf_, core_buf_;

  // Lane 0 wraps solver_; other lanes resolve through worker_solver_ or an
  // owned fallback solver. Each lane single-threaded by construction.
  std::vector<std::unique_ptr<TdRefiner>> lane_refiners_;
  std::vector<std::unique_ptr<DccSolver>> owned_solvers_;

  // Last member: destroyed first, so in-flight task closures finish before
  // the state they reference goes away.
  std::optional<TaskGroup> group_;
};

}  // namespace

DccsResult TopDownDccs(const MultiLayerGraph& graph, const DccsParams& params) {
  // Per-layer d-cores of preprocessing fan out over a pool scoped to this
  // call; the search phase parallelises over params.search_threads lanes
  // of its own (DESIGN.md §10).
  ThreadPool pool(params.num_threads);
  DccsExecution exec;
  exec.pool = &pool;
  exec.search_threads = params.search_threads;
  return TopDownDccs(graph, params, exec);
}

DccsResult TopDownDccs(const MultiLayerGraph& graph, const DccsParams& params,
                       const DccsExecution& exec) {
  // Guaranteed by Engine::Validate on every request path; debug-only so a
  // malformed direct call still trips in development builds.
  MLCORE_DCHECK(params.s >= 1);
  MLCORE_DCHECK(params.k >= 1);

  WallTimer total_timer;
  DccsResult result;
  if (params.s > graph.NumLayers() || graph.NumLayers() > 64) {
    // > 64 layers: see BottomUpDccs — empty result here, structured
    // kInvalidArgument at the Engine request layer.
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // Fig 11 line 1 = BU-DCCS lines 1–8: vertex deletion + InitTopK, both
  // replayable from an injected execution (see BottomUpDccs).
  std::optional<PreprocessResult> local_preprocess;
  if (exec.preprocess == nullptr) {
    obs::Span preprocess_span(exec.trace, "query.preprocess",
                              exec.trace_parent);
    local_preprocess =
        Preprocess(graph, params.d, params.s, params.vertex_deletion,
                   exec.pool, /*base_cores=*/nullptr, exec.control);
    result.stats.preprocess_seconds = local_preprocess->seconds;
    if (local_preprocess->stopped != QueryStop::kNone) {
      result.stats.stopped = local_preprocess->stopped;
      result.stats.total_seconds = total_timer.Seconds();
      return result;
    }
  }
  const PreprocessResult& preprocess =
      exec.preprocess != nullptr ? *exec.preprocess : *local_preprocess;

  obs::Span search_span(exec.trace, "query.search", exec.trace_parent);
  const WallTimer& search_timer = search_span.timer();
  std::optional<DccSolver> local_solver;
  if (exec.solver == nullptr) local_solver.emplace(graph);
  DccSolver& solver = exec.solver != nullptr ? *exec.solver : *local_solver;

  CoverageIndex seeded(params.k);
  int64_t seed_calls = 0;
  if (exec.seeded_topk != nullptr) {
    seeded = *exec.seeded_topk;
    seed_calls = exec.seeds != nullptr ? exec.seeds->solver_calls : 0;
  } else if (exec.seeds != nullptr) {
    ReplayInitSeeds(*exec.seeds, seeded);
    seed_calls = exec.seeds->solver_calls;
  } else {
    const int64_t calls_before = solver.num_calls();
    InitTopK(graph, params, preprocess, solver, seeded);
    seed_calls = solver.num_calls() - calls_before;
  }
  // Fig 11 line 2: ascending order of |C^d(G_i)| (cached by the Engine per
  // query entry).
  std::optional<std::vector<LayerId>> local_order;
  if (exec.layer_order == nullptr) {
    local_order =
        SortedLayerOrder(preprocess, /*descending=*/false, params.sort_layers);
  }
  const std::vector<LayerId>& order =
      exec.layer_order != nullptr ? *exec.layer_order : *local_order;
  // Fig 11 line 3: the vertex index (always consulted — RefineC's Lemma 8
  // stage filter needs it even on the reference path), cached by the
  // engine per (d, s) because it is built over `preprocess.active`.
  std::optional<VertexLevelIndex> local_index;
  if (exec.index == nullptr) {
    local_index.emplace(graph, params.d, preprocess.active);
  }
  const VertexLevelIndex& index =
      exec.index != nullptr ? *exec.index : *local_index;

  ConcurrentTopK top_k(std::move(seeded));
  TopDownSearch search(graph, params, preprocess, order, index, exec, solver,
                       top_k, result.stats, search_span.id());
  search.Run();
  search_span.End();

  obs::Span cover_span(exec.trace, "query.cover", exec.trace_parent);
  result.cores = top_k.index().entries();
  cover_span.End();
  result.stats.candidates_generated = seed_calls + search.committed_calls();
  result.stats.speculative_evals = search.speculative_calls();
  result.stats.search_seconds = search_timer.Seconds();
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace mlcore
