#ifndef MLCORE_DCCS_TOP_DOWN_H_
#define MLCORE_DCCS_TOP_DOWN_H_

#include "dccs/execution.h"
#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// The TD-DCCS algorithm (paper §V, Figs 8–11): depth-first search over the
/// top-down layer-subset lattice from the full layer set down to level s,
/// maintaining for each node both the d-CC C^d_L(G) and its potential
/// vertex set U^d_L(G). Implements RefineU (Fig 9), RefineC (Fig 10, either
/// the faithful index-based search or the reference Lemma 8 + peeling path,
/// selected by `params.use_index_refinec`), the §V-C vertex index, and the
/// Lemma 5–7 pruning rules. Approximation ratio 1/4 (Theorem 4).
///
/// Designed for s ≥ l/2 (the paper restricts §V to that regime); the
/// implementation accepts any s but the search degenerates for small s.
///
/// One-shot form: self-contained, preprocesses and builds the §V-C vertex
/// index from scratch (prefer `mlcore::Engine` for repeated queries).
DccsResult TopDownDccs(const MultiLayerGraph& graph, const DccsParams& params);

/// Execution-injecting form: reuses whatever cached state `exec` provides
/// (see dccs/execution.h); `exec.index`, when set, must have been built
/// over `exec.preprocess->active` with this `d`.
DccsResult TopDownDccs(const MultiLayerGraph& graph, const DccsParams& params,
                       const DccsExecution& exec);

}  // namespace mlcore

#endif  // MLCORE_DCCS_TOP_DOWN_H_
