#ifndef MLCORE_DCCS_GREEDY_H_
#define MLCORE_DCCS_GREEDY_H_

#include "dccs/execution.h"
#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// Ceiling on materialised GD-DCCS candidate subsets: C(l, s) above this
/// is intractable for the greedy algorithm regardless of hardware.
/// GreedyDccs aborts past it; Engine::Validate turns it into a structured
/// kUnsupported error first.
inline constexpr int64_t kMaxGreedySubsets = int64_t{1} << 26;

/// The GD-DCCS algorithm (paper §III, Fig 2): materialises all C(l, s)
/// candidate d-CCs, then selects k of them greedily by marginal cover gain.
/// Approximation ratio 1 − 1/e (Theorem 2); cost O((ns + ms + kn)·C(l,s)).
///
/// Per the paper's experimental protocol (§VI, "for fairness, all the
/// algorithms exploit the preprocessing methods"), the §IV-C vertex-deletion
/// preprocessing is applied before candidate generation when
/// `params.vertex_deletion` is set.
DccsResult GreedyDccs(const MultiLayerGraph& graph, const DccsParams& params);

/// Execution-injecting form: reuses whatever cached state `exec` provides
/// (see dccs/execution.h). GD-DCCS uses `preprocess`, `pool`, `solver` and
/// `worker_solver`; it has no InitTopK stage, so `seeds`/`index` are
/// ignored.
DccsResult GreedyDccs(const MultiLayerGraph& graph, const DccsParams& params,
                      const DccsExecution& exec);

}  // namespace mlcore

#endif  // MLCORE_DCCS_GREEDY_H_
