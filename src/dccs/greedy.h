#ifndef MLCORE_DCCS_GREEDY_H_
#define MLCORE_DCCS_GREEDY_H_

#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// The GD-DCCS algorithm (paper §III, Fig 2): materialises all C(l, s)
/// candidate d-CCs, then selects k of them greedily by marginal cover gain.
/// Approximation ratio 1 − 1/e (Theorem 2); cost O((ns + ms + kn)·C(l,s)).
///
/// Per the paper's experimental protocol (§VI, "for fairness, all the
/// algorithms exploit the preprocessing methods"), the §IV-C vertex-deletion
/// preprocessing is applied before candidate generation when
/// `params.vertex_deletion` is set.
DccsResult GreedyDccs(const MultiLayerGraph& graph, const DccsParams& params);

}  // namespace mlcore

#endif  // MLCORE_DCCS_GREEDY_H_
