#ifndef MLCORE_DCCS_PARAMS_H_
#define MLCORE_DCCS_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dcc.h"
#include "graph/multilayer_graph.h"
#include "util/cancellation.h"

namespace mlcore {

/// Parameters of the DCCS problem and algorithm knobs (paper §II, Fig 13).
struct DccsParams {
  /// Minimum degree threshold (paper d). Default per Fig 13.
  int d = 4;
  /// Minimum support threshold: number of layers a d-CC must recur on
  /// (paper s).
  int s = 3;
  /// Number of diversified d-CCs to return (paper k).
  int k = 10;

  /// Engine for the dCC peeling procedure (Appendix B).
  DccEngine dcc_engine = DccEngine::kQueue;

  /// Worker threads for the shared thread pool: GD-DCCS candidate
  /// generation (the C(l, s) dCC evaluations are embarrassingly parallel)
  /// and the per-layer d-core loop of preprocessing in all three
  /// algorithms. 1 = sequential. Results are bit-identical for any thread
  /// count (see DESIGN.md §4); the BU/TD *searches* remain sequential
  /// through the shared top-k state.
  int num_threads = 1;

  /// Worker lanes for the BU/TD *search phase itself* (DESIGN.md §10):
  /// child d-CC evaluations are farmed out speculatively to a work-stealing
  /// task group while a sequential commit driver replays every pruning and
  /// top-k decision in the exact sequential order, so results — cores,
  /// cover, and all pre-existing SearchStats counters — are bit-identical
  /// for any value. 1 (the default) runs the historical sequential search.
  /// Honoured by the one-shot free functions and mapped to
  /// `Engine::Options::search_threads` by `SolveDccs`; an Engine ignores
  /// this field just as it ignores `num_threads` (threading is engine
  /// policy, see service/engine.h). GD-DCCS ignores it (its candidate loop
  /// already parallelises over `num_threads`).
  int search_threads = 1;

  /// Wall-clock budget for the search phase, in seconds (0 = unlimited).
  /// All three algorithms honour it: BU-DCCS and TD-DCCS return their
  /// best-so-far result set when the budget expires ("anytime" behaviour;
  /// the paper's experiments run BU-DCCS for up to 10^4 s in its
  /// unfavourable large-s regime — the budget lets a harness bound such
  /// rows), and GD-DCCS stops generating candidates at the next
  /// candidate-evaluation boundary and runs its greedy max-cover selection
  /// over the candidates evaluated so far (losing the approximation
  /// guarantee, which only holds for the full candidate set). A budgeted
  /// stop sets `SearchStats::budget_exhausted`. The budget composes with
  /// the service layer's wall-clock deadlines under one policy — see
  /// DccsExecution::control and DESIGN.md §7.
  double time_budget_seconds = 0.0;

  // --- Preprocessing toggles (§IV-C; disabled variants are the Fig 28
  // ablations No-VD / No-SL / No-IR; all three off is No-Pre). ---
  bool vertex_deletion = true;
  bool sort_layers = true;
  bool init_result = true;

  // --- Top-down specific. ---
  /// Use the index-based RefineC search of §V-C (true) or the reference
  /// Lemma 8 scope + dCC peeling (false). Both compute the identical d-CC;
  /// see DESIGN.md.
  bool use_index_refinec = true;
};

/// One returned d-CC: the layer subset L (|L| = s) and C^d_L(G).
struct ResultCore {
  LayerSet layers;
  VertexSet vertices;

  friend bool operator==(const ResultCore&, const ResultCore&) = default;
};

/// Search-effort counters exposed by all three DCCS algorithms.
struct SearchStats {
  /// dCC evaluations performed for candidate generation.
  int64_t candidates_generated = 0;
  /// Search-tree nodes expanded (BU/TD only).
  int64_t nodes_visited = 0;
  /// Subtrees pruned by the Eq. (1) bound (Lemma 2 / Lemma 5).
  int64_t pruned_eq1 = 0;
  /// Children skipped by order-based pruning (Lemma 3 / Lemma 6).
  int64_t pruned_order = 0;
  /// Layers excluded by layer pruning (Lemma 4, BU only).
  int64_t pruned_layer = 0;
  /// Subtrees collapsed by potential-set pruning (Lemma 7, TD only).
  int64_t pruned_potential = 0;
  /// Accepted Update calls (result-set improvements).
  int64_t updates_accepted = 0;
  /// dCC evaluations performed speculatively by the parallel search's
  /// worker lanes whose results the commit driver never consumed — work
  /// wasted to a bound that tightened after launch, or to a stop request.
  /// The ONLY thread-count-dependent counter: 0 when search_threads == 1,
  /// and excluded from candidates_generated (which counts committed
  /// evaluations only and stays bit-identical at any thread count). See
  /// DESIGN.md §10.
  int64_t speculative_evals = 0;
  /// True when the search stopped early on a time limit — either
  /// DccsParams::time_budget_seconds or a QueryControl deadline — and
  /// returned its best-so-far result. (Not set for cancellation: a
  /// cancelled search's partial result is discarded, not served.)
  bool budget_exhausted = false;
  /// Exactly why the run stopped early (util/cancellation.h); kNone for a
  /// run that completed its full search. kBudget/kDeadline accompany
  /// budget_exhausted; kCancelled marks a result the caller must discard.
  QueryStop stopped = QueryStop::kNone;

  double preprocess_seconds = 0.0;
  double search_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Output of a DCCS algorithm: up to k diversified d-CCs plus statistics.
struct DccsResult {
  std::vector<ResultCore> cores;
  SearchStats stats;
  /// Epoch of the graph snapshot this result was computed against
  /// (DESIGN.md §8). 0 for one-shot runs and engines whose graph never
  /// received an update; a query pinned to an older snapshot reports that
  /// snapshot's epoch even when later updates have already published.
  uint64_t epoch = 0;

  /// Union of all returned cores (the paper's Cov(R)), sorted.
  VertexSet Cover() const;
  /// |Cov(R)| — the quality measure maximised by the DCCS problem.
  int64_t CoverSize() const;
};

/// Identifier of a DCCS algorithm, for harness dispatch and labels.
/// `kAuto` defers the choice to `RecommendedAlgorithm` (paper §I/§V rule:
/// bottom-up when s < l/2, top-down otherwise); it is resolved by the
/// service layer (`mlcore::Engine`) and by `SolveDccs` before dispatch.
enum class DccsAlgorithm { kGreedy, kBottomUp, kTopDown, kAuto };

std::string AlgorithmName(DccsAlgorithm algorithm);

/// Picks the algorithm the paper recommends for the given support
/// threshold: bottom-up when s < l/2, top-down otherwise (§I, §V). This is
/// what `DccsAlgorithm::kAuto` resolves to.
DccsAlgorithm RecommendedAlgorithm(const MultiLayerGraph& graph, int s);
/// Layer-count form: lets callers that only know the (epoch-invariant)
/// layer count apply the rule without touching a graph snapshot.
DccsAlgorithm RecommendedAlgorithm(int32_t num_layers, int s);

}  // namespace mlcore

#endif  // MLCORE_DCCS_PARAMS_H_
