#include "dccs/concurrent_topk.h"

#include <utility>

namespace mlcore {

ConcurrentTopK::ConcurrentTopK(CoverageIndex seeded)
    : index_(std::move(seeded)) {
  util::MutexLock lock(mu_);
  cap_.store(index_.capacity(), std::memory_order_relaxed);
  Publish();
}

bool ConcurrentTopK::Update(const VertexSet& candidate,
                            const LayerSet& layers) {
  util::MutexLock lock(mu_);
  const bool changed = index_.Update(candidate, layers);
  if (changed) Publish();
  return changed;
}

void ConcurrentTopK::Publish() {
  cover_size_.store(index_.cover_size(), std::memory_order_relaxed);
  min_exclusive_.store(index_.size() > 0 ? index_.MinExclusiveSize() : 0,
                       std::memory_order_relaxed);
  size_.store(index_.size(), std::memory_order_relaxed);
}

}  // namespace mlcore
