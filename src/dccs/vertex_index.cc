#include "dccs/vertex_index.h"

#include <algorithm>

#include "core/dcore.h"
#include "util/bitset.h"
#include "util/check.h"

namespace mlcore {

VertexLevelIndex::VertexLevelIndex(const MultiLayerGraph& graph, int d,
                                   const VertexSet& active) {
  const auto n = static_cast<size_t>(graph.NumVertices());
  const auto l = static_cast<size_t>(graph.NumLayers());
  level_.assign(n, -1);
  stage_.assign(n, -1);
  label_.assign(n, {});

  // Initial per-layer d-cores within `active`, with degrees maintained
  // inside the current core for decremental updates.
  std::vector<Bitset> core(l, Bitset(n));
  std::vector<int32_t> deg(n * l, 0);
  std::vector<int> num(n, 0);
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    VertexSet members = DCoreScoped(graph, layer, d, active);
    Bitset& bits = core[static_cast<size_t>(layer)];
    for (VertexId v : members) bits.Set(static_cast<size_t>(v));
    for (VertexId v : members) {
      int32_t within = 0;
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (bits.Test(static_cast<size_t>(u))) ++within;
      }
      deg[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] = within;
      ++num[static_cast<size_t>(v)];
    }
  }

  std::vector<uint8_t> alive(n, 0);
  VertexSet alive_list = active;
  for (VertexId v : active) alive[static_cast<size_t>(v)] = 1;

  // Decremental core maintenance: removing (v, layer) from a core cascades
  // through under-degree neighbours on that layer.
  std::vector<std::pair<VertexId, LayerId>> queue;
  auto remove_from_core = [&](VertexId v, LayerId layer) {
    Bitset& bits = core[static_cast<size_t>(layer)];
    if (!bits.Test(static_cast<size_t>(v))) return;
    bits.Clear(static_cast<size_t>(v));
    if (alive[static_cast<size_t>(v)] != 0) --num[static_cast<size_t>(v)];
    queue.emplace_back(v, layer);
  };
  auto drain_queue = [&] {
    for (size_t head = 0; head < queue.size(); ++head) {
      auto [v, layer] = queue[head];
      const Bitset& bits = core[static_cast<size_t>(layer)];
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (!bits.Test(static_cast<size_t>(u))) continue;
        auto& du = deg[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
        if (--du < d) remove_from_core(u, layer);
      }
    }
    queue.clear();
  };

  for (int h = 1; h <= graph.NumLayers(); ++h) {
    while (true) {
      // Collect the batch: alive vertices with Num(v) ≤ h.
      VertexSet batch;
      VertexSet survivors;
      survivors.reserve(alive_list.size());
      for (VertexId v : alive_list) {
        if (num[static_cast<size_t>(v)] <= h) {
          batch.push_back(v);
        } else {
          survivors.push_back(v);
        }
      }
      if (batch.empty()) break;
      alive_list = std::move(survivors);

      const int batch_level = static_cast<int>(levels_.size());
      for (VertexId v : batch) {
        // Record L(v) against the core state at batch start.
        LayerSet label;
        for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
          if (core[static_cast<size_t>(layer)].Test(static_cast<size_t>(v))) {
            label.push_back(layer);
          }
        }
        label_[static_cast<size_t>(v)] = std::move(label);
        level_[static_cast<size_t>(v)] = batch_level;
        stage_[static_cast<size_t>(v)] = h;
        alive[static_cast<size_t>(v)] = 0;
      }
      levels_.push_back(std::move(batch));
      // Cascade the removals through every core the batch touched.
      for (VertexId v : levels_.back()) {
        for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
          remove_from_core(v, layer);
        }
      }
      drain_queue();
    }
    if (alive_list.empty()) break;
  }
  MLCORE_DCHECK(alive_list.empty());
}

}  // namespace mlcore
