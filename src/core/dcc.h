#ifndef MLCORE_CORE_DCC_H_
#define MLCORE_CORE_DCC_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"
#include "util/bitset.h"

namespace mlcore {

/// Implementation of the `dCC` procedure (paper Appendix B).
enum class DccEngine {
  /// Cascading-queue peeling; same asymptotics, simplest control flow.
  kQueue,
  /// The faithful Appendix B bin/ver/pos array formulation keyed on
  /// m(v) = min_{i∈L} deg_i(v).
  kBins,
};

/// Reusable solver for d-coherent cores.
///
/// `Compute` returns the d-CC of `graph` w.r.t. a layer set `L` restricted
/// to a vertex `scope` — i.e. the paper's dCC(G[S], L, d): the maximal
/// T ⊆ scope such that every v ∈ T has ≥ d neighbours inside T on every
/// layer of L. Runs in O((|scope| + m[scope])·|L|).
///
/// The solver owns O(n·l) scratch arrays sized once at construction, so the
/// DCCS searches can issue thousands of scoped dCC calls without per-call
/// allocation. Not thread-safe; use one solver per thread.
class DccSolver {
 public:
  explicit DccSolver(const MultiLayerGraph& graph);

  DccSolver(const DccSolver&) = delete;
  DccSolver& operator=(const DccSolver&) = delete;

  /// Computes dCC(G[scope], layers, d). `scope` must be sorted and
  /// duplicate-free; `layers` must be non-empty, sorted and duplicate-free.
  VertexSet Compute(const LayerSet& layers, int d, const VertexSet& scope,
                    DccEngine engine = DccEngine::kQueue);

  /// Number of Compute invocations so far (search-effort statistic).
  int64_t num_calls() const { return num_calls_; }

 private:
  VertexSet ComputeQueue(const LayerSet& layers, int d,
                         const VertexSet& scope);
  VertexSet ComputeBins(const LayerSet& layers, int d, const VertexSet& scope);

  // Fills degree_ for all scope vertices on the given layers and returns the
  // vertices already below threshold. Shared by both engines.
  void InitDegrees(const LayerSet& layers, const VertexSet& scope);
  void ClearScratch(const VertexSet& scope);

  const MultiLayerGraph& graph_;
  int64_t num_calls_ = 0;

  Bitset in_scope_;
  std::vector<uint8_t> removed_;
  // degree_[v * num_layers + layer]: degree of v within the current scope
  // on `layer`. Only entries for (scope vertex, queried layer) are valid.
  std::vector<int32_t> degree_;
};

/// Convenience wrapper: the coherent core C^d_L(G) over the full vertex set.
VertexSet CoherentCore(const MultiLayerGraph& graph, const LayerSet& layers,
                       int d, DccEngine engine = DccEngine::kQueue);

}  // namespace mlcore

#endif  // MLCORE_CORE_DCC_H_
