#ifndef MLCORE_CORE_DCC_H_
#define MLCORE_CORE_DCC_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Implementation of the `dCC` procedure (paper Appendix B).
enum class DccEngine {
  /// Cascading-queue peeling; same asymptotics, simplest control flow.
  kQueue,
  /// The faithful Appendix B bin/ver/pos array formulation keyed on
  /// m(v) = min_{i∈L} deg_i(v).
  kBins,
};

/// Reusable solver for d-coherent cores.
///
/// `Compute` returns the d-CC of `graph` w.r.t. a layer set `L` restricted
/// to a vertex `scope` — i.e. the paper's dCC(G[S], L, d): the maximal
/// T ⊆ scope such that every v ∈ T has ≥ d neighbours inside T on every
/// layer of L. Runs in O((|scope| + m[scope])·|L|).
///
/// The solver is allocation-free in steady state (see DESIGN.md §2):
///  - Per-vertex membership scratch is *epoch-stamped*: a generation
///    counter is bumped at the start of every call, so invalidating the
///    previous call's marks is O(1) instead of O(|scope|).
///  - Scoped degrees live in layer-major blocks `degree_[pos·n + v]`,
///    where `pos` indexes the *queried* layer set. The blocks grow to the
///    largest |L| ever queried (≤ n·l), and layer-major order keeps the
///    per-layer peeling sweeps on contiguous memory instead of striding
///    through an n×l matrix.
///  - The `Compute(..., VertexSet* out)` overload writes into a
///    caller-owned buffer, so driver loops issuing thousands of scoped
///    calls perform zero result allocations after warm-up.
///
/// Not thread-safe; use one solver per thread.
class DccSolver {
 public:
  explicit DccSolver(const MultiLayerGraph& graph);

  DccSolver(const DccSolver&) = delete;
  DccSolver& operator=(const DccSolver&) = delete;

  /// Computes dCC(G[scope], layers, d). `scope` must be sorted and
  /// duplicate-free; `layers` must be non-empty, sorted and duplicate-free.
  VertexSet Compute(const LayerSet& layers, int d, const VertexSet& scope,
                    DccEngine engine = DccEngine::kQueue);

  /// Buffer-reusing form: clears `*out` and fills it with the d-CC, reusing
  /// its capacity. `out` must not alias `scope`.
  void Compute(const LayerSet& layers, int d, const VertexSet& scope,
               VertexSet* out, DccEngine engine = DccEngine::kQueue);

  /// Number of Compute invocations so far (search-effort statistic).
  int64_t num_calls() const { return num_calls_; }

 private:
  void ComputeQueue(const LayerSet& layers, int d, const VertexSet& scope,
                    VertexSet* out);
  void ComputeBins(const LayerSet& layers, int d, const VertexSet& scope,
                   VertexSet* out);

  // Starts a new call: bumps the epoch (resetting the stamp arrays on the
  // rare uint32 wrap), stamps the scope, and sizes degree_ for |layers|
  // layer-major blocks. Initial degrees are filled by the engines.
  void BeginCall(const LayerSet& layers, const VertexSet& scope);

  bool InScope(VertexId v) const {
    return scope_epoch_[static_cast<size_t>(v)] == epoch_;
  }
  bool Removed(VertexId v) const {
    return removed_epoch_[static_cast<size_t>(v)] == epoch_;
  }
  void MarkRemoved(VertexId v) {
    removed_epoch_[static_cast<size_t>(v)] = epoch_;
  }

  // Fills degree_ for every (queried layer, scope vertex) pair, layer by
  // layer. When `seed_queue` is set, vertices already below `d` are marked
  // removed and pushed onto queue_. The queue engine consumes the queue;
  // the bins engine discards it but keeps the removal marks as a
  // skip-doomed-vertices optimisation (see ComputeBins).
  void InitDegrees(const LayerSet& layers, int d, const VertexSet& scope,
                   bool seed_queue);

  const MultiLayerGraph& graph_;
  int64_t num_calls_ = 0;

  // Epoch stamps: v is in the current scope iff scope_epoch_[v] == epoch_,
  // removed iff removed_epoch_[v] == epoch_.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> scope_epoch_;
  std::vector<uint32_t> removed_epoch_;
  // degree_[pos * n + v]: degree of scope vertex v within the scope on the
  // pos-th *queried* layer. Grown to max |L| seen; entries are fully
  // rewritten by InitDegrees, so stale values never need clearing.
  std::vector<int32_t> degree_;
  // Peeling worklist (both engines) — capacity reused across calls.
  std::vector<VertexId> queue_;

  // kBins scratch: dense index per scope vertex, bin boundaries, the
  // ver/pos permutation and per-removal touched list (Appendix B arrays).
  // dense_ is only read for in-scope vertices, each of which is rewritten
  // at the start of a kBins call, so it needs no clearing either.
  std::vector<int32_t> dense_;
  std::vector<int32_t> min_deg_;
  std::vector<size_t> bin_;
  std::vector<VertexId> ver_;
  std::vector<size_t> pos_;
  std::vector<VertexId> touched_;
};

/// Convenience wrapper: the coherent core C^d_L(G) over the full vertex set.
VertexSet CoherentCore(const MultiLayerGraph& graph, const LayerSet& layers,
                       int d, DccEngine engine = DccEngine::kQueue);

}  // namespace mlcore

#endif  // MLCORE_CORE_DCC_H_
