#include "core/fds.h"

#include <limits>

#include "core/dcore.h"
#include "util/check.h"

namespace mlcore {

int64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, guarding overflow.
    int64_t numerator = n - k + i;
    if (result > std::numeric_limits<int64_t>::max() / numerator) {
      return std::numeric_limits<int64_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

void ForEachLayerCombination(int32_t l, int s,
                             const std::function<void(const LayerSet&)>& fn) {
  MLCORE_DCHECK(s >= 1);  // Engine::Validate guarantees s >= 1
  if (s > l) return;
  LayerSet current(static_cast<size_t>(s));
  for (int i = 0; i < s; ++i) current[static_cast<size_t>(i)] = i;
  while (true) {
    fn(current);
    // Advance to the next combination in lexicographic order.
    int i = s - 1;
    while (i >= 0 &&
           current[static_cast<size_t>(i)] == l - s + i) {
      --i;
    }
    if (i < 0) break;
    ++current[static_cast<size_t>(i)];
    for (int j = i + 1; j < s; ++j) {
      current[static_cast<size_t>(j)] = current[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

std::vector<CandidateCore> EnumerateFds(const MultiLayerGraph& graph, int d,
                                        int s) {
  std::vector<VertexSet> layer_cores;
  layer_cores.reserve(static_cast<size_t>(graph.NumLayers()));
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    layer_cores.push_back(DCore(graph, layer, d));
  }

  DccSolver solver(graph);
  std::vector<CandidateCore> result;
  ForEachLayerCombination(graph.NumLayers(), s, [&](const LayerSet& layers) {
    VertexSet scope = layer_cores[static_cast<size_t>(layers[0])];
    for (size_t i = 1; i < layers.size() && !scope.empty(); ++i) {
      scope = IntersectSorted(scope,
                              layer_cores[static_cast<size_t>(layers[i])]);
    }
    CandidateCore candidate;
    candidate.layers = layers;
    candidate.vertices = solver.Compute(layers, d, scope);
    result.push_back(std::move(candidate));
  });
  return result;
}

}  // namespace mlcore
