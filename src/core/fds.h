#ifndef MLCORE_CORE_FDS_H_
#define MLCORE_CORE_FDS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dcc.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// Number of size-k subsets of an n-element set, saturating at INT64_MAX.
int64_t BinomialCoefficient(int n, int k);

/// Invokes `fn` once for every size-`s` subset of {0, …, l-1}, in
/// lexicographic order. The passed set is reused between calls.
void ForEachLayerCombination(int32_t l, int s,
                             const std::function<void(const LayerSet&)>& fn);

/// One enumerated candidate: the layer subset and its d-CC.
struct CandidateCore {
  LayerSet layers;
  VertexSet vertices;
};

/// Materialises F_{d,s}(G): the d-CCs w.r.t. all layer subsets of size s
/// (paper §II). Each candidate is computed inside the intersection of the
/// per-layer d-cores (Lemma 1), mirroring lines 4–7 of GD-DCCS. Intended
/// for tests and small graphs; the greedy algorithm has its own streaming
/// variant.
std::vector<CandidateCore> EnumerateFds(const MultiLayerGraph& graph, int d,
                                        int s);

}  // namespace mlcore

#endif  // MLCORE_CORE_FDS_H_
