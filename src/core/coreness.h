#ifndef MLCORE_CORE_CORENESS_H_
#define MLCORE_CORE_CORENESS_H_

#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Coherent coreness w.r.t. a fixed layer set L: the largest d such that
/// v ∈ C^d_L(G) (−1 for vertices in no coherent core, which cannot happen
/// since C^0_L = V). Computed by the generalised Batagelj–Zaversnik
/// peeling on the multi-layer minimum degree m(v) = min_{i∈L} deg_i(v),
/// which is monotone under vertex removal, so the single-layer core
/// theorem carries over. O((n + m)·|L|).
///
/// This is the natural "decomposition view" of the d-CC hierarchy
/// (Property 2): {v : coreness(v) ≥ d} = C^d_L(G) for every d.
std::vector<int> CoherentCoreness(const MultiLayerGraph& graph,
                                  const LayerSet& layers);

/// All coherent cores of G w.r.t. L for d = 0 … d_max, where d_max is the
/// largest d with a non-empty core: hierarchy[d] = C^d_L(G), sorted.
/// Derived from CoherentCoreness in one pass.
std::vector<VertexSet> CoherentCoreHierarchy(const MultiLayerGraph& graph,
                                             const LayerSet& layers);

/// Generalisation of the d-CC to per-layer degree thresholds: the maximal
/// S ⊆ V such that every v ∈ S has at least thresholds[i] neighbours
/// inside S on layers[i], for every position i. With all thresholds equal
/// to d this is exactly C^d_L(G). Useful when layers have very different
/// densities (e.g. a sparse validation layer next to dense primary
/// layers). `thresholds` must have the same length as `layers`.
VertexSet CoherentCoreVector(const MultiLayerGraph& graph,
                             const LayerSet& layers,
                             const std::vector<int>& thresholds);

}  // namespace mlcore

#endif  // MLCORE_CORE_CORENESS_H_
