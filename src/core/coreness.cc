#include "core/coreness.h"

#include <algorithm>

#include "util/bitset.h"
#include "util/check.h"

namespace mlcore {

std::vector<int> CoherentCoreness(const MultiLayerGraph& graph,
                                  const LayerSet& layers) {
  MLCORE_DCHECK(!layers.empty());
  const auto n = static_cast<size_t>(graph.NumVertices());
  const auto l = static_cast<size_t>(graph.NumLayers());

  // Per-layer degrees and the multi-layer minimum degree m(v).
  std::vector<int32_t> degree(n * l, 0);
  std::vector<int32_t> m(n, INT32_MAX);
  int32_t max_m = 0;
  for (size_t v = 0; v < n; ++v) {
    for (LayerId layer : layers) {
      auto deg = graph.Degree(layer, static_cast<VertexId>(v));
      degree[v * l + static_cast<size_t>(layer)] = deg;
      m[v] = std::min(m[v], deg);
    }
    max_m = std::max(max_m, m[v]);
  }

  // Bin-sorted vertex array over m values (Batagelj–Zaversnik layout).
  std::vector<size_t> bin(static_cast<size_t>(max_m) + 2, 0);
  for (size_t v = 0; v < n; ++v) ++bin[static_cast<size_t>(m[v])];
  size_t start = 0;
  for (size_t value = 0; value <= static_cast<size_t>(max_m); ++value) {
    size_t count = bin[value];
    bin[value] = start;
    start += count;
  }
  std::vector<VertexId> ver(n);
  std::vector<size_t> pos(n);
  for (size_t v = 0; v < n; ++v) {
    pos[v] = bin[static_cast<size_t>(m[v])];
    ver[pos[v]] = static_cast<VertexId>(v);
    ++bin[static_cast<size_t>(m[v])];
  }
  for (size_t value = static_cast<size_t>(max_m); value >= 1; --value) {
    bin[value] = bin[value - 1];
  }
  bin[0] = 0;

  std::vector<uint8_t> removed(n, 0);
  std::vector<int> coreness(n, 0);
  std::vector<VertexId> touched;
  int32_t level = 0;  // running maximum of m at removal time
  for (size_t front = 0; front < n; ++front) {
    auto v = static_cast<size_t>(ver[front]);
    level = std::max(level, m[v]);
    coreness[v] = level;
    removed[v] = 1;

    touched.clear();
    for (LayerId layer : layers) {
      for (VertexId u_id : graph.Neighbors(layer, static_cast<VertexId>(v))) {
        auto u = static_cast<size_t>(u_id);
        if (removed[u] != 0) continue;
        --degree[u * l + static_cast<size_t>(layer)];
        touched.push_back(u_id);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (VertexId u_id : touched) {
      auto u = static_cast<size_t>(u_id);
      int32_t new_m = INT32_MAX;
      for (LayerId layer : layers) {
        new_m = std::min(new_m, degree[u * l + static_cast<size_t>(layer)]);
      }
      if (new_m >= m[u]) continue;
      MLCORE_DCHECK(new_m == m[u] - 1);
      // Swap-demote while u still sits above the current peel level; below
      // it, order among doomed vertices is irrelevant (cf. DccSolver).
      if (m[u] > level) {
        auto value = static_cast<size_t>(m[u]);
        size_t pu = pos[u];
        size_t pw = bin[value];
        VertexId w = ver[pw];
        if (w != u_id) {
          ver[pu] = w;
          ver[pw] = u_id;
          pos[u] = pw;
          pos[static_cast<size_t>(w)] = pu;
        }
        ++bin[value];
      }
      m[u] = new_m;
    }
  }
  return coreness;
}

std::vector<VertexSet> CoherentCoreHierarchy(const MultiLayerGraph& graph,
                                             const LayerSet& layers) {
  std::vector<int> coreness = CoherentCoreness(graph, layers);
  int max_core = 0;
  for (int c : coreness) max_core = std::max(max_core, c);
  std::vector<VertexSet> hierarchy(static_cast<size_t>(max_core) + 1);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    // v belongs to every core up to its coreness; fill top-down to keep
    // the total work linear in Σ|C^d|.
    for (int d = 0; d <= coreness[static_cast<size_t>(v)]; ++d) {
      hierarchy[static_cast<size_t>(d)].push_back(v);
    }
  }
  return hierarchy;
}

VertexSet CoherentCoreVector(const MultiLayerGraph& graph,
                             const LayerSet& layers,
                             const std::vector<int>& thresholds) {
  MLCORE_DCHECK(layers.size() == thresholds.size());
  MLCORE_DCHECK(!layers.empty());
  const auto n = static_cast<size_t>(graph.NumVertices());
  const auto count = layers.size();

  std::vector<int32_t> degree(n * count, 0);
  std::vector<uint8_t> removed(n, 0);
  std::vector<VertexId> queue;
  for (size_t v = 0; v < n; ++v) {
    for (size_t i = 0; i < count; ++i) {
      auto deg = graph.Degree(layers[i], static_cast<VertexId>(v));
      degree[v * count + i] = deg;
    }
    for (size_t i = 0; i < count; ++i) {
      if (degree[v * count + i] < thresholds[i]) {
        removed[v] = 1;
        queue.push_back(static_cast<VertexId>(v));
        break;
      }
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    auto v = queue[head];
    for (size_t i = 0; i < count; ++i) {
      for (VertexId u_id : graph.Neighbors(layers[i], v)) {
        auto u = static_cast<size_t>(u_id);
        if (removed[u] != 0) continue;
        if (--degree[u * count + i] < thresholds[i]) {
          removed[u] = 1;
          queue.push_back(u_id);
        }
      }
    }
  }
  VertexSet core;
  for (size_t v = 0; v < n; ++v) {
    if (removed[v] == 0) core.push_back(static_cast<VertexId>(v));
  }
  return core;
}

}  // namespace mlcore
