#ifndef MLCORE_CORE_DCORE_H_
#define MLCORE_CORE_DCORE_H_

#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Single-layer d-core C^d(G_i) (paper §II, ref [3]): the maximal vertex set
/// S such that every vertex of S has at least d neighbours inside S on
/// `layer`. Returns a sorted vertex set. Runs in O(n + m).
VertexSet DCore(const MultiLayerGraph& graph, LayerId layer, int d);

/// d-core of the subgraph induced by `scope` on `layer`. `scope` must be
/// sorted and duplicate-free.
VertexSet DCoreScoped(const MultiLayerGraph& graph, LayerId layer, int d,
                      const VertexSet& scope);

/// Full core decomposition of one layer via the Batagelj–Zaversnik O(m)
/// bin-sort algorithm (paper ref [3]): returns the coreness of every vertex
/// (coreness[v] = largest d such that v ∈ C^d(G_layer)).
std::vector<int> CoreDecomposition(const MultiLayerGraph& graph,
                                   LayerId layer);

}  // namespace mlcore

#endif  // MLCORE_CORE_DCORE_H_
