#include "core/dcc.h"

#include <algorithm>

#include "util/check.h"

namespace mlcore {

DccSolver::DccSolver(const MultiLayerGraph& graph)
    : graph_(graph),
      in_scope_(static_cast<size_t>(graph.NumVertices())),
      removed_(static_cast<size_t>(graph.NumVertices()), 0),
      degree_(static_cast<size_t>(graph.NumVertices()) *
                  static_cast<size_t>(graph.NumLayers()),
              0) {}

VertexSet DccSolver::Compute(const LayerSet& layers, int d,
                             const VertexSet& scope, DccEngine engine) {
  MLCORE_CHECK(!layers.empty());
  MLCORE_DCHECK(std::is_sorted(layers.begin(), layers.end()));
  MLCORE_DCHECK(std::is_sorted(scope.begin(), scope.end()));
  ++num_calls_;
  VertexSet result = engine == DccEngine::kQueue ? ComputeQueue(layers, d, scope)
                                                 : ComputeBins(layers, d, scope);
  ClearScratch(scope);
  return result;
}

void DccSolver::InitDegrees(const LayerSet& layers, const VertexSet& scope) {
  for (VertexId v : scope) in_scope_.Set(static_cast<size_t>(v));
  const auto l = static_cast<size_t>(graph_.NumLayers());
  for (VertexId v : scope) {
    for (LayerId layer : layers) {
      int32_t deg = 0;
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (in_scope_.Test(static_cast<size_t>(u))) ++deg;
      }
      degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] = deg;
    }
  }
}

void DccSolver::ClearScratch(const VertexSet& scope) {
  for (VertexId v : scope) {
    in_scope_.Clear(static_cast<size_t>(v));
    removed_[static_cast<size_t>(v)] = 0;
  }
}

VertexSet DccSolver::ComputeQueue(const LayerSet& layers, int d,
                                  const VertexSet& scope) {
  InitDegrees(layers, scope);
  const auto l = static_cast<size_t>(graph_.NumLayers());

  std::vector<VertexId> queue;
  for (VertexId v : scope) {
    for (LayerId layer : layers) {
      if (degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] <
          d) {
        removed_[static_cast<size_t>(v)] = 1;
        queue.push_back(v);
        break;
      }
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    VertexId v = queue[head];
    for (LayerId layer : layers) {
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (!in_scope_.Test(static_cast<size_t>(u)) ||
            removed_[static_cast<size_t>(u)] != 0) {
          continue;
        }
        auto& deg =
            degree_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
        if (--deg < d) {
          removed_[static_cast<size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
  }

  VertexSet result;
  for (VertexId v : scope) {
    if (removed_[static_cast<size_t>(v)] == 0) result.push_back(v);
  }
  return result;
}

VertexSet DccSolver::ComputeBins(const LayerSet& layers, int d,
                                 const VertexSet& scope) {
  // Faithful Appendix B formulation: vertices bucketed by
  // m(v) = min_{i∈L} deg_i(v) in bin/ver/pos arrays; the minimum-m vertex is
  // repeatedly removed while m(v) < d. Removing one vertex lowers any m(u)
  // by at most 1 (Appendix B), so a removal moves u down at most one bin.
  InitDegrees(layers, scope);
  const auto l = static_cast<size_t>(graph_.NumLayers());
  const size_t count = scope.size();
  if (count == 0) return {};

  auto min_degree = [&](VertexId v) {
    int32_t m = INT32_MAX;
    for (LayerId layer : layers) {
      m = std::min(
          m, degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)]);
    }
    return m;
  };

  // pos_in_scope maps vertex id -> dense index in [0, count).
  std::vector<int32_t> m(count);
  int32_t max_m = 0;
  std::vector<int32_t> dense(static_cast<size_t>(graph_.NumVertices()), -1);
  for (size_t i = 0; i < count; ++i) {
    dense[static_cast<size_t>(scope[i])] = static_cast<int32_t>(i);
    m[i] = min_degree(scope[i]);
    max_m = std::max(max_m, m[i]);
  }

  std::vector<size_t> bin(static_cast<size_t>(max_m) + 2, 0);
  for (size_t i = 0; i < count; ++i) ++bin[static_cast<size_t>(m[i])];
  size_t start = 0;
  for (size_t value = 0; value <= static_cast<size_t>(max_m); ++value) {
    size_t c = bin[value];
    bin[value] = start;
    start += c;
  }
  std::vector<VertexId> ver(count);
  std::vector<size_t> pos(count);
  for (size_t i = 0; i < count; ++i) {
    pos[i] = bin[static_cast<size_t>(m[i])];
    ver[pos[i]] = scope[i];
    ++bin[static_cast<size_t>(m[i])];
  }
  for (size_t value = static_cast<size_t>(max_m); value >= 1; --value) {
    bin[value] = bin[value - 1];
  }
  bin[0] = 0;

  std::vector<VertexId> touched;
  for (size_t front = 0; front < count; ++front) {
    VertexId v = ver[front];
    auto vi = static_cast<size_t>(dense[static_cast<size_t>(v)]);
    if (m[vi] >= d) break;  // remaining vertices all satisfy the threshold
    removed_[static_cast<size_t>(v)] = 1;

    touched.clear();
    for (LayerId layer : layers) {
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (!in_scope_.Test(static_cast<size_t>(u)) ||
            removed_[static_cast<size_t>(u)] != 0) {
          continue;
        }
        --degree_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
        touched.push_back(u);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    for (VertexId u : touched) {
      auto ui = static_cast<size_t>(dense[static_cast<size_t>(u)]);
      int32_t new_m = min_degree(u);
      if (new_m >= m[ui]) continue;
      MLCORE_DCHECK(new_m == m[ui] - 1);
      // Swap-demote u one bin down while it is still in the "live" region
      // (m ≥ d). This keeps every sub-threshold vertex positioned before
      // every live vertex, which the early-exit pop relies on. Vertices
      // already below the threshold are doomed regardless of their exact m,
      // so only their stored value needs updating: their bin boundaries may
      // lag behind the scan front and must not be used as swap targets.
      if (m[ui] >= d) {
        auto value = static_cast<size_t>(m[ui]);
        size_t pu = pos[ui];
        size_t pw = bin[value];
        MLCORE_DCHECK(pw > front);
        VertexId w = ver[pw];
        if (w != u) {
          auto wi = static_cast<size_t>(dense[static_cast<size_t>(w)]);
          ver[pu] = w;
          ver[pw] = u;
          pos[ui] = pw;
          pos[wi] = pu;
        }
        ++bin[value];
      }
      m[ui] = new_m;
    }
  }

  VertexSet result;
  for (VertexId v : scope) {
    if (removed_[static_cast<size_t>(v)] == 0) result.push_back(v);
  }
  return result;
}

VertexSet CoherentCore(const MultiLayerGraph& graph, const LayerSet& layers,
                       int d, DccEngine engine) {
  DccSolver solver(graph);
  return solver.Compute(layers, d, AllVertices(graph), engine);
}

}  // namespace mlcore
