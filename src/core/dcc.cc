#include "core/dcc.h"

#include <algorithm>

#include "util/check.h"

namespace mlcore {

DccSolver::DccSolver(const MultiLayerGraph& graph)
    : graph_(graph),
      scope_epoch_(static_cast<size_t>(graph.NumVertices()), 0),
      removed_epoch_(static_cast<size_t>(graph.NumVertices()), 0),
      dense_(static_cast<size_t>(graph.NumVertices()), -1) {}

VertexSet DccSolver::Compute(const LayerSet& layers, int d,
                             const VertexSet& scope, DccEngine engine) {
  VertexSet result;
  Compute(layers, d, scope, &result, engine);
  return result;
}

void DccSolver::Compute(const LayerSet& layers, int d, const VertexSet& scope,
                        VertexSet* out, DccEngine engine) {
  MLCORE_DCHECK(!layers.empty());  // engine callers never pass empty
  MLCORE_DCHECK(std::is_sorted(layers.begin(), layers.end()));
  MLCORE_DCHECK(std::is_sorted(scope.begin(), scope.end()));
  MLCORE_DCHECK(out != &scope);
  ++num_calls_;
  BeginCall(layers, scope);
  if (engine == DccEngine::kQueue) {
    ComputeQueue(layers, d, scope, out);
  } else {
    ComputeBins(layers, d, scope, out);
  }
}

void DccSolver::BeginCall(const LayerSet& layers, const VertexSet& scope) {
  if (++epoch_ == 0) {
    // uint32 wrap after ~4.3e9 calls: invalidate all stale stamps once.
    std::fill(scope_epoch_.begin(), scope_epoch_.end(), 0u);
    std::fill(removed_epoch_.begin(), removed_epoch_.end(), 0u);
    epoch_ = 1;
  }
  for (VertexId v : scope) scope_epoch_[static_cast<size_t>(v)] = epoch_;
  const size_t needed =
      layers.size() * static_cast<size_t>(graph_.NumVertices());
  if (degree_.size() < needed) degree_.resize(needed);
  queue_.clear();
}

void DccSolver::InitDegrees(const LayerSet& layers, int d,
                            const VertexSet& scope, bool seed_queue) {
  const auto n = static_cast<size_t>(graph_.NumVertices());
  for (size_t p = 0; p < layers.size(); ++p) {
    int32_t* block = degree_.data() + p * n;
    const LayerId layer = layers[p];
    for (VertexId v : scope) {
      int32_t deg = 0;
      for (VertexId u : graph_.Neighbors(layer, v)) {
        if (InScope(u)) ++deg;
      }
      block[static_cast<size_t>(v)] = deg;
      if (seed_queue && deg < d && !Removed(v)) {
        MarkRemoved(v);
        queue_.push_back(v);
      }
    }
  }
}

void DccSolver::ComputeQueue(const LayerSet& layers, int d,
                             const VertexSet& scope, VertexSet* out) {
  InitDegrees(layers, d, scope, /*seed_queue=*/true);
  const auto n = static_cast<size_t>(graph_.NumVertices());

  for (size_t head = 0; head < queue_.size(); ++head) {
    const VertexId v = queue_[head];
    for (size_t p = 0; p < layers.size(); ++p) {
      int32_t* block = degree_.data() + p * n;
      for (VertexId u : graph_.Neighbors(layers[p], v)) {
        if (!InScope(u) || Removed(u)) continue;
        if (--block[static_cast<size_t>(u)] < d) {
          MarkRemoved(u);
          queue_.push_back(u);
        }
      }
    }
  }

  out->clear();
  for (VertexId v : scope) {
    if (!Removed(v)) out->push_back(v);
  }
}

void DccSolver::ComputeBins(const LayerSet& layers, int d,
                            const VertexSet& scope, VertexSet* out) {
  // Faithful Appendix B formulation: vertices bucketed by
  // m(v) = min_{i∈L} deg_i(v) in bin/ver/pos arrays; the minimum-m vertex is
  // repeatedly removed while m(v) < d. Removing one vertex lowers any m(u)
  // by at most 1 (Appendix B), so a removal moves u down at most one bin.
  //
  // Degrees are filled through the same path as the queue engine, with its
  // sub-threshold pre-marking kept deliberately (the seeded queue itself is
  // discarded: bins drive the removal order). Pre-marked vertices are
  // doomed — they occupy the lowest bins and are popped before any live
  // vertex — so the decrement loop may skip them: their degree counters and
  // min_deg_ are never read again except for the pop-time `>= d` early-exit
  // test, which their stored sub-threshold value cannot trigger. Skipping
  // them avoids the touched_ bookkeeping and bin demotion work for the
  // entire doomed set, a measurable win on low-d instances (BENCH_micro:
  // BM_DccBins/4 ≈ 1.6x).
  InitDegrees(layers, d, scope, /*seed_queue=*/true);
  queue_.clear();
  const auto n = static_cast<size_t>(graph_.NumVertices());
  const size_t count = scope.size();
  out->clear();
  if (count == 0) return;

  auto min_degree = [&](VertexId v) {
    int32_t m = INT32_MAX;
    for (size_t p = 0; p < layers.size(); ++p) {
      m = std::min(m, degree_[p * n + static_cast<size_t>(v)]);
    }
    return m;
  };

  // dense_ maps vertex id -> dense index in [0, count).
  min_deg_.resize(count);
  int32_t max_m = 0;
  for (size_t i = 0; i < count; ++i) {
    dense_[static_cast<size_t>(scope[i])] = static_cast<int32_t>(i);
    min_deg_[i] = min_degree(scope[i]);
    max_m = std::max(max_m, min_deg_[i]);
  }

  bin_.assign(static_cast<size_t>(max_m) + 2, 0);
  for (size_t i = 0; i < count; ++i) ++bin_[static_cast<size_t>(min_deg_[i])];
  size_t start = 0;
  for (size_t value = 0; value <= static_cast<size_t>(max_m); ++value) {
    size_t c = bin_[value];
    bin_[value] = start;
    start += c;
  }
  ver_.resize(count);
  pos_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    pos_[i] = bin_[static_cast<size_t>(min_deg_[i])];
    ver_[pos_[i]] = scope[i];
    ++bin_[static_cast<size_t>(min_deg_[i])];
  }
  for (size_t value = static_cast<size_t>(max_m); value >= 1; --value) {
    bin_[value] = bin_[value - 1];
  }
  bin_[0] = 0;

  for (size_t front = 0; front < count; ++front) {
    const VertexId v = ver_[front];
    const auto vi = static_cast<size_t>(dense_[static_cast<size_t>(v)]);
    if (min_deg_[vi] >= d) break;  // remaining vertices all satisfy the
                                   // threshold
    MarkRemoved(v);

    touched_.clear();
    for (size_t p = 0; p < layers.size(); ++p) {
      int32_t* block = degree_.data() + p * n;
      for (VertexId u : graph_.Neighbors(layers[p], v)) {
        if (!InScope(u) || Removed(u)) continue;
        --block[static_cast<size_t>(u)];
        touched_.push_back(u);
      }
    }
    std::sort(touched_.begin(), touched_.end());
    touched_.erase(std::unique(touched_.begin(), touched_.end()),
                   touched_.end());

    for (VertexId u : touched_) {
      const auto ui = static_cast<size_t>(dense_[static_cast<size_t>(u)]);
      const int32_t new_m = min_degree(u);
      if (new_m >= min_deg_[ui]) continue;
      MLCORE_DCHECK(new_m == min_deg_[ui] - 1);
      // Swap-demote u one bin down while it is still in the "live" region
      // (m ≥ d). This keeps every sub-threshold vertex positioned before
      // every live vertex, which the early-exit pop relies on. Vertices
      // already below the threshold are doomed regardless of their exact m,
      // so only their stored value needs updating: their bin boundaries may
      // lag behind the scan front and must not be used as swap targets.
      if (min_deg_[ui] >= d) {
        const auto value = static_cast<size_t>(min_deg_[ui]);
        const size_t pu = pos_[ui];
        const size_t pw = bin_[value];
        MLCORE_DCHECK(pw > front);
        const VertexId w = ver_[pw];
        if (w != u) {
          const auto wi = static_cast<size_t>(dense_[static_cast<size_t>(w)]);
          ver_[pu] = w;
          ver_[pw] = u;
          pos_[ui] = pw;
          pos_[wi] = pu;
        }
        ++bin_[value];
      }
      min_deg_[ui] = new_m;
    }
  }

  for (VertexId v : scope) {
    if (!Removed(v)) out->push_back(v);
  }
}

VertexSet CoherentCore(const MultiLayerGraph& graph, const LayerSet& layers,
                       int d, DccEngine engine) {
  DccSolver solver(graph);
  return solver.Compute(layers, d, AllVertices(graph), engine);
}

}  // namespace mlcore
