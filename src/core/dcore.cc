#include "core/dcore.h"

#include <algorithm>

#include "util/bitset.h"
#include "util/check.h"

namespace mlcore {

VertexSet DCore(const MultiLayerGraph& graph, LayerId layer, int d) {
  // Cascading-deletion peeling. For the single-threshold query the simple
  // queue formulation matches the O(n + m) bound of [3] without the bin
  // machinery (which CoreDecomposition below does use).
  const int32_t n = graph.NumVertices();
  std::vector<int32_t> degree(static_cast<size_t>(n));
  std::vector<VertexId> queue;
  std::vector<bool> removed(static_cast<size_t>(n), false);
  for (VertexId v = 0; v < n; ++v) {
    degree[static_cast<size_t>(v)] = graph.Degree(layer, v);
    if (degree[static_cast<size_t>(v)] < d) {
      removed[static_cast<size_t>(v)] = true;
      queue.push_back(v);
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    VertexId v = queue[head];
    for (VertexId u : graph.Neighbors(layer, v)) {
      if (removed[static_cast<size_t>(u)]) continue;
      if (--degree[static_cast<size_t>(u)] < d) {
        removed[static_cast<size_t>(u)] = true;
        queue.push_back(u);
      }
    }
  }
  VertexSet core;
  for (VertexId v = 0; v < n; ++v) {
    if (!removed[static_cast<size_t>(v)]) core.push_back(v);
  }
  return core;
}

VertexSet DCoreScoped(const MultiLayerGraph& graph, LayerId layer, int d,
                      const VertexSet& scope) {
  MLCORE_DCHECK(std::is_sorted(scope.begin(), scope.end()));
  const int32_t n = graph.NumVertices();
  Bitset in_scope(static_cast<size_t>(n));
  for (VertexId v : scope) in_scope.Set(static_cast<size_t>(v));

  std::vector<int32_t> degree(static_cast<size_t>(n), 0);
  std::vector<bool> removed(static_cast<size_t>(n), false);
  std::vector<VertexId> queue;
  for (VertexId v : scope) {
    int32_t deg = 0;
    for (VertexId u : graph.Neighbors(layer, v)) {
      if (in_scope.Test(static_cast<size_t>(u))) ++deg;
    }
    degree[static_cast<size_t>(v)] = deg;
    if (deg < d) {
      removed[static_cast<size_t>(v)] = true;
      queue.push_back(v);
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    VertexId v = queue[head];
    for (VertexId u : graph.Neighbors(layer, v)) {
      if (!in_scope.Test(static_cast<size_t>(u)) ||
          removed[static_cast<size_t>(u)]) {
        continue;
      }
      if (--degree[static_cast<size_t>(u)] < d) {
        removed[static_cast<size_t>(u)] = true;
        queue.push_back(u);
      }
    }
  }
  VertexSet core;
  for (VertexId v : scope) {
    if (!removed[static_cast<size_t>(v)]) core.push_back(v);
  }
  return core;
}

std::vector<int> CoreDecomposition(const MultiLayerGraph& graph,
                                   LayerId layer) {
  // Batagelj–Zaversnik bin sort, ref [3] of the paper.
  const auto n = static_cast<size_t>(graph.NumVertices());
  std::vector<int> degree(n);
  int max_degree = 0;
  for (size_t v = 0; v < n; ++v) {
    degree[v] = graph.Degree(layer, static_cast<VertexId>(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  std::vector<size_t> bin(static_cast<size_t>(max_degree) + 2, 0);
  for (size_t v = 0; v < n; ++v) ++bin[static_cast<size_t>(degree[v])];
  size_t start = 0;
  for (size_t deg = 0; deg <= static_cast<size_t>(max_degree); ++deg) {
    size_t count = bin[deg];
    bin[deg] = start;
    start += count;
  }

  std::vector<VertexId> ver(n);
  std::vector<size_t> pos(n);
  for (size_t v = 0; v < n; ++v) {
    pos[v] = bin[static_cast<size_t>(degree[v])];
    ver[pos[v]] = static_cast<VertexId>(v);
    ++bin[static_cast<size_t>(degree[v])];
  }
  for (size_t deg = static_cast<size_t>(max_degree); deg >= 1; --deg) {
    bin[deg] = bin[deg - 1];
  }
  bin[0] = 0;

  std::vector<int> coreness(n);
  for (size_t i = 0; i < n; ++i) {
    auto v = static_cast<size_t>(ver[i]);
    coreness[v] = degree[v];
    for (VertexId u_id : graph.Neighbors(layer, static_cast<VertexId>(v))) {
      auto u = static_cast<size_t>(u_id);
      if (degree[u] > degree[v]) {
        // Swap u with the first vertex of its bin, then shrink the bin:
        // u's effective degree decreases by one.
        size_t du = static_cast<size_t>(degree[u]);
        size_t pu = pos[u];
        size_t pw = bin[du];
        VertexId w = ver[pw];
        if (u_id != w) {
          ver[pu] = w;
          ver[pw] = u_id;
          pos[u] = pw;
          pos[static_cast<size_t>(w)] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return coreness;
}

}  // namespace mlcore
