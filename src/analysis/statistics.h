#ifndef MLCORE_ANALYSIS_STATISTICS_H_
#define MLCORE_ANALYSIS_STATISTICS_H_

#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Per-layer summary statistics of a multi-layer graph.
struct LayerStatistics {
  int64_t edges = 0;
  double average_degree = 0.0;
  int32_t max_degree = 0;
  /// Number of vertices with at least one incident edge on the layer.
  int32_t active_vertices = 0;
  /// Largest d with a non-empty d-core on the layer (the degeneracy).
  int degeneracy = 0;
};

/// Computes LayerStatistics for every layer in O(n·l + m) plus one core
/// decomposition per layer.
std::vector<LayerStatistics> ComputeLayerStatistics(
    const MultiLayerGraph& graph);

/// Jaccard similarity |E_a ∩ E_b| / |E_a ∪ E_b| between two layers' edge
/// sets. Returns 1 when both layers are empty.
double LayerEdgeJaccard(const MultiLayerGraph& graph, LayerId a, LayerId b);

/// Full l×l layer-similarity matrix (row-major), symmetric with unit
/// diagonal. Useful for choosing the support threshold s: blocks of
/// similar layers make large coherent cores likely.
std::vector<double> LayerSimilarityMatrix(const MultiLayerGraph& graph);

/// Degree histogram of one layer: result[i] = number of vertices with
/// degree exactly i.
std::vector<int64_t> DegreeHistogram(const MultiLayerGraph& graph,
                                     LayerId layer);

/// Support histogram at threshold d: result[i] = number of vertices lying
/// in exactly i of the per-layer d-cores (the paper's Num(v) used by
/// vertex deletion and the §V-C index).
std::vector<int64_t> SupportHistogram(const MultiLayerGraph& graph, int d);

/// Connected components of one layer (isolated vertices are singleton
/// components). Returns the component id of every vertex, ids numbered
/// from 0 in first-seen order.
std::vector<int32_t> ConnectedComponents(const MultiLayerGraph& graph,
                                         LayerId layer);

/// Number of distinct values in a component-id vector.
int32_t CountComponents(const std::vector<int32_t>& component_ids);

}  // namespace mlcore

#endif  // MLCORE_ANALYSIS_STATISTICS_H_
