#include "analysis/statistics.h"

#include <algorithm>

#include "core/dcore.h"
#include "util/check.h"

namespace mlcore {

std::vector<LayerStatistics> ComputeLayerStatistics(
    const MultiLayerGraph& graph) {
  std::vector<LayerStatistics> stats(
      static_cast<size_t>(graph.NumLayers()));
  const int32_t n = graph.NumVertices();
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    LayerStatistics& s = stats[static_cast<size_t>(layer)];
    s.edges = graph.NumEdges(layer);
    int64_t degree_sum = 0;
    for (VertexId v = 0; v < n; ++v) {
      int32_t degree = graph.Degree(layer, v);
      degree_sum += degree;
      s.max_degree = std::max(s.max_degree, degree);
      if (degree > 0) ++s.active_vertices;
    }
    s.average_degree =
        n > 0 ? static_cast<double>(degree_sum) / static_cast<double>(n)
              : 0.0;
    std::vector<int> coreness = CoreDecomposition(graph, layer);
    s.degeneracy =
        coreness.empty()
            ? 0
            : *std::max_element(coreness.begin(), coreness.end());
  }
  return stats;
}

double LayerEdgeJaccard(const MultiLayerGraph& graph, LayerId a, LayerId b) {
  int64_t common = 0;
  int64_t union_size = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto na = graph.Neighbors(a, v);
    auto nb = graph.Neighbors(b, v);
    size_t ia = 0, ib = 0;
    while (ia < na.size() || ib < nb.size()) {
      VertexId ua = ia < na.size() ? na[ia] : INT32_MAX;
      VertexId ub = ib < nb.size() ? nb[ib] : INT32_MAX;
      VertexId next = std::min(ua, ub);
      if (next <= v) {  // count each undirected edge once (v < u side)
        if (ua == next) ++ia;
        if (ub == next) ++ib;
        continue;
      }
      if (ua == ub) {
        ++common;
        ++union_size;
        ++ia;
        ++ib;
      } else if (ua < ub) {
        ++union_size;
        ++ia;
      } else {
        ++union_size;
        ++ib;
      }
    }
  }
  if (union_size == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(union_size);
}

std::vector<double> LayerSimilarityMatrix(const MultiLayerGraph& graph) {
  const auto l = static_cast<size_t>(graph.NumLayers());
  std::vector<double> matrix(l * l, 1.0);
  for (size_t a = 0; a < l; ++a) {
    for (size_t b = a + 1; b < l; ++b) {
      double jaccard = LayerEdgeJaccard(graph, static_cast<LayerId>(a),
                                        static_cast<LayerId>(b));
      matrix[a * l + b] = jaccard;
      matrix[b * l + a] = jaccard;
    }
  }
  return matrix;
}

std::vector<int64_t> DegreeHistogram(const MultiLayerGraph& graph,
                                     LayerId layer) {
  std::vector<int64_t> histogram;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto degree = static_cast<size_t>(graph.Degree(layer, v));
    if (histogram.size() <= degree) histogram.resize(degree + 1, 0);
    ++histogram[degree];
  }
  return histogram;
}

std::vector<int64_t> SupportHistogram(const MultiLayerGraph& graph, int d) {
  const auto n = static_cast<size_t>(graph.NumVertices());
  std::vector<int> support(n, 0);
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    for (VertexId v : DCore(graph, layer, d)) {
      ++support[static_cast<size_t>(v)];
    }
  }
  std::vector<int64_t> histogram(
      static_cast<size_t>(graph.NumLayers()) + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    ++histogram[static_cast<size_t>(support[v])];
  }
  return histogram;
}

std::vector<int32_t> ConnectedComponents(const MultiLayerGraph& graph,
                                         LayerId layer) {
  const auto n = static_cast<size_t>(graph.NumVertices());
  std::vector<int32_t> component(n, -1);
  std::vector<VertexId> queue;
  int32_t next_id = 0;
  for (VertexId root = 0; root < graph.NumVertices(); ++root) {
    if (component[static_cast<size_t>(root)] >= 0) continue;
    component[static_cast<size_t>(root)] = next_id;
    queue.clear();
    queue.push_back(root);
    for (size_t head = 0; head < queue.size(); ++head) {
      VertexId v = queue[head];
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (component[static_cast<size_t>(u)] < 0) {
          component[static_cast<size_t>(u)] = next_id;
          queue.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return component;
}

int32_t CountComponents(const std::vector<int32_t>& component_ids) {
  int32_t max_id = -1;
  for (int32_t id : component_ids) max_id = std::max(max_id, id);
  return max_id + 1;
}

}  // namespace mlcore
