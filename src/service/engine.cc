#include "service/engine.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/dcore.h"
#include "core/fds.h"
#include "dccs/bottom_up.h"
#include "dccs/execution.h"
#include "dccs/greedy.h"
#include "dccs/top_down.h"
#include "util/timing.h"

namespace mlcore {

namespace {

Engine::Options Sanitize(Engine::Options options) {
  options.num_threads = std::max(1, options.num_threads);
  options.max_cached_queries = std::max(1, options.max_cached_queries);
  return options;
}

/// Evicts the least-recently-used keys of `entries` down to `capacity`.
/// Entries are shared_ptr payloads, so queries still holding one keep it
/// alive past eviction.
template <typename Map, typename UseMap>
void EvictLru(Map& entries, UseMap& last_use, size_t capacity) {
  while (entries.size() > capacity) {
    auto victim = last_use.begin();
    for (auto it = last_use.begin(); it != last_use.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    entries.erase(victim->first);
    last_use.erase(victim);
  }
}

}  // namespace

/// Full-graph per-layer d-cores for one `d` (DCore(graph, i, d) in slot i).
struct Engine::BaseCoresEntry {
  std::once_flag once;
  std::vector<VertexSet> cores;
};

/// Everything reusable for one (d, s, vertex_deletion) key: the §IV-C
/// vertex-deletion fixpoint, the lazily built §V-C vertex index, and the
/// InitTopK seed captures keyed by (k, dcc_engine).
struct Engine::QueryEntry {
  std::once_flag preprocess_once;
  PreprocessResult preprocess;

  std::once_flag index_once;
  std::unique_ptr<VertexLevelIndex> index;

  std::mutex seeds_mu;
  std::map<std::pair<int, int>, std::shared_ptr<const InitSeeds>> seeds;
};

/// RAII hold on one free-list solver.
class Engine::SolverLease {
 public:
  explicit SolverLease(Engine* engine)
      : engine_(engine), solver_(engine->AcquireSolver()) {}
  ~SolverLease() { engine_->ReleaseSolver(std::move(solver_)); }
  SolverLease(const SolverLease&) = delete;
  SolverLease& operator=(const SolverLease&) = delete;

  DccSolver* get() const { return solver_.get(); }

 private:
  Engine* engine_;
  std::unique_ptr<DccSolver> solver_;
};

/// Lane-indexed solver arenas for GD-DCCS candidate generation, drawn from
/// (and returned to) the engine free-list. Thread-safe: pool workers call
/// Get concurrently.
class Engine::WorkerSolvers {
 public:
  WorkerSolvers(Engine* engine, int lanes)
      : engine_(engine), held_(static_cast<size_t>(lanes)) {}
  ~WorkerSolvers() {
    for (auto& solver : held_) {
      if (solver != nullptr) engine_->ReleaseSolver(std::move(solver));
    }
  }
  WorkerSolvers(const WorkerSolvers&) = delete;
  WorkerSolvers& operator=(const WorkerSolvers&) = delete;

  DccSolver* Get(int worker) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = held_[static_cast<size_t>(worker)];
    if (slot == nullptr) slot = engine_->AcquireSolver();
    return slot.get();
  }

 private:
  Engine* engine_;
  std::mutex mu_;
  std::vector<std::unique_ptr<DccSolver>> held_;
};

Engine::Engine(MultiLayerGraph graph, Options options)
    : graph_(std::make_shared<const MultiLayerGraph>(std::move(graph))),
      options_(Sanitize(options)),
      pool_(options_.num_threads) {}

Engine::Engine(std::shared_ptr<const MultiLayerGraph> graph, Options options)
    : graph_(std::move(graph)),
      options_(Sanitize(options)),
      pool_(options_.num_threads) {
  MLCORE_CHECK(graph_ != nullptr);
}

Engine::Engine(const MultiLayerGraph* graph, Options options)
    : graph_(graph, [](const MultiLayerGraph*) {}),
      options_(Sanitize(options)),
      pool_(options_.num_threads) {
  MLCORE_CHECK(graph != nullptr);
}

Engine::~Engine() = default;

DccsAlgorithm Engine::ResolvedAlgorithm(const DccsRequest& request) const {
  if (request.algorithm != DccsAlgorithm::kAuto) return request.algorithm;
  return RecommendedAlgorithm(*graph_, request.params.s);
}

Status Engine::Validate(const DccsRequest& request) const {
  switch (request.algorithm) {
    case DccsAlgorithm::kGreedy:
    case DccsAlgorithm::kBottomUp:
    case DccsAlgorithm::kTopDown:
    case DccsAlgorithm::kAuto:
      break;
    default:
      return Status::InvalidArgument(
          "unknown DccsAlgorithm value " +
          std::to_string(static_cast<int>(request.algorithm)));
  }
  const DccsParams& p = request.params;
  switch (p.dcc_engine) {
    case DccEngine::kQueue:
    case DccEngine::kBins:
      break;
    default:
      return Status::InvalidArgument(
          "unknown DccEngine value " +
          std::to_string(static_cast<int>(p.dcc_engine)));
  }
  if (p.d < 0) {
    return Status::InvalidArgument("degree threshold d must be >= 0, got " +
                                   std::to_string(p.d));
  }
  if (p.s < 1) {
    return Status::InvalidArgument("support threshold s must be >= 1, got " +
                                   std::to_string(p.s));
  }
  if (p.k < 1) {
    return Status::InvalidArgument("result count k must be >= 1, got " +
                                   std::to_string(p.k));
  }
  const int32_t l = graph_->NumLayers();
  const DccsAlgorithm resolved = ResolvedAlgorithm(request);
  if ((resolved == DccsAlgorithm::kBottomUp ||
       resolved == DccsAlgorithm::kTopDown) &&
      l > 64) {
    return Status::Unsupported(
        "the BU/TD lattice searches support at most 64 layers; graph has " +
        std::to_string(l));
  }
  if (resolved == DccsAlgorithm::kGreedy &&
      BinomialCoefficient(l, p.s) > kMaxGreedySubsets) {
    return Status::Unsupported(
        "C(" + std::to_string(l) + ", " + std::to_string(p.s) +
        ") candidate subsets are too many to materialise for GD-DCCS; "
        "this instance is intractable for the greedy algorithm regardless");
  }
  return Status::Ok();
}

Status Engine::Validate(const CommunityRequest& request) const {
  if (request.query < 0 || request.query >= graph_->NumVertices()) {
    return Status::InvalidArgument(
        "query vertex " + std::to_string(request.query) +
        " outside [0, " + std::to_string(graph_->NumVertices()) + ")");
  }
  if (request.d < 0) {
    return Status::InvalidArgument("degree threshold d must be >= 0, got " +
                                   std::to_string(request.d));
  }
  if (request.s < 1) {
    return Status::InvalidArgument("support threshold s must be >= 1, got " +
                                   std::to_string(request.s));
  }
  return Status::Ok();
}

Expected<DccsResult> Engine::Run(const DccsRequest& request) {
  Status status = Validate(request);
  if (!status.ok()) return status;
  // Use the shared pool if it is free; a busy pool (another query's stage
  // or a batch) degrades this query's parallel stages to sequential, which
  // by the DESIGN.md §4 contract cannot change its result.
  return RunValidated(request,
                      std::unique_lock<std::mutex>(pool_mu_, std::try_to_lock));
}

std::vector<Expected<DccsResult>> Engine::RunBatch(
    std::span<const DccsRequest> requests) {
  const size_t n = requests.size();
  std::vector<Status> statuses(n);
  for (size_t i = 0; i < n; ++i) statuses[i] = Validate(requests[i]);

  // Fan the valid requests out over the pool. Each slot is written by
  // exactly one worker and queries never read each other's output, so the
  // batch obeys the §4 determinism rules; cache misses shared between
  // queries are computed once (per-entry once-flags) with every waiter
  // receiving the same bits. Workers get pool = nullptr: ParallelFor is not
  // reentrant, and sequential inner stages cannot change results.
  std::vector<std::optional<DccsResult>> slots(n);
  {
    std::lock_guard<std::mutex> pool_lock(pool_mu_);
    pool_.ParallelFor(static_cast<int64_t>(n), [&](int /*worker*/,
                                                   int64_t i) {
      const auto slot = static_cast<size_t>(i);
      if (!statuses[slot].ok()) return;
      slots[slot] =
          RunValidated(requests[slot], std::unique_lock<std::mutex>());
    });
  }

  // Sequential merge in request order.
  std::vector<Expected<DccsResult>> responses;
  responses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) {
      responses.emplace_back(std::move(*slots[i]));
    } else {
      responses.emplace_back(std::move(statuses[i]));
    }
  }
  return responses;
}

Expected<CommunitySearchResult> Engine::FindCommunity(
    const CommunityRequest& request) {
  Status status = Validate(request);
  if (!status.ok()) return status;
  if (request.s > graph_->NumLayers()) return CommunitySearchResult{};

  std::unique_lock<std::mutex> pool_lock(pool_mu_, std::try_to_lock);
  std::shared_ptr<const BaseCoresEntry> base = GetBaseCores(
      request.d, pool_lock.owns_lock() ? &pool_ : nullptr);
  // The greedy layer extension below is sequential; free the pool first.
  if (pool_lock.owns_lock()) pool_lock.unlock();
  SolverLease solver(this);
  return SearchCommunityWithCores(*graph_, base->cores, *solver.get(),
                                  request.query, request.d, request.s);
}

DccsResult Engine::RunValidated(const DccsRequest& request,
                                std::unique_lock<std::mutex> pool_lock) {
  WallTimer total_timer;
  const DccsParams& params = request.params;
  const DccsAlgorithm algorithm = ResolvedAlgorithm(request);
  ThreadPool* pool = pool_lock.owns_lock() ? &pool_ : nullptr;

  DccsResult result;
  if (params.s > graph_->NumLayers()) {
    // Valid but vacuous (no size-s layer subset exists); keep the cache
    // untouched, matching the algorithms' own early return.
    result.stats.total_seconds = total_timer.Seconds();
    return result;
  }

  // Acquire (or build) every cacheable stage. The acquisition wall time is
  // reported as this query's preprocess_seconds: on a cold cache it is the
  // §IV-C (+ index/seed) build time, on a hit it is microseconds.
  WallTimer acquire_timer;
  std::shared_ptr<QueryEntry> entry =
      GetQueryEntry(params.d, params.s, params.vertex_deletion, pool);
  // Pooled greedy draws all its lane solvers from WorkerSolvers and has no
  // InitTopK stage, so only the other paths lease a free-list solver.
  const bool pooled_greedy =
      algorithm == DccsAlgorithm::kGreedy && pool != nullptr;
  std::optional<SolverLease> solver;
  if (!pooled_greedy) solver.emplace(this);
  std::shared_ptr<const InitSeeds> seeds;
  if (algorithm != DccsAlgorithm::kGreedy && params.init_result) {
    seeds = GetSeeds(*entry, params, *solver->get());
  }
  const VertexLevelIndex* index = nullptr;
  if (algorithm == DccsAlgorithm::kTopDown) {
    index = GetIndex(*entry, params.d);
  }
  const double acquire_seconds = acquire_timer.Seconds();

  // Preprocessing is behind us; only GD-DCCS's candidate fan-out still
  // wants workers. Release the pool for everyone else so a long
  // sequential BU/TD search never blocks other queries' parallel stages.
  if (algorithm != DccsAlgorithm::kGreedy && pool_lock.owns_lock()) {
    pool_lock.unlock();
    pool = nullptr;
  }

  DccsExecution exec;
  exec.preprocess = &entry->preprocess;
  exec.seeds = seeds.get();
  exec.index = index;
  exec.solver = solver.has_value() ? solver->get() : nullptr;
  exec.pool = pool;
  std::optional<WorkerSolvers> worker_solvers;
  if (pooled_greedy) {
    worker_solvers.emplace(this, pool->num_threads());
    exec.worker_solver = [&ws = *worker_solvers](int worker) {
      return ws.Get(worker);
    };
  }

  switch (algorithm) {
    case DccsAlgorithm::kGreedy:
      result = GreedyDccs(*graph_, params, exec);
      break;
    case DccsAlgorithm::kBottomUp:
      result = BottomUpDccs(*graph_, params, exec);
      break;
    case DccsAlgorithm::kTopDown:
      result = TopDownDccs(*graph_, params, exec);
      break;
    case DccsAlgorithm::kAuto:
      MLCORE_CHECK_MSG(false, "kAuto must be resolved before dispatch");
      break;
  }
  result.stats.preprocess_seconds = acquire_seconds;
  result.stats.total_seconds = total_timer.Seconds();
  return result;
}

std::shared_ptr<const Engine::BaseCoresEntry> Engine::GetBaseCores(
    int d, ThreadPool* pool) {
  std::shared_ptr<BaseCoresEntry> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = base_cores_.find(d);
    if (it != base_cores_.end()) {
      entry = it->second;
      ++stats_.base_core_hits;
    } else {
      entry = std::make_shared<BaseCoresEntry>();
      base_cores_[d] = entry;
      ++stats_.base_core_misses;
    }
    base_cores_last_use_[d] = ++use_clock_;
    EvictLru(base_cores_, base_cores_last_use_,
             static_cast<size_t>(options_.max_cached_queries));
  }
  std::call_once(entry->once, [&] {
    const auto l = static_cast<int64_t>(graph_->NumLayers());
    entry->cores.assign(static_cast<size_t>(l), VertexSet());
    auto compute_layer = [&](int /*worker*/, int64_t layer) {
      entry->cores[static_cast<size_t>(layer)] =
          DCore(*graph_, static_cast<LayerId>(layer), d);
    };
    if (pool != nullptr) {
      pool->ParallelFor(l, compute_layer);
    } else {
      for (int64_t layer = 0; layer < l; ++layer) compute_layer(0, layer);
    }
  });
  return entry;
}

std::shared_ptr<Engine::QueryEntry> Engine::GetQueryEntry(
    int d, int s, bool vertex_deletion, ThreadPool* pool) {
  const std::tuple<int, int, bool> key{d, s, vertex_deletion};
  std::shared_ptr<QueryEntry> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = queries_.find(key);
    if (it != queries_.end()) {
      entry = it->second;
      ++stats_.preprocess_hits;
    } else {
      entry = std::make_shared<QueryEntry>();
      queries_[key] = entry;
      ++stats_.preprocess_misses;
    }
    queries_last_use_[key] = ++use_clock_;
    EvictLru(queries_, queries_last_use_,
             static_cast<size_t>(options_.max_cached_queries));
  }
  std::call_once(entry->preprocess_once, [&] {
    std::shared_ptr<const BaseCoresEntry> base = GetBaseCores(d, pool);
    entry->preprocess =
        Preprocess(*graph_, d, s, vertex_deletion, pool, &base->cores);
  });
  return entry;
}

std::shared_ptr<const InitSeeds> Engine::GetSeeds(QueryEntry& entry,
                                                  const DccsParams& params,
                                                  DccSolver& solver) {
  const std::pair<int, int> key{params.k,
                                static_cast<int>(params.dcc_engine)};
  std::lock_guard<std::mutex> lock(entry.seeds_mu);
  auto it = entry.seeds.find(key);
  if (it != entry.seeds.end()) {
    std::lock_guard<std::mutex> stats_lock(cache_mu_);
    ++stats_.seed_hits;
    return it->second;
  }
  auto seeds = std::make_shared<InitSeeds>(
      ComputeInitSeeds(*graph_, params, entry.preprocess, solver));
  entry.seeds[key] = seeds;
  std::lock_guard<std::mutex> stats_lock(cache_mu_);
  ++stats_.seed_misses;
  return seeds;
}

const VertexLevelIndex* Engine::GetIndex(QueryEntry& entry, int d) {
  bool built = false;
  std::call_once(entry.index_once, [&] {
    entry.index = std::make_unique<VertexLevelIndex>(*graph_, d,
                                                     entry.preprocess.active);
    built = true;
  });
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (built) {
      ++stats_.index_misses;
    } else {
      ++stats_.index_hits;
    }
  }
  return entry.index.get();
}

std::unique_ptr<DccSolver> Engine::AcquireSolver() {
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    if (!free_solvers_.empty()) {
      std::unique_ptr<DccSolver> solver = std::move(free_solvers_.back());
      free_solvers_.pop_back();
      return solver;
    }
  }
  return std::make_unique<DccSolver>(*graph_);
}

void Engine::ReleaseSolver(std::unique_ptr<DccSolver> solver) {
  std::lock_guard<std::mutex> lock(solver_mu_);
  free_solvers_.push_back(std::move(solver));
}

EngineCacheStats Engine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

void Engine::ClearCache() {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    base_cores_.clear();
    base_cores_last_use_.clear();
    queries_.clear();
    queries_last_use_.clear();
  }
  std::lock_guard<std::mutex> lock(solver_mu_);
  free_solvers_.clear();
}

}  // namespace mlcore
