#include "service/engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <iterator>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/dcore.h"
#include "core/fds.h"
#include "dccs/bottom_up.h"
#include "dccs/execution.h"
#include "dccs/greedy.h"
#include "dccs/top_down.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mlcore {

namespace {

Engine::Options Sanitize(Engine::Options options) {
  options.num_threads = std::max(1, options.num_threads);
  options.max_cached_queries = std::max(1, options.max_cached_queries);
  options.query_workers = std::max(0, options.query_workers);
  options.max_pending_queries = std::max(1, options.max_pending_queries);
  options.search_threads = std::max(1, options.search_threads);
  return options;
}

/// Evicts the least-recently-used keys of `entries` down to `capacity`.
/// Entries are shared_ptr payloads, so queries still holding one keep it
/// alive past eviction.
template <typename Map, typename UseMap>
void EvictLru(Map& entries, UseMap& last_use, size_t capacity) {
  while (entries.size() > capacity) {
    auto victim = last_use.begin();
    for (auto it = last_use.begin(); it != last_use.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    entries.erase(victim->first);
    last_use.erase(victim);
  }
}

/// Slow-query-log label: the request's shape. Parameter values belong in
/// this per-entry string, never in metric names (cardinality rules,
/// DESIGN.md §12).
std::string DescribeRequest(const DccsRequest& request,
                            DccsAlgorithm resolved) {
  const char* algo = "auto";
  switch (resolved) {
    case DccsAlgorithm::kGreedy:
      algo = "greedy";
      break;
    case DccsAlgorithm::kBottomUp:
      algo = "bu";
      break;
    case DccsAlgorithm::kTopDown:
      algo = "td";
      break;
    case DccsAlgorithm::kAuto:
      break;
  }
  const DccsParams& p = request.params;
  return std::string(algo) + " d=" + std::to_string(p.d) +
         " s=" + std::to_string(p.s) + " k=" + std::to_string(p.k);
}

}  // namespace

/// Full-graph per-layer d-cores for one (d, generation) key
/// (DCore(graph, i, d) in slot i, for the snapshot the entry was built
/// against). `layer_gens`/`num_vertices` record what the build saw, so a
/// later epoch's miss can copy the layers whose content is unchanged
/// instead of recomputing them (DESIGN.md §8); `ready` gates that reuse
/// (an entry is only read across builds after its once-block published).
struct Engine::BaseCoresEntry {
  std::once_flag once;
  std::atomic<bool> ready{false};
  int32_t num_vertices = 0;
  std::vector<uint64_t> layer_gens;
  std::vector<VertexSet> cores;
};

/// Everything reusable for one (d, s, vertex_deletion) key: the §IV-C
/// vertex-deletion fixpoint, the lazily built §V-C vertex index, and the
/// InitTopK seed captures keyed by (k, dcc_engine).
///
/// The fixpoint build is cancellable, so it cannot sit behind a
/// once_flag (a cancelled builder would latch the flag with a torn
/// payload). Instead `ready`/`building` under `mu` implement
/// build-or-wait-with-retry: exactly one query builds at a time, a build
/// abandoned by cancellation publishes nothing (`ready` stays false) and
/// the next query rebuilds, and waiters poll their own controls so a
/// cancelled waiter leaves promptly. `ready` is written once, under `mu`,
/// before any reader dereferences `preprocess`.
struct Engine::QueryEntry {
  util::Mutex mu{util::lock_rank::kQueryEntry, "QueryEntry::mu"};
  util::CondVar cv;
  bool ready MLCORE_GUARDED_BY(mu) = false;
  bool building MLCORE_GUARDED_BY(mu) = false;
  // Publish-once: written under `mu` before `ready` flips, read lock-free
  // by every query after observing `ready` — deliberately unannotated.
  PreprocessResult preprocess;

  std::once_flag index_once;
  std::unique_ptr<VertexLevelIndex> index;

  util::Mutex seeds_mu{util::lock_rank::kQuerySeeds, "QueryEntry::seeds_mu"};
  std::map<std::pair<int, int>, std::shared_ptr<const InitSeeds>> seeds
      MLCORE_GUARDED_BY(seeds_mu);
  /// Replayed CoverageIndex prototype per seeds key: the state a fresh
  /// top-k has after ReplayInitSeeds, so warm queries (parallel or not)
  /// start from a copy instead of re-running the replay loop.
  std::map<std::pair<int, int>, std::shared_ptr<const CoverageIndex>> seeded
      MLCORE_GUARDED_BY(seeds_mu);

  /// Cached SortedLayerOrder for sort_layers queries: descending
  /// |C^d(G_i)| (BU) and ascending (TD), built over `preprocess` on first
  /// use.
  std::once_flag order_desc_once, order_asc_once;
  std::vector<LayerId> order_desc, order_asc;
};

/// One submitted query: request + scheduling state + terminal result. The
/// handle and the engine share it; `done`/`result` are guarded by `mu` and
/// written exactly once (FinishTask).
struct Engine::QueryTask {
  DccsRequest request;
  /// The snapshot current at submission: the query computes against this
  /// graph epoch no matter how many updates publish before it runs
  /// (DESIGN.md §8). Pinning it here also bounds snapshot lifetime — a
  /// cancelled or shed task releases its snapshot as soon as the last
  /// handle drops.
  std::shared_ptr<const GraphSnapshot> snapshot;
  int priority = 0;
  CancellationToken token;
  QueryControl control;
  /// Queue ticket for TryRemove; 0 until admitted (and for never-queued
  /// terminal tasks). Written by Submit, read by Wait/Cancel on other
  /// threads, hence atomic.
  std::atomic<uint64_t> queue_id{0};

  util::Mutex mu{util::lock_rank::kQueryTask, "QueryTask::mu"};
  util::CondVar cv;
  bool done MLCORE_GUARDED_BY(mu) = false;
  std::optional<Expected<DccsResult>> result MLCORE_GUARDED_BY(mu);

  /// Completion hook, invoked by FinishTask on the resolving thread after
  /// the terminal result published. Subscription evaluations use it to
  /// emit their revision; ordinary submissions leave it empty.
  std::function<void(QueryTask&)> on_done;

  /// This query's span buffer (DESIGN.md §12); null under
  /// MLCORE_OBS_DISABLED. Created at submission so the admission wait sits
  /// on its clock; read back by the executing thread after RunValidated
  /// returned (by which point every recording thread has joined).
  std::unique_ptr<obs::Trace> trace;
};

/// One standing query (Engine::Subscribe). Shared by the engine (producer
/// side: dispatcher + evaluation completions) and every Subscription
/// handle (consumer side); `mu` guards all mutable state. The engine's
/// destructor sets `cancelled` after all producers stopped, so a state
/// outliving its engine is inert: buffered revisions drain, then Next
/// returns nullopt.
struct Engine::SubscriptionState {
  // Immutable after Subscribe.
  DccsRequest request;
  int priority = 0;
  size_t max_buffered = 1;
  bool emit_unchanged = true;
  std::function<void(const ResultRevision&)> on_revision;
  /// Subscription-wide cancellation: Cancel trips it once and every
  /// current or future evaluation of this subscription observes it.
  CancellationToken token;

  /// A buffered revision carries its full result only through the shared
  /// handle; `revision.result` stays empty until pop materialises it.
  /// Coalescing and delta re-anchoring thus never copy a result, and a
  /// folded revision never paid for one.
  struct BufferedRevision {
    ResultRevision revision;
    std::shared_ptr<const DccsResult> result;
  };

  util::Mutex mu{util::lock_rank::kSubscription, "SubscriptionState::mu"};
  util::CondVar cv;
  /// No further revisions will be produced (user Cancel or engine
  /// destruction). Buffered revisions stay consumable.
  bool cancelled MLCORE_GUARDED_BY(mu) = false;
  /// An evaluation is in flight, or a callback delivery is running — the
  /// dispatcher never schedules work for a busy subscription, which both
  /// bounds it to one evaluation at a time and serialises callback
  /// invocations in revision order.
  bool busy MLCORE_GUARDED_BY(mu) = false;
  uint64_t next_sequence MLCORE_GUARDED_BY(mu) = 1;
  /// Newest epoch this subscription has accounted for (evaluated, or
  /// absorbed as unchanged). `has_epoch` false = nothing yet, so the
  /// dispatcher owes the initial revision.
  bool has_epoch MLCORE_GUARDED_BY(mu) = false;
  uint64_t last_epoch MLCORE_GUARDED_BY(mu) = 0;
  /// Result (and its (d, s)-relevant core-subgraph generation) of the last
  /// *evaluated* revision — the unchanged-skip comparison point and the
  /// source for unchanged revisions' payload.
  bool has_result MLCORE_GUARDED_BY(mu) = false;
  uint64_t last_generation MLCORE_GUARDED_BY(mu) = 0;
  std::shared_ptr<const DccsResult> last_result MLCORE_GUARDED_BY(mu);
  /// Result of the last revision popped by Next/TryNext: the delta base
  /// when a new revision lands on an empty buffer.
  std::shared_ptr<const DccsResult> delivered_base MLCORE_GUARDED_BY(mu);
  std::deque<BufferedRevision> buffer MLCORE_GUARDED_BY(mu);
};

/// RAII hold on one free-list solver, bound to one snapshot's graph.
class Engine::SolverLease {
 public:
  SolverLease(Engine* engine, std::shared_ptr<const MultiLayerGraph> graph)
      : engine_(engine),
        graph_(std::move(graph)),
        solver_(engine->AcquireSolver(graph_)) {}
  ~SolverLease() {
    engine_->ReleaseSolver(std::move(graph_), std::move(solver_));
  }
  SolverLease(const SolverLease&) = delete;
  SolverLease& operator=(const SolverLease&) = delete;

  DccSolver* get() const { return solver_.get(); }

 private:
  Engine* engine_;
  std::shared_ptr<const MultiLayerGraph> graph_;
  std::unique_ptr<DccSolver> solver_;
};

/// Lane-indexed solver arenas for GD-DCCS candidate generation, drawn from
/// (and returned to) the engine free-list. Thread-safe: pool workers call
/// Get concurrently.
class Engine::WorkerSolvers {
 public:
  WorkerSolvers(Engine* engine, std::shared_ptr<const MultiLayerGraph> graph,
                int lanes)
      : engine_(engine),
        graph_(std::move(graph)),
        held_(static_cast<size_t>(lanes)) {}
  ~WorkerSolvers() {
    for (auto& solver : held_) {
      if (solver != nullptr) {
        engine_->ReleaseSolver(graph_, std::move(solver));
      }
    }
  }
  WorkerSolvers(const WorkerSolvers&) = delete;
  WorkerSolvers& operator=(const WorkerSolvers&) = delete;

  DccSolver* Get(int worker) {
    util::MutexLock lock(mu_);
    auto& slot = held_[static_cast<size_t>(worker)];
    if (slot == nullptr) slot = engine_->AcquireSolver(graph_);
    return slot.get();
  }

 private:
  Engine* engine_;
  std::shared_ptr<const MultiLayerGraph> graph_;
  util::Mutex mu_{util::lock_rank::kWorkerSolvers, "WorkerSolvers::mu_"};
  std::vector<std::unique_ptr<DccSolver>> held_ MLCORE_GUARDED_BY(mu_);
};

Engine::Engine(MultiLayerGraph graph, Options options)
    : Engine(std::make_shared<const MultiLayerGraph>(std::move(graph)),
             options) {}

Engine::Engine(const MultiLayerGraph* graph, Options options)
    : Engine(std::shared_ptr<const MultiLayerGraph>(
                 graph, [](const MultiLayerGraph*) {}),
             options) {
  // NOLINT(mlcore-release-check): constructor contract — a null borrowed
  // graph is unrecoverable API misuse, not a request-path condition.
  MLCORE_CHECK(graph != nullptr);
}

Engine::Engine(std::shared_ptr<const MultiLayerGraph> graph, Options options)
    : Engine(std::make_shared<GraphStore>(std::move(graph)), options) {}

Engine::Engine(std::shared_ptr<GraphStore> store, Options options)
    : store_(std::move(store)),
      options_(Sanitize(options)),
      pool_(options_.num_threads),
      pending_(static_cast<size_t>(options_.max_pending_queries)) {
  // NOLINT(mlcore-release-check): constructor contract.
  MLCORE_CHECK(store_ != nullptr);
  search_lanes_free_.store(options_.search_threads - 1,
                           std::memory_order_relaxed);
  InitMetrics();
  query_workers_.reserve(static_cast<size_t>(options_.query_workers));
  for (int w = 0; w < options_.query_workers; ++w) {
    query_workers_.emplace_back([this] { QueryWorkerLoop(); });
  }
}

Engine::~Engine() {
  // Shutdown ordering (DESIGN.md §9). First stop epoch notifications —
  // RemoveEpochListener blocks until any in-flight callback returned, so
  // after it no store update can reach this engine — then stop the
  // dispatcher so nothing new gets scheduled.
  if (subs_started_.load(std::memory_order_acquire)) {
    store_->RemoveEpochListener(store_listener_id_);
    {
      util::MutexLock lock(subs_mu_);
      subs_shutdown_ = true;
    }
    subs_cv_.NotifyAll();
    subs_dispatcher_.join();
  }
  // Stop admissions, resolve everything still queued (racing workers
  // popping the tail is fine — each entry is obtained exactly once), then
  // wait out in-flight queries. Handles stay usable afterwards: their
  // tasks are all terminal; a queued subscription evaluation resolves
  // kCancelled here and its completion hook drops the revision.
  pending_.Shutdown();
  for (PriorityTaskQueue::Entry& entry : pending_.Drain()) {
    auto task = std::static_pointer_cast<QueryTask>(entry.payload);
    metrics_.sched_cancelled_queued->Add(1);
    FinishTask(*task,
               Status::Cancelled("engine destroyed before the query ran"));
  }
  for (std::thread& worker : query_workers_) worker.join();
  // Every producer is gone: terminate the subscriptions. Surviving
  // handles drain their buffers, then Next returns nullopt.
  std::vector<std::shared_ptr<SubscriptionState>> subs;
  {
    util::MutexLock lock(subs_mu_);
    subs.swap(subscriptions_);
  }
  for (const auto& sub : subs) {
    {
      util::MutexLock sub_lock(sub->mu);
      sub->cancelled = true;
    }
    sub->cv.NotifyAll();
  }
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
const MultiLayerGraph& Engine::graph() const {
  // NOLINT(mlcore-snapshot-bypass): deprecated passthrough; both ends are
  // marked [[deprecated]] and every internal path pins snapshot().
  return store_->current_graph();
}
#pragma GCC diagnostic pop

DccsAlgorithm Engine::ResolvedAlgorithm(const DccsRequest& request) const {
  if (request.algorithm != DccsAlgorithm::kAuto) return request.algorithm;
  // Depends only on the layer count, which is fixed across epochs, so
  // resolution is stable no matter which snapshot the query pins — and
  // needs no snapshot reference at all (safe against racing updates).
  return RecommendedAlgorithm(store_->num_layers(), request.params.s);
}

Status Engine::Validate(const DccsRequest& request) const {
  switch (request.algorithm) {
    case DccsAlgorithm::kGreedy:
    case DccsAlgorithm::kBottomUp:
    case DccsAlgorithm::kTopDown:
    case DccsAlgorithm::kAuto:
      break;
    default:
      return Status::InvalidArgument(
          "unknown DccsAlgorithm value " +
          std::to_string(static_cast<int>(request.algorithm)));
  }
  const DccsParams& p = request.params;
  switch (p.dcc_engine) {
    case DccEngine::kQueue:
    case DccEngine::kBins:
      break;
    default:
      return Status::InvalidArgument(
          "unknown DccEngine value " +
          std::to_string(static_cast<int>(p.dcc_engine)));
  }
  if (p.d < 0) {
    return Status::InvalidArgument("degree threshold d must be >= 0, got " +
                                   std::to_string(p.d));
  }
  if (p.s < 1) {
    return Status::InvalidArgument("support threshold s must be >= 1, got " +
                                   std::to_string(p.s));
  }
  if (p.k < 1) {
    return Status::InvalidArgument("result count k must be >= 1, got " +
                                   std::to_string(p.k));
  }
  const int32_t l = store_->num_layers();
  const DccsAlgorithm resolved = ResolvedAlgorithm(request);
  if ((resolved == DccsAlgorithm::kBottomUp ||
       resolved == DccsAlgorithm::kTopDown) &&
      l > 64) {
    // Structured rejection replacing the historical MLCORE_CHECK aborts in
    // the BU/TD entry points: the request names parameters this engine's
    // graph cannot satisfy, hence kInvalidArgument (not kUnsupported — the
    // 64-layer word-mask bound is a permanent contract of the lattice
    // searches, and the request is malformed *for this graph*).
    return Status::InvalidArgument(
        "the BU/TD lattice searches support at most 64 layers; graph has " +
        std::to_string(l));
  }
  if (resolved == DccsAlgorithm::kGreedy &&
      BinomialCoefficient(l, p.s) > kMaxGreedySubsets) {
    return Status::Unsupported(
        "C(" + std::to_string(l) + ", " + std::to_string(p.s) +
        ") candidate subsets are too many to materialise for GD-DCCS; "
        "this instance is intractable for the greedy algorithm regardless");
  }
  return Status::Ok();
}

Status Engine::Validate(const CommunityRequest& request) const {
  // Validated against a locally pinned current snapshot (never a bare
  // reference — updates may race); FindCommunity re-checks the vertex
  // range against its own pinned snapshot (vertex ids only grow, so the
  // check can only get more permissive between the two).
  std::shared_ptr<const GraphSnapshot> snap = store_->snapshot();
  const int32_t n = snap->graph().NumVertices();
  if (request.query < 0 || request.query >= n) {
    return Status::InvalidArgument(
        "query vertex " + std::to_string(request.query) +
        " outside [0, " + std::to_string(n) + ")");
  }
  if (request.d < 0) {
    return Status::InvalidArgument("degree threshold d must be >= 0, got " +
                                   std::to_string(request.d));
  }
  if (request.s < 1) {
    return Status::InvalidArgument("support threshold s must be >= 1, got " +
                                   std::to_string(request.s));
  }
  return Status::Ok();
}

QueryHandle Engine::Submit(const DccsRequest& request,
                           const SubmitOptions& options) {
  return SubmitTask(request, options, /*controllable=*/true);
}

QueryHandle Engine::SubmitTask(const DccsRequest& request,
                               const SubmitOptions& options,
                               bool controllable) {
  auto task = std::make_shared<QueryTask>();
  task->request = request;
  if constexpr (obs::kEnabled) {
    task->trace = std::make_unique<obs::Trace>();
  }
  {
    // The first traced stage. Parent 0: the "query.run" root only exists
    // once execution starts, so the submission-phase spans are top-level.
    obs::Span pin_span(task->trace.get(), "query.snapshot_pin");
    task->snapshot = store_->snapshot();
  }
  task->priority = options.priority;
  if (controllable || options.deadline_seconds > 0) {
    task->control =
        QueryControl::WithDeadline(task->token, options.deadline_seconds);
  }

  Status status = Validate(request);
  if (!status.ok()) {
    FinishTask(*task, std::move(status));
    return QueryHandle(std::move(task), this);
  }

  metrics_.sched_submitted->Add(1);
  uint64_t id = 0;
  PriorityTaskQueue::Entry displaced;
  switch (pending_.TryPush(options.priority, task, &id, &displaced)) {
    case PriorityTaskQueue::PushOutcome::kRejected:
      metrics_.sched_rejected->Add(1);
      FinishTask(*task,
                 Status::ResourceExhausted(
                     pending_.shut_down()
                         ? "engine shutting down; no new queries admitted"
                         : "pending queue full (" +
                               std::to_string(pending_.capacity()) +
                               " queries) with no lower-priority entry to "
                               "displace"));
      return QueryHandle(std::move(task), this);
    case PriorityTaskQueue::PushOutcome::kAcceptedDisplacing: {
      metrics_.sched_displaced->Add(1);
      auto victim = std::static_pointer_cast<QueryTask>(displaced.payload);
      FinishTask(*victim,
                 Status::ResourceExhausted(
                     "displaced from the pending queue by a "
                     "higher-priority request"));
      break;
    }
    case PriorityTaskQueue::PushOutcome::kAccepted:
      break;
  }
  metrics_.sched_admitted->Add(1);
  // A worker may already have popped (and even finished) the task; the
  // stale ticket is harmless — TryRemove on it simply fails.
  task->queue_id.store(id, std::memory_order_release);
  return QueryHandle(std::move(task), this);
}

std::vector<QueryHandle> Engine::SubmitBatch(
    std::span<const DccsRequest> requests, const SubmitOptions& options) {
  std::vector<QueryHandle> handles;
  handles.reserve(requests.size());
  for (const DccsRequest& request : requests) {
    handles.push_back(Submit(request, options));
  }
  return handles;
}

Expected<DccsResult> Engine::Run(const DccsRequest& request) {
  // Submit + Wait: the calling thread immediately claims its own query if
  // no worker got there first, so synchronous callers keep the historical
  // run-on-caller concurrency (N concurrent Runs execute N-wide regardless
  // of Options::query_workers).
  // controllable = false: the handle never escapes, so the query is
  // provably uncancellable and deadline-free — it executes with a null
  // control, at exactly the PR-2 synchronous cost (no checkpoint loads,
  // blocking cache waits instead of cancellation polling).
  QueryHandle handle = SubmitTask(request, SubmitOptions{},
                                  /*controllable=*/false);
  const Expected<DccsResult>& outcome = handle.Wait();
  if (!outcome.ok() &&
      outcome.status().code == StatusCode::kResourceExhausted) {
    // Admission shed the task (full queue, or displaced by a
    // higher-priority submission before we claimed it). A *blocking*
    // caller is its own backpressure — it holds one query per blocked
    // thread, not an unbounded backlog — so instead of surfacing the shed,
    // run inline on this thread. Keeps the PR-2 contract: Run fails only
    // on validation, never on load. (The request already passed Validate,
    // or Submit would have returned kInvalidArgument/kUnsupported.)
    metrics_.sched_executed->Add(1);
    obs::Trace* trace = handle.task_->trace.get();
    Expected<DccsResult> inline_outcome =
        RunValidated(request, handle.task_->snapshot,
                     util::UniqueLock(pool_mu_, util::kTryToLock),
                     /*control=*/nullptr, trace);
    OfferTrace(request, handle.task_->snapshot->epoch(), trace);
    return inline_outcome;
  }
  util::MutexLock lock(handle.task_->mu);
  return std::move(*handle.task_->result);
}

void Engine::ExecuteTask(const std::shared_ptr<QueryTask>& task) {
  // Resolve queued-phase stops before paying for anything: cancellation
  // wins ties, and a deadline that expired pre-execution yields
  // kDeadlineExceeded (there is no anytime prefix to serve yet).
  const QueryStop pre = task->control.Check();
  if (pre == QueryStop::kCancelled) {
    metrics_.sched_cancelled_queued->Add(1);
    FinishTask(*task, Status::Cancelled("query cancelled while queued"));
    return;
  }
  if (pre == QueryStop::kDeadline) {
    metrics_.sched_expired_queued->Add(1);
    FinishTask(*task,
               Status::DeadlineExceeded("deadline expired while queued"));
    return;
  }
  metrics_.sched_executed->Add(1);
  obs::Trace* trace = task->trace.get();
  if (trace != nullptr) {
    // Admission wait: submission (trace creation) to this claim, which
    // also covers validation and the snapshot pin. Committed manually —
    // the waiting happened across threads, not on one stopwatch.
    const double wait_ms = trace->AgeMs();
    trace->Add("query.admission_wait", /*parent=*/0, /*start_ms=*/0.0,
               wait_ms);
    metrics_.query_admission_wait_ms->Record(wait_ms);
  }
  // Use the shared pool if it is free; a busy pool (another query's stage
  // or a batch) degrades this query's parallel stages to sequential, which
  // by the DESIGN.md §4 contract cannot change its result. An inactive
  // control (Run's uncancellable tasks) executes as the null control so
  // the stages skip checkpoint costs entirely.
  Expected<DccsResult> outcome =
      RunValidated(task->request, task->snapshot,
                   util::UniqueLock(pool_mu_, util::kTryToLock),
                   task->control.active() ? &task->control : nullptr, trace);
  // Offer the (now quiescent) trace before FinishTask wakes the waiter:
  // a caller that reads stats_report() right after Wait() returns must
  // see this query in the slow log.
  OfferTrace(task->request, task->snapshot->epoch(), trace);
  FinishTask(*task, std::move(outcome));
}

void Engine::FinishTask(QueryTask& task, Expected<DccsResult> result) {
  {
    util::MutexLock lock(task.mu);
    MLCORE_DCHECK_MSG(!task.done, "query task resolved twice");
    task.result.emplace(std::move(result));
    task.done = true;
  }
  // The ticket is dead: later Wait/Cancel calls short-circuit instead of
  // scanning the queue for an entry that cannot be there.
  task.queue_id.store(0, std::memory_order_release);
  task.cv.NotifyAll();
  if (task.on_done != nullptr) task.on_done(task);
}

void Engine::AwaitTask(const std::shared_ptr<QueryTask>& task) {
  const uint64_t id = task->queue_id.load(std::memory_order_acquire);
  if (id != 0) {
    PriorityTaskQueue::Entry entry;
    if (pending_.TryRemove(id, &entry)) {
      // Still queued: the waiter donates its own thread instead of
      // blocking on a busy worker (this is what keeps Run's concurrency
      // independent of Options::query_workers).
      ExecuteTask(task);
      return;
    }
  }
  util::MutexLock lock(task->mu);
  while (!task->done) task->cv.Wait(task->mu);
}

void Engine::CancelTask(const std::shared_ptr<QueryTask>& task) {
  task->token.RequestCancel();
  const uint64_t id = task->queue_id.load(std::memory_order_acquire);
  if (id != 0) {
    PriorityTaskQueue::Entry entry;
    if (pending_.TryRemove(id, &entry)) {
      metrics_.sched_cancelled_queued->Add(1);
      FinishTask(*task, Status::Cancelled("query cancelled while queued"));
    }
  }
  // Running tasks observe the token at their next cooperative checkpoint;
  // finished tasks are unaffected.
}

void Engine::ResolveIfExpiredQueued(const std::shared_ptr<QueryTask>& task) {
  // Only a pure deadline expiry resolves here; a cancelled-while-queued
  // task without a Cancel() call resolves at claim time, as documented on
  // QueryHandle::token.
  if (!task->control.has_deadline() ||
      task->control.Check() != QueryStop::kDeadline) {
    return;
  }
  const uint64_t id = task->queue_id.load(std::memory_order_acquire);
  if (id == 0) return;
  PriorityTaskQueue::Entry entry;
  if (pending_.TryRemove(id, &entry)) {
    metrics_.sched_expired_queued->Add(1);
    FinishTask(*task,
               Status::DeadlineExceeded("deadline expired while queued"));
  }
}

void Engine::QueryWorkerLoop() {
  PriorityTaskQueue::Entry entry;
  while (pending_.WaitPop(&entry)) {
    ExecuteTask(std::static_pointer_cast<QueryTask>(entry.payload));
    entry.payload.reset();
  }
}

std::vector<Expected<DccsResult>> Engine::RunBatch(
    std::span<const DccsRequest> requests) {
  const size_t n = requests.size();
  std::vector<Status> statuses(n);
  for (size_t i = 0; i < n; ++i) statuses[i] = Validate(requests[i]);
  // One snapshot for the whole batch: every slot answers from the same
  // epoch even when updates land mid-batch.
  std::shared_ptr<const GraphSnapshot> snap = store_->snapshot();

  // Fan the valid requests out over the pool. Each slot is written by
  // exactly one worker and queries never read each other's output, so the
  // batch obeys the §4 determinism rules; cache misses shared between
  // queries are computed once (per-entry build states) with every waiter
  // receiving the same bits. Workers get pool = nullptr: ParallelFor is not
  // reentrant, and sequential inner stages cannot change results. Batch
  // slots run uncontrolled (control = nullptr), so every slot is a value.
  std::vector<std::optional<Expected<DccsResult>>> slots(n);
  {
    util::MutexLock pool_lock(pool_mu_);
    pool_.ParallelFor(static_cast<int64_t>(n), [&](int /*worker*/,
                                                   int64_t i) {
      const auto slot = static_cast<size_t>(i);
      if (!statuses[slot].ok()) return;
      slots[slot] = RunValidated(requests[slot], snap, util::UniqueLock(),
                                 /*control=*/nullptr, /*trace=*/nullptr);
    });
  }

  // Sequential merge in request order.
  std::vector<Expected<DccsResult>> responses;
  responses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) {
      responses.emplace_back(std::move(*slots[i]));
    } else {
      responses.emplace_back(std::move(statuses[i]));
    }
  }
  return responses;
}

Expected<CommunitySearchResult> Engine::FindCommunity(
    const CommunityRequest& request) {
  std::shared_ptr<const GraphSnapshot> snap = store_->snapshot();
  Status status = Validate(request);
  if (!status.ok()) return status;
  const MultiLayerGraph& graph = snap->graph();
  if (request.query >= graph.NumVertices()) {
    // The current snapshot moved past the one we pinned; re-anchor the
    // range check to the pinned graph.
    return Status::InvalidArgument(
        "query vertex " + std::to_string(request.query) + " outside [0, " +
        std::to_string(graph.NumVertices()) + ")");
  }
  if (request.s > graph.NumLayers()) return CommunitySearchResult{};

  util::UniqueLock pool_lock(pool_mu_, util::kTryToLock);
  std::shared_ptr<const BaseCoresEntry> base = GetBaseCores(
      snap, request.d, pool_lock.OwnsLock() ? &pool_ : nullptr);
  // The greedy layer extension below is sequential; free the pool first.
  if (pool_lock.OwnsLock()) pool_lock.Unlock();
  SolverLease solver(this, snap->graph_ptr());
  return SearchCommunityWithCores(graph, base->cores, *solver.get(),
                                  request.query, request.d, request.s);
}

// --------------------------------------------------------------------------
// Continuous queries (Engine::Subscribe, DESIGN.md §9)
// --------------------------------------------------------------------------

Expected<Subscription> Engine::Subscribe(const DccsRequest& request,
                                         const SubscriptionOptions& options) {
  Status status = Validate(request);
  if (!status.ok()) return status;
  EnsureSubscriptionInfra();

  auto sub = std::make_shared<SubscriptionState>();
  sub->request = request;
  sub->priority = options.priority;
  sub->max_buffered =
      static_cast<size_t>(std::max(1, options.max_buffered_revisions));
  sub->emit_unchanged = options.emit_unchanged;
  sub->on_revision = options.on_revision;
  {
    util::MutexLock lock(subs_mu_);
    if (subs_shutdown_) {
      return Status::ResourceExhausted(
          "engine shutting down; no new subscriptions admitted");
    }
    subscriptions_.push_back(sub);
    subs_dirty_ = true;  // the dispatcher owes the initial revision
  }
  subs_cv_.NotifyAll();
  return Subscription(std::move(sub));
}

void Engine::EnsureSubscriptionInfra() {
  // Deliberately outside subs_mu_: AddEpochListener takes the store's
  // listener lock, which the listener invocation path holds while taking
  // subs_mu_ — acquiring them here in the opposite order would deadlock.
  std::call_once(subs_init_once_, [this] {
    store_listener_id_ = store_->AddEpochListener(
        [this](const std::shared_ptr<const GraphSnapshot>&) {
          PingDispatcher();
        });
    subs_dispatcher_ = std::thread([this] { SubscriptionDispatcherLoop(); });
    subs_started_.store(true, std::memory_order_release);
  });
}

void Engine::PingDispatcher() {
  {
    util::MutexLock lock(subs_mu_);
    subs_dirty_ = true;
  }
  subs_cv_.NotifyAll();
}

void Engine::SubscriptionDispatcherLoop() {
  util::MutexLock lock(subs_mu_);
  while (true) {
    while (!subs_shutdown_ && !subs_dirty_) subs_cv_.Wait(subs_mu_);
    if (subs_shutdown_) return;
    subs_dirty_ = false;
    // Prune cancelled subscriptions, snapshot the live list, and release
    // subs_mu_ for the actual work: Subscribe/Cancel and ApplyUpdate's
    // listener never wait on an evaluation.
    std::erase_if(subscriptions_, [](const auto& sub) {
      util::MutexLock sub_lock(sub->mu);
      return sub->cancelled && !sub->busy;
    });
    std::vector<std::shared_ptr<SubscriptionState>> live = subscriptions_;
    lock.Unlock();
    const std::shared_ptr<const GraphSnapshot> snap = store_->snapshot();
    for (const auto& sub : live) {
      // Dispatch-decision latency — the "dispatch" stage of the §9
      // pipeline (a null-trace Span is just a stopwatch). Unchanged-skips
      // and no-ops record too: the histogram answers "how long does the
      // dispatcher spend per subscription per scan".
      obs::Span dispatch_span(nullptr, "subs.dispatch");
      DispatchSubscription(sub, snap);
      metrics_.subs_dispatch_ms->Record(dispatch_span.wall_seconds() * 1e3);
    }
    lock.Lock();
  }
}

void Engine::DispatchSubscription(
    const std::shared_ptr<SubscriptionState>& sub,
    const std::shared_ptr<const GraphSnapshot>& snap) {
  std::shared_ptr<QueryTask> task;
  std::shared_ptr<DccsResult> unchanged_result;
  uint64_t generation = 0;
  {
    util::MutexLock sub_lock(sub->mu);
    if (sub->cancelled || sub->busy) return;
    if (sub->has_epoch && sub->last_epoch >= snap->epoch()) return;
    generation = snap->core_generation(sub->request.params.d);
    if (sub->has_result && generation == sub->last_generation) {
      // Unchanged skip — the generational-key payoff of DESIGN.md §8: the
      // (d, s) answer depends only on the per-layer d-core-induced
      // subgraphs, whose generation did not move across these epochs, so
      // the previous result is *proven* current. No preprocessing, no
      // search, no scheduler traffic.
      sub->last_epoch = snap->epoch();
      sub->has_epoch = true;
      metrics_.revisions_unchanged_skipped->Add(1);
      if (!sub->emit_unchanged) return;
      unchanged_result = std::make_shared<DccsResult>(*sub->last_result);
      unchanged_result->epoch = snap->epoch();
      // The revision did (near) zero work; its timing says so. Everything
      // else — cores, search-effort counters — is the proven-current
      // payload of the last evaluation.
      unchanged_result->stats.preprocess_seconds = 0.0;
      unchanged_result->stats.search_seconds = 0.0;
      unchanged_result->stats.total_seconds = 0.0;
      sub->busy = true;  // spans the emission (and callback delivery)
    } else {
      sub->busy = true;
    }
  }
  if (unchanged_result != nullptr) {
    const uint64_t epoch = unchanged_result->epoch;
    FinishRevision(sub, epoch, std::move(unchanged_result), generation,
                   /*unchanged=*/true);
    return;
  }

  // Re-evaluation through the admission queue at subscription priority.
  task = std::make_shared<QueryTask>();
  task->request = sub->request;
  if constexpr (obs::kEnabled) {
    task->trace = std::make_unique<obs::Trace>();
  }
  task->snapshot = snap;
  task->priority = sub->priority;
  task->token = sub->token;
  task->control = QueryControl(sub->token, std::nullopt);
  task->on_done = [this, sub, generation](QueryTask& done) {
    CompleteSubscriptionEval(sub, generation, done);
  };

  metrics_.sched_submitted->Add(1);
  uint64_t id = 0;
  PriorityTaskQueue::Entry displaced;
  switch (pending_.TryPush(sub->priority, task, &id, &displaced)) {
    case PriorityTaskQueue::PushOutcome::kRejected:
      // Shed (queue full of equal-or-higher-priority work): run inline on
      // the dispatcher thread — the dispatcher is its own backpressure,
      // mirroring Run's never-fail-on-load contract, so a standing query
      // is never silently starved. The cost is head-of-line blocking:
      // while this evaluation runs, no other subscription is dispatched
      // (not even unchanged-skips), bounded by one evaluation per shed —
      // acceptable because sheds only happen when the engine is already
      // saturated with equal-or-higher-priority work.
      metrics_.sched_rejected->Add(1);
      metrics_.sched_executed->Add(1);
      {
        Expected<DccsResult> shed_outcome =
            RunValidated(task->request, snap,
                         util::UniqueLock(pool_mu_, util::kTryToLock),
                         &task->control, task->trace.get());
        // Offer before FinishTask delivers the revision, as ExecuteTask
        // does: the subscriber must see this eval in the slow log.
        OfferTrace(task->request, snap->epoch(), task->trace.get());
        FinishTask(*task, std::move(shed_outcome));
      }
      return;
    case PriorityTaskQueue::PushOutcome::kAcceptedDisplacing: {
      metrics_.sched_displaced->Add(1);
      auto victim = std::static_pointer_cast<QueryTask>(displaced.payload);
      FinishTask(*victim,
                 Status::ResourceExhausted(
                     "displaced from the pending queue by a "
                     "higher-priority request"));
      break;
    }
    case PriorityTaskQueue::PushOutcome::kAccepted:
      break;
  }
  metrics_.sched_admitted->Add(1);
  task->queue_id.store(id, std::memory_order_release);
  if (options_.query_workers == 0) {
    // No dedicated workers: claim the evaluation back and run it here
    // (the same waiter-donation path Wait uses), otherwise it would sit
    // queued forever.
    AwaitTask(task);
  }
}

void Engine::CompleteSubscriptionEval(
    const std::shared_ptr<SubscriptionState>& sub, uint64_t generation,
    QueryTask& task) {
  // Extract the outcome under task.mu and release before touching the
  // subscription: task.mu is a leaf (it ranks above sub->mu), so holding
  // it across FinishRevision would invert the documented lock order.
  std::shared_ptr<DccsResult> result;
  {
    util::MutexLock lock(task.mu);
    Expected<DccsResult>& outcome = *task.result;
    if (outcome.ok()) {
      // The task never escaped as a handle, so the terminal result is
      // ours to move from.
      result = std::make_shared<DccsResult>(std::move(outcome).value());
    }
  }
  if (result != nullptr) {
    // Re-evaluation latency — the "re-eval" stage of the §9 pipeline (the
    // evaluation's own RunValidated wall time).
    metrics_.subs_reeval_ms->Record(result->stats.total_seconds * 1e3);
    const uint64_t epoch = result->epoch;
    FinishRevision(sub, epoch, std::move(result), generation,
                   /*unchanged=*/false);
    return;
  }
  // Dropped evaluation: kCancelled (subscription Cancel, or engine
  // teardown resolving the queue) produces nothing; kResourceExhausted
  // (displaced by a higher-priority submission) also produces nothing but
  // the dispatcher wake below retries it, since last_epoch never moved.
  FinishRevision(sub, 0, nullptr, generation, /*unchanged=*/false);
}

void Engine::FinishRevision(const std::shared_ptr<SubscriptionState>& sub,
                            uint64_t epoch,
                            std::shared_ptr<const DccsResult> result,
                            uint64_t generation, bool unchanged) {
  static const DccsResult kEmptyResult;
  // Delivery latency — the final §9 pipeline stage: delta computation plus
  // buffer push (with coalescing) or callback invocation.
  obs::Span delivery_span(nullptr, "subs.delivery");
  const bool produced = result != nullptr;
  std::optional<ResultRevision> deliver;
  {
    util::MutexLock sub_lock(sub->mu);
    if (result != nullptr && !sub->cancelled) {
      ResultRevision rev;
      rev.epoch = epoch;
      rev.sequence = sub->next_sequence++;
      rev.unchanged = unchanged;
      if (sub->on_revision != nullptr) {
        // Callback mode: no buffer, no coalescing — delivery is immediate
        // and `busy` spans it, so invocations are serialised in order.
        const DccsResult& base =
            sub->last_result != nullptr ? *sub->last_result : kEmptyResult;
        rev.delta = ComputeResultDelta(base, *result);
        rev.result = *result;
        deliver = std::move(rev);
      } else {
        int64_t folded = 0;
        if (sub->buffer.size() >= sub->max_buffered) {
          // Latest-epoch-wins: fold the newest *buffered* revision into
          // this one. The delta below re-anchors to the stream revision
          // before the folded step, so the chain stays consistent.
          folded = sub->buffer.back().revision.coalesced + 1;
          sub->buffer.pop_back();
          metrics_.revisions_coalesced->Add(1);
        }
        const DccsResult* base = &kEmptyResult;
        if (!sub->buffer.empty()) {
          base = sub->buffer.back().result.get();
        } else if (sub->delivered_base != nullptr) {
          base = sub->delivered_base.get();
        }
        rev.coalesced = folded;
        rev.delta = ComputeResultDelta(*base, *result);
        sub->buffer.push_back(
            SubscriptionState::BufferedRevision{std::move(rev), result});
      }
      sub->last_result = std::move(result);
      sub->has_result = true;
      sub->last_generation = generation;
      if (!sub->has_epoch || epoch > sub->last_epoch) {
        sub->last_epoch = epoch;
        sub->has_epoch = true;
      }
      metrics_.revisions_emitted->Add(1);
    }
    if (!deliver.has_value()) sub->busy = false;
  }
  sub->cv.NotifyAll();
  if (deliver.has_value()) {
    sub->on_revision(*deliver);
    {
      util::MutexLock sub_lock(sub->mu);
      sub->busy = false;
    }
    sub->cv.NotifyAll();
  }
  if (produced) {
    metrics_.subs_delivery_ms->Record(delivery_span.wall_seconds() * 1e3);
  }
  // Another epoch may have published while this one was in flight (or a
  // dropped evaluation needs a retry): let the dispatcher re-scan.
  PingDispatcher();
}

Expected<DccsResult> Engine::RunValidated(
    const DccsRequest& request,
    const std::shared_ptr<const GraphSnapshot>& snap,
    util::UniqueLock pool_lock, const QueryControl* control,
    obs::Trace* trace) {
  // The root span's stopwatch is the query's total timer in every build (a
  // null-trace or disabled Span still ticks); early returns commit it via
  // the destructor.
  obs::Span run_span(trace, "query.run");
  const DccsParams& params = request.params;
  const DccsAlgorithm algorithm = ResolvedAlgorithm(request);
  const MultiLayerGraph& graph = snap->graph();
  ThreadPool* pool = pool_lock.OwnsLock() ? &pool_ : nullptr;

  DccsResult result;
  result.epoch = snap->epoch();
  if (params.s > graph.NumLayers()) {
    // Valid but vacuous (no size-s layer subset exists); keep the cache
    // untouched, matching the algorithms' own early return.
    result.stats.total_seconds = run_span.wall_seconds();
    return result;
  }

  // Acquire (or build) every cacheable stage. The acquisition wall time is
  // reported as this query's preprocess_seconds: on a cold cache it is the
  // §IV-C (+ index/seed) build time, on a hit it is microseconds. The
  // algorithms skip their own "query.preprocess" span when exec.preprocess
  // is supplied, so this is *the* preprocess span of an engine query.
  obs::Span acquire_span(trace, "query.preprocess", run_span.id());
  QueryStop stop = QueryStop::kNone;
  std::shared_ptr<QueryEntry> entry = GetQueryEntry(
      snap, params.d, params.s, params.vertex_deletion, pool, control, &stop);
  if (entry == nullptr) {
    // Stopped before preprocessing published: nothing was cached, nothing
    // can be served. (A deadline this early has no anytime prefix.)
    return stop == QueryStop::kCancelled
               ? Status::Cancelled("query cancelled during preprocessing")
               : Status::DeadlineExceeded(
                     "deadline expired during preprocessing");
  }
  // Pooled greedy draws all its lane solvers from WorkerSolvers and has no
  // InitTopK stage, so only the other paths lease a free-list solver.
  const bool pooled_greedy =
      algorithm == DccsAlgorithm::kGreedy && pool != nullptr;
  std::optional<SolverLease> solver;
  if (!pooled_greedy) solver.emplace(this, snap->graph_ptr());
  // Checkpoint between preprocessing and the seed/index builds (each of
  // which always publishes a complete artifact once started).
  if (control != nullptr &&
      (stop = control->Check()) != QueryStop::kNone) {
    return stop == QueryStop::kCancelled
               ? Status::Cancelled("query cancelled before the search phase")
               : Status::DeadlineExceeded(
                     "deadline expired before the search phase");
  }
  std::shared_ptr<const InitSeeds> seeds;
  std::shared_ptr<const CoverageIndex> seeded_topk;
  if (algorithm != DccsAlgorithm::kGreedy && params.init_result) {
    seeds = GetSeeds(graph, *entry, params, *solver->get(), &seeded_topk);
  }
  const VertexLevelIndex* index = nullptr;
  if (algorithm == DccsAlgorithm::kTopDown) {
    index = GetIndex(graph, *entry, params.d);
  }
  const double acquire_seconds = acquire_span.wall_seconds();
  acquire_span.End();

  // Preprocessing is behind us; only GD-DCCS's candidate fan-out still
  // wants workers. Release the pool for everyone else so a long
  // sequential BU/TD search never blocks other queries' parallel stages.
  if (algorithm != DccsAlgorithm::kGreedy && pool_lock.OwnsLock()) {
    pool_lock.Unlock();
    pool = nullptr;
  }

  DccsExecution exec;
  exec.preprocess = &entry->preprocess;
  exec.seeds = seeds.get();
  exec.seeded_topk = seeded_topk.get();
  exec.index = index;
  exec.solver = solver.has_value() ? solver->get() : nullptr;
  exec.pool = pool;
  exec.control = control;
  exec.trace = trace;
  exec.trace_parent = run_span.id();
  std::optional<WorkerSolvers> worker_solvers;
  if (pooled_greedy) {
    worker_solvers.emplace(this, snap->graph_ptr(), pool->num_threads());
    exec.worker_solver = [&ws = *worker_solvers](int worker) {
      return ws.Get(worker);
    };
  }

  // Parallel search phase (DESIGN.md §10): the lattice searches reuse the
  // entry's cached layer order and borrow worker lanes from the engine-wide
  // budget. How many lanes a query actually gets cannot change its result
  // (the §4/§10 determinism contract), so the borrow needs no fairness —
  // whatever is free right now.
  int extra_lanes = 0;
  const bool lattice_search = algorithm == DccsAlgorithm::kBottomUp ||
                              algorithm == DccsAlgorithm::kTopDown;
  if (lattice_search) {
    if (params.sort_layers) {
      exec.layer_order = GetLayerOrder(
          *entry, /*descending=*/algorithm == DccsAlgorithm::kBottomUp);
    }
    extra_lanes = BorrowSearchLanes(options_.search_threads - 1);
    exec.search_threads = 1 + extra_lanes;
    if (extra_lanes > 0) {
      worker_solvers.emplace(this, snap->graph_ptr(), 1 + extra_lanes);
      exec.worker_solver = [&ws = *worker_solvers](int worker) {
        return ws.Get(worker);
      };
    }
  }

  switch (algorithm) {
    case DccsAlgorithm::kGreedy:
      result = GreedyDccs(graph, params, exec);
      break;
    case DccsAlgorithm::kBottomUp:
      result = BottomUpDccs(graph, params, exec);
      break;
    case DccsAlgorithm::kTopDown:
      result = TopDownDccs(graph, params, exec);
      break;
    case DccsAlgorithm::kAuto: {
      // Unreachable: ResolvedAlgorithm ran before dispatch. Debug builds
      // assert; release builds fail the request instead of aborting a
      // serving process.
      MLCORE_DCHECK_MSG(false, "kAuto must be resolved before dispatch");
      ReturnSearchLanes(extra_lanes);
      return Status::InvalidArgument(
          "kAuto must be resolved before dispatch");
    }
  }
  ReturnSearchLanes(extra_lanes);
  if (result.stats.stopped == QueryStop::kCancelled) {
    // A cancelled search's partial top-k is discarded, never served; the
    // caches it read (and any completed artifacts it built) stay valid.
    return Status::Cancelled("query cancelled mid-search");
  }
  // kDeadline / kBudget mid-search fall through as OK: the anytime
  // best-so-far prefix with stats.budget_exhausted set — the unified
  // deadline policy of DESIGN.md §7.
  result.epoch = snap->epoch();  // the dispatch above rebuilt `result`
  result.stats.preprocess_seconds = acquire_seconds;
  result.stats.total_seconds = run_span.wall_seconds();
  metrics_.query_preprocess_ms->Record(acquire_seconds * 1e3);
  metrics_.query_preprocess_ms_global->Record(acquire_seconds * 1e3);
  metrics_.query_search_ms->Record(result.stats.search_seconds * 1e3);
  metrics_.query_search_ms_global->Record(result.stats.search_seconds * 1e3);
  metrics_.query_total_ms->Record(result.stats.total_seconds * 1e3);
  metrics_.query_total_ms_global->Record(result.stats.total_seconds * 1e3);
  return result;
}

std::shared_ptr<const Engine::BaseCoresEntry> Engine::GetBaseCores(
    const std::shared_ptr<const GraphSnapshot>& snap, int d,
    ThreadPool* pool) {
  const TrackedCores* tracked = snap->tracked(d);
  // Tracked degrees key on the core-subgraph generation (identical cores
  // whenever it matches — the maintained membership cannot have changed);
  // untracked degrees key on the epoch, with per-layer reuse inside the
  // build below.
  const uint64_t generation =
      tracked != nullptr ? tracked->generation : snap->epoch();
  const std::pair<int, uint64_t> key{d, generation};

  std::shared_ptr<BaseCoresEntry> entry;
  std::shared_ptr<BaseCoresEntry> prev;
  {
    util::MutexLock lock(cache_mu_);
    auto it = base_cores_.find(key);
    if (it != base_cores_.end()) {
      entry = it->second;
      metrics_.base_core_hits->Add(1);
    } else {
      // The map orders by (d, generation): the entry directly below `key`
      // with the same d is the newest older generation — the donor for
      // unchanged layers.
      auto below = base_cores_.lower_bound(key);
      if (below != base_cores_.begin()) {
        --below;
        if (below->first.first == d) prev = below->second;
      }
      entry = std::make_shared<BaseCoresEntry>();
      base_cores_[key] = entry;
      metrics_.base_core_misses->Add(1);
    }
    base_cores_last_use_[key] = ++use_clock_;
    EvictLru(base_cores_, base_cores_last_use_,
             static_cast<size_t>(options_.max_cached_queries));
  }
  std::call_once(entry->once, [&] {
    const MultiLayerGraph& graph = snap->graph();
    const auto l = static_cast<int64_t>(graph.NumLayers());
    entry->num_vertices = graph.NumVertices();
    entry->layer_gens.resize(static_cast<size_t>(l));
    for (int64_t layer = 0; layer < l; ++layer) {
      entry->layer_gens[static_cast<size_t>(layer)] =
          snap->layer_generation(static_cast<LayerId>(layer));
    }
    entry->cores.assign(static_cast<size_t>(l), VertexSet());
    if (tracked != nullptr) {
      // Served wholesale from the store's incrementally maintained cores.
      for (int64_t layer = 0; layer < l; ++layer) {
        entry->cores[static_cast<size_t>(layer)] =
            *tracked->cores[static_cast<size_t>(layer)];
      }
      metrics_.base_core_store_served->Add(1);
    } else {
      // Per-layer generational reuse: copy layers whose content is
      // unchanged since the donor entry; recompute the rest. The plan is
      // fixed before the (possibly parallel) fill, so results cannot
      // depend on the thread count (§4 rules).
      const BaseCoresEntry* donor =
          prev != nullptr && prev->ready.load(std::memory_order_acquire) &&
                  prev->num_vertices == graph.NumVertices()
              ? prev.get()
              : nullptr;
      int64_t reused = 0, recomputed = 0;
      std::vector<uint8_t> reuse_layer(static_cast<size_t>(l), 0);
      for (int64_t layer = 0; layer < l; ++layer) {
        if (donor != nullptr &&
            donor->layer_gens[static_cast<size_t>(layer)] ==
                entry->layer_gens[static_cast<size_t>(layer)]) {
          reuse_layer[static_cast<size_t>(layer)] = 1;
          ++reused;
        } else {
          ++recomputed;
        }
      }
      auto compute_layer = [&](int /*worker*/, int64_t layer) {
        if (reuse_layer[static_cast<size_t>(layer)] != 0) {
          entry->cores[static_cast<size_t>(layer)] =
              donor->cores[static_cast<size_t>(layer)];
        } else {
          entry->cores[static_cast<size_t>(layer)] =
              DCore(graph, static_cast<LayerId>(layer), d);
        }
      };
      if (pool != nullptr) {
        pool->ParallelFor(l, compute_layer);
      } else {
        for (int64_t layer = 0; layer < l; ++layer) compute_layer(0, layer);
      }
      metrics_.base_core_layers_reused->Add(reused);
      metrics_.base_core_layers_recomputed->Add(recomputed);
    }
    entry->ready.store(true, std::memory_order_release);
  });
  return entry;
}

std::shared_ptr<Engine::QueryEntry> Engine::GetQueryEntry(
    const std::shared_ptr<const GraphSnapshot>& snap, int d, int s,
    bool vertex_deletion, ThreadPool* pool, const QueryControl* control,
    QueryStop* stop) {
  // The §IV-C fixpoint (and the index/seeds living inside the entry)
  // depends only on the per-layer d-core-induced subgraphs, so a tracked
  // d keys on the store's core-subgraph generation — updates that never
  // touch those subgraphs keep the whole bundle warm across epochs
  // (DESIGN.md §8). Untracked degrees key on the epoch.
  const std::tuple<uint64_t, int, int, bool> key{snap->core_generation(d), d,
                                                 s, vertex_deletion};
  std::shared_ptr<QueryEntry> entry;
  {
    util::MutexLock lock(cache_mu_);
    auto it = queries_.find(key);
    if (it != queries_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<QueryEntry>();
      queries_[key] = entry;
    }
    queries_last_use_[key] = ++use_clock_;
    EvictLru(queries_, queries_last_use_,
             static_cast<size_t>(options_.max_cached_queries));
  }

  // Build-or-wait-with-retry (see QueryEntry). Hits and misses are counted
  // at *resolution* — found published vs. built-and-published — so a query
  // stopped before publication moves no counter, matching the
  // publish-or-nothing contract for contents.
  util::MutexLock lock(entry->mu);
  while (true) {
    if (entry->ready) {
      metrics_.preprocess_hits->Add(1);
      return entry;
    }
    if (!entry->building) break;
    if (control != nullptr) {
      // Poll our own control while someone else builds, so cancelling a
      // *waiter* never blocks on the builder's (possibly long) rounds.
      entry->cv.WaitFor(entry->mu, std::chrono::milliseconds(5));
      *stop = control->Check();
      if (*stop != QueryStop::kNone) return nullptr;
    } else {
      entry->cv.Wait(entry->mu);
    }
  }

  entry->building = true;
  lock.Unlock();

  PreprocessResult built;
  QueryStop build_stop =
      control != nullptr ? control->Check() : QueryStop::kNone;
  if (build_stop == QueryStop::kNone) {
    // Base cores always publish a complete artifact once started; the
    // fixpoint checkpoints per deletion round.
    std::shared_ptr<const BaseCoresEntry> base = GetBaseCores(snap, d, pool);
    built = Preprocess(snap->graph(), d, s, vertex_deletion, pool,
                       &base->cores, control);
    build_stop = built.stopped;
  }

  lock.Lock();
  entry->building = false;
  if (build_stop != QueryStop::kNone) {
    // Abandoned build: publish nothing. A waiter (or the next query on
    // this key) rebuilds from scratch; `built`'s partial contents die here.
    lock.Unlock();
    entry->cv.NotifyAll();
    *stop = build_stop;
    return nullptr;
  }
  entry->preprocess = std::move(built);
  entry->ready = true;
  lock.Unlock();
  entry->cv.NotifyAll();
  metrics_.preprocess_misses->Add(1);
  return entry;
}

std::shared_ptr<const InitSeeds> Engine::GetSeeds(
    const MultiLayerGraph& graph, QueryEntry& entry, const DccsParams& params,
    DccSolver& solver, std::shared_ptr<const CoverageIndex>* seeded_topk) {
  const std::pair<int, int> key{params.k,
                                static_cast<int>(params.dcc_engine)};
  util::MutexLock lock(entry.seeds_mu);
  auto it = entry.seeds.find(key);
  if (it != entry.seeds.end()) {
    *seeded_topk = entry.seeded.at(key);
    metrics_.seed_hits->Add(1);
    return it->second;
  }
  auto seeds = std::make_shared<InitSeeds>(
      ComputeInitSeeds(graph, params, entry.preprocess, solver));
  // The prototype is cached alongside the capture it was replayed from —
  // one replay per key ever; every query starts from a copy.
  auto proto = std::make_shared<CoverageIndex>(params.k);
  ReplayInitSeeds(*seeds, *proto);
  entry.seeds[key] = seeds;
  entry.seeded[key] = proto;
  *seeded_topk = std::move(proto);
  metrics_.seed_misses->Add(1);
  return seeds;
}

const VertexLevelIndex* Engine::GetIndex(const MultiLayerGraph& graph,
                                         QueryEntry& entry, int d) {
  bool built = false;
  std::call_once(entry.index_once, [&] {
    entry.index = std::make_unique<VertexLevelIndex>(graph, d,
                                                     entry.preprocess.active);
    built = true;
  });
  if (built) {
    metrics_.index_misses->Add(1);
  } else {
    metrics_.index_hits->Add(1);
  }
  return entry.index.get();
}

const std::vector<LayerId>* Engine::GetLayerOrder(QueryEntry& entry,
                                                  bool descending) {
  std::call_once(descending ? entry.order_desc_once : entry.order_asc_once,
                 [&] {
                   auto& slot =
                       descending ? entry.order_desc : entry.order_asc;
                   slot = SortedLayerOrder(entry.preprocess, descending,
                                           /*sort_layers=*/true);
                 });
  return descending ? &entry.order_desc : &entry.order_asc;
}

int Engine::BorrowSearchLanes(int want) {
  if (want <= 0) return 0;
  int free = search_lanes_free_.load(std::memory_order_relaxed);
  while (free > 0) {
    const int take = std::min(free, want);
    if (search_lanes_free_.compare_exchange_weak(free, free - take,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
      return take;
    }
  }
  return 0;
}

void Engine::ReturnSearchLanes(int lanes) {
  if (lanes > 0) {
    search_lanes_free_.fetch_add(lanes, std::memory_order_acq_rel);
  }
}

std::unique_ptr<DccSolver> Engine::AcquireSolver(
    const std::shared_ptr<const MultiLayerGraph>& graph) {
  {
    util::MutexLock lock(solver_mu_);
    if (free_graph_ == graph && !free_solvers_.empty()) {
      std::unique_ptr<DccSolver> solver = std::move(free_solvers_.back());
      free_solvers_.pop_back();
      return solver;
    }
  }
  return std::make_unique<DccSolver>(*graph);
}

void Engine::ReleaseSolver(std::shared_ptr<const MultiLayerGraph> graph,
                           std::unique_ptr<DccSolver> solver) {
  util::MutexLock lock(solver_mu_);
  if (free_graph_ == graph) {
    free_solvers_.push_back(std::move(solver));
    return;
  }
  // The pool is homogeneous and must only ever hold *current*-snapshot
  // solvers: anything else would let idle arenas pin a retired epoch's
  // graph indefinitely. A release for the current graph flips the pool to
  // it; a release for any other (stale) graph is dropped — and if the
  // pool itself has gone stale meanwhile, it is flushed too.
  const std::shared_ptr<const MultiLayerGraph> current =
      store_->snapshot()->graph_ptr();
  if (graph == current) {
    free_solvers_.clear();
    free_graph_ = std::move(graph);
    free_solvers_.push_back(std::move(solver));
    return;
  }
  if (free_graph_ != nullptr && free_graph_ != current) {
    free_solvers_.clear();
    free_graph_.reset();
  }
}

void Engine::InitMetrics() {
  const std::vector<double> ms = obs::Histogram::LatencyBoundsMs();
  obs::Registry& global = obs::Registry::Global();
  Metrics& m = metrics_;
  m.preprocess_hits = registry_.GetCounter("engine.cache.preprocess_hits");
  m.preprocess_misses = registry_.GetCounter("engine.cache.preprocess_misses");
  m.seed_hits = registry_.GetCounter("engine.cache.seed_hits");
  m.seed_misses = registry_.GetCounter("engine.cache.seed_misses");
  m.index_hits = registry_.GetCounter("engine.cache.index_hits");
  m.index_misses = registry_.GetCounter("engine.cache.index_misses");
  m.base_core_hits = registry_.GetCounter("engine.cache.base_core_hits");
  m.base_core_misses = registry_.GetCounter("engine.cache.base_core_misses");
  m.base_core_layers_reused =
      registry_.GetCounter("engine.cache.base_core_layers_reused");
  m.base_core_layers_recomputed =
      registry_.GetCounter("engine.cache.base_core_layers_recomputed");
  m.base_core_store_served =
      registry_.GetCounter("engine.cache.base_core_store_served");
  m.revisions_emitted = registry_.GetCounter("engine.subs.revisions_emitted");
  m.revisions_unchanged_skipped =
      registry_.GetCounter("engine.subs.revisions_unchanged_skipped");
  m.revisions_coalesced =
      registry_.GetCounter("engine.subs.revisions_coalesced");
  m.subs_dispatch_ms = registry_.GetHistogram("engine.subs.dispatch_ms", ms);
  m.subs_reeval_ms = registry_.GetHistogram("engine.subs.reeval_ms", ms);
  m.subs_delivery_ms = registry_.GetHistogram("engine.subs.delivery_ms", ms);
  m.sched_submitted = registry_.GetCounter("engine.sched.submitted");
  m.sched_admitted = registry_.GetCounter("engine.sched.admitted");
  m.sched_rejected = registry_.GetCounter("engine.sched.rejected");
  m.sched_displaced = registry_.GetCounter("engine.sched.displaced");
  m.sched_cancelled_queued =
      registry_.GetCounter("engine.sched.cancelled_queued");
  m.sched_expired_queued = registry_.GetCounter("engine.sched.expired_queued");
  m.sched_executed = registry_.GetCounter("engine.sched.executed");
  m.query_admission_wait_ms =
      registry_.GetHistogram("engine.query.admission_wait_ms", ms);
  m.query_preprocess_ms =
      registry_.GetHistogram("engine.query.preprocess_ms", ms);
  m.query_search_ms = registry_.GetHistogram("engine.query.search_ms", ms);
  m.query_total_ms = registry_.GetHistogram("engine.query.total_ms", ms);
  m.query_preprocess_ms_global =
      global.GetHistogram("engine.query.preprocess_ms", ms);
  m.query_search_ms_global =
      global.GetHistogram("engine.query.search_ms", ms);
  m.query_total_ms_global = global.GetHistogram("engine.query.total_ms", ms);
}

void Engine::OfferTrace(const DccsRequest& request, uint64_t epoch,
                        obs::Trace* trace) {
  if (trace == nullptr) return;
  obs::TraceSummary summary;
  summary.label = DescribeRequest(request, ResolvedAlgorithm(request));
  summary.epoch = epoch;
  summary.total_ms = trace->AgeMs();
  summary.spans = trace->records();
  summary.dropped_spans = trace->dropped();
  slow_log_.Offer(std::move(summary));
}

EngineCacheStats Engine::cache_stats() const {
  const Metrics& m = metrics_;
  EngineCacheStats stats;
  stats.preprocess_hits = m.preprocess_hits->value();
  stats.preprocess_misses = m.preprocess_misses->value();
  stats.seed_hits = m.seed_hits->value();
  stats.seed_misses = m.seed_misses->value();
  stats.index_hits = m.index_hits->value();
  stats.index_misses = m.index_misses->value();
  stats.base_core_hits = m.base_core_hits->value();
  stats.base_core_misses = m.base_core_misses->value();
  stats.base_core_layers_reused = m.base_core_layers_reused->value();
  stats.base_core_layers_recomputed = m.base_core_layers_recomputed->value();
  stats.base_core_store_served = m.base_core_store_served->value();
  stats.revisions_emitted = m.revisions_emitted->value();
  stats.revisions_unchanged_skipped = m.revisions_unchanged_skipped->value();
  stats.revisions_coalesced = m.revisions_coalesced->value();
  return stats;
}

SchedulerStats Engine::scheduler_stats() const {
  const Metrics& m = metrics_;
  SchedulerStats stats;
  stats.submitted = m.sched_submitted->value();
  stats.admitted = m.sched_admitted->value();
  stats.rejected = m.sched_rejected->value();
  stats.displaced = m.sched_displaced->value();
  stats.cancelled_queued = m.sched_cancelled_queued->value();
  stats.expired_queued = m.sched_expired_queued->value();
  stats.executed = m.sched_executed->value();
  return stats;
}

EngineStatsReport Engine::stats_report() const {
  EngineStatsReport report;
  report.metrics = registry_.Snapshot();
  std::vector<obs::MetricSnapshot> store_metrics =
      store_->registry().Snapshot();
  report.metrics.insert(report.metrics.end(),
                        std::make_move_iterator(store_metrics.begin()),
                        std::make_move_iterator(store_metrics.end()));
  std::sort(report.metrics.begin(), report.metrics.end(),
            [](const obs::MetricSnapshot& a, const obs::MetricSnapshot& b) {
              return a.name < b.name;
            });
  report.slow_queries = slow_log_.Snapshot();
  return report;
}

void Engine::ResetStats() {
  registry_.Reset("engine.");
  slow_log_.Clear();
}

void Engine::ClearCache() {
  {
    util::MutexLock lock(cache_mu_);
    base_cores_.clear();
    base_cores_last_use_.clear();
    queries_.clear();
    queries_last_use_.clear();
  }
  util::MutexLock lock(solver_mu_);
  free_solvers_.clear();
  free_graph_.reset();
}

// --------------------------------------------------------------------------
// QueryHandle — defined here because Engine::QueryTask is private to this
// translation unit.
// --------------------------------------------------------------------------

QueryHandle::QueryHandle() = default;
QueryHandle::QueryHandle(const QueryHandle&) = default;
QueryHandle& QueryHandle::operator=(const QueryHandle&) = default;
QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;
QueryHandle& QueryHandle::operator=(QueryHandle&&) noexcept = default;
QueryHandle::~QueryHandle() = default;

QueryHandle::QueryHandle(std::shared_ptr<Engine::QueryTask> task,
                         Engine* engine)
    : task_(std::move(task)), engine_(engine) {}

int QueryHandle::priority() const {
  return task_ != nullptr ? task_->priority : 0;
}

const Expected<DccsResult>& QueryHandle::Wait() {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(task_ != nullptr, "Wait on an invalid QueryHandle");
  // Terminal fast path before touching the engine: this is what keeps a
  // handle usable after ~Engine (which resolves every outstanding task)
  // and makes repeat Waits lock only the task.
  {
    util::MutexLock lock(task_->mu);
    if (task_->done) return *task_->result;
  }
  engine_->AwaitTask(task_);
  // `result` is written exactly once, before `done`; AwaitTask returning
  // established the happens-before, so the reference is stable from here
  // on. The lock satisfies the guarded read; it is not needed for
  // ordering.
  util::MutexLock lock(task_->mu);
  return *task_->result;
}

const Expected<DccsResult>* QueryHandle::TryGet() const {
  if (task_ == nullptr) return nullptr;
  {
    util::MutexLock lock(task_->mu);
    if (task_->done) return &*task_->result;
  }
  // Not terminal: give a queued-but-already-expired deadline its
  // resolution now, so pollers aren't stuck behind a busy worker. (The
  // task being non-terminal implies the engine is still alive — teardown
  // resolves everything first.)
  engine_->ResolveIfExpiredQueued(task_);
  util::MutexLock lock(task_->mu);
  return task_->done ? &*task_->result : nullptr;
}

void QueryHandle::Cancel() {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(task_ != nullptr, "Cancel on an invalid QueryHandle");
  // Terminal fast path mirrors Wait: a finished (or engine-drained) task
  // needs no engine interaction.
  {
    util::MutexLock lock(task_->mu);
    if (task_->done) return;
  }
  engine_->CancelTask(task_);
}

CancellationToken QueryHandle::token() const {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(task_ != nullptr, "token() on an invalid QueryHandle");
  return task_->token;
}

// --------------------------------------------------------------------------
// Subscription — defined here because Engine::SubscriptionState is private
// to this translation unit.
// --------------------------------------------------------------------------

Subscription::Subscription() = default;
Subscription::Subscription(const Subscription&) = default;
Subscription& Subscription::operator=(const Subscription&) = default;
Subscription::Subscription(Subscription&&) noexcept = default;
Subscription& Subscription::operator=(Subscription&&) noexcept = default;
Subscription::~Subscription() = default;

Subscription::Subscription(std::shared_ptr<Engine::SubscriptionState> state)
    : state_(std::move(state)) {}

// Requires state_->mu, which the header cannot annotate (incomplete
// type there); both callers hold it via MutexLock.
std::optional<ResultRevision> Subscription::PopLocked()
    MLCORE_NO_THREAD_SAFETY_ANALYSIS {
  if (state_->buffer.empty()) return std::nullopt;
  Engine::SubscriptionState::BufferedRevision front =
      std::move(state_->buffer.front());
  state_->buffer.pop_front();
  // Materialise the consumer's copy only now — revisions folded away by
  // coalescing never paid for one — and keep the shared handle as the
  // delta-chain anchor for the next push onto an emptied buffer.
  front.revision.result = *front.result;
  state_->delivered_base = std::move(front.result);
  return std::move(front.revision);
}

std::optional<ResultRevision> Subscription::Next() {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(state_ != nullptr, "Next on an invalid Subscription");
  util::MutexLock lock(state_->mu);
  while (state_->buffer.empty() && !state_->cancelled) {
    state_->cv.Wait(state_->mu);
  }
  return PopLocked();
}

std::optional<ResultRevision> Subscription::TryNext() {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(state_ != nullptr, "TryNext on an invalid Subscription");
  util::MutexLock lock(state_->mu);
  return PopLocked();
}

void Subscription::Cancel() {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(state_ != nullptr, "Cancel on an invalid Subscription");
  // The token stops an in-flight evaluation at its next checkpoint; the
  // flag stops production and wakes blocked consumers. The dispatcher
  // prunes the state on its next scan (or the engine's destructor does).
  // No live engine is needed, so cancelling after ~Engine is safe.
  state_->token.RequestCancel();
  {
    util::MutexLock lock(state_->mu);
    state_->cancelled = true;
  }
  state_->cv.NotifyAll();
}

bool Subscription::active() const {
  // NOLINT(mlcore-release-check): invalid-handle misuse aborts by contract
  MLCORE_CHECK_MSG(state_ != nullptr, "active() on an invalid Subscription");
  util::MutexLock lock(state_->mu);
  return !state_->cancelled;
}

}  // namespace mlcore
