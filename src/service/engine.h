#ifndef MLCORE_SERVICE_ENGINE_H_
#define MLCORE_SERVICE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "core/dcc.h"
#include "dccs/community_search.h"
#include "dccs/params.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "graph/multilayer_graph.h"
#include "service/status.h"
#include "util/thread_pool.h"

namespace mlcore {

/// One DCCS query against an Engine's graph: the paper's (d, s, k)
/// parameters (plus algorithm knobs) and the algorithm to answer it with.
/// `kAuto` (the default) applies the paper's §I/§V selection rule via
/// `RecommendedAlgorithm`.
struct DccsRequest {
  DccsParams params;
  DccsAlgorithm algorithm = DccsAlgorithm::kAuto;
};

/// One query-anchored community search (dccs/community_search.h): find a
/// size-s layer subset whose d-CC contains `query`.
struct CommunityRequest {
  VertexId query = 0;
  int d = 4;
  int s = 3;
};

/// Cumulative cache counters, for observability and tests. A "query" entry
/// is one (d, s, vertex_deletion) preprocessing bundle; "base" entries are
/// the full-graph per-layer d-cores keyed by d alone.
struct EngineCacheStats {
  int64_t preprocess_hits = 0;
  int64_t preprocess_misses = 0;
  int64_t seed_hits = 0;
  int64_t seed_misses = 0;
  int64_t index_hits = 0;
  int64_t index_misses = 0;
  int64_t base_core_hits = 0;
  int64_t base_core_misses = 0;
};

/// Long-lived, thread-safe DCCS query service over one immutable
/// multi-layer graph (DESIGN.md §5).
///
/// The paper frames DCCS as an online problem — many (d, s, k) questions
/// against one graph — and everything a query can share is owned here and
/// reused across calls:
///
///  * a preprocessing cache keyed on what each stage actually depends on:
///    full-graph per-layer d-cores by `d`; the §IV-C vertex-deletion
///    fixpoint, the §V-C vertex index and the InitTopK seeds by
///    (d, s, vertex_deletion) — the latter two because they are built over
///    the surviving vertex set (the seeds additionally by (k, dcc_engine)).
///    A repeat query with the same (d, s) skips vertex deletion entirely;
///    a query with a cached `d` but new `s` skips the first (full-graph)
///    deletion round.
///  * a shared `util::ThreadPool` for the parallel stages and for
///    `RunBatch` fan-out;
///  * a free-list of `DccSolver` arenas, so steady-state queries allocate
///    no solver scratch.
///
/// Thread safety: all public methods may be called concurrently from any
/// number of threads. Results honour the DESIGN.md §4 determinism
/// contract — a query's cores are bit-identical whether it runs alone,
/// concurrently with others, inside a batch, or through the one-shot free
/// functions. Statistics (`SearchStats`) are also identical, except the
/// timing fields, which report wall time of whatever work actually ran
/// (`preprocess_seconds` is the cache-acquisition time, near zero on a
/// hit).
///
/// Invalid requests never abort: `Run`/`RunBatch`/`FindCommunity` validate
/// first and return a structured `Status` (service/status.h) for malformed
/// parameters, unknown enum values, > 64 layers on the lattice searches,
/// or an intractable C(l, s) for GD-DCCS.
class Engine {
 public:
  struct Options {
    /// Total parallelism of the shared pool (ThreadPool semantics: 1 means
    /// "calling thread only"). Batch queries and the parallel stages of
    /// single queries fan out over this pool. Note: unlike the one-shot
    /// free functions, the Engine ignores `DccsParams::num_threads` — the
    /// engine owns threading policy.
    int num_threads = 1;
    /// Maximum retained (d, s, vertex_deletion) preprocessing entries and
    /// maximum retained base-core entries; least recently used entries are
    /// evicted beyond this. In-flight queries keep evicted entries alive.
    int max_cached_queries = 16;
  };

  /// Owning constructors: the engine holds the (immutable) graph.
  explicit Engine(MultiLayerGraph graph) : Engine(std::move(graph), Options{}) {}
  Engine(MultiLayerGraph graph, Options options);
  explicit Engine(std::shared_ptr<const MultiLayerGraph> graph)
      : Engine(std::move(graph), Options{}) {}
  Engine(std::shared_ptr<const MultiLayerGraph> graph, Options options);
  /// Borrowing constructors: `*graph` must outlive the engine. This is the
  /// form the one-shot `SolveDccs` wrapper uses.
  explicit Engine(const MultiLayerGraph* graph) : Engine(graph, Options{}) {}
  Engine(const MultiLayerGraph* graph, Options options);

  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const MultiLayerGraph& graph() const { return *graph_; }
  const Options& options() const { return options_; }

  /// The algorithm `request` will actually run: resolves kAuto through
  /// `RecommendedAlgorithm`. Meaningless for invalid requests.
  DccsAlgorithm ResolvedAlgorithm(const DccsRequest& request) const;

  /// Structured request validation; `Run`/`RunBatch`/`FindCommunity` call
  /// these themselves, but servers can pre-validate cheaply.
  Status Validate(const DccsRequest& request) const;
  Status Validate(const CommunityRequest& request) const;

  /// Answers one DCCS query. Never aborts on bad input; see class comment.
  Expected<DccsResult> Run(const DccsRequest& request);

  /// Answers independent queries, fanning them out over the pool. Slot i of
  /// the returned vector corresponds to requests[i] (per-slot outputs,
  /// sequential merge — DESIGN.md §4), and each slot equals what `Run`
  /// would return for that request alone. Invalid requests yield their
  /// validation error in-slot without disturbing the others.
  std::vector<Expected<DccsResult>> RunBatch(
      std::span<const DccsRequest> requests);

  /// Query-anchored community search, sharing the base d-core cache with
  /// DCCS preprocessing.
  Expected<CommunitySearchResult> FindCommunity(
      const CommunityRequest& request);

  EngineCacheStats cache_stats() const;
  /// Drops every cached entry (in-flight queries keep theirs alive) and the
  /// solver free-list. Counters are not reset.
  void ClearCache();

 private:
  struct BaseCoresEntry;
  struct QueryEntry;
  class SolverLease;
  class WorkerSolvers;

  /// `pool_lock` either owns pool_mu_ (the query may use the shared pool
  /// for its parallel stages) or is empty (batch workers; fully
  /// sequential). The lock is released as soon as the query is done with
  /// the pool — before the sequential search phase — so a long search
  /// never blocks other queries' parallel stages.
  DccsResult RunValidated(const DccsRequest& request,
                          std::unique_lock<std::mutex> pool_lock);

  std::shared_ptr<const BaseCoresEntry> GetBaseCores(int d, ThreadPool* pool);
  std::shared_ptr<QueryEntry> GetQueryEntry(int d, int s, bool vertex_deletion,
                                            ThreadPool* pool);
  std::shared_ptr<const InitSeeds> GetSeeds(QueryEntry& entry,
                                            const DccsParams& params,
                                            DccSolver& solver);
  const VertexLevelIndex* GetIndex(QueryEntry& entry, int d);

  std::unique_ptr<DccSolver> AcquireSolver();
  void ReleaseSolver(std::unique_ptr<DccSolver> solver);

  std::shared_ptr<const MultiLayerGraph> graph_;
  const Options options_;

  // The shared pool. pool_mu_ serialises batches/parallel stages; a query
  // that finds it busy simply runs its parallel stages sequentially, which
  // by the §4 contract cannot change its result.
  ThreadPool pool_;
  std::mutex pool_mu_;

  // Caches. cache_mu_ guards the maps and the LRU clock; per-entry
  // once-flags/mutexes guard the (expensive) payload computations so a
  // miss never blocks unrelated queries.
  mutable std::mutex cache_mu_;
  uint64_t use_clock_ = 0;
  std::map<int, std::shared_ptr<BaseCoresEntry>> base_cores_;
  std::map<int, uint64_t> base_cores_last_use_;
  std::map<std::tuple<int, int, bool>, std::shared_ptr<QueryEntry>> queries_;
  std::map<std::tuple<int, int, bool>, uint64_t> queries_last_use_;
  mutable EngineCacheStats stats_;

  // Solver free-list (the per-worker arenas of DESIGN.md §5).
  std::mutex solver_mu_;
  std::vector<std::unique_ptr<DccSolver>> free_solvers_;
};

}  // namespace mlcore

#endif  // MLCORE_SERVICE_ENGINE_H_
