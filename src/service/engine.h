#ifndef MLCORE_SERVICE_ENGINE_H_
#define MLCORE_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "core/dcc.h"
#include "dccs/community_search.h"
#include "dccs/params.h"
#include "dccs/preprocess.h"
#include "dccs/vertex_index.h"
#include "graph/multilayer_graph.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "service/delta.h"
#include "service/status.h"
#include "store/graph_store.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace mlcore {

class QueryHandle;
class Subscription;

/// One DCCS query against an Engine's graph: the paper's (d, s, k)
/// parameters (plus algorithm knobs) and the algorithm to answer it with.
/// `kAuto` (the default) applies the paper's §I/§V selection rule via
/// `RecommendedAlgorithm`.
struct DccsRequest {
  DccsParams params;
  DccsAlgorithm algorithm = DccsAlgorithm::kAuto;
};

/// One query-anchored community search (dccs/community_search.h): find a
/// size-s layer subset whose d-CC contains `query`.
struct CommunityRequest {
  VertexId query = 0;
  int d = 4;
  int s = 3;
};

/// Cumulative cache counters, for observability and tests. A "query" entry
/// is one (d, s, vertex_deletion) preprocessing bundle; "base" entries are
/// the full-graph per-layer d-cores keyed by d alone. A hit is a query that
/// found a *published* entry; a miss is a query that built and published
/// one. A query cancelled (or deadline-expired) before its build published
/// counts as neither — an abandoned build leaves both the cache contents
/// and these counters exactly as if that query had never run.
struct EngineCacheStats {
  int64_t preprocess_hits = 0;
  int64_t preprocess_misses = 0;
  int64_t seed_hits = 0;
  int64_t seed_misses = 0;
  int64_t index_hits = 0;
  int64_t index_misses = 0;
  int64_t base_core_hits = 0;
  int64_t base_core_misses = 0;
  /// Per-layer accounting of base-core *misses* on an updated graph
  /// (DESIGN.md §8): a miss after an update rebuilds only the layers whose
  /// content changed since the newest previous entry for that d —
  /// unchanged layers copy their cores over (`reused`), changed ones pay a
  /// fresh DCore (`recomputed`). Misses with a tracked store entry or no
  /// predecessor count every layer as recomputed/served accordingly.
  int64_t base_core_layers_reused = 0;
  int64_t base_core_layers_recomputed = 0;
  /// Base-core misses served wholesale from the store's incrementally
  /// maintained cores (tracked degrees) — no DCore ran at all.
  int64_t base_core_store_served = 0;
  /// Subscription counters (Engine::Subscribe). `revisions_emitted` counts
  /// every revision produced — delivered, still buffered, or later folded
  /// away by coalescing. `revisions_unchanged_skipped` counts epochs a
  /// subscription absorbed *without any recomputation* because no core-
  /// subgraph generation relevant to its (d, s) moved (the generational-key
  /// payoff of DESIGN.md §8; such an epoch emits an "unchanged" revision).
  /// `revisions_coalesced` counts undelivered revisions folded into a newer
  /// one when a subscription's bounded buffer overflowed
  /// (latest-epoch-wins).
  int64_t revisions_emitted = 0;
  int64_t revisions_unchanged_skipped = 0;
  int64_t revisions_coalesced = 0;
};

/// Cumulative admission/scheduler counters (Engine::scheduler_stats).
struct SchedulerStats {
  /// Valid requests offered to admission (invalid ones fail validation
  /// first and are never counted).
  int64_t submitted = 0;
  /// Requests that entered the pending queue.
  int64_t admitted = 0;
  /// Requests refused at submission with kResourceExhausted (queue full of
  /// equal-or-higher-priority work).
  int64_t rejected = 0;
  /// Previously admitted requests shed from the queue by a later
  /// higher-priority submission (their handles resolve kResourceExhausted).
  int64_t displaced = 0;
  /// Requests cancelled while still queued (never executed).
  int64_t cancelled_queued = 0;
  /// Requests whose deadline had already passed when a worker claimed them
  /// (resolved kDeadlineExceeded without executing).
  int64_t expired_queued = 0;
  /// Requests that actually entered execution.
  int64_t executed = 0;
};

/// The machine-readable stats surface (Engine::stats_report): every metric
/// registered by this engine *and* its graph store, plus the slow-query
/// log. Serialise with obs::ToJson / obs::ToPrometheusText (obs/export.h).
struct EngineStatsReport {
  /// Sorted by name; engine.* and store.* metrics interleaved.
  std::vector<obs::MetricSnapshot> metrics;
  /// Slowest-first completed query traces (DESIGN.md §12).
  std::vector<obs::TraceSummary> slow_queries;
};

/// Per-submission scheduling knobs for Engine::Submit.
struct SubmitOptions {
  /// Admission and execution priority: higher runs first; on a full queue a
  /// higher-priority submission displaces the lowest strictly-lower one.
  /// Ties are FIFO.
  int priority = 0;
  /// Wall-clock deadline, in seconds from submission (0 = none). Expiry
  /// while queued or during preprocessing resolves kDeadlineExceeded
  /// (there is no timer thread: a queued expiry is observed at worker
  /// claim, Wait, or any TryGet poll of the handle); expiry
  /// mid-search returns the anytime best-so-far result with
  /// `stats.budget_exhausted` set, exactly like time_budget_seconds
  /// (DESIGN.md §7's unified deadline policy — the effective stop time is
  /// whichever of the two limits fires first).
  double deadline_seconds = 0.0;
};

/// One delivery of a standing query (Engine::Subscribe): the full result
/// for one graph epoch plus the vertex-level delta against the previous
/// revision of the same subscription.
struct ResultRevision {
  /// Epoch this revision answers from. Strictly increasing within a
  /// subscription, but not necessarily contiguous: latest-epoch-wins
  /// applies at both ends of the pipeline — epochs that publish while an
  /// evaluation is in flight collapse into the next evaluation (no
  /// revision of their own), and a full consumer buffer folds the newest
  /// buffered revision into the incoming one (`coalesced` accounts the
  /// folded revisions; dispatch-time collapses produce none to fold).
  uint64_t epoch = 0;
  /// 1-based position in the subscription's revision stream. Gaps mark
  /// revisions folded away by coalescing.
  uint64_t sequence = 0;
  /// True when the engine proved the result identical to the previous
  /// revision's without recomputing it: no core-subgraph generation
  /// relevant to the subscription's (d, s) moved between the two epochs
  /// (zero preprocess/search work was done; `delta` is empty unless
  /// coalescing folded a computed revision into this one).
  bool unchanged = false;
  /// Undelivered older revisions folded into this one because the
  /// subscription's buffer was full (latest-epoch-wins).
  int64_t coalesced = 0;
  /// The full result, exactly what Engine::Run would have returned for the
  /// same request against this epoch's snapshot (timing fields report the
  /// work this revision actually did — near zero when `unchanged`).
  DccsResult result;
  /// Delta against the revision the consumer saw before this one (the
  /// stream's previous revision, delivered or still buffered). The first
  /// revision reports its whole result as appeared/added.
  ResultDelta delta;
};

/// Per-subscription knobs for Engine::Subscribe.
struct SubscriptionOptions {
  /// Admission priority of the re-evaluation queries this subscription
  /// schedules (same scale as SubmitOptions::priority).
  int priority = 0;
  /// Bound on undelivered revisions (>= 1; values below 1 are clamped).
  /// When a new revision lands on a full buffer the newest *buffered* one
  /// is folded into it — the consumer always sees the latest epoch, with
  /// `coalesced` and the delta accounting for the folded step.
  int max_buffered_revisions = 8;
  /// Emit "unchanged" marker revisions for epochs that provably left the
  /// result untouched. When false such epochs are absorbed silently (the
  /// `revisions_unchanged_skipped` counter still moves).
  bool emit_unchanged = true;
  /// Callback mode: when set, every revision is delivered by invoking this
  /// from an engine thread (the dispatcher or a query worker) instead of
  /// being buffered for Next/TryNext. Invocations are serialised per
  /// subscription and in revision order. The callback must not block for
  /// long (it runs on the engine's threads) and must not destroy the
  /// engine; calling Subscription::Cancel from inside it is allowed.
  std::function<void(const ResultRevision&)> on_revision;
};

/// Long-lived, thread-safe DCCS query service over one multi-layer graph
/// (DESIGN.md §5) — immutable, or *evolving* behind a `GraphStore`
/// (DESIGN.md §8).
///
/// The paper frames DCCS as an online problem — many (d, s, k) questions
/// against one graph — and everything a query can share is owned here and
/// reused across calls:
///
///  * a preprocessing cache keyed on what each stage actually depends on:
///    full-graph per-layer d-cores by `d`; the §IV-C vertex-deletion
///    fixpoint, the §V-C vertex index and the InitTopK seeds by
///    (d, s, vertex_deletion) — the latter two because they are built over
///    the surviving vertex set (the seeds additionally by (k, dcc_engine)).
///    A repeat query with the same (d, s) skips vertex deletion entirely;
///    a query with a cached `d` but new `s` skips the first (full-graph)
///    deletion round.
///  * a shared `util::ThreadPool` for the parallel stages and for
///    `RunBatch` fan-out;
///  * a free-list of `DccSolver` arenas, so steady-state queries allocate
///    no solver scratch.
///
/// Thread safety: all public methods may be called concurrently from any
/// number of threads. Results honour the DESIGN.md §4 determinism
/// contract — a query's cores are bit-identical whether it runs alone,
/// concurrently with others, inside a batch, or through the one-shot free
/// functions. Statistics (`SearchStats`) are also identical, except the
/// timing fields, which report wall time of whatever work actually ran
/// (`preprocess_seconds` is the cache-acquisition time, near zero on a
/// hit).
///
/// Invalid requests never abort: `Submit`/`Run`/`RunBatch`/`FindCommunity`
/// validate first and return a structured `Status` (service/status.h) for
/// malformed parameters, unknown enum values, > 64 layers on the lattice
/// searches, or an intractable C(l, s) for GD-DCCS.
///
/// Asynchronous queries (DESIGN.md §7): `Submit` returns a `QueryHandle`
/// immediately; dedicated query workers (Options::query_workers) drain a
/// bounded priority queue (Options::max_pending_queries), overload is shed
/// with `kResourceExhausted` instead of queueing forever, `Cancel` stops a
/// query cooperatively at its checkpoints (kCancelled), and per-submission
/// wall-clock deadlines compose with `DccsParams::time_budget_seconds`
/// under one anytime policy. A cancelled query never publishes a partial
/// cache entry: caches and their counters end up exactly as if it had
/// never run (or, when it won the build race late, as if it had
/// completed).
///
/// Continuous queries (DESIGN.md §9): `Subscribe` turns a request into a
/// standing query — a `Subscription` delivering one epoch-tagged
/// `ResultRevision` (full result + vertex-level delta) per published
/// epoch, with epochs the generational cache keys prove irrelevant
/// absorbed as zero-work "unchanged" revisions and slow consumers bounded
/// by latest-epoch-wins coalescing.
///
/// Dynamic graphs (DESIGN.md §8): every engine hosts a `GraphStore` —
/// the graph-owning constructors wrap their graph in a private store, and
/// the store-sharing constructor serves a caller-managed evolving graph.
/// `ApplyUpdate` publishes a new epoch; every query pins the snapshot
/// current at its *submission* and computes against it, so in-flight and
/// queued queries are never disturbed by later updates
/// (`DccsResult::epoch` reports the pinned epoch). Caches are keyed
/// generationally: entries built for content that a batch did not touch
/// stay warm — base d-cores reuse unchanged layers (and are served
/// outright from the store's incrementally maintained cores for tracked
/// degrees), and the (d, s, vertex_deletion) preprocessing bundles of a
/// tracked `d` survive any update that leaves that d's per-layer
/// core-induced subgraphs untouched.
class Engine {
 public:
  struct Options {
    /// Total parallelism of the shared pool (ThreadPool semantics: 1 means
    /// "calling thread only"). Batch queries and the parallel stages of
    /// single queries fan out over this pool. Note: unlike the one-shot
    /// free functions, the Engine ignores `DccsParams::num_threads` — the
    /// engine owns threading policy.
    int num_threads = 1;
    /// Maximum retained (d, s, vertex_deletion) preprocessing entries and
    /// maximum retained base-core entries; least recently used entries are
    /// evicted beyond this. In-flight queries keep evicted entries alive.
    int max_cached_queries = 16;
    /// Dedicated threads draining the async pending queue (DESIGN.md §7).
    /// 0 is valid: submitted queries then run only when some thread Waits
    /// on their handle (each waiter donates its thread to its own query) —
    /// useful for tests and strictly-synchronous embeddings.
    int query_workers = 1;
    /// Admission bound: maximum queries pending (admitted, not yet
    /// started). A submission beyond it is shed with kResourceExhausted
    /// unless its priority strictly exceeds a queued request's, which is
    /// then displaced instead. Bounds memory and queueing delay under
    /// overload — nothing ever queues forever.
    int max_pending_queries = 64;
    /// Worker lanes for the BU/TD search phase of a single query
    /// (DESIGN.md §10): each lattice search runs on a work-stealing task
    /// group of up to this many lanes, with results bit-identical at any
    /// value (1, the default, is the historical sequential search). Lanes
    /// beyond the driver are drawn from one engine-wide budget of
    /// (search_threads - 1) so concurrent searches never oversubscribe the
    /// machine: a query borrows whatever is free at its search phase and
    /// returns it when done — under contention searches degrade toward
    /// sequential, never queue. Applies to Run/Submit/RunBatch/Subscribe
    /// alike; the Engine ignores `DccsParams::search_threads` just as it
    /// ignores `num_threads` (threading is engine policy).
    int search_threads = 1;
  };

  /// Owning constructors: the engine holds the (immutable) graph.
  explicit Engine(MultiLayerGraph graph) : Engine(std::move(graph), Options{}) {}
  Engine(MultiLayerGraph graph, Options options);
  explicit Engine(std::shared_ptr<const MultiLayerGraph> graph)
      : Engine(std::move(graph), Options{}) {}
  Engine(std::shared_ptr<const MultiLayerGraph> graph, Options options);
  /// Borrowing constructors: `*graph` must outlive the engine. This is the
  /// form the one-shot `SolveDccs` wrapper uses.
  explicit Engine(const MultiLayerGraph* graph) : Engine(graph, Options{}) {}
  Engine(const MultiLayerGraph* graph, Options options);
  /// Updatable-graph constructors: the engine serves whatever epoch
  /// `store` currently publishes. The store may be shared — with other
  /// engines, or with a writer calling `GraphStore::ApplyUpdate` directly
  /// (`Engine::ApplyUpdate` is a forwarding convenience).
  explicit Engine(std::shared_ptr<GraphStore> store)
      : Engine(std::move(store), Options{}) {}
  Engine(std::shared_ptr<GraphStore> store, Options options);

  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Deprecated: the graph of the *current* snapshot. The reference is
  /// only valid until the next successful ApplyUpdate retires that
  /// snapshot — hold `store()->snapshot()` instead.
  [[deprecated(
      "valid only until the next ApplyUpdate; hold store()->snapshot() "
      "instead")]]
  const MultiLayerGraph& graph() const;
  const std::shared_ptr<GraphStore>& store() const { return store_; }
  const Options& options() const { return options_; }

  /// Applies a batched graph update through the hosted store and publishes
  /// a new epoch (DESIGN.md §8): queries submitted before this call keep
  /// computing against their pinned snapshot; queries submitted after see
  /// the new graph, with every cache whose keyed content is unchanged
  /// still warm. Validation failures change nothing.
  Expected<UpdateOutcome> ApplyUpdate(const UpdateBatch& batch) {
    return store_->ApplyUpdate(batch);
  }

  /// Epoch of the currently published snapshot (0 until the first update).
  uint64_t snapshot_epoch() const { return store_->epoch(); }

  /// The algorithm `request` will actually run: resolves kAuto through
  /// `RecommendedAlgorithm`. Meaningless for invalid requests.
  DccsAlgorithm ResolvedAlgorithm(const DccsRequest& request) const;

  /// Structured request validation; `Run`/`RunBatch`/`FindCommunity` call
  /// these themselves, but servers can pre-validate cheaply.
  Status Validate(const DccsRequest& request) const;
  Status Validate(const CommunityRequest& request) const;

  /// Asynchronous submission (DESIGN.md §7): validates, applies admission
  /// control, and enqueues the query for the engine's query workers (or a
  /// future waiter). Never blocks on query execution. The handle's terminal
  /// status distinguishes kCancelled, kDeadlineExceeded and
  /// kResourceExhausted from ordinary results; invalid or shed requests
  /// yield an immediately terminal handle. Destroying the engine resolves
  /// every outstanding query, after which surviving handles remain safe to
  /// Wait/TryGet/Cancel (they answer from the terminal result); only
  /// *racing* engine destruction against a live query's Wait/Cancel is
  /// undefined.
  QueryHandle Submit(const DccsRequest& request,
                     const SubmitOptions& options = {});

  /// Batch Submit: one handle per request (slot i ↔ requests[i]), each
  /// admitted independently under `options` — on an overfull queue the
  /// tail of the batch sheds with kResourceExhausted.
  std::vector<QueryHandle> SubmitBatch(std::span<const DccsRequest> requests,
                                       const SubmitOptions& options = {});

  /// Answers one DCCS query: a thin Submit + Wait (the submitting thread
  /// immediately donates itself to the query, so concurrency matches the
  /// historical synchronous path). Never aborts on bad input, and never
  /// fails on load: if admission sheds the submission (full queue /
  /// displaced), the query runs inline on the calling thread — a blocked
  /// caller is its own backpressure, so the PR-2 contract (Run fails only
  /// validation) holds under overload.
  Expected<DccsResult> Run(const DccsRequest& request);

  /// Answers independent queries, fanning them out over the pool. Slot i of
  /// the returned vector corresponds to requests[i] (per-slot outputs,
  /// sequential merge — DESIGN.md §4), and each slot equals what `Run`
  /// would return for that request alone. Invalid requests yield their
  /// validation error in-slot without disturbing the others.
  std::vector<Expected<DccsResult>> RunBatch(
      std::span<const DccsRequest> requests);

  /// Query-anchored community search, sharing the base d-core cache with
  /// DCCS preprocessing.
  Expected<CommunitySearchResult> FindCommunity(
      const CommunityRequest& request);

  /// Standing query (continuous DCCS): validates `request` once and
  /// returns a `Subscription` that delivers an initial `ResultRevision`
  /// for the current epoch and then revisions tracking every epoch the
  /// hosted `GraphStore` publishes, for as long as the subscription stays
  /// active. Tracking is latest-epoch-wins, not one-revision-per-epoch:
  /// epochs that publish while a revision is being produced collapse into
  /// the next one (each revision answers from the newest epoch available
  /// at its dispatch), so a consumer is always converging on the current
  /// answer and must key on `ResultRevision::epoch`, never on counting
  /// revisions against published epochs.
  ///
  /// Re-evaluations are scheduled through the admission queue at
  /// `options.priority` (a shed or displaced evaluation runs inline on the
  /// dispatcher — a standing query is never silently starved), and each
  /// revision's result is bit-identical to what `Run` would return for the
  /// same request against that epoch's snapshot. Epochs that provably
  /// cannot change the result (no relevant core-subgraph generation moved
  /// — DESIGN.md §8/§9) are absorbed with zero preprocess/search work and
  /// emit an "unchanged" revision. Consumers falling behind are bounded by
  /// `options.max_buffered_revisions` with latest-epoch-wins coalescing.
  ///
  /// Destroying the engine finishes in-flight revisions, then terminates
  /// every subscription; surviving handles stay safe — buffered revisions
  /// remain consumable, after which Next returns nullopt (DESIGN.md §9's
  /// shutdown ordering). Only *racing* engine destruction against
  /// Subscribe itself is undefined, exactly like Submit.
  Expected<Subscription> Subscribe(const DccsRequest& request,
                                   const SubscriptionOptions& options = {});

  /// Views over the engine's metric registry (DESIGN.md §12): the legacy
  /// stats structs are assembled from registry counters on every call.
  /// Exact once writers quiesce; mid-flight reads may trail by a few
  /// relaxed increments.
  EngineCacheStats cache_stats() const;
  SchedulerStats scheduler_stats() const;
  /// Everything this engine knows about itself, machine-readable: the
  /// engine and store metric snapshots merged (sorted by name) plus the
  /// slow-query log's span trees.
  EngineStatsReport stats_report() const;
  /// This engine's metric registry; per-engine exact (the process-wide
  /// aggregate latency mirror lives in obs::Registry::Global()).
  const obs::Registry& registry() const { return registry_; }
  /// Zeroes every engine-scoped metric — cache and scheduler counters,
  /// latency histograms — and clears the slow-query log. Cache/scheduler
  /// *contents* are untouched, so benches and tests can assert deltas
  /// instead of cumulative totals. Store metrics and the global latency
  /// mirrors are not reset.
  void ResetStats();
  /// Drops every cached entry (in-flight queries keep theirs alive) and the
  /// solver free-list. Counters are not reset — see ResetStats.
  void ClearCache();

 private:
  friend class QueryHandle;
  friend class Subscription;

  struct BaseCoresEntry;
  struct QueryEntry;
  struct QueryTask;
  struct SubscriptionState;
  class SolverLease;
  class WorkerSolvers;

  /// `pool_lock` either owns pool_mu_ (the query may use the shared pool
  /// for its parallel stages) or is empty (batch workers; fully
  /// sequential). The lock is released as soon as the query is done with
  /// the pool — before the sequential search phase — so a long search
  /// never blocks other queries' parallel stages. `control` (nullable)
  /// carries the submission's cancellation token and deadline; a stop
  /// before the search phase returns kCancelled / kDeadlineExceeded, a
  /// cancellation mid-search returns kCancelled (partial result
  /// discarded), and a deadline mid-search returns the anytime prefix.
  /// `snap` is the snapshot the query was pinned to at submission; every
  /// graph read and cache key goes through it. `trace` (nullable) receives
  /// this execution's span tree — a "query.run" root with preprocess /
  /// search / cover children (DESIGN.md §12) — and must stay alive until
  /// the call returns, by which point every recording thread has joined.
  Expected<DccsResult> RunValidated(
      const DccsRequest& request,
      const std::shared_ptr<const GraphSnapshot>& snap,
      util::UniqueLock pool_lock, const QueryControl* control,
      obs::Trace* trace);

  /// Submit with an explicit choice of arming the cancellation control.
  /// `controllable = false` (Run's private path) leaves the task's control
  /// inactive — the handle never escapes Run, so no one can cancel it, and
  /// the executed query keeps the uncontrolled path's zero checkpoint
  /// cost.
  QueryHandle SubmitTask(const DccsRequest& request,
                         const SubmitOptions& options, bool controllable);
  /// Runs `task` to its terminal state on the calling thread (a query
  /// worker, or a waiter that claimed its own task).
  void ExecuteTask(const std::shared_ptr<QueryTask>& task);
  /// Publishes the terminal result and wakes waiters.
  static void FinishTask(QueryTask& task, Expected<DccsResult> result);
  /// Blocks until `task` is terminal, first claiming and executing it
  /// inline if it is still queued.
  void AwaitTask(const std::shared_ptr<QueryTask>& task);
  /// Requests cooperative cancellation; resolves still-queued tasks
  /// immediately without execution.
  void CancelTask(const std::shared_ptr<QueryTask>& task);
  /// Resolves a still-queued task whose deadline has already passed
  /// (kDeadlineExceeded), so TryGet-polling observers aren't left waiting
  /// for a busy worker to claim a task that can only expire.
  void ResolveIfExpiredQueued(const std::shared_ptr<QueryTask>& task);
  void QueryWorkerLoop();

  /// Lazily starts the subscription dispatcher thread and registers the
  /// store epoch listener (engines that never Subscribe pay for neither).
  void EnsureSubscriptionInfra();
  /// Dispatcher: woken by store epochs, new subscriptions and completed
  /// evaluations; decides per subscription between the unchanged-skip
  /// fast path and scheduling a re-evaluation (DESIGN.md §9).
  void SubscriptionDispatcherLoop();
  /// One dispatch decision for `sub` against `snap`; never blocks on
  /// query execution except for the inline fallback when admission sheds.
  void DispatchSubscription(const std::shared_ptr<SubscriptionState>& sub,
                            const std::shared_ptr<const GraphSnapshot>& snap);
  /// Completion hook of a subscription's evaluation task (runs on the
  /// executing thread): emits the revision, or retries/drops on
  /// shed/cancel.
  void CompleteSubscriptionEval(const std::shared_ptr<SubscriptionState>& sub,
                                uint64_t generation, QueryTask& task);
  /// Emits one revision (buffer push with coalescing, or callback
  /// delivery) and closes the subscription's busy window; `result` may be
  /// nullptr for a dropped evaluation (cancel/shed), which produces
  /// nothing but still wakes the dispatcher for a retry.
  void FinishRevision(const std::shared_ptr<SubscriptionState>& sub,
                      uint64_t epoch,
                      std::shared_ptr<const DccsResult> result,
                      uint64_t generation, bool unchanged);
  /// Wakes the dispatcher for another scan.
  void PingDispatcher();

  /// Base cores for `d` at `snap`'s content. On a miss, unchanged layers
  /// are copied from the newest older entry for the same d, and tracked
  /// degrees are served from the store's maintained cores outright.
  std::shared_ptr<const BaseCoresEntry> GetBaseCores(
      const std::shared_ptr<const GraphSnapshot>& snap, int d,
      ThreadPool* pool);
  /// Returns the published (generation, d, s, vertex_deletion) entry,
  /// building it if needed — the generation (GraphSnapshot::
  /// core_generation) keys out stale epochs. Returns nullptr with `*stop`
  /// set when `control` fired before this query observed a published
  /// entry; an abandoned build publishes nothing (the next query rebuilds
  /// from scratch) — cache consistency under cancellation, DESIGN.md §7.
  std::shared_ptr<QueryEntry> GetQueryEntry(
      const std::shared_ptr<const GraphSnapshot>& snap, int d, int s,
      bool vertex_deletion, ThreadPool* pool, const QueryControl* control,
      QueryStop* stop);
  /// Seeds for (k, dcc_engine), plus the already-replayed CoverageIndex
  /// prototype the same key (satellite cache of DESIGN.md §10): BU/TD
  /// start from a copy of `*seeded_topk` and skip the per-query replay.
  std::shared_ptr<const InitSeeds> GetSeeds(
      const MultiLayerGraph& graph, QueryEntry& entry,
      const DccsParams& params, DccSolver& solver,
      std::shared_ptr<const CoverageIndex>* seeded_topk);
  const VertexLevelIndex* GetIndex(const MultiLayerGraph& graph,
                                   QueryEntry& entry, int d);
  /// Cached SortedLayerOrder over the entry's preprocessing (descending
  /// |C^d(G_i)| for BU, ascending for TD). Only meaningful for queries
  /// with sort_layers = true; the returned pointer is stable for the
  /// entry's lifetime.
  const std::vector<LayerId>* GetLayerOrder(QueryEntry& entry,
                                            bool descending);

  /// Engine-wide extra-lane budget for parallel searches (Options::
  /// search_threads): borrows up to `want` lanes, returning how many were
  /// actually granted (possibly 0 — the search then runs sequentially).
  int BorrowSearchLanes(int want);
  void ReturnSearchLanes(int lanes);

  /// Solvers are bound to one graph object, so the free-list is
  /// homogeneous per snapshot: acquiring for a different graph builds
  /// fresh, and releasing a solver for the *current* snapshot's graph
  /// flushes any stale entries (old snapshots are never pinned by idle
  /// solvers).
  std::unique_ptr<DccSolver> AcquireSolver(
      const std::shared_ptr<const MultiLayerGraph>& graph);
  void ReleaseSolver(std::shared_ptr<const MultiLayerGraph> graph,
                     std::unique_ptr<DccSolver> solver);

  /// Resolves every cached metric pointer from registry_ (constructor
  /// setup; pointers stay valid for the engine's lifetime).
  void InitMetrics();
  /// Summarises a completed query's trace into the slow-query log
  /// (no-op for null traces). Only call after the trace quiesced.
  void OfferTrace(const DccsRequest& request, uint64_t epoch,
                  obs::Trace* trace);

  std::shared_ptr<GraphStore> store_;
  const Options options_;

  // The shared pool. pool_mu_ serialises batches/parallel stages; a query
  // that finds it busy simply runs its parallel stages sequentially, which
  // by the §4 contract cannot change its result. The lock is a
  // serialisation token only — no member is guarded by it — and its
  // ownership travels by value (util::UniqueLock) into RunValidated.
  ThreadPool pool_;
  util::Mutex pool_mu_{util::lock_rank::kEnginePool, "Engine::pool_mu_"};

  // Caches. cache_mu_ guards the maps and the LRU clock; per-entry
  // once-flags/mutexes guard the (expensive) payload computations so a
  // miss never blocks unrelated queries. Keys carry the snapshot
  // generation the entry was built for (DESIGN.md §8): stale-generation
  // entries simply stop being found and age out through the LRU, while
  // in-flight queries pinned to old snapshots still share them.
  mutable util::Mutex cache_mu_{util::lock_rank::kEngineCache,
                                "Engine::cache_mu_"};
  uint64_t use_clock_ MLCORE_GUARDED_BY(cache_mu_) = 0;
  std::map<std::pair<int, uint64_t>, std::shared_ptr<BaseCoresEntry>>
      base_cores_ MLCORE_GUARDED_BY(cache_mu_);
  std::map<std::pair<int, uint64_t>, uint64_t> base_cores_last_use_
      MLCORE_GUARDED_BY(cache_mu_);
  std::map<std::tuple<uint64_t, int, int, bool>, std::shared_ptr<QueryEntry>>
      queries_ MLCORE_GUARDED_BY(cache_mu_);
  std::map<std::tuple<uint64_t, int, int, bool>, uint64_t> queries_last_use_
      MLCORE_GUARDED_BY(cache_mu_);

  // Extra worker lanes still free for parallel searches (DESIGN.md §10):
  // initialised to options_.search_threads - 1, debited/credited around
  // each BU/TD search phase. Lock-free so it never serialises queries.
  std::atomic<int> search_lanes_free_{0};

  // Solver free-list (the per-worker arenas of DESIGN.md §5), homogeneous
  // per graph snapshot: free_graph_ names the graph every pooled solver is
  // bound to.
  util::Mutex solver_mu_{util::lock_rank::kSolverPool, "Engine::solver_mu_"};
  std::shared_ptr<const MultiLayerGraph> free_graph_
      MLCORE_GUARDED_BY(solver_mu_);
  std::vector<std::unique_ptr<DccSolver>> free_solvers_
      MLCORE_GUARDED_BY(solver_mu_);

  // Async scheduler (DESIGN.md §7): bounded priority queue of pending
  // QueryTasks drained by the dedicated query workers and by waiters
  // claiming their own tasks. Scheduler counters live in the metric
  // registry (relaxed atomics), so Submit/Cancel/worker paths never
  // contend on a stats lock.
  PriorityTaskQueue pending_;
  std::vector<std::thread> query_workers_;

  // Continuous queries (DESIGN.md §9): the dispatcher thread and store
  // listener start on the first Subscribe; subs_mu_ guards the
  // subscription list and the dirty/shutdown flags only — per-subscription
  // state has its own lock, and the dispatcher drops subs_mu_ before doing
  // any work, so ApplyUpdate notifications never wait on evaluations.
  std::once_flag subs_init_once_;
  std::atomic<bool> subs_started_{false};
  uint64_t store_listener_id_ = 0;
  std::thread subs_dispatcher_;
  util::Mutex subs_mu_{util::lock_rank::kEngineSubs, "Engine::subs_mu_"};
  util::CondVar subs_cv_;
  bool subs_dirty_ MLCORE_GUARDED_BY(subs_mu_) = false;
  bool subs_shutdown_ MLCORE_GUARDED_BY(subs_mu_) = false;
  std::vector<std::shared_ptr<SubscriptionState>> subscriptions_
      MLCORE_GUARDED_BY(subs_mu_);

  // Observability (DESIGN.md §12). All engine.* metrics live in registry_;
  // metrics_ caches the pointers (resolved once by InitMetrics, before any
  // worker starts) so recording never touches the registry mutex. The
  // *_global histograms are the same measurements mirrored into
  // obs::Registry::Global() for process-wide export.
  struct Metrics {
    // engine.cache.* — views behind cache_stats().
    obs::Counter* preprocess_hits = nullptr;
    obs::Counter* preprocess_misses = nullptr;
    obs::Counter* seed_hits = nullptr;
    obs::Counter* seed_misses = nullptr;
    obs::Counter* index_hits = nullptr;
    obs::Counter* index_misses = nullptr;
    obs::Counter* base_core_hits = nullptr;
    obs::Counter* base_core_misses = nullptr;
    obs::Counter* base_core_layers_reused = nullptr;
    obs::Counter* base_core_layers_recomputed = nullptr;
    obs::Counter* base_core_store_served = nullptr;
    // engine.subs.* — revision counters plus pipeline-stage latencies.
    obs::Counter* revisions_emitted = nullptr;
    obs::Counter* revisions_unchanged_skipped = nullptr;
    obs::Counter* revisions_coalesced = nullptr;
    obs::Histogram* subs_dispatch_ms = nullptr;
    obs::Histogram* subs_reeval_ms = nullptr;
    obs::Histogram* subs_delivery_ms = nullptr;
    // engine.sched.* — views behind scheduler_stats().
    obs::Counter* sched_submitted = nullptr;
    obs::Counter* sched_admitted = nullptr;
    obs::Counter* sched_rejected = nullptr;
    obs::Counter* sched_displaced = nullptr;
    obs::Counter* sched_cancelled_queued = nullptr;
    obs::Counter* sched_expired_queued = nullptr;
    obs::Counter* sched_executed = nullptr;
    // engine.query.* — per-query phase latencies.
    obs::Histogram* query_admission_wait_ms = nullptr;
    obs::Histogram* query_preprocess_ms = nullptr;
    obs::Histogram* query_search_ms = nullptr;
    obs::Histogram* query_total_ms = nullptr;
    obs::Histogram* query_preprocess_ms_global = nullptr;
    obs::Histogram* query_search_ms_global = nullptr;
    obs::Histogram* query_total_ms_global = nullptr;
  };
  obs::Registry registry_;
  Metrics metrics_;
  obs::SlowQueryLog slow_log_;
};

/// Handle to one submitted query (Engine::Submit). Copyable — copies share
/// the same underlying task — and safe to Wait/Cancel from any thread and
/// any number of times, including after the engine's destruction (which
/// resolves every outstanding query first; see Submit).
///
/// Lifecycle: queued → running → terminal. `Wait` blocks until terminal
/// (claiming and executing a still-queued task on the waiting thread);
/// `TryGet` never blocks; `Cancel` requests cooperative cancellation — a
/// queued task resolves kCancelled immediately, a running one stops at its
/// next checkpoint, and a finished one is unaffected (Cancel after
/// completion still returns the completed result).
class QueryHandle {
 public:
  QueryHandle();  // invalid; assign from Engine::Submit
  QueryHandle(const QueryHandle&);
  QueryHandle& operator=(const QueryHandle&);
  QueryHandle(QueryHandle&&) noexcept;
  QueryHandle& operator=(QueryHandle&&) noexcept;
  ~QueryHandle();

  bool valid() const { return task_ != nullptr; }
  int priority() const;

  /// Blocks until the query is terminal and returns its result. The
  /// reference stays valid for the lifetime of the handle (and its
  /// copies).
  const Expected<DccsResult>& Wait();
  /// Non-blocking: the terminal result, or nullptr while queued/running.
  const Expected<DccsResult>* TryGet() const;
  /// Requests cancellation (idempotent, never blocks). The cancellation
  /// token this triggers is also observable via `token()`.
  void Cancel();
  /// The query's cancellation token; RequestCancel() on any copy is
  /// equivalent to Cancel() for the cooperative stages (a queued task is
  /// then resolved at claim time rather than immediately).
  CancellationToken token() const;

 private:
  friend class Engine;
  QueryHandle(std::shared_ptr<Engine::QueryTask> task, Engine* engine);

  std::shared_ptr<Engine::QueryTask> task_;
  Engine* engine_ = nullptr;
};

/// Handle to one standing query (Engine::Subscribe). Copyable — copies
/// share the same subscription — and safe to use from any thread,
/// including after the engine's destruction (which terminates the
/// subscription but leaves buffered revisions consumable).
///
/// Pull mode: `Next` blocks for the next revision (draining the buffer
/// first) and returns nullopt once the subscription is terminal and
/// drained; `TryNext` never blocks. With `SubscriptionOptions::
/// on_revision` set the engine pushes revisions through the callback
/// instead and the buffer stays empty.
///
/// `Cancel` stops the stream: the in-flight re-evaluation (if any) is
/// cancelled cooperatively, no further revisions are produced, and
/// blocked `Next` calls wake. Idempotent, never blocks, needs no live
/// engine.
class Subscription {
 public:
  Subscription();  // invalid; assign from Engine::Subscribe
  Subscription(const Subscription&);
  Subscription& operator=(const Subscription&);
  Subscription(Subscription&&) noexcept;
  Subscription& operator=(Subscription&&) noexcept;
  ~Subscription();

  bool valid() const { return state_ != nullptr; }

  /// Blocks until a revision is available, the subscription is cancelled,
  /// or the engine shut down; buffered revisions are delivered first.
  /// nullopt = terminal and drained.
  std::optional<ResultRevision> Next();
  /// Non-blocking Next.
  std::optional<ResultRevision> TryNext();
  /// Stops the stream (see class comment).
  void Cancel();
  /// True while the subscription still produces revisions (not cancelled,
  /// engine alive). Buffered revisions may remain after it turns false.
  bool active() const;

 private:
  friend class Engine;
  explicit Subscription(std::shared_ptr<Engine::SubscriptionState> state);

  /// Pops the front buffered revision. Requires state_->mu — the
  /// requirement is not expressible as an annotation here because
  /// SubscriptionState is incomplete at this point, so the definition
  /// opts out of analysis instead (engine.cc).
  std::optional<ResultRevision> PopLocked();

  std::shared_ptr<Engine::SubscriptionState> state_;
};

}  // namespace mlcore

#endif  // MLCORE_SERVICE_ENGINE_H_
