#include "service/delta.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <utility>

#include "dccs/cover.h"

namespace mlcore {

namespace {

VertexSet Difference(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

ResultDelta ComputeResultDelta(const DccsResult& previous,
                               const DccsResult& next) {
  ResultDelta delta;
  const VertexSet prev_cover = CoverOf(previous.cores);
  const VertexSet next_cover = CoverOf(next.cores);
  delta.cover_added = Difference(next_cover, prev_cover);
  delta.cover_removed = Difference(prev_cover, next_cover);

  // Match cores across the two results by layer subset; whatever the new
  // result does not consume has vanished.
  std::map<LayerSet, const ResultCore*> unmatched;
  for (const ResultCore& core : previous.cores) {
    unmatched[core.layers] = &core;
  }
  for (const ResultCore& core : next.cores) {
    auto it = unmatched.find(core.layers);
    if (it == unmatched.end()) {
      delta.cores_appeared.push_back(core);
      continue;
    }
    const ResultCore& old = *it->second;
    unmatched.erase(it);
    if (old.vertices == core.vertices) continue;
    CoreMembershipDelta change;
    change.layers = core.layers;
    change.added = Difference(core.vertices, old.vertices);
    change.removed = Difference(old.vertices, core.vertices);
    delta.cores_changed.push_back(std::move(change));
  }
  for (const ResultCore& core : previous.cores) {
    if (unmatched.count(core.layers) != 0) {
      delta.cores_vanished.push_back(core);
    }
  }
  return delta;
}

}  // namespace mlcore
