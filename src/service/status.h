#ifndef MLCORE_SERVICE_STATUS_H_
#define MLCORE_SERVICE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace mlcore {

/// Error channel of the service layer (DESIGN.md §5). The library's
/// algorithm entry points abort on violated invariants (MLCORE_CHECK); the
/// `Engine` instead *validates* every request up front and reports
/// malformed ones through these types, so a long-lived server never
/// crashes on bad user input.
enum class StatusCode {
  kOk = 0,
  /// The request itself is malformed (d/s/k out of range, unknown
  /// algorithm/engine enum value, query vertex outside the graph, ...).
  kInvalidArgument = 1,
  /// The request is well-formed but this build/graph cannot serve it
  /// (> 64 layers for the lattice searches, C(l, s) too large to
  /// materialise for GD-DCCS).
  kUnsupported = 2,
  /// The query was cancelled (QueryHandle::Cancel / CancellationToken)
  /// before it produced a result — while queued, during preprocessing, or
  /// mid-search (any partial result is discarded, never served).
  kCancelled = 3,
  /// The query's wall-clock deadline passed before any anytime result
  /// existed: while it was still queued, or during preprocessing. A
  /// deadline that expires *mid-search* instead returns OK with the
  /// best-so-far cores and `stats.budget_exhausted` set — the same anytime
  /// behaviour as DccsParams::time_budget_seconds (DESIGN.md §7).
  kDeadlineExceeded = 4,
  /// Load shed by admission control: the engine's pending queue was full of
  /// equal-or-higher-priority work at submission, or this request was
  /// displaced by a later higher-priority one.
  kResourceExhausted = 5,
};

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status Unsupported(std::string msg) {
    return {StatusCode::kUnsupported, std::move(msg)};
  }
  static Status Cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status DeadlineExceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status ResourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
};

/// Minimal expected<T, Status>: either a value or a non-OK Status. Used as
/// the Engine's response type so callers branch on `ok()` instead of
/// risking a CHECK-abort. Accessing `value()` of an errored response is a
/// programming error and aborts.
template <typename T>
class Expected {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, so
  // `return result;` and `return status;` both read naturally.
  Expected(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Expected(Status status) : status_(std::move(status)) {
    // NOLINT(mlcore-release-check): construction misuse aborts by contract
    MLCORE_CHECK_MSG(!status_.ok(),
                     "Expected constructed from an OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    // NOLINT(mlcore-release-check): value() on an error aborts by contract
    MLCORE_CHECK_MSG(ok(), status_.message.c_str());
    return *value_;
  }
  const T& value() const& {
    // NOLINT(mlcore-release-check): value() on an error aborts by contract
    MLCORE_CHECK_MSG(ok(), status_.message.c_str());
    return *value_;
  }
  T&& value() && {
    // NOLINT(mlcore-release-check): value() on an error aborts by contract
    MLCORE_CHECK_MSG(ok(), status_.message.c_str());
    return *std::move(value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mlcore

#endif  // MLCORE_SERVICE_STATUS_H_
