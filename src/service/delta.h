#ifndef MLCORE_SERVICE_DELTA_H_
#define MLCORE_SERVICE_DELTA_H_

#include <vector>

#include "dccs/params.h"
#include "graph/multilayer_graph.h"

namespace mlcore {

/// Membership change of one core that survives between two revisions of a
/// standing query: the same layer subset is present in both results with a
/// different vertex set.
struct CoreMembershipDelta {
  LayerSet layers;
  VertexSet added;
  VertexSet removed;

  friend bool operator==(const CoreMembershipDelta&,
                         const CoreMembershipDelta&) = default;
};

/// Vertex-level difference between two results of the same (d, s, k)
/// standing query (Engine::Subscribe), expressed over the paper's coverage
/// structures (dccs/cover.h): the Cov(R) difference plus a per-core
/// decomposition. Cores are identified by their layer subset — the
/// searches evaluate each subset at most once, so within one result the
/// layer set is a unique key.
struct ResultDelta {
  /// Cov(next) \ Cov(previous) and Cov(previous) \ Cov(next), sorted.
  VertexSet cover_added;
  VertexSet cover_removed;
  /// Cores whose layer subset exists only in the new result / only in the
  /// old one, each in its owning result's rank order.
  std::vector<ResultCore> cores_appeared;
  std::vector<ResultCore> cores_vanished;
  /// Cores present in both results with changed vertex membership, in the
  /// new result's rank order.
  std::vector<CoreMembershipDelta> cores_changed;

  /// True when the two results are identical at the vertex level (an
  /// "unchanged" revision carries an empty delta by construction).
  bool empty() const {
    return cover_added.empty() && cover_removed.empty() &&
           cores_appeared.empty() && cores_vanished.empty() &&
           cores_changed.empty();
  }

  friend bool operator==(const ResultDelta&, const ResultDelta&) = default;
};

/// The delta transforming `previous` into `next`. Per-core vertex sets
/// must be sorted (every DCCS path returns them sorted); a
/// default-constructed `previous` describes the revision before the first,
/// so an initial revision reports its whole result as appeared/added.
ResultDelta ComputeResultDelta(const DccsResult& previous,
                               const DccsResult& next);

}  // namespace mlcore

#endif  // MLCORE_SERVICE_DELTA_H_
