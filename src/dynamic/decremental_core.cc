#include "dynamic/decremental_core.h"

#include "core/dcore.h"
#include "util/check.h"

namespace mlcore {

DecrementalCoreMaintainer::DecrementalCoreMaintainer(
    const MultiLayerGraph& graph, int d, const VertexSet& active)
    : graph_(graph),
      d_(d),
      cores_(static_cast<size_t>(graph.NumLayers()),
             Bitset(static_cast<size_t>(graph.NumVertices()))),
      degree_(static_cast<size_t>(graph.NumVertices()) *
                  static_cast<size_t>(graph.NumLayers()),
              0),
      support_(static_cast<size_t>(graph.NumVertices()), 0),
      alive_(static_cast<size_t>(graph.NumVertices()), 0) {
  const auto l = static_cast<size_t>(graph.NumLayers());
  for (VertexId v : active) alive_[static_cast<size_t>(v)] = 1;
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    VertexSet members = DCoreScoped(graph, layer, d, active);
    Bitset& bits = cores_[static_cast<size_t>(layer)];
    for (VertexId v : members) bits.Set(static_cast<size_t>(v));
    for (VertexId v : members) {
      int32_t within = 0;
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (bits.Test(static_cast<size_t>(u))) ++within;
      }
      degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] =
          within;
      ++support_[static_cast<size_t>(v)];
    }
  }
}

void DecrementalCoreMaintainer::ExitCore(
    VertexId v, LayerId layer,
    std::vector<std::pair<VertexId, LayerId>>* exits) {
  Bitset& bits = cores_[static_cast<size_t>(layer)];
  if (!bits.Test(static_cast<size_t>(v))) return;
  bits.Clear(static_cast<size_t>(v));
  --support_[static_cast<size_t>(v)];
  queue_.emplace_back(v, layer);
  if (exits != nullptr) exits->emplace_back(v, layer);
}

void DecrementalCoreMaintainer::RemoveVertex(
    VertexId v, std::vector<std::pair<VertexId, LayerId>>* exits) {
  if (alive_[static_cast<size_t>(v)] == 0) return;
  alive_[static_cast<size_t>(v)] = 0;
  const auto l = static_cast<size_t>(graph_.NumLayers());

  MLCORE_DCHECK(queue_.empty());
  for (LayerId layer = 0; layer < graph_.NumLayers(); ++layer) {
    ExitCore(v, layer, exits);
  }
  for (size_t head = 0; head < queue_.size(); ++head) {
    auto [w, layer] = queue_[head];
    const Bitset& bits = cores_[static_cast<size_t>(layer)];
    for (VertexId u : graph_.Neighbors(layer, w)) {
      if (!bits.Test(static_cast<size_t>(u))) continue;
      auto& du =
          degree_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
      if (--du < d_) ExitCore(u, layer, exits);
    }
  }
  queue_.clear();
}

VertexSet DecrementalCoreMaintainer::VerticesWithSupportAtLeast(int s) const {
  VertexSet result;
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    if (alive_[static_cast<size_t>(v)] != 0 &&
        support_[static_cast<size_t>(v)] >= s) {
      result.push_back(v);
    }
  }
  return result;
}

}  // namespace mlcore
