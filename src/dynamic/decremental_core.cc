#include "dynamic/decremental_core.h"

#include <algorithm>
#include <utility>

#include "core/dcore.h"
#include "util/check.h"

namespace mlcore {

DecrementalCoreMaintainer::DecrementalCoreMaintainer(
    const MultiLayerGraph& graph, int d, const VertexSet& active)
    : graph_(&graph),
      d_(d),
      cores_(static_cast<size_t>(graph.NumLayers()),
             Bitset(static_cast<size_t>(graph.NumVertices()))),
      degree_(static_cast<size_t>(graph.NumVertices()) *
                  static_cast<size_t>(graph.NumLayers()),
              0),
      support_(static_cast<size_t>(graph.NumVertices()), 0),
      alive_(static_cast<size_t>(graph.NumVertices()), 0),
      region_stamp_(static_cast<size_t>(graph.NumVertices()), 0),
      region_degree_(static_cast<size_t>(graph.NumVertices()), 0) {
  const auto l = static_cast<size_t>(graph.NumLayers());
  for (VertexId v : active) alive_[static_cast<size_t>(v)] = 1;
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    VertexSet members = DCoreScoped(graph, layer, d, active);
    Bitset& bits = cores_[static_cast<size_t>(layer)];
    for (VertexId v : members) bits.Set(static_cast<size_t>(v));
    for (VertexId v : members) {
      int32_t within = 0;
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (bits.Test(static_cast<size_t>(u))) ++within;
      }
      degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] =
          within;
      ++support_[static_cast<size_t>(v)];
    }
  }
}

void DecrementalCoreMaintainer::ExitCore(
    VertexId v, LayerId layer,
    std::vector<std::pair<VertexId, LayerId>>* exits) {
  Bitset& bits = cores_[static_cast<size_t>(layer)];
  if (!bits.Test(static_cast<size_t>(v))) return;
  bits.Clear(static_cast<size_t>(v));
  --support_[static_cast<size_t>(v)];
  queue_.emplace_back(v, layer);
  if (exits != nullptr) exits->emplace_back(v, layer);
}

int64_t DecrementalCoreMaintainer::CascadeExits(
    const EdgeList& skip,
    std::vector<std::pair<VertexId, LayerId>>* exits) {
  const auto l = static_cast<size_t>(graph_->NumLayers());
  for (size_t head = 0; head < queue_.size(); ++head) {
    auto [w, lay] = queue_[head];
    const Bitset& bits = cores_[static_cast<size_t>(lay)];
    for (VertexId u : graph_->Neighbors(lay, w)) {
      if (!bits.Test(static_cast<size_t>(u))) continue;
      if (!skip.empty() &&
          std::binary_search(
              skip.begin(), skip.end(),
              std::pair<VertexId, VertexId>(std::min(w, u),
                                            std::max(w, u)))) {
        // The edge no longer exists in the post-removal graph; its two
        // explicit decrements already happened in RemoveEdges phase 1.
        continue;
      }
      auto& du =
          degree_[static_cast<size_t>(u) * l + static_cast<size_t>(lay)];
      if (--du < d_) ExitCore(u, lay, exits);
    }
  }
  // Every exit passes through queue_ exactly once, so its final length is
  // the cascade size.
  const auto total = static_cast<int64_t>(queue_.size());
  queue_.clear();
  return total;
}

void DecrementalCoreMaintainer::RemoveVertex(
    VertexId v, std::vector<std::pair<VertexId, LayerId>>* exits) {
  if (alive_[static_cast<size_t>(v)] == 0) return;
  alive_[static_cast<size_t>(v)] = 0;

  MLCORE_DCHECK(queue_.empty());
  for (LayerId layer = 0; layer < graph_->NumLayers(); ++layer) {
    ExitCore(v, layer, exits);
  }
  static const EdgeList kNoSkip;
  CascadeExits(kNoSkip, exits);
}

DecrementalCoreMaintainer::RemoveOutcome DecrementalCoreMaintainer::RemoveEdges(
    LayerId layer, const EdgeList& removed,
    std::vector<std::pair<VertexId, LayerId>>* exits) {
  MLCORE_DCHECK(std::is_sorted(removed.begin(), removed.end()));
  RemoveOutcome out;
  Bitset& bits = cores_[static_cast<size_t>(layer)];
  const auto l = static_cast<size_t>(graph_->NumLayers());

  // Phase 1: retract the in-core removed edges' degree contributions.
  // No exit happens before phase 2, so the decrement order is irrelevant.
  for (const auto& [u, v] : removed) {
    if (bits.Test(static_cast<size_t>(u)) &&
        bits.Test(static_cast<size_t>(v))) {
      out.core_subgraph_changed = true;
      --degree_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
      --degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)];
    }
  }

  // Phase 2: exit everything now under-degree, then cascade through the
  // post-removal adjacency (the bound graph minus `removed`).
  MLCORE_DCHECK(queue_.empty());
  for (const auto& [u, v] : removed) {
    for (VertexId w : {u, v}) {
      if (bits.Test(static_cast<size_t>(w)) &&
          degree_[static_cast<size_t>(w) * l + static_cast<size_t>(layer)] <
              d_) {
        ExitCore(w, layer, exits);
      }
    }
  }
  out.exited = CascadeExits(removed, exits);
  out.core_subgraph_changed |= out.exited > 0;
  return out;
}

void DecrementalCoreMaintainer::GrowVertices(int32_t new_num_vertices) {
  const auto old_n = alive_.size();
  const auto new_n = static_cast<size_t>(new_num_vertices);
  MLCORE_DCHECK(new_n >= old_n);  // GraphStore never shrinks the space
  if (new_n == old_n) return;
  const auto l = cores_.size();
  for (Bitset& bits : cores_) bits.GrowTo(new_n);
  degree_.resize(new_n * l, 0);
  support_.resize(new_n, 0);
  alive_.resize(new_n, 1);
  region_stamp_.resize(new_n, 0);
  region_degree_.resize(new_n, 0);
}

void DecrementalCoreMaintainer::Rebind(const MultiLayerGraph* graph) {
  // GraphStore::ApplyUpdate (the only caller) upholds all three.
  MLCORE_DCHECK(graph != nullptr);
  MLCORE_DCHECK(graph->NumLayers() == static_cast<int32_t>(cores_.size()));
  MLCORE_DCHECK(static_cast<size_t>(graph->NumVertices()) == alive_.size());
  graph_ = graph;
}

DecrementalCoreMaintainer::InsertOutcome DecrementalCoreMaintainer::InsertEdges(
    LayerId layer, const EdgeList& inserted, int64_t damage_threshold,
    std::vector<std::pair<VertexId, LayerId>>* entries) {
  MLCORE_DCHECK(std::is_sorted(inserted.begin(), inserted.end()));
  InsertOutcome out;
  Bitset& bits = cores_[static_cast<size_t>(layer)];
  const auto l = static_cast<size_t>(graph_->NumLayers());

  // Phase 0: edges landing inside the current core only raise degrees
  // (insertions never evict anyone).
  for (const auto& [u, v] : inserted) {
    if (bits.Test(static_cast<size_t>(u)) &&
        bits.Test(static_cast<size_t>(v))) {
      out.core_subgraph_changed = true;
      ++degree_[static_cast<size_t>(u) * l + static_cast<size_t>(layer)];
      ++degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)];
    }
  }

  // Affected region: any vertex that newly enters the core is reachable
  // from a non-core endpoint of an inserted edge through out-of-core
  // vertices of full degree >= d (induction over the old graph's peeling
  // order — the first entering vertex must touch an inserted edge, each
  // later one an earlier enterer; DESIGN.md §8). BFS that region.
  if (++region_epoch_ == 0) {
    std::fill(region_stamp_.begin(), region_stamp_.end(), 0u);
    region_epoch_ = 1;
  }
  region_.clear();
  auto try_add = [&](VertexId x) {
    const auto xi = static_cast<size_t>(x);
    if (region_stamp_[xi] == region_epoch_ || bits.Test(xi) ||
        alive_[xi] == 0 || graph_->Degree(layer, x) < d_) {
      return;
    }
    region_stamp_[xi] = region_epoch_;
    region_.push_back(x);
  };
  for (const auto& [u, v] : inserted) {
    try_add(u);
    try_add(v);
  }
  bool over_budget = damage_threshold < 0;
  for (size_t head = 0; head < region_.size() && !over_budget; ++head) {
    if (damage_threshold >= 0 &&
        static_cast<int64_t>(region_.size()) > damage_threshold) {
      over_budget = true;
      break;
    }
    for (VertexId x : graph_->Neighbors(layer, region_[head])) try_add(x);
  }
  out.region = static_cast<int64_t>(region_.size());

  if (over_budget ||
      (damage_threshold >= 0 &&
       static_cast<int64_t>(region_.size()) > damage_threshold)) {
    out.recomputed = true;
    out.entered = RecomputeLayer(layer, entries);
    out.core_subgraph_changed |= out.entered > 0;
    return out;
  }

  // Bounded peel: candidate degrees count neighbours in core ∪ region,
  // then iteratively discard under-degree candidates. Survivors are
  // exactly the new core members (the old core never peels: its within-
  // core degrees are >= d without any candidate).
  for (VertexId w : region_) {
    int32_t cd = 0;
    for (VertexId x : graph_->Neighbors(layer, w)) {
      const auto xi = static_cast<size_t>(x);
      if (bits.Test(xi) || region_stamp_[xi] == region_epoch_) ++cd;
    }
    region_degree_[static_cast<size_t>(w)] = cd;
  }
  peel_queue_.clear();
  for (VertexId w : region_) {
    if (region_degree_[static_cast<size_t>(w)] < d_) {
      region_stamp_[static_cast<size_t>(w)] = region_epoch_ - 1;  // peeled
      peel_queue_.push_back(w);
    }
  }
  for (size_t head = 0; head < peel_queue_.size(); ++head) {
    for (VertexId x : graph_->Neighbors(layer, peel_queue_[head])) {
      const auto xi = static_cast<size_t>(x);
      if (region_stamp_[xi] != region_epoch_) continue;
      if (--region_degree_[xi] < d_) {
        region_stamp_[xi] = region_epoch_ - 1;
        peel_queue_.push_back(x);
      }
    }
  }

  // Admit survivors (sorted for deterministic entry reporting).
  std::vector<VertexId>& admitted = peel_queue_;
  admitted.clear();
  for (VertexId w : region_) {
    if (region_stamp_[static_cast<size_t>(w)] == region_epoch_) {
      admitted.push_back(w);
    }
  }
  std::sort(admitted.begin(), admitted.end());
  for (VertexId a : admitted) {
    bits.Set(static_cast<size_t>(a));
    ++support_[static_cast<size_t>(a)];
    if (entries != nullptr) entries->emplace_back(a, layer);
  }
  // Fix within-core degrees: full recount for the admitted vertices, +1 on
  // each pre-existing core neighbour per adjacent admission.
  for (VertexId a : admitted) {
    int32_t within = 0;
    for (VertexId x : graph_->Neighbors(layer, a)) {
      const auto xi = static_cast<size_t>(x);
      if (!bits.Test(xi)) continue;
      ++within;
      if (region_stamp_[xi] != region_epoch_) {
        // Old-core neighbour (admitted ones carry the region stamp).
        ++degree_[xi * l + static_cast<size_t>(layer)];
      }
    }
    degree_[static_cast<size_t>(a) * l + static_cast<size_t>(layer)] = within;
  }
  out.entered = static_cast<int64_t>(admitted.size());
  out.core_subgraph_changed |= out.entered > 0;
  return out;
}

int64_t DecrementalCoreMaintainer::RecomputeLayer(
    LayerId layer, std::vector<std::pair<VertexId, LayerId>>* entries) {
  VertexSet scope;
  scope.reserve(alive_.size());
  for (size_t v = 0; v < alive_.size(); ++v) {
    if (alive_[v] != 0) scope.push_back(static_cast<VertexId>(v));
  }
  VertexSet fresh = DCoreScoped(*graph_, layer, d_, scope);

  Bitset& bits = cores_[static_cast<size_t>(layer)];
  const auto l = static_cast<size_t>(graph_->NumLayers());
  int64_t entered = 0;
  for (VertexId v : fresh) {
    if (!bits.Test(static_cast<size_t>(v))) {
      ++entered;
      ++support_[static_cast<size_t>(v)];
      if (entries != nullptr) entries->emplace_back(v, layer);
    }
  }
  // Insertions only grow a layer's core; the recomputation must agree.
  MLCORE_DCHECK(fresh.size() == bits.Count() + static_cast<size_t>(entered));
  bits.Reset();
  for (VertexId v : fresh) bits.Set(static_cast<size_t>(v));
  for (VertexId v : fresh) {
    int32_t within = 0;
    for (VertexId u : graph_->Neighbors(layer, v)) {
      if (bits.Test(static_cast<size_t>(u))) ++within;
    }
    degree_[static_cast<size_t>(v) * l + static_cast<size_t>(layer)] = within;
  }
  return entered;
}

VertexSet DecrementalCoreMaintainer::VerticesWithSupportAtLeast(int s) const {
  VertexSet result;
  for (size_t v = 0; v < support_.size(); ++v) {
    if (alive_[v] != 0 && support_[v] >= s) {
      result.push_back(static_cast<VertexId>(v));
    }
  }
  return result;
}

}  // namespace mlcore
