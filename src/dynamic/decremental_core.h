#ifndef MLCORE_DYNAMIC_DECREMENTAL_CORE_H_
#define MLCORE_DYNAMIC_DECREMENTAL_CORE_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"
#include "util/bitset.h"

namespace mlcore {

/// Decremental maintenance of all per-layer d-cores of a multi-layer graph
/// under vertex deletions.
///
/// This is the engine behind the §V-C vertex index construction, exposed
/// as a library feature: deleting a vertex cascades core exits through
/// under-degree neighbours in O(affected edges), instead of recomputing
/// every core from scratch (O(n + m) per layer). Typical uses: sliding
/// windows over snapshot layers (stories leaving the window) and
/// interactive what-if analysis ("does the module survive without this
/// protein?").
///
/// Also maintains the support Num(v) — the number of layers whose current
/// d-core contains v — which drives the paper's vertex-deletion
/// preprocessing and index stages.
class DecrementalCoreMaintainer {
 public:
  /// Initialises the maintainer with the d-cores of `graph` restricted to
  /// `active` (sorted). Vertices outside `active` are treated as deleted.
  DecrementalCoreMaintainer(const MultiLayerGraph& graph, int d,
                            const VertexSet& active);

  int threshold() const { return d_; }

  /// True iff v currently belongs to the d-core of `layer`.
  bool InCore(LayerId layer, VertexId v) const {
    return cores_[static_cast<size_t>(layer)].Test(static_cast<size_t>(v));
  }

  /// Number of layers whose current d-core contains v (the paper's
  /// Num(v)); 0 after deletion.
  int Support(VertexId v) const {
    return support_[static_cast<size_t>(v)];
  }

  /// True iff v has been deleted (or was never active).
  bool Deleted(VertexId v) const {
    return alive_[static_cast<size_t>(v)] == 0;
  }

  /// Deletes `v` from the graph and cascades all per-layer core exits.
  /// No-op if already deleted. Appends every (vertex, layer) core exit
  /// triggered by this deletion — including v's own — to `exits` when it
  /// is non-null, in cascade order.
  void RemoveVertex(VertexId v,
                    std::vector<std::pair<VertexId, LayerId>>* exits);

  /// Current d-core of `layer` as a sorted vertex set (O(n/64 + |core|)).
  VertexSet CoreMembers(LayerId layer) const {
    return cores_[static_cast<size_t>(layer)].ToVector();
  }

  /// Sorted vertices with Support(v) >= s — candidates surviving the
  /// paper's vertex-deletion rule at support threshold s.
  VertexSet VerticesWithSupportAtLeast(int s) const;

 private:
  void ExitCore(VertexId v, LayerId layer,
                std::vector<std::pair<VertexId, LayerId>>* exits);

  const MultiLayerGraph& graph_;
  const int d_;
  std::vector<Bitset> cores_;       // per-layer membership
  std::vector<int32_t> degree_;     // degree within current core, per layer
  std::vector<int> support_;        // Num(v)
  std::vector<uint8_t> alive_;
  std::vector<std::pair<VertexId, LayerId>> queue_;  // cascade scratch
};

}  // namespace mlcore

#endif  // MLCORE_DYNAMIC_DECREMENTAL_CORE_H_
