#ifndef MLCORE_DYNAMIC_DECREMENTAL_CORE_H_
#define MLCORE_DYNAMIC_DECREMENTAL_CORE_H_

#include <cstdint>
#include <vector>

#include "graph/multilayer_graph.h"
#include "util/bitset.h"

namespace mlcore {

/// Maintenance of all per-layer d-cores of a multi-layer graph under
/// vertex deletions, batched edge deletions and batched edge insertions.
///
/// This is the engine behind the §V-C vertex index construction and the
/// dynamic `GraphStore` (DESIGN.md §8), exposed as a library feature:
///
///  * deleting a vertex or a batch of edges cascades core exits through
///    under-degree neighbours in O(affected edges), instead of recomputing
///    every core from scratch (O(n + m) per layer);
///  * inserting a batch of edges re-cores only the *affected region* —
///    the vertices that could possibly enter the core, reachable from the
///    inserted endpoints through out-of-core vertices of degree ≥ d — and
///    falls back to a full Batagelj–Zaversnik-style recomputation when the
///    region outgrows a damage threshold.
///
/// Typical uses: sliding windows over snapshot layers (stories leaving the
/// window), interactive what-if analysis ("does the module survive without
/// this protein?"), and the epoch-to-epoch core maintenance of the
/// GraphStore.
///
/// Also maintains the support Num(v) — the number of layers whose current
/// d-core contains v — which drives the paper's vertex-deletion
/// preprocessing and index stages.
class DecrementalCoreMaintainer {
 public:
  using EdgeList = MultiLayerGraph::EdgeList;

  /// Initialises the maintainer with the d-cores of `graph` restricted to
  /// `active` (sorted). Vertices outside `active` are treated as deleted.
  /// The graph reference must stay valid until `Rebind` replaces it.
  DecrementalCoreMaintainer(const MultiLayerGraph& graph, int d,
                            const VertexSet& active);

  int threshold() const { return d_; }

  /// True iff v currently belongs to the d-core of `layer`.
  bool InCore(LayerId layer, VertexId v) const {
    return cores_[static_cast<size_t>(layer)].Test(static_cast<size_t>(v));
  }

  /// Number of layers whose current d-core contains v (the paper's
  /// Num(v)); 0 after deletion.
  int Support(VertexId v) const {
    return support_[static_cast<size_t>(v)];
  }

  /// True iff v has been deleted (or was never active).
  bool Deleted(VertexId v) const {
    return alive_[static_cast<size_t>(v)] == 0;
  }

  /// Deletes `v` from the graph and cascades all per-layer core exits.
  /// No-op if already deleted. Appends every (vertex, layer) core exit
  /// triggered by this deletion — including v's own — to `exits` when it
  /// is non-null, in cascade order.
  void RemoveVertex(VertexId v,
                    std::vector<std::pair<VertexId, LayerId>>* exits);

  /// Current d-core of `layer` as a sorted vertex set (O(n/64 + |core|)).
  VertexSet CoreMembers(LayerId layer) const {
    return cores_[static_cast<size_t>(layer)].ToVector();
  }

  /// Sorted vertices with Support(v) >= s — candidates surviving the
  /// paper's vertex-deletion rule at support threshold s.
  VertexSet VerticesWithSupportAtLeast(int s) const;

  // ---- Dynamic-graph surface (GraphStore, DESIGN.md §8) ----------------

  /// Outcome of one batched edge-deletion call.
  struct RemoveOutcome {
    /// (vertex, layer) core exits triggered by the batch.
    int64_t exited = 0;
    /// True when the batch touched the core-induced subgraph of the layer:
    /// a removed edge had both endpoints in the core, or any vertex
    /// exited. Drives the engine's generational cache invalidation.
    bool core_subgraph_changed = false;
  };

  /// Outcome of one batched edge-insertion call.
  struct InsertOutcome {
    /// (vertex, layer) core entries produced by the batch.
    int64_t entered = 0;
    /// See RemoveOutcome: an inserted edge landed inside the (new) core,
    /// or any vertex entered.
    bool core_subgraph_changed = false;
    /// True when the affected region exceeded the damage threshold and the
    /// layer's core was recomputed from scratch.
    bool recomputed = false;
    /// Size of the affected region explored by the bounded path.
    int64_t region = 0;
  };

  /// Removes the given edges from `layer` and cascades core exits.
  /// `removed` must be canonical (u < v), sorted, duplicate-free, and every
  /// edge must exist in the *currently bound* graph — call this while the
  /// maintainer is still bound to the pre-update graph; the cascade walks
  /// the bound adjacency, skipping edges in `removed` (so it sees exactly
  /// the post-removal graph). Appends exits to `exits` when non-null.
  RemoveOutcome RemoveEdges(LayerId layer, const EdgeList& removed,
                            std::vector<std::pair<VertexId, LayerId>>* exits);

  /// Admits core entries caused by inserting `inserted` (canonical, sorted,
  /// deduped) into `layer`. Call *after* `Rebind`-ing to the post-update
  /// graph: the bound adjacency must already contain the inserted edges.
  ///
  /// The bounded path peels only the affected region (see class comment);
  /// a region larger than `damage_threshold` falls back to a full scoped
  /// core recomputation (`damage_threshold` < 0 forces the full path —
  /// the from-scratch baseline for tests and benchmarks). Appends
  /// (vertex, layer) core entries to `entries` when non-null, sorted by
  /// vertex id.
  InsertOutcome InsertEdges(
      LayerId layer, const EdgeList& inserted, int64_t damage_threshold,
      std::vector<std::pair<VertexId, LayerId>>* entries);

  /// Grows the vertex-id space to `new_num_vertices` (>= current),
  /// preserving all state; new vertices are alive, core-less and
  /// support-0. Pair with `Rebind` when the graph gains vertices.
  void GrowVertices(int32_t new_num_vertices);

  /// Points the maintainer at a replacement graph (same layer count,
  /// vertex count equal to the grown id space). The caller guarantees the
  /// maintained cores are consistent with it — the GraphStore sequence is:
  /// RemoveEdges… (old graph) → GrowVertices → Rebind(new) → InsertEdges….
  void Rebind(const MultiLayerGraph* graph);

 private:
  void ExitCore(VertexId v, LayerId layer,
                std::vector<std::pair<VertexId, LayerId>>* exits);
  /// Drains `queue_`, decrementing neighbours and exiting anything that
  /// drops under d; returns the total number of exits (the full cascade,
  /// including the seeds already queued). `skip` edges (canonical, sorted)
  /// are treated as absent from the bound adjacency.
  int64_t CascadeExits(const EdgeList& skip,
                       std::vector<std::pair<VertexId, LayerId>>* exits);
  int64_t RecomputeLayer(LayerId layer,
                         std::vector<std::pair<VertexId, LayerId>>* entries);

  const MultiLayerGraph* graph_;
  const int d_;
  std::vector<Bitset> cores_;       // per-layer membership
  std::vector<int32_t> degree_;     // degree within current core, per layer
  std::vector<int> support_;        // Num(v)
  std::vector<uint8_t> alive_;
  std::vector<std::pair<VertexId, LayerId>> queue_;  // cascade scratch
  // Insertion scratch: affected-region membership (epoch-stamped) and
  // candidate degrees, sized to the vertex-id space.
  uint32_t region_epoch_ = 0;
  std::vector<uint32_t> region_stamp_;
  std::vector<int32_t> region_degree_;
  std::vector<VertexId> region_;      // BFS worklist / region members
  std::vector<VertexId> peel_queue_;  // bounded-peel worklist
};

}  // namespace mlcore

#endif  // MLCORE_DYNAMIC_DECREMENTAL_CORE_H_
