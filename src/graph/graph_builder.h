#ifndef MLCORE_GRAPH_GRAPH_BUILDER_H_
#define MLCORE_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/multilayer_graph.h"

namespace mlcore {

/// Mutable accumulator that produces an immutable `MultiLayerGraph`.
///
/// Edges may be added in any order and repeatedly; the builder removes
/// self-loops and duplicate edges and emits sorted CSR neighbour lists.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with `num_vertices` vertices and
  /// `num_layers` layers.
  GraphBuilder(int32_t num_vertices, int32_t num_layers);

  int32_t num_vertices() const { return num_vertices_; }
  int32_t num_layers() const { return num_layers_; }

  /// Records the undirected edge (u, v) on `layer`. Self-loops are ignored.
  void AddEdge(LayerId layer, VertexId u, VertexId v);

  /// Records (u, v) on every layer in `layers`.
  void AddEdgeOnLayers(const LayerSet& layers, VertexId u, VertexId v);

  /// Builds the immutable graph. The builder may be reused afterwards
  /// (its accumulated edges are retained).
  MultiLayerGraph Build() const;

 private:
  int32_t num_vertices_;
  int32_t num_layers_;
  // One flat (u, v) pair list per layer; canonicalised u < v.
  std::vector<std::vector<std::pair<VertexId, VertexId>>> edges_;
};

}  // namespace mlcore

#endif  // MLCORE_GRAPH_GRAPH_BUILDER_H_
