#include "graph/graph_builder.h"

#include <algorithm>

namespace mlcore {

GraphBuilder::GraphBuilder(int32_t num_vertices, int32_t num_layers)
    : num_vertices_(num_vertices),
      num_layers_(num_layers),
      edges_(static_cast<size_t>(num_layers)) {
  MLCORE_CHECK(num_vertices >= 0);
  MLCORE_CHECK(num_layers >= 1);
}

void GraphBuilder::AddEdge(LayerId layer, VertexId u, VertexId v) {
  MLCORE_CHECK(layer >= 0 && layer < num_layers_);
  MLCORE_CHECK(u >= 0 && u < num_vertices_);
  MLCORE_CHECK(v >= 0 && v < num_vertices_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_[static_cast<size_t>(layer)].emplace_back(u, v);
}

void GraphBuilder::AddEdgeOnLayers(const LayerSet& layers, VertexId u,
                                   VertexId v) {
  for (LayerId layer : layers) AddEdge(layer, u, v);
}

MultiLayerGraph GraphBuilder::Build() const {
  MultiLayerGraph graph;
  graph.num_vertices_ = num_vertices_;
  graph.layers_.resize(static_cast<size_t>(num_layers_));
  std::vector<std::pair<VertexId, VertexId>> dedup;
  for (LayerId layer = 0; layer < num_layers_; ++layer) {
    dedup = edges_[static_cast<size_t>(layer)];
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());

    auto& csr = graph.layers_[static_cast<size_t>(layer)];
    auto& offsets = csr.offsets_store;
    auto& neighbors = csr.neighbors_store;
    offsets.assign(static_cast<size_t>(num_vertices_) + 1, 0);
    for (const auto& [u, v] : dedup) {
      ++offsets[static_cast<size_t>(u) + 1];
      ++offsets[static_cast<size_t>(v) + 1];
    }
    for (int32_t i = 0; i < num_vertices_; ++i) {
      offsets[static_cast<size_t>(i) + 1] += offsets[static_cast<size_t>(i)];
    }
    neighbors.resize(static_cast<size_t>(offsets.back()));
    std::vector<int64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [u, v] : dedup) {
      neighbors[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
      neighbors[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
    }
    // Insertion order above preserves sortedness for the `u` side but not
    // the `v` side; sort each list to establish the CSR invariant.
    for (int32_t i = 0; i < num_vertices_; ++i) {
      std::sort(neighbors.begin() + offsets[static_cast<size_t>(i)],
                neighbors.begin() + offsets[static_cast<size_t>(i) + 1]);
    }
    csr.SealOwned();
  }
  return graph;
}

}  // namespace mlcore
