#include "graph/io.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace mlcore {

namespace {

/// Chunked line scanner over a stdio stream: 1 MiB reads, lines handed out
/// as views into the buffer (no per-line allocation except for lines that
/// straddle a chunk boundary). The buffered replacement for the previous
/// `std::getline` + `istringstream` parse, which cost a stream round-trip
/// and an allocation per edge row.
class LineScanner {
 public:
  explicit LineScanner(std::FILE* file) : file_(file) {}

  /// Advances to the next line (excluding the terminator). Returns false
  /// at end of input. Views stay valid until the next call.
  bool Next(std::string_view* line) {
    carry_.clear();
    while (true) {
      if (pos_ < len_) {
        const char* begin = buffer_ + pos_;
        const auto* nl = static_cast<const char*>(
            std::memchr(begin, '\n', len_ - pos_));
        if (nl != nullptr) {
          const size_t count = static_cast<size_t>(nl - begin);
          pos_ += count + 1;
          if (carry_.empty()) {
            *line = {begin, count};
          } else {
            carry_.append(begin, count);
            *line = carry_;
          }
          return true;
        }
        carry_.append(begin, len_ - pos_);
        pos_ = len_;
      }
      len_ = std::fread(buffer_, 1, sizeof(buffer_), file_);
      pos_ = 0;
      if (len_ == 0) {
        if (carry_.empty()) return false;
        *line = carry_;  // final line without a trailing newline
        return true;
      }
    }
  }

 private:
  std::FILE* file_;
  char buffer_[1 << 20];
  size_t pos_ = 0;
  size_t len_ = 0;
  std::string carry_;
};

enum class FieldResult { kOk, kMalformed, kOutOfRange };

bool IsFieldSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

void SkipSpace(std::string_view* rest) {
  while (!rest->empty() && IsFieldSpace(rest->front())) {
    rest->remove_prefix(1);
  }
}

/// Parses one whitespace-delimited integer field off the front of `rest`.
/// Overflowing values are reported as kOutOfRange, not silently narrowed —
/// a 64-bit id must never wrap into a valid-looking small one.
FieldResult ParseIntField(std::string_view* rest, long long* value) {
  SkipSpace(rest);
  if (rest->empty()) return FieldResult::kMalformed;
  const char* begin = rest->data();
  const char* end = begin + rest->size();
  const auto [ptr, ec] = std::from_chars(begin, end, *value);
  if (ptr == begin || (ptr != end && !IsFieldSpace(*ptr))) {
    return FieldResult::kMalformed;
  }
  rest->remove_prefix(static_cast<size_t>(ptr - begin));
  if (ec == std::errc::result_out_of_range) return FieldResult::kOutOfRange;
  if (ec != std::errc()) return FieldResult::kMalformed;
  return FieldResult::kOk;
}

}  // namespace

IoStatus LoadMultiLayerGraph(const std::string& path, MultiLayerGraph* graph) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return IoStatus::Error("cannot open " + path);

  LineScanner scanner(file);
  std::string_view line;
  long long n = -1, l = -1;
  GraphBuilder* builder = nullptr;
  GraphBuilder storage(0, 1);
  // Per-layer canonical (u << 32 | v) edge keys: a duplicate row is a
  // malformed file, not something to silently repair — the graph built
  // would otherwise differ from what the file plainly describes.
  std::vector<std::unordered_set<uint64_t>> seen;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    std::fclose(file);
    return IoStatus::Error(path + ":" + std::to_string(line_no) + ": " +
                           what);
  };
  while (scanner.Next(&line)) {
    ++line_no;
    std::string_view rest = line;
    SkipSpace(&rest);
    if (rest.empty() || rest.front() == '#') continue;
    if (n < 0) {
      // Header `n <vertices> <layers>`. Counts above INT32_MAX are a
      // malformed header, not something to narrow into a small graph.
      constexpr std::string_view kHeaderError =
          "expected header 'n <vertices> <layers>'";
      if (rest.front() != 'n' ||
          (rest.size() > 1 && !IsFieldSpace(rest[1]))) {
        return fail(std::string(kHeaderError));
      }
      rest.remove_prefix(1);
      if (ParseIntField(&rest, &n) != FieldResult::kOk ||
          ParseIntField(&rest, &l) != FieldResult::kOk || n < 0 || l < 1 ||
          n > INT32_MAX || l > INT32_MAX) {
        n = -1;
        return fail(std::string(kHeaderError));
      }
      storage = GraphBuilder(static_cast<int32_t>(n), static_cast<int32_t>(l));
      builder = &storage;
      seen.resize(static_cast<size_t>(l));
      continue;
    }
    long long layer = 0, u = 0, v = 0;
    FieldResult worst = FieldResult::kOk;
    for (long long* field : {&layer, &u, &v}) {
      const FieldResult r = ParseIntField(&rest, field);
      if (r == FieldResult::kMalformed) {
        return fail("expected '<layer> <u> <v>'");
      }
      if (r == FieldResult::kOutOfRange) worst = r;
    }
    if (worst == FieldResult::kOutOfRange || layer < 0 || layer >= l ||
        u < 0 || u >= n || v < 0 || v >= n) {
      return fail("id out of range");
    }
    if (u == v) {
      return fail("self-loop " + std::to_string(u) + "-" + std::to_string(v));
    }
    const uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                         static_cast<uint64_t>(std::max(u, v));
    if (!seen[static_cast<size_t>(layer)].insert(key).second) {
      return fail("duplicate edge " + std::to_string(u) + "-" +
                  std::to_string(v) + " on layer " + std::to_string(layer));
    }
    builder->AddEdge(static_cast<LayerId>(layer), static_cast<VertexId>(u),
                     static_cast<VertexId>(v));
  }
  std::fclose(file);
  if (n < 0) return IoStatus::Error(path + ": missing header line");
  *graph = builder->Build();
  return IoStatus::Ok();
}

IoStatus LoadUpdateStream(const std::string& path,
                          std::vector<UpdateBatch>* batches) {
  std::ifstream in(path);
  if (!in) return IoStatus::Error("cannot open " + path);

  batches->clear();
  UpdateBatch batch;
  std::string line;
  size_t line_no = 0;
  auto flush = [&] {
    if (!batch.empty()) batches->push_back(std::move(batch));
    batch = UpdateBatch{};
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    const std::string where = path + ":" + std::to_string(line_no) + ": ";
    // Ids are range-checked before the int32 casts: a 64-bit value must
    // never wrap into a (valid-looking) small id and silently describe a
    // different update than the file does.
    constexpr long long kMaxId = INT32_MAX;
    if (tag == "+" || tag == "-") {
      long long layer, u, v;
      if (!(ss >> layer >> u >> v) || layer < 0 || u < 0 || v < 0 ||
          layer > kMaxId || u > kMaxId || v > kMaxId) {
        return IoStatus::Error(where + "expected '" + tag +
                               " <layer> <u> <v>'");
      }
      EdgeUpdate edge{static_cast<LayerId>(layer), static_cast<VertexId>(u),
                      static_cast<VertexId>(v)};
      (tag == "+" ? batch.insert_edges : batch.remove_edges).push_back(edge);
    } else if (tag == "addv") {
      long long count;
      if (!(ss >> count) || count < 0 ||
          count + batch.add_vertices > kMaxId) {
        return IoStatus::Error(where + "expected 'addv <count>'");
      }
      batch.add_vertices += static_cast<int32_t>(count);
    } else if (tag == "delv") {
      long long v;
      if (!(ss >> v) || v < 0 || v > kMaxId) {
        return IoStatus::Error(where + "expected 'delv <v>'");
      }
      batch.remove_vertices.push_back(static_cast<VertexId>(v));
    } else if (tag == "commit") {
      flush();
    } else {
      return IoStatus::Error(where + "unknown record '" + tag + "'");
    }
  }
  flush();
  return IoStatus::Ok();
}

IoStatus SaveUpdateStream(const std::vector<UpdateBatch>& batches,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoStatus::Error("cannot open " + path + " for writing");
  out << "# mlcore edge-update stream\n";
  for (const UpdateBatch& batch : batches) {
    if (batch.add_vertices > 0) out << "addv " << batch.add_vertices << "\n";
    for (VertexId v : batch.remove_vertices) out << "delv " << v << "\n";
    for (const EdgeUpdate& e : batch.remove_edges) {
      out << "- " << e.layer << " " << e.u << " " << e.v << "\n";
    }
    for (const EdgeUpdate& e : batch.insert_edges) {
      out << "+ " << e.layer << " " << e.u << " " << e.v << "\n";
    }
    out << "commit\n";
  }
  if (!out) return IoStatus::Error("write failure on " + path);
  return IoStatus::Ok();
}

namespace {

constexpr char kBinaryMagic[6] = {'M', 'L', 'C', 'B', '1', '\n'};

bool WriteRaw(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadRaw(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

}  // namespace

IoStatus SaveMultiLayerGraphBinary(const MultiLayerGraph& graph,
                                   const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoStatus::Error("cannot open " + path);
  bool ok = WriteRaw(f, kBinaryMagic, sizeof(kBinaryMagic));
  const int32_t n = graph.NumVertices();
  const int32_t l = graph.NumLayers();
  ok = ok && WriteRaw(f, &n, sizeof(n)) && WriteRaw(f, &l, sizeof(l));
  std::vector<VertexId> pairs;
  for (LayerId layer = 0; layer < l && ok; ++layer) {
    pairs.clear();
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (v < u) {
          pairs.push_back(v);
          pairs.push_back(u);
        }
      }
    }
    const auto edge_count = static_cast<int64_t>(pairs.size() / 2);
    ok = ok && WriteRaw(f, &edge_count, sizeof(edge_count)) &&
         (pairs.empty() ||
          WriteRaw(f, pairs.data(), pairs.size() * sizeof(VertexId)));
  }
  std::fclose(f);
  if (!ok) return IoStatus::Error("write failure on " + path);
  return IoStatus::Ok();
}

IoStatus LoadMultiLayerGraphBinary(const std::string& path,
                                   MultiLayerGraph* graph) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoStatus::Error("cannot open " + path);
  char magic[sizeof(kBinaryMagic)];
  int32_t n = 0, l = 0;
  if (!ReadRaw(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0 ||
      !ReadRaw(f, &n, sizeof(n)) || !ReadRaw(f, &l, sizeof(l)) || n < 0 ||
      l < 1) {
    std::fclose(f);
    return IoStatus::Error(path + ": not an mlcore binary graph");
  }
  GraphBuilder builder(n, l);
  std::vector<VertexId> pairs;
  for (LayerId layer = 0; layer < l; ++layer) {
    int64_t edge_count = 0;
    if (!ReadRaw(f, &edge_count, sizeof(edge_count)) || edge_count < 0) {
      std::fclose(f);
      return IoStatus::Error(path + ": truncated layer header");
    }
    pairs.resize(static_cast<size_t>(edge_count) * 2);
    if (!pairs.empty() &&
        !ReadRaw(f, pairs.data(), pairs.size() * sizeof(VertexId))) {
      std::fclose(f);
      return IoStatus::Error(path + ": truncated edge data");
    }
    for (size_t e = 0; e + 1 < pairs.size(); e += 2) {
      if (pairs[e] < 0 || pairs[e] >= n || pairs[e + 1] < 0 ||
          pairs[e + 1] >= n) {
        std::fclose(f);
        return IoStatus::Error(path + ": vertex id out of range");
      }
      builder.AddEdge(layer, pairs[e], pairs[e + 1]);
    }
  }
  std::fclose(f);
  *graph = builder.Build();
  return IoStatus::Ok();
}

IoStatus SaveMultiLayerGraph(const MultiLayerGraph& graph,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoStatus::Error("cannot open " + path + " for writing");
  out << "# mlcore multi-layer edge list\n";
  out << "n " << graph.NumVertices() << " " << graph.NumLayers() << "\n";
  for (LayerId layer = 0; layer < graph.NumLayers(); ++layer) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (VertexId u : graph.Neighbors(layer, v)) {
        if (v < u) out << layer << " " << v << " " << u << "\n";
      }
    }
  }
  if (!out) return IoStatus::Error("write failure on " + path);
  return IoStatus::Ok();
}

}  // namespace mlcore
