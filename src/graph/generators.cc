#include "graph/generators.h"

#include <algorithm>
#include <numeric>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace mlcore {

namespace {

// Samples `count` distinct vertices, drawing a `hub_fraction` share from the
// first `hub_pool` ids and the rest uniformly, then sorts the result.
VertexSet SampleCommunityVertices(int32_t n, int count, int32_t hub_pool,
                                  double hub_fraction, Rng& rng) {
  std::vector<bool> used(static_cast<size_t>(n), false);
  VertexSet out;
  out.reserve(static_cast<size_t>(count));
  int guard = 0;
  while (static_cast<int>(out.size()) < count && guard < count * 50) {
    ++guard;
    VertexId v;
    if (rng.Bernoulli(hub_fraction) && hub_pool > 0) {
      v = static_cast<VertexId>(rng.Uniform(0, hub_pool - 1));
    } else {
      v = static_cast<VertexId>(rng.Uniform(0, n - 1));
    }
    if (!used[static_cast<size_t>(v)]) {
      used[static_cast<size_t>(v)] = true;
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

LayerSet SampleLayerSubset(int32_t l, int min_size, Rng& rng) {
  auto size = static_cast<int>(rng.Uniform(min_size, l));
  std::vector<LayerId> ids(static_cast<size_t>(l));
  std::iota(ids.begin(), ids.end(), 0);
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  ids.resize(static_cast<size_t>(size));
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

PlantedGraph GeneratePlanted(const PlantedGraphConfig& config) {
  MLCORE_CHECK(config.num_vertices > 0);
  MLCORE_CHECK(config.num_layers > 0);
  MLCORE_CHECK(config.community_size_min >= 2);
  MLCORE_CHECK(config.community_size_max >= config.community_size_min);

  Rng rng(config.seed);
  GraphBuilder builder(config.num_vertices, config.num_layers);
  PlantedGraph result;

  const int32_t hub_pool = std::max<int32_t>(config.num_vertices / 10, 1);

  // Plant communities.
  for (int c = 0; c < config.num_communities; ++c) {
    PlantedCommunity community;
    auto size = static_cast<int>(
        rng.Uniform(config.community_size_min, config.community_size_max));
    size = std::min<int>(size, config.num_vertices);
    const bool all_layers = rng.Bernoulli(config.all_layers_fraction);
    if (all_layers && config.all_layers_size_cap > 0) {
      size = std::min(size, config.all_layers_size_cap);
    }
    community.vertices = SampleCommunityVertices(
        config.num_vertices, size, hub_pool, config.hub_overlap_fraction, rng);
    if (all_layers) {
      community.layers = LayerSet(static_cast<size_t>(config.num_layers));
      std::iota(community.layers.begin(), community.layers.end(), 0);
    } else {
      community.layers = SampleLayerSubset(
          config.num_layers,
          std::min(config.community_layers_min, config.num_layers), rng);
    }
    community.internal_prob =
        config.internal_prob_min +
        rng.UniformReal() *
            (config.internal_prob_max - config.internal_prob_min);

    for (size_t i = 0; i < community.vertices.size(); ++i) {
      for (size_t j = i + 1; j < community.vertices.size(); ++j) {
        for (LayerId layer : community.layers) {
          if (rng.Bernoulli(community.internal_prob)) {
            builder.AddEdge(layer, community.vertices[i],
                            community.vertices[j]);
          }
        }
      }
    }
    result.communities.push_back(std::move(community));
  }

  // Background noise: heavy-tailed endpoint selection per layer.
  const auto bg_edges = static_cast<int64_t>(
      config.background_avg_degree * config.num_vertices / 2.0);
  for (LayerId layer = 0; layer < config.num_layers; ++layer) {
    for (int64_t e = 0; e < bg_edges; ++e) {
      auto u = static_cast<VertexId>(
          rng.SkewedIndex(config.num_vertices, config.background_skew));
      auto v = static_cast<VertexId>(rng.Uniform(0, config.num_vertices - 1));
      builder.AddEdge(layer, u, v);
    }
  }

  result.graph = builder.Build();
  return result;
}

MultiLayerGraph GenerateErdosRenyi(int32_t num_vertices, int32_t num_layers,
                                   double p, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(num_vertices, num_layers);
  for (LayerId layer = 0; layer < num_layers; ++layer) {
    for (VertexId u = 0; u < num_vertices; ++u) {
      for (VertexId v = u + 1; v < num_vertices; ++v) {
        if (rng.Bernoulli(p)) builder.AddEdge(layer, u, v);
      }
    }
  }
  return builder.Build();
}

}  // namespace mlcore
